//! The distributed Born loop: the same self-consistent simulation run
//! serially and under `ExecutorKind::Distributed { ranks }`, where rank
//! threads own contiguous partitions of the (kz, E) grid and every SSE
//! phase executes one of the paper's two communication schemes across
//! the in-process [`Transport`] seam — OMEN's round-based replication
//! or the data-centric four-alltoall redistribution.
//!
//! Prints per-plan: the converged current (and its deviation from the
//! serial reference), the measured communication volume per Born
//! iteration from the live [`VolumeLedger`]s, and the §6.1.2 model
//! volume the measurement is validated against in CI
//! (`table45_comm --execute` + `perf_check`).
//!
//! Run with: `cargo run --release --example distributed_sweep`

use dace_omen::core::{
    CommPlan, ExecutorKind, PlanKernel, Simulation, SimulationConfig, SimulationResult,
};
use dace_omen::perf::{dace_volume_with, omen_volume, SimParams};

const RANKS: usize = 4;

fn config() -> SimulationConfig {
    SimulationConfig::demo()
        .into_builder()
        .max_iterations(5)
        .config()
        .clone()
}

fn main() {
    let mut serial_sim = Simulation::new(config()).expect("valid configuration");
    println!(
        "FinFET demo: {} atoms, Nkz={} NE={} Nω={}",
        serial_sim.device.num_atoms(),
        serial_sim.config().nk,
        serial_sim.config().ne,
        serial_sim.config().nw
    );
    // The analytic volume models, evaluated at the live device.
    let params = {
        let prob = serial_sim.sse_problem();
        SimParams {
            na: prob.na(),
            nb: prob.device.max_neighbors(),
            norb: prob.norb(),
            n3d: 3,
            nk: prob.nk,
            nq: prob.nq,
            ne: prob.ne,
            nw: prob.nw,
            bnum: prob.device.bnum(),
            bc_block_ops: 1.0,
        }
    };
    let serial = serial_sim.run().expect("serial reference");
    println!(
        "serial reference: I = {:.6e} after {} Born iterations\n",
        serial.current(),
        serial.records.len()
    );

    for plan in [CommPlan::Omen, CommPlan::Dace] {
        let (result, per_iter) = run_distributed(plan);
        let model = match plan {
            CommPlan::Omen => omen_volume(&params, RANKS),
            CommPlan::Dace => {
                let t = dace_omen::comm::tiling_for_ranks(params.na, params.ne, RANKS)
                    .expect("demo device fits a 4-rank tiling");
                dace_volume_with(&params, t.ta, t.te)
            }
        };
        let rel = ((result.current() - serial.current()) / serial.current()).abs();
        println!("{} plan on {RANKS} in-process ranks:", plan.name());
        println!(
            "  I = {:.6e}  ({rel:.2e} relative to serial — cross-schedule reassociation only)",
            result.current()
        );
        println!(
            "  exchange: {} B/Born iteration measured, model {:.0} B ({:.3}x)\n",
            per_iter,
            model,
            per_iter as f64 / model
        );
    }
    println!("(the distributed engine is bitwise-identical to a serial run of the same");
    println!(" plan kernel — pinned by tests/integration_executors.rs across ranks 1/2/4)");
}

/// One distributed run, keeping the plan kernel's ledger sink so the
/// per-iteration volumes can be read back.
fn run_distributed(plan: CommPlan) -> (SimulationResult, u64) {
    let mut cfg = config();
    cfg.executor = ExecutorKind::Distributed { ranks: RANKS };
    cfg.comm_plan = plan;
    let mut sim = Simulation::new(cfg).expect("valid distributed configuration");
    let kernel = PlanKernel::new(plan, RANKS);
    let sink = kernel.ledger_sink();
    sim.set_kernel(Box::new(kernel));
    let result = sim.run().expect("distributed run");
    let ledgers = sink.lock().expect("ledger sink").clone();
    assert!(!ledgers.is_empty(), "one ledger per Born iteration");
    let bytes: Vec<u64> = ledgers.iter().map(|l| l.total_bytes()).collect();
    assert!(
        bytes.windows(2).all(|w| w[0] == w[1]),
        "plan volume is deterministic per iteration"
    );
    (result, bytes[0])
}
