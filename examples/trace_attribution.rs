//! Observability end to end: the FinFET demo with the `omen-trace`
//! registry armed, both SSE communication plans executed on the
//! simulated MPI, and the measured counters joined against the analytic
//! models of §6.1 — the model-vs-measured attribution report.
//!
//! Run with:
//! `cargo run --release --example trace_attribution [-- --trace-out trace.json]`

use dace_omen::comm::{run_dace_plan, run_omen_plan, DaceTiling, OmenGrid};
use dace_omen::core::SimulationConfig;
use dace_omen::perf::{attribute, AttributionModel, SimParams};
use dace_omen::trace;

fn main() {
    trace::reset();
    trace::arm();

    let cfg = SimulationConfig::demo()
        .into_builder()
        .max_iterations(8)
        .config()
        .clone();
    let (nk, ne, nw) = (cfg.nk, cfg.ne, cfg.nw);
    let mut sim = cfg.into_builder().build().expect("valid configuration");
    println!(
        "tracing armed: {}-atom FinFET demo, Nkz={nk} NE={ne} Nω={nw}",
        sim.device.num_atoms()
    );
    let result = sim.run().expect("run converges");
    let iterations = result.records.len() as u64;
    println!(
        "converged in {iterations} Born iterations; I = {:.4e}",
        result.current()
    );

    // Materialize converged tensors for the communication leg with the
    // registry off, so the extra GF solve does not inflate the traced
    // per-iteration gf_phase records.
    trace::disarm();
    let gf = sim.gf_phase();
    trace::arm();

    let prob = sim.sse_problem();
    let grid = OmenGrid::new(nk, 2, nk, ne);
    let tiling = DaceTiling::new(nk, 2, prob.na(), ne);
    let (_, ledger_omen) = run_omen_plan(&prob, &gf.g_l, &gf.g_g, &gf.d_l, &gf.d_g, &grid);
    let (_, ledger_dace) = run_dace_plan(&prob, &gf.g_l, &gf.g_g, &gf.d_l, &gf.d_g, &grid, &tiling);
    println!(
        "\ncomm leg on {} simulated ranks: OMEN plan {} B, DaCe plan {} B",
        grid.nranks(),
        ledger_omen.total_bytes(),
        ledger_dace.total_bytes()
    );

    let snap = trace::snapshot();
    trace::disarm();

    // The analytic models evaluated at this run's actual dimensions.
    let params = SimParams {
        na: prob.na(),
        nb: sim.device.max_neighbors(),
        norb: prob.norb(),
        n3d: 3,
        nk,
        nq: nk,
        ne,
        nw,
        bnum: sim.device.bnum(),
        bc_block_ops: 0.0,
    };
    let model = AttributionModel {
        params,
        iterations,
        omen_ranks: Some(grid.nranks()),
        dace_tiling: Some((tiling.ta, tiling.te)),
        // The comm leg above ran each plan once on the converged tensors.
        comm_execs: 1,
        stream: None,
    };
    let report = attribute(&snap, &model);
    println!("\n=== model-vs-measured attribution ===");
    print!("{}", report.render());
    println!(
        "(trace recorded {} spans, {} events, {} phase windows)",
        snap.spans.len(),
        snap.events.len(),
        snap.phases.len()
    );

    if let Some(path) = std::env::args().skip_while(|a| a != "--trace-out").nth(1) {
        std::fs::write(&path, trace::chrome_trace_json(&snap)).expect("write chrome trace");
        println!("wrote chrome trace: {path} (load in Perfetto / chrome://tracing)");
    }
}
