//! Quickstart: build a synthetic FinFET slice, run the self-consistent
//! dissipative quantum transport simulation, and print the headline
//! observables.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! One simulation is one sweep point. To run a whole bias/temperature
//! sweep with cross-point warm starts, see `examples/sweep_service.rs`
//! (`cargo run --release --example sweep_service`).

use dace_omen::core::{electro_thermal_report, ExecutorKind, KernelVariant, SimulationConfig};

fn main() {
    // A laptop-scale configuration: 16-atom device, 2 momentum points,
    // 24 energies, 2 phonon frequencies. The builder validates every
    // field — invalid configurations return a ConfigError instead of
    // panicking inside the solvers.
    let mut sim = SimulationConfig::builder()
        .nk(2)
        .ne(24)
        .nw(2)
        .bias(0.3, 0.0) // Vds = 0.3 V
        .kernel(KernelVariant::Transformed)
        .executor(ExecutorKind::Rayon { threads: 0 }) // all cores
        .build()
        .expect("valid configuration");
    println!(
        "device: {} atoms, {} slabs, Norb = {}",
        sim.config().device.num_atoms(),
        sim.config().device.nx / sim.config().device.cols_per_slab,
        sim.config().device.norb
    );
    let result = sim.run().expect("run succeeds");

    println!("\nBorn iterations: {}", result.records.len());
    for r in &result.records {
        println!(
            "  iter {:>2}: I = {:.6e}  (rel change {:.2e})",
            r.iteration, r.current, r.rel_change
        );
    }
    println!("\nconverged current: {:.6e}", result.current());
    println!(
        "current conservation (profile spread): {:.2e}",
        result.current_nonuniformity()
    );

    let report = electro_thermal_report(&sim, &result);
    println!(
        "lattice temperature: contact {:.1} K, peak {:.1} K",
        report.contact_temperature,
        report.t_max()
    );
}
