//! The paper's headline innovation (§5.2): executing the SSE phase under
//! both domain decompositions on a simulated MPI and measuring the
//! communication volumes byte-for-byte.
//!
//! Run with: `cargo run --release --example communication_avoidance`

use dace_omen::comm::{run_dace_plan, run_omen_plan, DaceTiling, OmenGrid, OpKind};
use dace_omen::sse::testutil::{random_inputs, tiny_device};
use dace_omen::sse::{sse_reference, SseProblem};

fn main() {
    let dev = tiny_device();
    let prob = SseProblem::new(&dev, 2, 10, 2, 3, 1.0, 1.0);
    let (gl, gg, dl, dg) = random_inputs(&prob, 5);
    println!(
        "SSE problem: {} atoms, {} pairs, Nkz={} NE={} Nω={} on 6 simulated ranks\n",
        prob.na(),
        prob.npairs(),
        prob.nk,
        prob.ne,
        prob.nw
    );

    let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
    let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
    let tiling = DaceTiling::new(3, 2, prob.na(), prob.ne);

    let (res_o, lo) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);
    let (res_d, ld) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);

    let dev_o = res_o.sigma_l.max_deviation(&reference.sigma_l) / reference.sigma_l.max_abs();
    let dev_d = res_d.sigma_l.max_deviation(&reference.sigma_l) / reference.sigma_l.max_abs();
    println!("correctness vs single-node reference:");
    println!("  OMEN plan Σ< deviation: {dev_o:.2e}");
    println!("  DaCe plan Σ< deviation: {dev_d:.2e}\n");

    println!("measured traffic (exact byte counts):");
    println!(
        "  OMEN: {:>10} B total = bcast {} + p2p {} + reduce {}  in {} MPI calls",
        lo.total_bytes(),
        lo.bytes(OpKind::Bcast),
        lo.bytes(OpKind::PointToPoint),
        lo.bytes(OpKind::Reduce),
        lo.total_calls()
    );
    println!(
        "  DaCe: {:>10} B total, all in {} Alltoallv calls",
        ld.total_bytes(),
        ld.calls(OpKind::Alltoall)
    );
    println!(
        "\nvolume reduction {:.1}x, invocation reduction {:.0}x — same physics, different schedule",
        lo.total_bytes() as f64 / ld.total_bytes() as f64,
        lo.total_calls() as f64 / ld.total_calls() as f64
    );
}
