//! Sweep service: submit a FinFET bias sweep to the `omen-serve` job
//! server and watch warm starts cut the Born iteration count.
//!
//! Each completed point deposits its converged self-energies and
//! boundary caches into the server's warm-start cache; the next point
//! seeds from its nearest completed neighbor instead of starting
//! ballistic. The example runs the same sweep cold (independent
//! simulations) for comparison.
//!
//! Run with: `cargo run --release --example sweep_service`

use dace_omen::core::Simulation;
use dace_omen::serve::{JobState, ServerConfig, SweepServer, SweepSpec};

fn main() {
    let points = 6;
    let spec = SweepSpec::finfet_bias(points);
    println!(
        "bias sweep: {points} points, Vds = {:.2} .. {:.2} V\n",
        spec.values[0],
        spec.values[points - 1]
    );

    // Cold reference: every point an independent simulation.
    let mut cold_iters = 0;
    let mut cold_currents = Vec::with_capacity(points);
    for i in 0..points {
        let run = Simulation::new(spec.config_for(i))
            .expect("valid sweep point")
            .run()
            .expect("cold sweep point converges");
        cold_iters += run.records.len();
        cold_currents.push(run.current());
    }

    // Warm: the same sweep as one server job. A single worker keeps the
    // point order deterministic so every point after the first finds a
    // converged neighbor in the cache.
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let handle = server.submit(spec).expect("valid sweep");
    println!("submitted job {} ({:?})", handle.id(), handle.state());
    let result = handle.wait().expect("sweep completes");
    assert!(matches!(handle.state(), JobState::Completed));

    println!(
        "\n{:>8} {:>14} {:>12} {:>6} {:>8}",
        "Vds", "I (warm)", "I (cold)", "iters", "donor"
    );
    for (p, cold) in result.points.iter().zip(&cold_currents) {
        println!(
            "{:>8.3} {:>14.6e} {:>12.4e} {:>6} {:>8}",
            p.value,
            p.current,
            cold,
            p.iterations,
            p.donor.map_or("cold".into(), |d| format!("{d:.3}")),
        );
    }

    let m = &result.metrics;
    println!(
        "\nwarm points: {}/{}  Born iterations: {} (cold reference: {cold_iters})",
        m.warm_points, m.points, m.born_iterations
    );
    println!(
        "iterations saved: {}  cache hit rate: {:.0}%  wall: {:.2}s",
        m.iterations_saved,
        100.0 * m.cache_hit_rate(),
        m.seconds
    );
}
