//! §5.1-5.2 / Fig. 5: deriving the communication-avoiding decomposition
//! from the data-centric IR — build the SSE SDFG, re-tile the map two
//! ways, and read the volumes off the memlets — then close the loop:
//! lower the transformed graph into an executable task DAG, run the
//! sweep through the overlapped GF/SSE stream pipeline, and print the
//! model-vs-measured attribution table including the overlap row.
//!
//! Run with:
//! `cargo run --release --example dataflow_transforms [-- --trace-out dag_trace.json]`

use std::time::Instant;

use dace_omen::core::{run_overlapped, ExecutorKind, Simulation, SimulationConfig};
use dace_omen::dataflow::{
    apply_dace_decomposition, apply_omen_decomposition, bindings, simulation_sdfg, sse_state,
};
use dace_omen::perf::{
    attribute, measured_overlap_fraction, AttributionModel, SimParams, StreamAttribution,
    StreamModel,
};
use dace_omen::sched::lower_iteration;
use dace_omen::trace;

fn main() {
    let sdfg = simulation_sdfg();
    sdfg.validate().expect("valid SDFG");
    println!(
        "simulation SDFG '{}': {} states, {} nodes\n",
        sdfg.name,
        sdfg.states.len(),
        sdfg.node_count()
    );

    let mut omen = sse_state();
    let omen_vol = apply_omen_decomposition(&mut omen);
    println!("OMEN decomposition (tile by kz × E/tE):\n  remote volume = {omen_vol}\n");

    let mut dace = sse_state();
    let (residual, dace_vol) = apply_dace_decomposition(&mut dace);
    println!("DaCe decomposition (re-tile by atoms × energies):");
    println!("  per-point remote volume = {residual}  (everything became rank-local)");
    println!("  one-time alltoall volume = {dace_vol}\n");

    // Evaluate both at the paper's Small/Nkz=7/P=1792 configuration.
    let b = bindings(&[
        ("Nkz", 7.0),
        ("Nqz", 7.0),
        ("NE", 706.0),
        ("Nw", 70.0),
        ("Na", 4864.0),
        ("Nb", 34.0),
        ("Norb", 12.0),
        ("N3D", 3.0),
        ("tE", 706.0 / 256.0),
        ("Ta", 448.0),
        ("TE", 4.0),
    ]);
    let tib = (1u64 << 40) as f64;
    println!("evaluated at Small, Nkz = 7, P = 1,792:");
    println!(
        "  OMEN: {:.1} TiB   (paper Table 5: 174.80 TiB)",
        omen_vol.eval(&b) / tib
    );
    println!(
        "  DaCe: {:.2} TiB   (paper Table 5: 2.17 TiB)",
        dace_vol.eval(&b) / tib
    );

    // ── From IR to execution ────────────────────────────────────────
    // The transformed graph is not just an analysis artifact: lower one
    // Born iteration into the task DAG the `ExecutorKind::Dag` engine
    // runs, then drive a small bias sweep through the overlapped GF/SSE
    // stream pipeline with tracing armed.
    let cfg = {
        let mut c = SimulationConfig::tiny();
        c.executor = ExecutorKind::Dag { threads: 2 };
        c.max_iterations = 4;
        c
    };
    let plan =
        lower_iteration(&sdfg, cfg.nk, cfg.ne, cfg.nw).expect("simulation SDFG lowers to a DAG");
    let edges: usize = (0..plan.dag.len()).map(|t| plan.dag.deps_of(t).len()).sum();
    println!(
        "\nlowered one Born iteration: {} tasks ({} GF point solves + SSE), {} dependency edges",
        plan.dag.len(),
        plan.gf_tasks(),
        edges
    );

    let points = 4usize;
    let sweep = || -> Vec<Simulation> {
        (0..points)
            .map(|i| {
                let mut c = cfg.clone();
                c.mu_drain = 0.01 * i as f64;
                Simulation::new(c).expect("valid config")
            })
            .collect()
    };

    // Serial leg: per-stage busy time feeds the Table 6 stream model.
    trace::reset();
    trace::arm();
    let t0 = Instant::now();
    let mut serial_sims = sweep();
    let serial: Vec<_> = serial_sims
        .iter_mut()
        .map(|s| s.run().expect("serial point runs"))
        .collect();
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_snap = trace::snapshot();
    trace::disarm();

    let tasks: usize = serial.iter().map(|r| r.records.len()).sum();
    let model = StreamModel::from_trace(&serial_snap, tasks);

    // Overlapped leg: GF of point k+1 concurrent with SSE of point k.
    trace::reset();
    trace::arm();
    let t0 = Instant::now();
    let overlapped = run_overlapped(sweep(), 2);
    let overlap_secs = t0.elapsed().as_secs_f64();
    let snap = trace::snapshot();
    trace::disarm();

    for (s, o) in serial.iter().zip(&overlapped) {
        let o = o.finished().expect("overlapped point runs");
        assert_eq!(
            s.current().to_bits(),
            o.current().to_bits(),
            "overlapped sweep must be bit-identical to serial"
        );
    }
    let gf_busy = snap.phase_ns("gf_phase") as f64 * 1e-9;
    let sse_busy = snap.phase_ns("sse_phase") as f64 * 1e-9;
    println!(
        "ran {points} sweep points twice (bit-identical): serial {:.1} ms, overlapped {:.1} ms, \
         measured overlap {:.0}%",
        1e3 * serial_secs,
        1e3 * overlap_secs,
        100.0 * measured_overlap_fraction(gf_busy, sse_busy, overlap_secs)
    );

    // Attribution over the overlapped trace: RGF/SSE flop models plus
    // the stream-pipeline overlap row.
    let prob = serial_sims[0].sse_problem();
    let params = SimParams {
        na: prob.na(),
        nb: serial_sims[0].device.max_neighbors(),
        norb: prob.norb(),
        n3d: 3,
        nk: cfg.nk,
        nq: cfg.nk,
        ne: cfg.ne,
        nw: cfg.nw,
        bnum: serial_sims[0].device.bnum(),
        bc_block_ops: 0.0,
    };
    let attr = AttributionModel {
        params,
        iterations: tasks as u64,
        omen_ranks: None,
        dace_tiling: None,
        comm_execs: 1,
        stream: Some(StreamAttribution {
            model,
            wall_s: overlap_secs,
        }),
    };
    let report = attribute(&snap, &attr);
    println!("\n=== model-vs-measured attribution (overlapped sweep) ===");
    print!("{}", report.render());

    if let Some(path) = std::env::args().skip_while(|a| a != "--trace-out").nth(1) {
        std::fs::write(&path, trace::chrome_trace_json(&snap)).expect("write chrome trace");
        println!("wrote chrome trace: {path} (load in Perfetto / chrome://tracing)");
    }
}
