//! §5.1-5.2 / Fig. 5: deriving the communication-avoiding decomposition
//! from the data-centric IR — build the SSE SDFG, re-tile the map two
//! ways, and read the volumes off the memlets.
//!
//! Run with: `cargo run --release --example dataflow_transforms`

use dace_omen::dataflow::{
    apply_dace_decomposition, apply_omen_decomposition, bindings, simulation_sdfg, sse_state,
};

fn main() {
    let sdfg = simulation_sdfg();
    sdfg.validate().expect("valid SDFG");
    println!(
        "simulation SDFG '{}': {} states, {} nodes\n",
        sdfg.name,
        sdfg.states.len(),
        sdfg.node_count()
    );

    let mut omen = sse_state();
    let omen_vol = apply_omen_decomposition(&mut omen);
    println!("OMEN decomposition (tile by kz × E/tE):\n  remote volume = {omen_vol}\n");

    let mut dace = sse_state();
    let (residual, dace_vol) = apply_dace_decomposition(&mut dace);
    println!("DaCe decomposition (re-tile by atoms × energies):");
    println!("  per-point remote volume = {residual}  (everything became rank-local)");
    println!("  one-time alltoall volume = {dace_vol}\n");

    // Evaluate both at the paper's Small/Nkz=7/P=1792 configuration.
    let b = bindings(&[
        ("Nkz", 7.0),
        ("Nqz", 7.0),
        ("NE", 706.0),
        ("Nw", 70.0),
        ("Na", 4864.0),
        ("Nb", 34.0),
        ("Norb", 12.0),
        ("N3D", 3.0),
        ("tE", 706.0 / 256.0),
        ("Ta", 448.0),
        ("TE", 4.0),
    ]);
    let tib = (1u64 << 40) as f64;
    println!("evaluated at Small, Nkz = 7, P = 1,792:");
    println!(
        "  OMEN: {:.1} TiB   (paper Table 5: 174.80 TiB)",
        omen_vol.eval(&b) / tib
    );
    println!(
        "  DaCe: {:.2} TiB   (paper Table 5: 2.17 TiB)",
        dace_vol.eval(&b) / tib
    );
}
