//! §5.4 / Fig. 7: the binary16 SSE path — with per-tensor normalization it
//! converges with the double-precision solver; without it, the wide
//! dynamic range of the inputs underflows.
//!
//! Run with: `cargo run --release --example mixed_precision_sse`

use dace_omen::core::{KernelVariant, Normalization, SimulationConfig};

fn main() {
    let base = SimulationConfig::builder()
        .coupling(0.01)
        .max_iterations(8)
        .tolerance(1e-9);

    let run = |kernel| {
        let mut sim = base
            .clone()
            .kernel(kernel)
            .build()
            .expect("valid configuration");
        sim.run().expect("run succeeds").current_history()
    };
    let h64 = run(KernelVariant::Transformed);
    let h_norm = run(KernelVariant::Mixed(Normalization::PerTensor));
    let h_raw = run(KernelVariant::Mixed(Normalization::None));

    println!("iteration   I(f64)          I(f16 norm)     I(f16 raw)");
    for i in 0..h64.len() {
        println!(
            "{:>6}      {:.8e}  {:.8e}  {:.8e}",
            i + 1,
            h64[i],
            h_norm[i],
            h_raw[i]
        );
    }
    let last = h64.len() - 1;
    println!(
        "\nconverged relative error: normalized {:.2e}, raw {:.2e}",
        ((h_norm[last] - h64[last]) / h64[last]).abs(),
        ((h_raw[last] - h64[last]) / h64[last]).abs()
    );
    println!("(paper: 1.2e-6 with normalization; 3e-3 without)");
}
