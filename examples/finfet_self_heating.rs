//! The paper's flagship application (Figs. 1d and 11): self-heating in a
//! biased FinFET slice — energy currents, temperature map, heat flow.
//!
//! Run with: `cargo run --release --example finfet_self_heating`

use dace_omen::core::{electro_thermal_report, SimulationConfig};

fn main() {
    let cfg = SimulationConfig::demo()
        .into_builder()
        .coupling(0.01) // electron-phonon coupling strength
        .bias(0.4, 0.0) // Vds = 0.4 V
        .max_iterations(10)
        .config()
        .clone();
    println!(
        "simulating {}-atom device under Vds = {:.2} V, {} Born iterations max…",
        cfg.device.num_atoms(),
        cfg.mu_source - cfg.mu_drain,
        cfg.max_iterations
    );
    let mut sim = cfg.into_builder().build().expect("valid configuration");
    let result = sim.run().expect("run succeeds");
    let report = electro_thermal_report(&sim, &result);

    println!("\n=== energy currents along transport (Fig. 11 left) ===");
    println!(
        "{:>7} {:>13} {:>13} {:>13}",
        "x [nm]", "electron", "phonon", "total"
    );
    for n in 0..report.x.len() {
        println!(
            "{:7.2} {:+13.4e} {:+13.4e} {:+13.4e}",
            report.x[n],
            report.electron_energy_current[n],
            report.phonon_energy_current[n],
            report.total_energy_current[n]
        );
    }

    println!("\n=== temperature along transport (Figs. 1d / 11) ===");
    for (s, t) in report.temperature_profile.iter().enumerate() {
        let bar = "#".repeat(((t - report.contact_temperature).max(0.0) * 20.0) as usize + 1);
        println!("slab {s:>2}: {t:7.2} K  {bar}");
    }
    println!(
        "\nself-heating: peak {:.2} K over a {:.2} K contact (ΔT = {:.2} K)",
        report.t_max(),
        report.contact_temperature,
        report.t_max() - report.contact_temperature
    );
}
