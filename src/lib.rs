//! # dace-omen
//!
//! A Rust reproduction of *"A Data-Centric Approach to Extreme-Scale Ab
//! initio Dissipative Quantum Transport Simulations"* (Ziogas et al.,
//! SC '19 — Gordon Bell Prize).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`linalg`] — complex dense/sparse linear algebra, SBSMM, binary16;
//! * [`device`] — synthetic nano-device generator (CP2K substitute);
//! * [`rgf`] — recursive Green's function solvers and boundary methods;
//! * [`sse`] — scattering self-energy kernels (reference / transformed /
//!   mixed precision);
//! * [`dataflow`] — SDFG-lite IR with movement analysis and lowering;
//! * [`sched`] — executable task-DAG runtime: memlet-derived
//!   dependencies, liveness-driven arena buffers, GF/SSE stream overlap;
//! * [`comm`] — simulated MPI, the two SSE communication plans, staging;
//! * [`perf`] — analytic performance/communication/scaling models;
//! * [`core`] — the self-consistent simulation and electro-thermal
//!   observables;
//! * [`serve`] — async sweep job service with cross-point warm-start
//!   caching;
//! * [`trace`] — zero-dependency structured tracing: spans, typed
//!   counters, chrome-trace/metrics exporters.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use omen_comm as comm;
pub use omen_core as core;
pub use omen_dataflow as dataflow;
pub use omen_device as device;
pub use omen_linalg as linalg;
pub use omen_perf as perf;
pub use omen_rgf as rgf;
pub use omen_sched as sched;
pub use omen_serve as serve;
pub use omen_sse as sse;
pub use omen_trace as trace;
