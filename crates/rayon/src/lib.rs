//! A minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The workspace builds in environments without crates.io access, so this
//! crate vendors the small subset of rayon's API the codebase uses:
//!
//! * [`ParallelSliceMut::par_chunks_mut`] with `take` / `enumerate` /
//!   `zip` / `map` / `sum` / `for_each` adapters;
//! * [`IntoParallelIterator`] for `Range<usize>`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] for bounded worker
//!   counts.
//!
//! Semantics match rayon where it matters for this workspace:
//!
//! * adapters are *order-preserving*: `map(...).sum()` reduces bucket
//!   results in item order, so floating-point reductions are deterministic
//!   and independent of the worker count;
//! * `install` bounds the parallelism of everything run inside it;
//! * items are distributed over `std::thread::scope` workers in contiguous
//!   balanced buckets (uniform-cost items — the workloads here — balance
//!   perfectly).
//!
//! To use the real rayon, delete `crates/rayon` and point the workspace
//! `rayon` dependency at crates.io; no call sites change.

use std::cell::Cell;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The worker count used by parallel drivers on this thread: the installed
/// pool's size if inside [`ThreadPool::install`], else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Balanced contiguous split of `n` items into `parts`; part `i` gets
/// `[lo, hi)`.
fn split_range(n: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let lo = i * base + i.min(rem);
    (lo, lo + base + usize::from(i < rem))
}

/// Runs `f` over every item on up to [`current_num_threads`] scoped
/// threads.
fn drive<I, F>(items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    drive_map(items, &|item| f(item));
}

/// Runs `f` over every item, returning results *in item order*.
fn drive_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let nthreads = current_num_threads().min(n).max(1);
    if nthreads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let bounds: Vec<(usize, usize)> = (0..nthreads).map(|t| split_range(n, nthreads, t)).collect();
    let mut buckets: Vec<Vec<I>> = Vec::with_capacity(nthreads);
    let mut rest = items;
    for t in (1..nthreads).rev() {
        buckets.push(rest.split_off(bounds[t].0));
    }
    buckets.push(rest);
    buckets.reverse(); // now bucket t holds items [bounds[t].0, bounds[t].1)
    let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| s.spawn(move || bucket.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut flat = Vec::with_capacity(n);
    for b in out.iter_mut() {
        flat.append(b);
    }
    flat
}

/// An eager "parallel iterator": the item list is materialized up front
/// and the terminal operation distributes it over worker threads.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes the items (cheap: slices/indices, not the work).
    fn into_items(self) -> Vec<Self::Item>;

    /// Runs `f` on every item across worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive(self.into_items(), &f);
    }

    /// Keeps the first `n` items.
    fn take(self, n: usize) -> Take<Self> {
        Take { inner: self, n }
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Zips with another parallel iterator (truncating to the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Maps items through `f`; the map runs on the worker threads of the
    /// terminal operation.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }
}

/// See [`ParallelIterator::take`].
pub struct Take<I> {
    inner: I,
    n: usize,
}

impl<I: ParallelIterator> ParallelIterator for Take<I> {
    type Item = I::Item;

    fn into_items(self) -> Vec<Self::Item> {
        let mut items = self.inner.into_items();
        items.truncate(self.n);
        items
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.inner.into_items().into_iter().enumerate().collect()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.a
            .into_items()
            .into_iter()
            .zip(self.b.into_items())
            .collect()
    }
}

/// See [`ParallelIterator::map`]. Terminal operations (`for_each`, `sum`)
/// run the mapping closure on the worker threads.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    /// Parallel map + order-preserving sum (deterministic reduction).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        drive_map(self.inner.into_items(), &self.f)
            .into_iter()
            .sum()
    }

    /// Runs the mapping closure for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
        Self: Sized,
    {
        let f = self.f;
        drive(self.inner.into_items(), &move |item| g(f(item)));
    }
}

/// Mutable-slice chunking, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into `size`-element chunks (last may be short),
    /// processed in parallel by the terminal operation.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// See [`ParallelSliceMut::par_chunks_mut`].
pub struct ChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn into_items(self) -> Vec<Self::Item> {
        self.chunks
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn into_items(self) -> Vec<usize> {
        self.range.collect()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Builder for a bounded-parallelism [`ThreadPool`], mirroring rayon's.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with automatic thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the pool to `n` workers (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A bounded worker pool. The shim carries only the worker count; workers
/// are scoped threads spawned per terminal operation.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's parallelism bound installed. The
    /// previous bound is restored even if `op` panics (a leaked override
    /// would silently cap later parallel work on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|t| t.replace(self.num_threads)));
        op()
    }

    /// The configured worker count (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_cover_slice_in_order() {
        let mut v: Vec<usize> = vec![0; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn take_zip_map_sum_is_ordered() {
        let mut a = vec![1u64; 100];
        let mut b = vec![2u64; 100];
        let s: u64 = a
            .par_chunks_mut(7)
            .zip(b.par_chunks_mut(7))
            .take(10)
            .enumerate()
            .map(|(i, (ca, cb))| i as u64 + ca.len() as u64 + cb.len() as u64)
            .sum();
        // 10 chunks of 7 items each, indices 0..10.
        assert_eq!(s, 45 + 2 * 70);
    }

    #[test]
    fn range_for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..1000usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn pool_install_bounds_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn pool_install_restores_after_panic() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before, "override must not leak");
    }
}
