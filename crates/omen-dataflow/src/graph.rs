//! The SDFG-lite intermediate representation (Fig. 3 of the paper) and the
//! graph transformations of Figs. 5–6.
//!
//! Nodes are data containers (access nodes), tasklets (fine-grained
//! computation), and parametric map scopes; memlet edges carry symbolic
//! per-execution volumes. States sequence dataflow under control
//! dependencies. The representation serves two roles in this
//! reproduction: *analysis* — deriving the data-movement expressions the
//! paper uses to discover the communication-avoiding variant — and
//! *execution* — [`crate::lower`] turns the memlets into a dependency
//! DAG with buffer liveness that `omen-sched` runs against the real
//! kernels.

use crate::symbolic::Expr;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Typed error for structural validation and graph transformations.
///
/// Every failure mode of the IR — malformed scopes, out-of-range edges,
/// and transformations that would change program meaning — is a distinct
/// variant, so callers (and tests) can match on the cause instead of
/// string-scraping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node was expected to be a [`Node::Map`].
    NotAMap {
        /// Offending node index.
        node: usize,
    },
    /// A map body refers past the end of the node arena.
    BodyOutOfRange {
        /// The map whose body is malformed.
        map: usize,
        /// The out-of-range child index.
        child: usize,
    },
    /// A map lists itself in its own body.
    SelfContainingMap {
        /// Offending map index.
        map: usize,
    },
    /// A node appears in the body of two different maps.
    DoubleOwnership {
        /// The doubly-owned node.
        node: usize,
        /// The first claiming map.
        first: usize,
        /// The second claiming map.
        second: usize,
    },
    /// A memlet's target is past the end of the node arena.
    MemletOutOfRange {
        /// Index of the memlet in the state's memlet list.
        memlet: usize,
        /// Its out-of-range target node.
        target: usize,
    },
    /// Map fission requires at least two children to split.
    FissionTooSmall {
        /// The map that is too small to fission.
        map: usize,
    },
    /// Map fusion requires identical iteration ranges.
    RangeMismatch {
        /// First map of the attempted fusion.
        a: usize,
        /// Second map of the attempted fusion.
        b: usize,
    },
    /// Fusing the two maps would break a memlet's producer/consumer
    /// ordering: a node outside the pair consumes data the first map
    /// produces and produces data the second map consumes, so it must
    /// run *between* them — impossible once they share one scope.
    FusionReordersDataflow {
        /// The intermediate node that sits on the `a → via → b` path.
        via: usize,
        /// Data written by the first map and read by `via`.
        carried: String,
        /// Data written by `via` and read by the second map.
        produced: String,
    },
    /// A task reads data whose only producers are scheduled after it
    /// (surfaced by lowering, where schedule order is arena order).
    UseBeforeDef {
        /// The data container read too early.
        data: String,
        /// Schedule position of the offending reader.
        task: usize,
    },
    /// An error inside one state of an [`Sdfg`].
    InState {
        /// Index of the failing state.
        state: usize,
        /// The underlying error.
        error: Box<GraphError>,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotAMap { node } => write!(f, "node {node} is not a map"),
            GraphError::BodyOutOfRange { map, child } => {
                write!(f, "map {map} body index {child} out of range")
            }
            GraphError::SelfContainingMap { map } => write!(f, "map {map} contains itself"),
            GraphError::DoubleOwnership {
                node,
                first,
                second,
            } => write!(f, "node {node} owned by maps {first} and {second}"),
            GraphError::MemletOutOfRange { memlet, target } => {
                write!(f, "memlet {memlet} target {target} out of range")
            }
            GraphError::FissionTooSmall { map } => {
                write!(f, "fission of map {map} needs at least two children")
            }
            GraphError::RangeMismatch { a, b } => {
                write!(f, "fusion of maps {a} and {b} requires identical ranges")
            }
            GraphError::FusionReordersDataflow {
                via,
                carried,
                produced,
            } => write!(
                f,
                "fusion would reorder dataflow: node {via} consumes \"{carried}\" \
                 from the first map and produces \"{produced}\" for the second"
            ),
            GraphError::UseBeforeDef { data, task } => {
                write!(f, "task {task} reads \"{data}\" before any producer runs")
            }
            GraphError::InState { state, error } => write!(f, "state {state}: {error}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::InState { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A node of a dataflow state.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A data container (array) endpoint.
    Access {
        /// Array name.
        data: String,
    },
    /// Fine-grained computation.
    Tasklet {
        /// Label.
        name: String,
    },
    /// A parametric parallel scope over named iteration variables with
    /// symbolic range sizes.
    Map {
        /// Label.
        name: String,
        /// `(variable, range size)` pairs, outermost first.
        ranges: Vec<(String, Expr)>,
        /// Nodes inside the scope (indices into the state's arena).
        body: Vec<usize>,
        /// Marks the map whose iterations are distributed across ranks.
        distributed: bool,
    },
}

/// A data-movement edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Memlet {
    /// Array moved.
    pub data: String,
    /// Elements moved per execution of the innermost enclosing scope.
    pub volume: Expr,
    /// `true` if the subset accessed depends only on iteration variables
    /// *owned by the local rank* after distribution (no remote traffic).
    pub local_after_distribution: bool,
    /// Direction: `false` carries `data` *into* node `to` (a read);
    /// `true` means node `to` *produces* `data` (a write). Lowering
    /// turns write→read pairs on the same container into dependency
    /// edges and liveness intervals.
    pub write: bool,
    /// The node this memlet attaches to (index into the state arena).
    pub to: usize,
}

impl Memlet {
    /// A read memlet: `data` flows into node `to`.
    pub fn read(data: &str, volume: Expr, to: usize) -> Memlet {
        Memlet {
            data: data.to_string(),
            volume,
            local_after_distribution: false,
            write: false,
            to,
        }
    }

    /// A write memlet: node `to` produces `data`.
    pub fn write(data: &str, volume: Expr, to: usize) -> Memlet {
        Memlet {
            data: data.to_string(),
            volume,
            local_after_distribution: false,
            write: true,
            to,
        }
    }

    /// Marks the memlet rank-local after distribution (builder-style).
    pub fn local(mut self) -> Memlet {
        self.local_after_distribution = true;
        self
    }
}

/// One dataflow state.
#[derive(Clone, Debug, Default)]
pub struct State {
    /// Label.
    pub name: String,
    /// Node arena; `Node::Map` bodies refer into it.
    pub nodes: Vec<Node>,
    /// Memlets entering scopes/tasklets.
    pub memlets: Vec<Memlet>,
}

/// A stateful dataflow multigraph.
#[derive(Clone, Debug, Default)]
pub struct Sdfg {
    /// Program name.
    pub name: String,
    /// States in control-flow order.
    pub states: Vec<State>,
}

impl State {
    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a memlet.
    pub fn add_memlet(&mut self, m: Memlet) {
        self.memlets.push(m);
    }

    /// The map node marked `distributed`, if any.
    pub fn distributed_map(&self) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, Node::Map { distributed, .. } if *distributed))
    }

    /// Iteration-space size of map `idx` (product of its range sizes).
    pub fn map_extent(&self, idx: usize) -> Expr {
        match &self.nodes[idx] {
            Node::Map { ranges, .. } => {
                Expr::product(&ranges.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>())
            }
            _ => panic!("node {idx} is not a map"),
        }
    }

    /// Total data movement of the state: for each memlet, its volume times
    /// the extent of every map that (transitively) contains its target.
    pub fn total_movement(&self) -> Expr {
        let containing = self.containing_maps();
        let mut total = Expr::Const(0.0);
        for m in &self.memlets {
            let mut vol = m.volume.clone();
            for &map_idx in &containing[m.to] {
                vol = vol * self.map_extent(map_idx);
            }
            total = total + vol;
        }
        total
    }

    /// *Remote* data movement after distributing the `distributed` map:
    /// memlets marked `local_after_distribution` cost nothing; the rest
    /// keep their full multiplied volume.
    pub fn distributed_movement(&self) -> Expr {
        let containing = self.containing_maps();
        let mut total = Expr::Const(0.0);
        for m in &self.memlets {
            if m.local_after_distribution {
                continue;
            }
            let mut vol = m.volume.clone();
            for &map_idx in &containing[m.to] {
                vol = vol * self.map_extent(map_idx);
            }
            total = total + vol;
        }
        total
    }

    /// For each node, the maps containing it (transitively).
    pub(crate) fn containing_maps(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Node::Map { body, .. } = node {
                // Direct containment.
                let mut stack: Vec<usize> = body.clone();
                while let Some(child) = stack.pop() {
                    out[child].push(idx);
                    if let Node::Map { body: inner, .. } = &self.nodes[child] {
                        stack.extend(inner.iter().copied());
                    }
                }
            }
        }
        out
    }

    /// The node plus every node transitively inside its map scope.
    fn scope_nodes(&self, idx: usize) -> BTreeSet<usize> {
        let mut scope = BTreeSet::new();
        let mut stack = vec![idx];
        while let Some(n) = stack.pop() {
            if scope.insert(n) {
                if let Node::Map { body, .. } = &self.nodes[n] {
                    stack.extend(body.iter().copied());
                }
            }
        }
        scope
    }

    /// Data containers written (resp. read) by memlets attached to any
    /// node in `scope`.
    fn scope_data(&self, scope: &BTreeSet<usize>, write: bool) -> BTreeSet<&str> {
        self.memlets
            .iter()
            .filter(|m| m.write == write && scope.contains(&m.to))
            .map(|m| m.data.as_str())
            .collect()
    }

    /// Validates structural invariants: body indices in range, no node in
    /// two map bodies, memlet targets in range.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut owner: HashMap<usize, usize> = HashMap::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Node::Map { body, .. } = node {
                for &child in body {
                    if child >= self.nodes.len() {
                        return Err(GraphError::BodyOutOfRange { map: idx, child });
                    }
                    if child == idx {
                        return Err(GraphError::SelfContainingMap { map: idx });
                    }
                    if let Some(prev) = owner.insert(child, idx) {
                        return Err(GraphError::DoubleOwnership {
                            node: child,
                            first: prev,
                            second: idx,
                        });
                    }
                }
            }
        }
        for (i, m) in self.memlets.iter().enumerate() {
            if m.to >= self.nodes.len() {
                return Err(GraphError::MemletOutOfRange {
                    memlet: i,
                    target: m.to,
                });
            }
        }
        Ok(())
    }
}

impl Sdfg {
    /// Creates an empty SDFG.
    pub fn new(name: &str) -> Sdfg {
        Sdfg {
            name: name.to_string(),
            states: Vec::new(),
        }
    }

    /// Appends a state, returning its index.
    pub fn add_state(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Validates all states.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (i, s) in self.states.iter().enumerate() {
            s.validate().map_err(|e| GraphError::InState {
                state: i,
                error: Box::new(e),
            })?;
        }
        Ok(())
    }

    /// Node count across states (the paper quotes 2,015 nodes for the
    /// transformed production SDFG).
    pub fn node_count(&self) -> usize {
        self.states.iter().map(|s| s.nodes.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Transformations
// ---------------------------------------------------------------------

/// Map tiling: splits the ranges of map `idx` in `state` into
/// outer (distributed) tiles of the given symbolic tile counts and an
/// inner remainder map. The paper's decomposition change (Fig. 5) is
/// exactly a re-tiling of the SSE map.
pub fn map_tiling(
    state: &mut State,
    idx: usize,
    tile_counts: &[(&str, Expr)],
) -> Result<usize, GraphError> {
    let (name, ranges, body, distributed) = match &state.nodes[idx] {
        Node::Map {
            name,
            ranges,
            body,
            distributed,
        } => (name.clone(), ranges.clone(), body.clone(), *distributed),
        _ => return Err(GraphError::NotAMap { node: idx }),
    };
    // Outer map iterates over tiles; inner over elements within a tile.
    let mut outer_ranges = Vec::new();
    let mut inner_ranges = Vec::new();
    for (var, size) in &ranges {
        if let Some((_, tiles)) = tile_counts.iter().find(|(v, _)| v == var) {
            outer_ranges.push((format!("{var}_tile"), tiles.clone()));
            inner_ranges.push((var.clone(), size.clone() / tiles.clone()));
        } else {
            inner_ranges.push((var.clone(), size.clone()));
        }
    }
    // Rewrite in place: `idx` becomes the inner map; a new outer map wraps it.
    state.nodes[idx] = Node::Map {
        name: format!("{name}_inner"),
        ranges: inner_ranges,
        body,
        distributed: false,
    };
    let outer = state.add_node(Node::Map {
        name: format!("{name}_tiles"),
        ranges: outer_ranges,
        body: vec![idx],
        distributed,
    });
    Ok(outer)
}

/// Map fission (Fig. 6 step ❶): splits a map containing `tasklets` into
/// one map per tasklet, materializing a transient array between
/// consecutive stages. Returns the indices of the new maps.
pub fn map_fission(
    state: &mut State,
    idx: usize,
    transient_volume: Expr,
) -> Result<Vec<usize>, GraphError> {
    let (name, ranges, body, distributed) = match &state.nodes[idx] {
        Node::Map {
            name,
            ranges,
            body,
            distributed,
        } => (name.clone(), ranges.clone(), body.clone(), *distributed),
        _ => return Err(GraphError::NotAMap { node: idx }),
    };
    if body.len() < 2 {
        return Err(GraphError::FissionTooSmall { map: idx });
    }
    let mut new_maps = Vec::new();
    for (stage, child) in body.iter().enumerate() {
        let map_idx = if stage == 0 {
            state.nodes[idx] = Node::Map {
                name: format!("{name}_s0"),
                ranges: ranges.clone(),
                body: vec![*child],
                distributed,
            };
            idx
        } else {
            // Transient access node between stages.
            let t = state.add_node(Node::Access {
                data: format!("{name}_transient{stage}"),
            });
            state.add_memlet(
                Memlet::read(
                    &format!("{name}_transient{stage}"),
                    transient_volume.clone(),
                    t,
                )
                .local(),
            );
            state.add_node(Node::Map {
                name: format!("{name}_s{stage}"),
                ranges: ranges.clone(),
                body: vec![*child],
                distributed: false,
            })
        };
        new_maps.push(map_idx);
    }
    Ok(new_maps)
}

/// Map fusion (Fig. 6 step ❹): merges two maps with identical ranges into
/// one scope (the inverse of fission, minus the transient).
///
/// Rejects the fusion when a node outside the pair sits on a dataflow
/// path `a → via → b` — i.e. it consumes data `a` produces and produces
/// data `b` consumes. Fusing then would schedule `b`'s body in the same
/// scope instance as `a`'s, before `via` can run, silently reordering the
/// producer/consumer chain the memlets encode.
pub fn map_fusion(state: &mut State, a: usize, b: usize) -> Result<usize, GraphError> {
    let (ranges_a, mut body_a, name_a, dist_a) = match &state.nodes[a] {
        Node::Map {
            ranges,
            body,
            name,
            distributed,
        } => (ranges.clone(), body.clone(), name.clone(), *distributed),
        _ => return Err(GraphError::NotAMap { node: a }),
    };
    let (ranges_b, body_b) = match &state.nodes[b] {
        Node::Map { ranges, body, .. } => (ranges.clone(), body.clone()),
        _ => return Err(GraphError::NotAMap { node: b }),
    };
    if ranges_a != ranges_b {
        return Err(GraphError::RangeMismatch { a, b });
    }
    // Producer/consumer ordering check across the memlets.
    let scope_a = state.scope_nodes(a);
    let scope_b = state.scope_nodes(b);
    let written_by_a = state.scope_data(&scope_a, true);
    let read_by_b = state.scope_data(&scope_b, false);
    for via in 0..state.nodes.len() {
        if scope_a.contains(&via) || scope_b.contains(&via) {
            continue;
        }
        let carried = state
            .memlets
            .iter()
            .find(|m| !m.write && m.to == via && written_by_a.contains(m.data.as_str()));
        let produced = state
            .memlets
            .iter()
            .find(|m| m.write && m.to == via && read_by_b.contains(m.data.as_str()));
        if let (Some(c), Some(p)) = (carried, produced) {
            return Err(GraphError::FusionReordersDataflow {
                via,
                carried: c.data.clone(),
                produced: p.data.clone(),
            });
        }
    }
    body_a.extend(body_b);
    state.nodes[a] = Node::Map {
        name: format!("{name_a}_fused"),
        ranges: ranges_a,
        body: body_a,
        distributed: dist_a,
    };
    // Neutralize the second map (empty scope).
    state.nodes[b] = Node::Map {
        name: "(fused away)".to_string(),
        ranges: Vec::new(),
        body: Vec::new(),
        distributed: false,
    };
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{bindings, c, p};

    fn simple_state() -> State {
        // map (i: N) { tasklet reading A[i] (1 element) }
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t = s.add_node(Node::Tasklet { name: "t".into() });
        let _a = s.add_node(Node::Access { data: "A".into() });
        let m = s.add_node(Node::Map {
            name: "m".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t],
            distributed: true,
        });
        s.add_memlet(Memlet::read("A", c(1.0), t));
        let _ = m;
        s
    }

    #[test]
    fn movement_multiplies_by_map_extent() {
        let s = simple_state();
        s.validate().unwrap();
        let b = bindings(&[("N", 100.0)]);
        assert_eq!(s.total_movement().eval(&b), 100.0);
    }

    #[test]
    fn tiling_preserves_total_movement() {
        let mut s = simple_state();
        let m = s
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Map { .. }))
            .unwrap();
        map_tiling(&mut s, m, &[("i", p("T"))]).unwrap();
        s.validate().unwrap();
        let b = bindings(&[("N", 100.0), ("T", 4.0)]);
        // (N/T per inner) × T tiles = N.
        assert_eq!(s.total_movement().eval(&b), 100.0);
    }

    #[test]
    fn local_memlets_drop_from_distributed_movement() {
        let mut s = simple_state();
        // A second, rank-local memlet.
        let t2 = s.add_node(Node::Tasklet { name: "t2".into() });
        if let Node::Map { body, .. } = &mut s.nodes[2] {
            body.push(t2);
        }
        s.add_memlet(Memlet::read("B", c(2.0), t2).local());
        let b = bindings(&[("N", 10.0)]);
        assert_eq!(s.total_movement().eval(&b), 10.0 + 20.0);
        assert_eq!(s.distributed_movement().eval(&b), 10.0);
    }

    #[test]
    fn fission_splits_and_fusion_merges() {
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t1 = s.add_node(Node::Tasklet { name: "t1".into() });
        let t2 = s.add_node(Node::Tasklet { name: "t2".into() });
        let m = s.add_node(Node::Map {
            name: "m".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t1, t2],
            distributed: false,
        });
        let maps = map_fission(&mut s, m, c(1.0)).unwrap();
        assert_eq!(maps.len(), 2);
        s.validate().unwrap();
        // Each stage carries one tasklet.
        for &mi in &maps {
            if let Node::Map { body, .. } = &s.nodes[mi] {
                assert_eq!(body.len(), 1);
            }
        }
        // Fuse back.
        let fused = map_fusion(&mut s, maps[0], maps[1]).unwrap();
        if let Node::Map { body, .. } = &s.nodes[fused] {
            assert_eq!(body.len(), 2);
        }
        s.validate().unwrap();
    }

    #[test]
    fn fusion_rejects_intermediate_producer_consumer() {
        // map a { t1 writes X }   n reads X, writes Y   map b { t2 reads Y }
        // Fusing a and b would run t2 before n can produce Y.
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t1 = s.add_node(Node::Tasklet { name: "t1".into() });
        let n = s.add_node(Node::Tasklet { name: "mid".into() });
        let t2 = s.add_node(Node::Tasklet { name: "t2".into() });
        let a = s.add_node(Node::Map {
            name: "a".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t1],
            distributed: false,
        });
        let b = s.add_node(Node::Map {
            name: "b".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t2],
            distributed: false,
        });
        s.add_memlet(Memlet::write("X", c(1.0), t1));
        s.add_memlet(Memlet::read("X", c(1.0), n));
        s.add_memlet(Memlet::write("Y", c(1.0), n));
        s.add_memlet(Memlet::read("Y", c(1.0), t2));
        s.validate().unwrap();
        let err = map_fusion(&mut s, a, b).expect_err("must reject reordering fusion");
        assert_eq!(
            err,
            GraphError::FusionReordersDataflow {
                via: n,
                carried: "X".into(),
                produced: "Y".into(),
            }
        );
        // The graph is untouched on rejection.
        if let Node::Map { body, .. } = &s.nodes[a] {
            assert_eq!(body, &vec![t1]);
        }
        // A direct producer/consumer pair (no intermediate) still fuses.
        let mut ok = State {
            name: "ok".into(),
            ..Default::default()
        };
        let p1 = ok.add_node(Node::Tasklet { name: "p".into() });
        let c1 = ok.add_node(Node::Tasklet { name: "c".into() });
        let ma = ok.add_node(Node::Map {
            name: "a".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![p1],
            distributed: false,
        });
        let mb = ok.add_node(Node::Map {
            name: "b".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![c1],
            distributed: false,
        });
        ok.add_memlet(Memlet::write("T", c(1.0), p1));
        ok.add_memlet(Memlet::read("T", c(1.0), c1));
        map_fusion(&mut ok, ma, mb).expect("direct chain fuses");
    }

    #[test]
    fn typed_errors_render_and_match() {
        let mut s = simple_state();
        let err = map_tiling(&mut s, 0, &[]).expect_err("tasklet is not a map");
        assert_eq!(err, GraphError::NotAMap { node: 0 });
        assert_eq!(err.to_string(), "node 0 is not a map");
        let err = map_fission(&mut s, 2, c(1.0)).expect_err("single child");
        assert_eq!(err, GraphError::FissionTooSmall { map: 2 });
        // Sdfg::validate wraps with the state index and keeps the source.
        let mut bad = State::default();
        bad.add_memlet(Memlet::read("A", c(1.0), 7));
        let mut g = Sdfg::new("g");
        g.add_state(simple_state());
        g.add_state(bad);
        let err = g.validate().expect_err("memlet out of range");
        assert!(matches!(err, GraphError::InState { state: 1, .. }));
        assert_eq!(err.to_string(), "state 1: memlet 0 target 7 out of range");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn validation_catches_double_ownership() {
        let mut s = State {
            name: "bad".into(),
            ..Default::default()
        };
        let t = s.add_node(Node::Tasklet { name: "t".into() });
        s.add_node(Node::Map {
            name: "m1".into(),
            ranges: vec![],
            body: vec![t],
            distributed: false,
        });
        s.add_node(Node::Map {
            name: "m2".into(),
            ranges: vec![],
            body: vec![t],
            distributed: false,
        });
        assert!(matches!(
            s.validate(),
            Err(GraphError::DoubleOwnership { node: 0, .. })
        ));
    }

    #[test]
    fn sdfg_counts_nodes() {
        let mut g = Sdfg::new("test");
        g.add_state(simple_state());
        g.add_state(simple_state());
        assert_eq!(g.node_count(), 6);
        g.validate().unwrap();
    }
}
