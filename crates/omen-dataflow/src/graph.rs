//! The SDFG-lite intermediate representation (Fig. 3 of the paper) and the
//! graph transformations of Figs. 5–6.
//!
//! Nodes are data containers (access nodes), tasklets (fine-grained
//! computation), and parametric map scopes; memlet edges carry symbolic
//! per-execution volumes. States sequence dataflow under control
//! dependencies. The representation is deliberately *analyzable* rather
//! than executable: its purpose in this reproduction is to derive the
//! data-movement expressions the paper uses to discover the
//! communication-avoiding variant, while the executable kernels live in
//! `omen-sse` (the test suite ties the two together).

use crate::symbolic::Expr;
use std::collections::HashMap;

/// A node of a dataflow state.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A data container (array) endpoint.
    Access {
        /// Array name.
        data: String,
    },
    /// Fine-grained computation.
    Tasklet {
        /// Label.
        name: String,
    },
    /// A parametric parallel scope over named iteration variables with
    /// symbolic range sizes.
    Map {
        /// Label.
        name: String,
        /// `(variable, range size)` pairs, outermost first.
        ranges: Vec<(String, Expr)>,
        /// Nodes inside the scope (indices into the state's arena).
        body: Vec<usize>,
        /// Marks the map whose iterations are distributed across ranks.
        distributed: bool,
    },
}

/// A data-movement edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Memlet {
    /// Array moved.
    pub data: String,
    /// Elements moved per execution of the innermost enclosing scope.
    pub volume: Expr,
    /// `true` if the subset accessed depends only on iteration variables
    /// *owned by the local rank* after distribution (no remote traffic).
    pub local_after_distribution: bool,
    /// The node this memlet feeds (index into the state arena).
    pub to: usize,
}

/// One dataflow state.
#[derive(Clone, Debug, Default)]
pub struct State {
    /// Label.
    pub name: String,
    /// Node arena; `Node::Map` bodies refer into it.
    pub nodes: Vec<Node>,
    /// Memlets entering scopes/tasklets.
    pub memlets: Vec<Memlet>,
}

/// A stateful dataflow multigraph.
#[derive(Clone, Debug, Default)]
pub struct Sdfg {
    /// Program name.
    pub name: String,
    /// States in control-flow order.
    pub states: Vec<State>,
}

impl State {
    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a memlet.
    pub fn add_memlet(&mut self, m: Memlet) {
        self.memlets.push(m);
    }

    /// The map node marked `distributed`, if any.
    pub fn distributed_map(&self) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, Node::Map { distributed, .. } if *distributed))
    }

    /// Iteration-space size of map `idx` (product of its range sizes).
    pub fn map_extent(&self, idx: usize) -> Expr {
        match &self.nodes[idx] {
            Node::Map { ranges, .. } => {
                Expr::product(&ranges.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>())
            }
            _ => panic!("node {idx} is not a map"),
        }
    }

    /// Total data movement of the state: for each memlet, its volume times
    /// the extent of every map that (transitively) contains its target.
    pub fn total_movement(&self) -> Expr {
        let containing = self.containing_maps();
        let mut total = Expr::Const(0.0);
        for m in &self.memlets {
            let mut vol = m.volume.clone();
            for &map_idx in &containing[m.to] {
                vol = vol * self.map_extent(map_idx);
            }
            total = total + vol;
        }
        total
    }

    /// *Remote* data movement after distributing the `distributed` map:
    /// memlets marked `local_after_distribution` cost nothing; the rest
    /// keep their full multiplied volume.
    pub fn distributed_movement(&self) -> Expr {
        let containing = self.containing_maps();
        let mut total = Expr::Const(0.0);
        for m in &self.memlets {
            if m.local_after_distribution {
                continue;
            }
            let mut vol = m.volume.clone();
            for &map_idx in &containing[m.to] {
                vol = vol * self.map_extent(map_idx);
            }
            total = total + vol;
        }
        total
    }

    /// For each node, the maps containing it (transitively).
    fn containing_maps(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Node::Map { body, .. } = node {
                // Direct containment.
                let mut stack: Vec<usize> = body.clone();
                while let Some(child) = stack.pop() {
                    out[child].push(idx);
                    if let Node::Map { body: inner, .. } = &self.nodes[child] {
                        stack.extend(inner.iter().copied());
                    }
                }
            }
        }
        out
    }

    /// Validates structural invariants: body indices in range, no node in
    /// two map bodies, memlet targets in range.
    pub fn validate(&self) -> Result<(), String> {
        let mut owner: HashMap<usize, usize> = HashMap::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Node::Map { body, .. } = node {
                for &child in body {
                    if child >= self.nodes.len() {
                        return Err(format!("map {idx} body index {child} out of range"));
                    }
                    if child == idx {
                        return Err(format!("map {idx} contains itself"));
                    }
                    if let Some(prev) = owner.insert(child, idx) {
                        return Err(format!("node {child} owned by maps {prev} and {idx}"));
                    }
                }
            }
        }
        for (i, m) in self.memlets.iter().enumerate() {
            if m.to >= self.nodes.len() {
                return Err(format!("memlet {i} target {} out of range", m.to));
            }
        }
        Ok(())
    }
}

impl Sdfg {
    /// Creates an empty SDFG.
    pub fn new(name: &str) -> Sdfg {
        Sdfg {
            name: name.to_string(),
            states: Vec::new(),
        }
    }

    /// Appends a state, returning its index.
    pub fn add_state(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Validates all states.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.states.iter().enumerate() {
            s.validate().map_err(|e| format!("state {i}: {e}"))?;
        }
        Ok(())
    }

    /// Node count across states (the paper quotes 2,015 nodes for the
    /// transformed production SDFG).
    pub fn node_count(&self) -> usize {
        self.states.iter().map(|s| s.nodes.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Transformations
// ---------------------------------------------------------------------

/// Map tiling: splits the ranges of map `idx` in `state` into
/// outer (distributed) tiles of the given symbolic tile counts and an
/// inner remainder map. The paper's decomposition change (Fig. 5) is
/// exactly a re-tiling of the SSE map.
pub fn map_tiling(
    state: &mut State,
    idx: usize,
    tile_counts: &[(&str, Expr)],
) -> Result<usize, String> {
    let (name, ranges, body, distributed) = match &state.nodes[idx] {
        Node::Map {
            name,
            ranges,
            body,
            distributed,
        } => (name.clone(), ranges.clone(), body.clone(), *distributed),
        _ => return Err(format!("node {idx} is not a map")),
    };
    // Outer map iterates over tiles; inner over elements within a tile.
    let mut outer_ranges = Vec::new();
    let mut inner_ranges = Vec::new();
    for (var, size) in &ranges {
        if let Some((_, tiles)) = tile_counts.iter().find(|(v, _)| v == var) {
            outer_ranges.push((format!("{var}_tile"), tiles.clone()));
            inner_ranges.push((var.clone(), size.clone() / tiles.clone()));
        } else {
            inner_ranges.push((var.clone(), size.clone()));
        }
    }
    // Rewrite in place: `idx` becomes the inner map; a new outer map wraps it.
    state.nodes[idx] = Node::Map {
        name: format!("{name}_inner"),
        ranges: inner_ranges,
        body,
        distributed: false,
    };
    let outer = state.add_node(Node::Map {
        name: format!("{name}_tiles"),
        ranges: outer_ranges,
        body: vec![idx],
        distributed,
    });
    Ok(outer)
}

/// Map fission (Fig. 6 step ❶): splits a map containing `tasklets` into
/// one map per tasklet, materializing a transient array between
/// consecutive stages. Returns the indices of the new maps.
pub fn map_fission(
    state: &mut State,
    idx: usize,
    transient_volume: Expr,
) -> Result<Vec<usize>, String> {
    let (name, ranges, body, distributed) = match &state.nodes[idx] {
        Node::Map {
            name,
            ranges,
            body,
            distributed,
        } => (name.clone(), ranges.clone(), body.clone(), *distributed),
        _ => return Err(format!("node {idx} is not a map")),
    };
    if body.len() < 2 {
        return Err("fission needs at least two children".to_string());
    }
    let mut new_maps = Vec::new();
    for (stage, child) in body.iter().enumerate() {
        let map_idx = if stage == 0 {
            state.nodes[idx] = Node::Map {
                name: format!("{name}_s0"),
                ranges: ranges.clone(),
                body: vec![*child],
                distributed,
            };
            idx
        } else {
            // Transient access node between stages.
            let t = state.add_node(Node::Access {
                data: format!("{name}_transient{stage}"),
            });
            state.add_memlet(Memlet {
                data: format!("{name}_transient{stage}"),
                volume: transient_volume.clone(),
                local_after_distribution: true,
                to: t,
            });
            state.add_node(Node::Map {
                name: format!("{name}_s{stage}"),
                ranges: ranges.clone(),
                body: vec![*child],
                distributed: false,
            })
        };
        new_maps.push(map_idx);
    }
    Ok(new_maps)
}

/// Map fusion (Fig. 6 step ❹): merges two maps with identical ranges into
/// one scope (the inverse of fission, minus the transient).
pub fn map_fusion(state: &mut State, a: usize, b: usize) -> Result<usize, String> {
    let (ranges_a, mut body_a, name_a, dist_a) = match &state.nodes[a] {
        Node::Map {
            ranges,
            body,
            name,
            distributed,
        } => (ranges.clone(), body.clone(), name.clone(), *distributed),
        _ => return Err(format!("node {a} is not a map")),
    };
    let (ranges_b, body_b) = match &state.nodes[b] {
        Node::Map { ranges, body, .. } => (ranges.clone(), body.clone()),
        _ => return Err(format!("node {b} is not a map")),
    };
    if ranges_a != ranges_b {
        return Err("fusion requires identical ranges".to_string());
    }
    body_a.extend(body_b);
    state.nodes[a] = Node::Map {
        name: format!("{name_a}_fused"),
        ranges: ranges_a,
        body: body_a,
        distributed: dist_a,
    };
    // Neutralize the second map (empty scope).
    state.nodes[b] = Node::Map {
        name: "(fused away)".to_string(),
        ranges: Vec::new(),
        body: Vec::new(),
        distributed: false,
    };
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{bindings, c, p};

    fn simple_state() -> State {
        // map (i: N) { tasklet reading A[i] (1 element) }
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t = s.add_node(Node::Tasklet { name: "t".into() });
        let _a = s.add_node(Node::Access { data: "A".into() });
        let m = s.add_node(Node::Map {
            name: "m".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t],
            distributed: true,
        });
        s.add_memlet(Memlet {
            data: "A".into(),
            volume: c(1.0),
            local_after_distribution: false,
            to: t,
        });
        let _ = m;
        s
    }

    #[test]
    fn movement_multiplies_by_map_extent() {
        let s = simple_state();
        s.validate().unwrap();
        let b = bindings(&[("N", 100.0)]);
        assert_eq!(s.total_movement().eval(&b), 100.0);
    }

    #[test]
    fn tiling_preserves_total_movement() {
        let mut s = simple_state();
        let m = s
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Map { .. }))
            .unwrap();
        map_tiling(&mut s, m, &[("i", p("T"))]).unwrap();
        s.validate().unwrap();
        let b = bindings(&[("N", 100.0), ("T", 4.0)]);
        // (N/T per inner) × T tiles = N.
        assert_eq!(s.total_movement().eval(&b), 100.0);
    }

    #[test]
    fn local_memlets_drop_from_distributed_movement() {
        let mut s = simple_state();
        // A second, rank-local memlet.
        let t2 = s.add_node(Node::Tasklet { name: "t2".into() });
        if let Node::Map { body, .. } = &mut s.nodes[2] {
            body.push(t2);
        }
        s.add_memlet(Memlet {
            data: "B".into(),
            volume: c(2.0),
            local_after_distribution: true,
            to: t2,
        });
        let b = bindings(&[("N", 10.0)]);
        assert_eq!(s.total_movement().eval(&b), 10.0 + 20.0);
        assert_eq!(s.distributed_movement().eval(&b), 10.0);
    }

    #[test]
    fn fission_splits_and_fusion_merges() {
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t1 = s.add_node(Node::Tasklet { name: "t1".into() });
        let t2 = s.add_node(Node::Tasklet { name: "t2".into() });
        let m = s.add_node(Node::Map {
            name: "m".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t1, t2],
            distributed: false,
        });
        let maps = map_fission(&mut s, m, c(1.0)).unwrap();
        assert_eq!(maps.len(), 2);
        s.validate().unwrap();
        // Each stage carries one tasklet.
        for &mi in &maps {
            if let Node::Map { body, .. } = &s.nodes[mi] {
                assert_eq!(body.len(), 1);
            }
        }
        // Fuse back.
        let fused = map_fusion(&mut s, maps[0], maps[1]).unwrap();
        if let Node::Map { body, .. } = &s.nodes[fused] {
            assert_eq!(body.len(), 2);
        }
        s.validate().unwrap();
    }

    #[test]
    fn validation_catches_double_ownership() {
        let mut s = State {
            name: "bad".into(),
            ..Default::default()
        };
        let t = s.add_node(Node::Tasklet { name: "t".into() });
        s.add_node(Node::Map {
            name: "m1".into(),
            ranges: vec![],
            body: vec![t],
            distributed: false,
        });
        s.add_node(Node::Map {
            name: "m2".into(),
            ranges: vec![],
            body: vec![t],
            distributed: false,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn sdfg_counts_nodes() {
        let mut g = Sdfg::new("test");
        g.add_state(simple_state());
        g.add_state(simple_state());
        assert_eq!(g.node_count(), 6);
        g.validate().unwrap();
    }
}
