//! Symbolic expressions over named parameters.
//!
//! Memlet volumes in the SDFG are symbolic in the simulation parameters
//! (`Nkz`, `NE`, `Na`, …) so that decomposition transformations can be
//! *analyzed* — the volume expressions of Fig. 5 are produced by
//! evaluating these trees.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A symbolic arithmetic expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(f64),
    /// Named parameter.
    Param(String),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
}

/// Constant constructor.
pub fn c(v: f64) -> Expr {
    Expr::Const(v)
}

/// Parameter constructor.
pub fn p(name: &str) -> Expr {
    Expr::Param(name.to_string())
}

impl Expr {
    /// Evaluates with the given parameter bindings.
    ///
    /// # Panics
    /// Panics if a parameter is unbound.
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Param(name) => *bindings
                .get(name)
                .unwrap_or_else(|| panic!("unbound parameter `{name}`")),
            Expr::Add(a, b) => a.eval(bindings) + b.eval(bindings),
            Expr::Sub(a, b) => a.eval(bindings) - b.eval(bindings),
            Expr::Mul(a, b) => a.eval(bindings) * b.eval(bindings),
            Expr::Div(a, b) => a.eval(bindings) / b.eval(bindings),
        }
    }

    /// All parameter names appearing in the expression.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Param(name) => out.push(name.clone()),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }

    /// Product of a list of expressions (`1` when empty).
    pub fn product(exprs: &[Expr]) -> Expr {
        exprs
            .iter()
            .cloned()
            .reduce(|a, b| a * b)
            .unwrap_or(Expr::Const(1.0))
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, o: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(o))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, o: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(o))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, o: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(o))
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, o: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(o))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(name) => write!(f, "{name}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "{a}·{b}"),
            Expr::Div(a, b) => write!(f, "{a}/{b}"),
        }
    }
}

/// Convenience: builds a binding map from `(name, value)` pairs.
pub fn bindings(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_evaluates() {
        let e = (p("Na") * p("Norb") + c(3.0)) * c(2.0) / p("P");
        let b = bindings(&[("Na", 10.0), ("Norb", 4.0), ("P", 2.0)]);
        assert_eq!(e.eval(&b), (10.0 * 4.0 + 3.0) * 2.0 / 2.0);
    }

    #[test]
    fn params_collected_sorted_unique() {
        let e = p("b") * p("a") + p("b") - c(1.0);
        assert_eq!(e.params(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unbound parameter")]
    fn unbound_param_panics() {
        let _ = p("missing").eval(&bindings(&[]));
    }

    #[test]
    fn product_helper() {
        let e = Expr::product(&[p("x"), c(2.0), p("y")]);
        let b = bindings(&[("x", 3.0), ("y", 5.0)]);
        assert_eq!(e.eval(&b), 30.0);
        assert_eq!(Expr::product(&[]).eval(&b), 1.0);
    }

    #[test]
    fn display_readable() {
        let e = p("Nkz") * p("NE") * c(16.0);
        assert_eq!(format!("{e}"), "Nkz·NE·16");
    }
}
