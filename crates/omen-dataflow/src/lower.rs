//! Lowering: from the SDFG-lite IR to an executable task schedule.
//!
//! The paper's thesis is that the graph *is* the program: tasklets name
//! computations, memlets carry every byte that moves. This module makes
//! that literal for the reproduction. [`lower_sdfg`] flattens an
//! [`Sdfg`]'s tasklets (with their enclosing parametric maps) into
//! [`TaskSpec`]s in schedule order, converts write→read memlet pairs on
//! the same container into dependency [`edges`](LoweredDag::edges), and
//! derives per-container [liveness intervals](DataInterval) — first
//! write to last use — that `omen-sched` uses to check buffers out of a
//! `Workspace` arena no earlier and return them no later than the
//! memlets require.
//!
//! The lowering is pure analysis: binding task names to real kernels
//! (RGF solves, the SSE kernel) happens downstream in `omen-sched`, so
//! this crate stays dependency-free.

use crate::graph::{GraphError, Node, Sdfg, State};
use std::collections::BTreeMap;

/// A map scope enclosing a lowered task, outermost first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnclosingMap {
    /// The map's label (e.g. `electron_points`).
    pub name: String,
    /// Its iteration variables, outermost first (e.g. `["kz", "E"]`).
    pub vars: Vec<String>,
}

/// One tasklet flattened out of the graph, with the dataflow facts the
/// runtime needs: what it reads, what it writes, and the parametric
/// scopes it is replicated over.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Index of the owning state in the [`Sdfg`].
    pub state: usize,
    /// Node index of the tasklet within its state arena.
    pub node: usize,
    /// Tasklet label — the name `omen-sched` binds to a real kernel.
    pub name: String,
    /// Enclosing map scopes, outermost first.
    pub maps: Vec<EnclosingMap>,
    /// Data containers read (memlets with `write == false`).
    pub reads: Vec<String>,
    /// Data containers written (memlets with `write == true`).
    pub writes: Vec<String>,
}

/// Liveness of one data container across the lowered schedule: the
/// buffer must exist from the first task that writes it through the last
/// task that touches it, and not a task longer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataInterval {
    /// Container name.
    pub data: String,
    /// Schedule position of the first writer (allocation point).
    pub first_write: usize,
    /// Schedule position of the last reader or writer (release point).
    pub last_use: usize,
}

/// The executable lowering of an [`Sdfg`]: tasks in schedule order,
/// dependency edges, and buffer liveness.
#[derive(Clone, Debug, Default)]
pub struct LoweredDag {
    /// Tasks in schedule (state, then arena) order.
    pub tasks: Vec<TaskSpec>,
    /// `(producer, consumer)` schedule positions: the consumer reads (or
    /// overwrites) a container the producer writes. Edges always point
    /// forward, so the task order is already a topological order.
    pub edges: Vec<(usize, usize)>,
    /// Liveness interval per written container, in first-write order.
    pub liveness: Vec<DataInterval>,
}

impl LoweredDag {
    /// Dependencies of task `t` (producers it must wait for).
    pub fn deps_of(&self, t: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, c)| c == t)
            .map(|&(p, _)| p)
            .collect()
    }

    /// The liveness interval of `data`, if it is written in the graph.
    pub fn interval(&self, data: &str) -> Option<&DataInterval> {
        self.liveness.iter().find(|i| i.data == data)
    }
}

/// Lowers a single state. Equivalent to wrapping it in a one-state
/// [`Sdfg`] and calling [`lower_sdfg`].
pub fn lower_state(state: &State) -> Result<LoweredDag, GraphError> {
    state.validate()?;
    let mut dag = LoweredDag::default();
    collect_tasks(state, 0, &mut dag.tasks);
    finish(dag)
}

/// Lowers every state of the SDFG into one schedule, states in
/// control-flow order. Containers written in one state and read in a
/// later one (e.g. `G` produced by the GF state, consumed by SSE) become
/// cross-state dependency edges by name.
pub fn lower_sdfg(g: &Sdfg) -> Result<LoweredDag, GraphError> {
    g.validate()?;
    let mut dag = LoweredDag::default();
    for (si, s) in g.states.iter().enumerate() {
        collect_tasks(s, si, &mut dag.tasks);
    }
    finish(dag)
}

/// Flattens the tasklets of one state into `out` in arena order.
fn collect_tasks(state: &State, state_idx: usize, out: &mut Vec<TaskSpec>) {
    // Direct owner of each node, for reconstructing the scope chain.
    let mut owner = vec![usize::MAX; state.nodes.len()];
    for (idx, node) in state.nodes.iter().enumerate() {
        if let Node::Map { body, .. } = node {
            for &child in body {
                owner[child] = idx;
            }
        }
    }
    for (ni, node) in state.nodes.iter().enumerate() {
        let Node::Tasklet { name } = node else {
            continue;
        };
        // Walk owners inward-out, then reverse for outermost-first.
        let mut maps = Vec::new();
        let mut scope_idxs = Vec::new();
        let mut cur = ni;
        while owner[cur] != usize::MAX {
            cur = owner[cur];
            scope_idxs.push(cur);
            if let Node::Map { name, ranges, .. } = &state.nodes[cur] {
                maps.push(EnclosingMap {
                    name: name.clone(),
                    vars: ranges.iter().map(|(v, _)| v.clone()).collect(),
                });
            }
        }
        maps.reverse();
        // Memlets attach to the tasklet itself or to any enclosing scope
        // boundary; either way the data is visible to this task.
        let attached = |to: usize| to == ni || scope_idxs.contains(&to);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for m in &state.memlets {
            if attached(m.to) {
                let list = if m.write { &mut writes } else { &mut reads };
                if !list.contains(&m.data) {
                    list.push(m.data.clone());
                }
            }
        }
        out.push(TaskSpec {
            state: state_idx,
            node: ni,
            name: name.clone(),
            maps,
            reads,
            writes,
        });
    }
}

/// Derives edges and liveness from the collected tasks.
fn finish(mut dag: LoweredDag) -> Result<LoweredDag, GraphError> {
    // Writers and readers per container, in schedule order.
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (t, task) in dag.tasks.iter().enumerate() {
        for w in &task.writes {
            writers.entry(w).or_default().push(t);
        }
        for r in &task.reads {
            readers.entry(r).or_default().push(t);
        }
    }
    let mut edges = Vec::new();
    for (&data, ws) in &writers {
        // RAW: every earlier writer feeds every later reader. A reader
        // scheduled before all producers is a use-before-def bug.
        for &r in readers.get(data).map(Vec::as_slice).unwrap_or(&[]) {
            if ws.iter().all(|&w| w >= r) {
                return Err(GraphError::UseBeforeDef {
                    data: data.to_string(),
                    task: r,
                });
            }
            for &w in ws.iter().filter(|&&w| w < r) {
                edges.push((w, r));
            }
        }
        // WAW: serialize successive writers of the same container.
        for pair in ws.windows(2) {
            edges.push((pair[0], pair[1]));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    dag.edges = edges;
    // Containers never written are graph inputs — the caller owns them;
    // only written containers get arena-managed lifetimes.
    let mut liveness: Vec<DataInterval> = writers
        .iter()
        .map(|(&data, ws)| {
            let first_write = ws[0];
            let last_read = readers
                .get(data)
                .and_then(|rs| rs.iter().copied().max())
                .unwrap_or(first_write);
            DataInterval {
                data: data.to_string(),
                first_write,
                last_use: last_read.max(*ws.last().expect("non-empty")),
            }
        })
        .collect();
    liveness.sort_by_key(|i| (i.first_write, i.last_use));
    dag.liveness = liveness;
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Memlet, Node, State};
    use crate::omen_graphs::simulation_sdfg;
    use crate::symbolic::{c, p};

    #[test]
    fn simulation_sdfg_lowers_to_gf_sse_chain() {
        let dag = lower_sdfg(&simulation_sdfg()).unwrap();
        let names: Vec<&str> = dag.tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["RGF_electrons", "RGF_phonons", "sse_kernel"]);
        // The electron task carries its parametric scope for expansion.
        assert_eq!(dag.tasks[0].maps.len(), 1);
        assert_eq!(dag.tasks[0].maps[0].name, "electron_points");
        assert_eq!(dag.tasks[0].maps[0].vars, ["kz", "E"]);
        // G and D flow from the GF state into the SSE state.
        assert!(dag.edges.contains(&(0, 2)), "G: RGF_electrons -> sse");
        assert!(dag.edges.contains(&(1, 2)), "D: RGF_phonons -> sse");
        assert_eq!(dag.deps_of(2), vec![0, 1]);
        // Liveness: G lives from the electron solve through the SSE read;
        // Sigma is born and released at the SSE task.
        assert_eq!(
            dag.interval("G"),
            Some(&DataInterval {
                data: "G".into(),
                first_write: 0,
                last_use: 2
            })
        );
        assert_eq!(
            dag.interval("Sigma"),
            Some(&DataInterval {
                data: "Sigma".into(),
                first_write: 2,
                last_use: 2
            })
        );
        // H is a pure input: no interval, the caller owns it.
        assert!(dag.interval("H").is_none());
    }

    #[test]
    fn use_before_def_is_rejected() {
        let mut s = State {
            name: "bad".into(),
            ..Default::default()
        };
        let consumer = s.add_node(Node::Tasklet { name: "c".into() });
        let producer = s.add_node(Node::Tasklet { name: "p".into() });
        s.add_memlet(Memlet::read("T", c(1.0), consumer));
        s.add_memlet(Memlet::write("T", c(1.0), producer));
        let err = lower_state(&s).expect_err("reader scheduled before writer");
        assert_eq!(
            err,
            GraphError::UseBeforeDef {
                data: "T".into(),
                task: 0
            }
        );
    }

    #[test]
    fn waw_edges_serialize_writers() {
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let w1 = s.add_node(Node::Tasklet { name: "w1".into() });
        let w2 = s.add_node(Node::Tasklet { name: "w2".into() });
        s.add_memlet(Memlet::write("T", c(1.0), w1));
        s.add_memlet(Memlet::write("T", c(1.0), w2));
        let dag = lower_state(&s).unwrap();
        assert_eq!(dag.edges, vec![(0, 1)]);
        assert_eq!(
            dag.interval("T"),
            Some(&DataInterval {
                data: "T".into(),
                first_write: 0,
                last_use: 1
            })
        );
    }

    #[test]
    fn memlets_on_scope_boundaries_attach_to_inner_tasklets() {
        // A memlet targeting the map feeds the tasklet inside it.
        let mut s = State {
            name: "s".into(),
            ..Default::default()
        };
        let t = s.add_node(Node::Tasklet { name: "t".into() });
        let m = s.add_node(Node::Map {
            name: "m".into(),
            ranges: vec![("i".into(), p("N"))],
            body: vec![t],
            distributed: false,
        });
        s.add_memlet(Memlet::read("A", c(1.0), m));
        let dag = lower_state(&s).unwrap();
        assert_eq!(dag.tasks.len(), 1);
        assert_eq!(dag.tasks[0].reads, ["A"]);
    }
}
