//! The paper's SSE dataflow in SDFG form (Figs. 4–5) and the two
//! decompositions as graph transformations.
//!
//! The headline result of §5.2 falls out of memlet inspection: tiling the
//! SSE map by `(kz, E)` leaves *every* `G`/`D` memlet remote
//! (multiplicative volume), while re-tiling by atoms × energies localizes
//! the bulk of the traffic and leaves only the halo exchange. The
//! expressions produced here evaluate to the same numbers as the analytic
//! model in `omen-perf` (cross-checked in the workspace integration
//! tests). The same memlets carry direction (`write`) flags, so
//! [`crate::lower`] can turn the graph into the executable GF → SSE task
//! DAG that `omen-sched` runs.

use crate::graph::{map_tiling, Memlet, Node, Sdfg, State};
use crate::symbolic::{c, p, Expr};

/// Builds the SSE state of Fig. 4/5: one parametric map over
/// `(kz, E, qz, ω, a, b)` with memlets for `∇H`, `G^≷`, `D^≷` in and
/// `Σ^≷`, `Π^≷` out (element volumes in bytes; both ≷ components).
pub fn sse_state() -> State {
    let mut s = State {
        name: "SSE".into(),
        ..Default::default()
    };
    let tasklet = s.add_node(Node::Tasklet {
        name: "sse_kernel".into(),
    });
    for data in ["gradH", "G", "D", "Sigma", "Pi"] {
        s.add_node(Node::Access { data: data.into() });
    }
    s.add_node(Node::Map {
        name: "sse".into(),
        ranges: vec![
            ("kz".into(), p("Nkz")),
            ("E".into(), p("NE")),
            ("qz".into(), p("Nqz")),
            ("w".into(), p("Nw")),
            ("a".into(), p("Na")),
            ("b".into(), p("Nb")),
        ],
        body: vec![tasklet],
        distributed: true,
    });
    // Memlet volumes at MPI-transfer granularity (bytes): each target-atom
    // G row is shared by the map's `b` dimension (fetched once per round,
    // so the per-iteration volume carries a 1/Nb amortization) but moves
    // for both the emission and absorption stencil legs and both ≷
    // components (64 B/element). This matches the paper's Fig. 5 volume,
    // which carries no Nb factor. D blocks are per-(a,b) 3×3 entries.
    let norb2_bytes = p("Norb") * p("Norb") * c(64.0) / p("Nb");
    let d_bytes = p("N3D") * p("N3D") * c(32.0);
    // Static material data, replicated once.
    s.add_memlet(Memlet::read("gradH", p("Norb") * p("Norb") * c(16.0), tasklet).local());
    s.add_memlet(Memlet::read("G", norb2_bytes.clone(), tasklet));
    s.add_memlet(Memlet::read("D", d_bytes.clone(), tasklet));
    // Outputs accumulate locally under both decompositions (CR: Sum).
    s.add_memlet(Memlet::write("Sigma", norb2_bytes, tasklet).local());
    s.add_memlet(Memlet::write("Pi", d_bytes, tasklet).local());
    s
}

/// The full simulation SDFG skeleton of Fig. 4: GF state then SSE state.
/// The GF tasklets *produce* the `G`/`D` containers the SSE state
/// consumes, so lowering the whole graph yields the per-iteration
/// electron-solves ∥ phonon-solves → SSE dependency DAG.
pub fn simulation_sdfg() -> Sdfg {
    let mut g = Sdfg::new("dace_omen");
    let mut gf = State {
        name: "GF".into(),
        ..Default::default()
    };
    let rgf_e = gf.add_node(Node::Tasklet {
        name: "RGF_electrons".into(),
    });
    let rgf_p = gf.add_node(Node::Tasklet {
        name: "RGF_phonons".into(),
    });
    gf.add_node(Node::Map {
        name: "electron_points".into(),
        ranges: vec![("kz".into(), p("Nkz")), ("E".into(), p("NE"))],
        body: vec![rgf_e],
        distributed: true,
    });
    gf.add_node(Node::Map {
        name: "phonon_points".into(),
        ranges: vec![("qz".into(), p("Nqz")), ("w".into(), p("Nw"))],
        body: vec![rgf_p],
        distributed: false,
    });
    // Per (kz, E) point the electron RGF reads the block-tridiagonal
    // Hamiltonian and emits both G^≷ components; per (qz, ω) the phonon
    // solve reads the dynamical matrix and emits D^≷.
    let g_bytes = p("Na") * p("Norb") * p("Norb") * c(64.0);
    let d_point_bytes = p("Na") * p("N3D") * p("N3D") * c(64.0);
    gf.add_memlet(Memlet::read("H", p("Na") * p("Norb") * p("Norb") * c(16.0), rgf_e).local());
    gf.add_memlet(Memlet::write("G", g_bytes, rgf_e).local());
    gf.add_memlet(Memlet::read("Phi", p("Na") * p("N3D") * p("N3D") * c(16.0), rgf_p).local());
    gf.add_memlet(Memlet::write("D", d_point_bytes, rgf_p).local());
    g.add_state(gf);
    g.add_state(sse_state());
    g
}

/// Applies the OMEN decomposition (Fig. 5 left): tiles the SSE map by
/// `(kz, E/tE)`. Every `G`/`D` memlet stays remote, so the distributed
/// volume keeps the full 6-D multiplicity — the
/// `O(Nkz·NE·Nqz·Nω·Na·Norb²)` expression of Fig. 5.
pub fn apply_omen_decomposition(state: &mut State) -> Expr {
    let m = state.distributed_map().expect("distributed map");
    map_tiling(state, m, &[("kz", p("Nkz")), ("E", p("tE"))]).unwrap();
    state.distributed_movement()
}

/// Applies the data-centric decomposition (Fig. 5 right): re-tiles by
/// atoms × energies. The `G`/`D` memlets become local (each rank holds
/// its atom/energy tile plus halo); what remains remote is the one-time
/// halo redistribution, modeled per §6.1.2 and returned alongside.
pub fn apply_dace_decomposition(state: &mut State) -> (Expr, Expr) {
    let m = state.distributed_map().expect("distributed map");
    map_tiling(state, m, &[("a", p("Ta")), ("E", p("TE"))]).unwrap();
    // After atom-tiling, the per-point G/D accesses hit rank-local tiles.
    for memlet in &mut state.memlets {
        if memlet.data == "G" || memlet.data == "D" {
            memlet.local_after_distribution = true;
        }
    }
    let residual = state.distributed_movement();
    // The remote part collapses to the four all-to-alls of §6.1.2:
    // P · [64·Nkz·(NE/TE + 2Nω)(Na/Ta + Nb)·Norb²
    //      + 64·Nqz·Nω·(Na/Ta + Nb)(Nb+1)·N3D²].
    let procs = p("Ta") * p("TE");
    let halo_atoms = p("Na") / p("Ta") + p("Nb");
    let g_bytes = c(64.0)
        * p("Nkz")
        * (p("NE") / p("TE") + c(2.0) * p("Nw"))
        * halo_atoms.clone()
        * p("Norb")
        * p("Norb");
    let d_bytes =
        c(64.0) * p("Nqz") * p("Nw") * halo_atoms * (p("Nb") + c(1.0)) * p("N3D") * p("N3D");
    (residual, procs * (g_bytes + d_bytes))
}

/// The OMEN-decomposition remote volume expression (for display/eval):
/// counts the `G` and `D` memlet traffic under the `(kz, E)` tiling.
pub fn omen_volume_expr() -> Expr {
    let mut s = sse_state();
    apply_omen_decomposition(&mut s)
}

/// The DaCe-decomposition all-to-all volume expression.
pub fn dace_volume_expr() -> Expr {
    let mut s = sse_state();
    apply_dace_decomposition(&mut s).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::bindings;

    fn small_bindings(
        nk: f64,
        procs: f64,
        ta: f64,
        te: f64,
    ) -> std::collections::HashMap<String, f64> {
        bindings(&[
            ("Nkz", nk),
            ("Nqz", nk),
            ("NE", 706.0),
            ("Nw", 70.0),
            ("Na", 4864.0),
            ("Nb", 34.0),
            ("Norb", 12.0),
            ("N3D", 3.0),
            ("tE", 706.0 / (procs / nk)),
            ("Ta", ta),
            ("TE", te),
        ])
    }

    #[test]
    fn graphs_validate() {
        let g = simulation_sdfg();
        g.validate().unwrap();
        assert!(g.node_count() >= 8);
        let mut s = sse_state();
        s.validate().unwrap();
        apply_omen_decomposition(&mut s);
        s.validate().unwrap();
    }

    #[test]
    fn omen_movement_has_multiplicative_form() {
        // The OMEN remote volume must scale like Nkz² (both the pair grid
        // and the qz sum grow with Nkz).
        let b3 = small_bindings(3.0, 768.0, 1.0, 1.0);
        let b6 = small_bindings(6.0, 768.0, 1.0, 1.0);
        let e = omen_volume_expr();
        let v3 = e.eval(&b3);
        let v6 = e.eval(&b6);
        let ratio = v6 / v3;
        assert!(
            (ratio - 4.0).abs() < 0.05,
            "doubling Nkz must ~quadruple OMEN volume (got {ratio:.2})"
        );
    }

    #[test]
    fn dace_movement_vastly_smaller() {
        // Fig. 5's punchline, straight from the memlets.
        let b = small_bindings(7.0, 1792.0, 448.0, 4.0);
        let omen = omen_volume_expr().eval(&b);
        let dace = dace_volume_expr().eval(&b);
        assert!(
            omen / dace > 40.0,
            "re-tiling must cut volume by ~two orders: {:.0}×",
            omen / dace
        );
    }

    #[test]
    fn dace_residual_per_point_traffic_is_zero() {
        // After atom-tiling, all per-point memlets are rank-local.
        let mut s = sse_state();
        let (residual, _) = apply_dace_decomposition(&mut s);
        let b = small_bindings(3.0, 768.0, 768.0, 1.0);
        assert_eq!(residual.eval(&b), 0.0);
    }

    #[test]
    fn tiling_preserves_iteration_space() {
        // The decomposition changes *placement*, not work: total movement
        // (local + remote) is invariant under the re-tiling.
        let b = small_bindings(3.0, 768.0, 768.0, 1.0);
        let before = sse_state().total_movement().eval(&b);
        let mut omen = sse_state();
        apply_omen_decomposition(&mut omen);
        let mut dace = sse_state();
        apply_dace_decomposition(&mut dace);
        let after_omen = omen.total_movement().eval(&b);
        // DaCe fission adds no per-point traffic here (halo modeled
        // separately), so compare OMEN only for exact invariance.
        assert!(
            ((after_omen - before) / before).abs() < 1e-12,
            "tiling changed total movement: {before} -> {after_omen}"
        );
        let after_dace = dace.total_movement().eval(&b);
        assert!(((after_dace - before) / before).abs() < 1e-12);
    }
}
