//! # omen-dataflow
//!
//! An SDFG-lite data-centric intermediate representation (the DaCe
//! substitute of the reproduction): states, access nodes, tasklets,
//! parametric maps, and memlets with *symbolic* volumes; graph
//! transformations (tiling, fission, fusion); and movement analysis that
//! derives the communication-volume expressions of Fig. 5 directly from
//! the memlets — the paper's mechanism for discovering the
//! communication-avoiding variant. The [`lower`] module turns the same
//! graphs into executable task schedules: tasklets become tasks, memlets
//! become dependency edges, and per-container liveness intervals tell
//! `omen-sched` when to reserve and release arena buffers.

pub mod graph;
pub mod lower;
pub mod omen_graphs;
pub mod symbolic;

pub use graph::{map_fission, map_fusion, map_tiling, GraphError, Memlet, Node, Sdfg, State};
pub use lower::{lower_sdfg, lower_state, DataInterval, EnclosingMap, LoweredDag, TaskSpec};
pub use omen_graphs::{
    apply_dace_decomposition, apply_omen_decomposition, dace_volume_expr, omen_volume_expr,
    simulation_sdfg, sse_state,
};
pub use symbolic::{bindings, c, p, Expr};
