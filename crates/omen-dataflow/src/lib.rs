//! # omen-dataflow
//!
//! An SDFG-lite data-centric intermediate representation (the DaCe
//! substitute of the reproduction): states, access nodes, tasklets,
//! parametric maps, and memlets with *symbolic* volumes; graph
//! transformations (tiling, fission, fusion); and movement analysis that
//! derives the communication-volume expressions of Fig. 5 directly from
//! the memlets — the paper's mechanism for discovering the
//! communication-avoiding variant.

pub mod graph;
pub mod omen_graphs;
pub mod symbolic;

pub use graph::{map_fission, map_fusion, map_tiling, Memlet, Node, Sdfg, State};
pub use omen_graphs::{
    apply_dace_decomposition, apply_omen_decomposition, dace_volume_expr, omen_volume_expr,
    simulation_sdfg, sse_state,
};
pub use symbolic::{bindings, c, p, Expr};
