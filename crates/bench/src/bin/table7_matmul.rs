//! Table 7: matrix multiplication strategies on RGF blocks — the packed
//! cache-blocked GEMM vs the seed's naive kernel (the data-centric claim:
//! restructuring data layout, not the math, is what buys speed), plus the
//! sparse-left CSRMM2 / dense×CSC GEMMI operation-support matrix of
//! cuBLAS/cuSPARSE.
//!
//! `--json` appends machine-readable records to `BENCH_kernels.json` so
//! the perf trajectory is diffable across PRs; `--quick` shrinks sizes
//! and reps for the CI smoke run.
use omen_bench::{
    header, json_flag, quick_flag, rgf_like_blocks, row, timed_median, timed_min, write_bench_json,
    BenchRecord, BENCH_JSON_PATH,
};
use omen_linalg::{
    csrmm, gemm, gemm_flops, gemm_naive, gemmi, CMatrix, CscMatrix, CsrMatrix, Op, C64,
};

fn main() {
    let quick = quick_flag();
    let mut records = Vec::new();

    // ---- packed/blocked GEMM vs the retained seed (naive) kernel ----
    println!("Table 7a: packed cache-blocked GEMM vs seed naive kernel\n");
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 384]
    };
    let w = [8, 14, 14, 10];
    header(&["n", "packed GF/s", "naive GF/s", "speedup"], &w);
    for &n in sizes {
        let (_, a) = rgf_like_blocks(n, 0.06, 3);
        let (_, b) = rgf_like_blocks(n, 0.06, 5);
        let mut c = CMatrix::zeros(n, n);
        let reps = if quick {
            3
        } else if n <= 128 {
            15
        } else {
            7
        };
        let flops = gemm_flops(n, n, n) as f64;
        let t_packed = timed_median(reps, || {
            gemm(C64::ONE, &a, Op::N, &b, Op::N, C64::ZERO, &mut c);
        });
        let t_naive = timed_median(reps, || {
            gemm_naive(C64::ONE, &a, Op::N, &b, Op::N, C64::ZERO, &mut c);
        });
        let gf_packed = flops / t_packed / 1e9;
        let gf_naive = flops / t_naive / 1e9;
        row(
            &[
                format!("{n}"),
                format!("{gf_packed:.2}"),
                format!("{gf_naive:.2}"),
                format!("{:.2}x", t_naive / t_packed),
            ],
            &w,
        );
        records.push(BenchRecord {
            name: format!("gemm_packed_nn_{n}{}", if quick { "_quick" } else { "" }),
            n,
            median_ns: t_packed * 1e9,
            gflops: gf_packed,
        });
        records.push(BenchRecord {
            name: format!("gemm_naive_nn_{n}{}", if quick { "_quick" } else { "" }),
            n,
            median_ns: t_naive * 1e9,
            gflops: gf_naive,
        });
    }
    println!("\ntarget: packed >= 2x naive GFLOP/s for n >= 128\n");

    // ---- sparse-operand strategies (cuBLAS/cuSPARSE support matrix) ----
    println!("Table 7b: Matrix Multiplication Performance (RGF-like blocks)\n");
    let n = if quick { 192 } else { 384 }; // block size of an RGF slab at executable scale
    let density = 0.06;
    let (sp, dn) = rgf_like_blocks(n, density, 7);
    let csr = CsrMatrix::from_dense(&sp, 0.0);
    let csc = CscMatrix::from_dense(&sp, 0.0);
    println!(
        "block {n}x{n}, sparse density {:.1}%\n",
        csr.density() * 100.0
    );
    let mut c = CMatrix::zeros(n, n);
    let reps = if quick { 2 } else { 5 };
    let w = [10, 12, 12, 12, 12];
    header(&["Method", "NN [ms]", "NT [ms]", "TN [ms]", "TT [ms]"], &w);

    let ops = [Op::N, Op::T];
    let mut gemm_times = Vec::new();
    for &oa in &ops {
        for &ob in &ops {
            let t = timed_min(reps, || {
                gemm(C64::ONE, &sp, oa, &dn, ob, C64::ZERO, &mut c);
            });
            gemm_times.push(format!("{:.3}", t * 1e3));
        }
    }
    row(
        &[
            "GEMM".into(),
            gemm_times[0].clone(),
            gemm_times[1].clone(),
            gemm_times[2].clone(),
            gemm_times[3].clone(),
        ],
        &w,
    );

    // CSRMM2 supports NN, NT (sparse op), TN — mirror the library matrix.
    let t_nn = timed_min(reps, || {
        csrmm(C64::ONE, &csr, Op::N, &dn, C64::ZERO, &mut c)
    });
    let t_tn = timed_min(reps, || {
        csrmm(C64::ONE, &csr, Op::T, &dn, C64::ZERO, &mut c)
    });
    row(
        &[
            "CSRMM2".into(),
            format!("{:.3}", t_nn * 1e3),
            format!("{:.3}", t_nn * 1e3),
            format!("{:.3}", t_tn * 1e3),
            "—".into(),
        ],
        &w,
    );

    let t_gi = timed_min(reps, || gemmi(C64::ONE, &dn, &csc, C64::ZERO, &mut c));
    row(
        &[
            "GEMMI".into(),
            format!("{:.3}", t_gi * 1e3),
            "—".into(),
            "—".into(),
            "—".into(),
        ],
        &w,
    );

    println!("\npaper (V100): GEMM 58.4 ms everywhere; CSRMM2 8.2/6.1/52.7 ms; GEMMI 15.2 ms");
    println!(
        "shape target: CSRMM2 NN/NT beat dense GEMM by ~7-10x; TN much slower; GEMMI in between"
    );

    if json_flag() {
        write_bench_json(BENCH_JSON_PATH, &records).expect("write BENCH_kernels.json");
        println!("\nwrote {} records to {BENCH_JSON_PATH}", records.len());
    }
}
