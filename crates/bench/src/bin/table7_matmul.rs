//! Table 7: matrix multiplication strategies on RGF blocks — dense GEMM
//! vs sparse-left CSRMM2 vs dense×CSC GEMMI (operation-support matrix
//! matches the cuBLAS/cuSPARSE one).
use omen_bench::{header, rgf_like_blocks, row, timed_min};
use omen_linalg::{csrmm, gemm, gemmi, CMatrix, CscMatrix, CsrMatrix, Op, C64};

fn main() {
    println!("Table 7: Matrix Multiplication Performance (RGF-like blocks)\n");
    let n = 384; // block size of an RGF slab at executable scale
    let density = 0.06;
    let (sp, dn) = rgf_like_blocks(n, density, 7);
    let csr = CsrMatrix::from_dense(&sp, 0.0);
    let csc = CscMatrix::from_dense(&sp, 0.0);
    println!(
        "block {n}x{n}, sparse density {:.1}%\n",
        csr.density() * 100.0
    );
    let mut c = CMatrix::zeros(n, n);
    let reps = 5;
    let w = [10, 12, 12, 12, 12];
    header(&["Method", "NN [ms]", "NT [ms]", "TN [ms]", "TT [ms]"], &w);

    let ops = [Op::N, Op::T];
    let mut gemm_times = Vec::new();
    for &oa in &ops {
        for &ob in &ops {
            let t = timed_min(reps, || {
                gemm(C64::ONE, &sp, oa, &dn, ob, C64::ZERO, &mut c);
            });
            gemm_times.push(format!("{:.3}", t * 1e3));
        }
    }
    row(
        &[
            "GEMM".into(),
            gemm_times[0].clone(),
            gemm_times[1].clone(),
            gemm_times[2].clone(),
            gemm_times[3].clone(),
        ],
        &w,
    );

    // CSRMM2 supports NN, NT (sparse op), TN — mirror the library matrix.
    let t_nn = timed_min(reps, || {
        csrmm(C64::ONE, &csr, Op::N, &dn, C64::ZERO, &mut c)
    });
    let t_tn = timed_min(reps, || {
        csrmm(C64::ONE, &csr, Op::T, &dn, C64::ZERO, &mut c)
    });
    row(
        &[
            "CSRMM2".into(),
            format!("{:.3}", t_nn * 1e3),
            format!("{:.3}", t_nn * 1e3),
            format!("{:.3}", t_tn * 1e3),
            "—".into(),
        ],
        &w,
    );

    let t_gi = timed_min(reps, || gemmi(C64::ONE, &dn, &csc, C64::ZERO, &mut c));
    row(
        &[
            "GEMMI".into(),
            format!("{:.3}", t_gi * 1e3),
            "—".into(),
            "—".into(),
            "—".into(),
        ],
        &w,
    );

    println!("\npaper (V100): GEMM 58.4 ms everywhere; CSRMM2 8.2/6.1/52.7 ms; GEMMI 15.2 ms");
    println!(
        "shape target: CSRMM2 NN/NT beat dense GEMM by ~7-10x; TN much slower; GEMMI in between"
    );
}
