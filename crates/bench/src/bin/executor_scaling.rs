//! GF-phase executor scaling: serial vs rayon-style work stealing vs the
//! rank-partitioned engine on the demo workload (`nk·ne = 144` electron
//! points + `nk·nw = 9` phonon points, all independent).
//!
//! The shape to reproduce is the paper's §4 claim: the GF phase is
//! embarrassingly parallel over points, so thread-level parallelism gives
//! near-linear speedups until the point count per worker gets small.

use omen_bench::{header, row, timed_min};
use omen_core::{
    PartitionedExecutor, PointExecutor, RayonExecutor, SerialExecutor, Simulation, SimulationConfig,
};

fn bench<E: PointExecutor>(sim: &Simulation, exec: &E) -> (f64, f64) {
    let spectral = sim.gf_phase_with(exec).spectral;
    let current = spectral.el_current[spectral.el_current.len() / 2];
    let time = timed_min(2, || {
        std::hint::black_box(sim.gf_phase_with(exec));
    });
    (time, current)
}

fn main() {
    println!("GF-phase executor scaling (demo device, nk*ne = 144 points)\n");
    let mut cfg = SimulationConfig::demo();
    cfg.max_iterations = 1;
    let sim = Simulation::new(cfg).expect("valid config");

    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = [24, 12, 10, 16];
    header(&["Executor", "Time [s]", "Speedup", "I(mid)"], &w);
    let print = |name: String, time: f64, base: f64, current: f64| {
        row(
            &[
                name,
                format!("{time:.3}"),
                format!("{:.2}x", base / time),
                format!("{current:.4e}"),
            ],
            &w,
        );
    };

    let (t_serial, i_serial) = bench(&sim, &SerialExecutor);
    print("serial".into(), t_serial, t_serial, i_serial);
    for threads in [2, 4, auto] {
        let (t, i) = bench(&sim, &RayonExecutor::new(threads));
        print(format!("rayon({threads})"), t, t_serial, i);
        assert_eq!(i.to_bits(), i_serial.to_bits(), "rayon must be bitwise");
    }
    let (t, i) = bench(&sim, &PartitionedExecutor::new(auto));
    print(format!("partitioned({auto})"), t, t_serial, i);
    assert!(
        ((i - i_serial) / i_serial).abs() < 1e-9,
        "partitioned current deviates"
    );

    println!(
        "\nall executors produce identical currents (rayon bitwise, \
         partitioned to ~1e-12); rayon(0 = auto) is the default executor"
    );
}
