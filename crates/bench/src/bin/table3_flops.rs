//! Table 3: single-iteration computational load (Pflop), Small structure.
//! Model columns reproduce the paper; the "measured" columns run the real
//! kernels at reduced scale and compare the OMEN/DaCe flop *ratio*.
use omen_bench::{header, row};
use omen_sse::testutil::{random_inputs, tiny_device};
use omen_sse::{sse_reference, sse_transformed, GLayout, SseProblem};

fn main() {
    println!("Table 3: Single Iteration Computational Load (Pflop), Small structure\n");
    let w = [6, 12, 12, 14, 14, 12];
    header(
        &["Nkz", "BC", "RGF", "SSE(OMEN)", "SSE(DaCe)", "DaCe/OMEN"],
        &w,
    );
    for r in omen_perf::table3(&[3, 5, 7, 9, 11]) {
        row(
            &[
                r.nk.to_string(),
                format!("{:.2}", r.bc / 1e15),
                format!("{:.2}", r.rgf / 1e15),
                format!("{:.2}", r.sse_omen / 1e15),
                format!("{:.2}", r.sse_dace / 1e15),
                format!("{:.3}", r.sse_dace / r.sse_omen),
            ],
            &w,
        );
    }
    println!("\npaper:  Nkz=3: 8.45 / 52.95 / 24.41 / 12.38 … Nkz=11: 31.06 / 194.15 / 328.15 / 164.71\n");

    // Measured kernel flop counts at executable scale.
    let dev = tiny_device();
    let prob = SseProblem::new(&dev, 2, 12, 2, 2, 1.0, 1.0);
    let (gl, gg, dl, dg) = random_inputs(&prob, 1);
    let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
    let gla = gl.to_layout(GLayout::AtomMajor);
    let gga = gg.to_layout(GLayout::AtomMajor);
    let transformed = sse_transformed(&prob, &gla, &gga, &dl, &dg);
    println!(
        "measured kernel flops (tiny device): OMEN {} / DaCe {}  ratio {:.3} (model {:.3})",
        reference.flops,
        transformed.flops,
        transformed.flops as f64 / reference.flops as f64,
        (prob.nq * prob.nw + 1) as f64 / (2 * prob.nq * prob.nw) as f64
    );
}
