//! Table 11: modeled full-scale (27,360 GPU) 10,240-atom run breakdown.
use omen_bench::{header, row};

fn main() {
    println!(
        "Table 11: Full-Scale 10,240 Atom Run Breakdown (model, 27,360 GPUs, 50 iterations)\n"
    );
    let m = omen_perf::table11(27_360, 50);
    let w = [30, 12];
    header(&["Phase", "Time [s]"], &w);
    row(
        &[
            "Data Ingestion (one-time)".into(),
            format!("{:.2}", m.ingestion),
        ],
        &w,
    );
    row(
        &[
            "Boundary Conditions (one-time)".into(),
            format!("{:.2}", m.bc),
        ],
        &w,
    );
    row(&["GF".into(), format!("{:.2}", m.gf)], &w);
    row(&["SSE (double)".into(), format!("{:.2}", m.sse_double)], &w);
    row(&["SSE (mixed)".into(), format!("{:.2}", m.sse_mixed)], &w);
    row(&["Communication".into(), format!("{:.2}", m.comm)], &w);
    row(
        &[
            "Total (double, per iter)".into(),
            format!("{:.2}", m.total_double),
        ],
        &w,
    );
    row(
        &[
            "Total incl. I/O+BC amortized".into(),
            format!("{:.2}", m.total_with_io),
        ],
        &w,
    );
    println!(
        "\nsustained: {:.2} Pflop/s double, {:.2} Pflop/s mixed",
        m.pflops_double, m.pflops_mixed
    );
    println!("paper: BC 30.51, GF 41.36, SSE 41.91/36.16, comm 11.50, total 94.77/96.00 s; 86.26/85.45 Pflop/s");
}
