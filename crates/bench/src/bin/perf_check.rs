//! CI perf-regression gate over the committed bench trajectory files.
//!
//! Accepts repeated `--baseline <committed.json> --fresh <new.json>`
//! pairs (matched positionally) and runs two checks per pair; any failure
//! exits 1:
//!
//! 1. **Baseline comparison** — every gated `_quick` record in the fresh
//!    file is compared against the committed baseline copy and must not
//!    regress by more than the noise tolerance (default 2×, wide because
//!    hosted-runner generations differ). A baseline *file* that does not
//!    exist yet (a bench family added in the current PR) is reported
//!    per-file and its records count as new — it does not trip the
//!    vacuous-gate failure, which now only fires when *no pair at all*
//!    produced a comparison or a new record.
//! 2. **Within-run floors** — machine-independent backstops computed
//!    inside a single fresh file, applied only when that family's records
//!    are present: the packed batched kernel must beat the scalar loop by
//!    `--min-speedup` (default 1.2×) on the stage-C shape, and the
//!    warm-started sweep must save Born iterations (strict, deterministic)
//!    while keeping at least `--min-sweep-speedup` (default 0.9×) of the
//!    cold sweep's points/second. The iteration count is the real warm-
//!    start gate — it is exact on every machine; the quick sweep's wall
//!    clock is noise-dominated on small runners (only ~10 % of its
//!    iterations are saved), so its throughput floor is a gross-regression
//!    backstop, not a speedup assertion. The full-mode records committed
//!    in `BENCH_sweeps.json` carry the measured speedup.
//!
//! Gated records: names containing `packed`, or starting with `sweep_`,
//! with the `_quick` suffix — full-mode records are committed for the
//! README table but re-measured rarely.
//!
//! A third within-run floor bounds the fault-injection machinery: the
//! measured `should_inject` probe (`sweep_fault_probe_quick`) times a
//! generous 64-calls-per-point budget must stay under
//! `--max-fault-overhead` (default 2 %) of a warm point's wall time, and
//! a fault-free run must report zero retries/fallbacks/quarantines in
//! `sweep_fault_retries_quick`.
//!
//! A fourth floor bounds disarmed tracing the same way: the measured
//! per-call cost of one disarmed `omen-trace` instrumentation call
//! (`sweep_trace_probe_quick.median_ns`) times the instrumentation calls
//! an armed warm point actually made (`.n`) must stay under
//! `--max-trace-overhead` (default 2 %) of a warm point's wall time. The
//! `sweep_trace*` records are excluded from the cross-run ratio table
//! like the fault records.
//!
//! Two floors gate the overlapped executor (`table6_streams --execute`
//! records): the pipelined sweep must not run slower than the serial one
//! on a ≥2-point sweep (`--min-overlap-speedup`, default 1.0), and the
//! lowered-DAG scheduler bookkeeping per Born iteration
//! (`sweep_sched_overhead_quick.median_ns`) must stay under
//! `--max-sched-overhead` (default 2 %) of a warm point's wall time.
//!
//! A communication-volume band gates the distributed Born loop
//! (`table45_comm --execute` records): every `comm45_*_quick` record
//! carries the measured/model volume ratio in `gflops`, and it must sit
//! inside `[--min-comm-ratio, --max-comm-ratio]` (defaults 0.15–1.5).
//! Both sides are deterministic — the ledger counts exact bytes and the
//! model is analytic — so the band is machine-independent; it catches a
//! plan that starts moving the wrong amount of data or a model that
//! drifts from the executed schedule. The `comm45_*` records also join
//! the cross-run table (`median_ns` = bytes per Born iteration, exact,
//! so any drift against the committed baseline is a real change).
//!
//! `--trace-out PATH` adds a trace-artifact check (and may run with zero
//! baseline/fresh pairs): `PATH` must be well-formed chrome://tracing
//! JSON containing at least one `gf_phase`, one `sse_phase`, and one
//! `comm_*` duration event. Adding `--require-overlap NAME1,NAME2`
//! switches the artifact check to the overlapped-executor contract:
//! both names must appear and overlap in wall-clock time on different
//! threads.
//!
//! ```text
//! perf_check --baseline BENCH_kernels.json --fresh fresh_kernels.json \
//!            --baseline BENCH_sweeps.json  --fresh fresh_sweeps.json \
//!            [--tolerance 2.0] [--min-speedup 1.2] [--min-sweep-speedup 0.9] \
//!            [--max-fault-overhead 0.02] [--max-trace-overhead 0.02] \
//!            [--min-overlap-speedup 1.0] [--max-sched-overhead 0.02] \
//!            [--min-comm-ratio 0.15] [--max-comm-ratio 1.5] \
//!            [--trace-out trace.json] [--require-overlap gf_phase,sse_phase]
//! ```

use omen_bench::{parse_bench_json, BenchRecord};
use std::process::ExitCode;

fn arg_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    arg_values(args, flag).pop()
}

/// `true` for records the gate covers: packed-kernel and sweep-service
/// quick-mode entries. The `sweep_fault_*`, `sweep_trace*`, and
/// `sweep_sched_*` records are excluded from the cross-run ratio table —
/// they carry raw counters and nanosecond/microsecond-scale probes too
/// noisy for a 2x machine-to-machine gate — and are instead consumed by
/// the within-run overhead floors.
fn gated(name: &str) -> bool {
    (name.contains("packed") || name.starts_with("sweep_") || name.starts_with("comm45_"))
        && name.ends_with("_quick")
        && !name.contains("fault")
        && !name.contains("trace")
        && !name.contains("sched")
}

/// Outcome of one baseline/fresh pair.
struct PairOutcome {
    compared: usize,
    new_records: usize,
    regressed: usize,
    failed_floors: usize,
}

/// Every threshold the per-pair checks gate on, bundled so the gate's
/// growing flag surface stays one argument.
struct Floors {
    tolerance: f64,
    min_speedup: f64,
    min_sweep_speedup: f64,
    max_fault_overhead: f64,
    max_trace_overhead: f64,
    min_overlap_speedup: f64,
    max_sched_overhead: f64,
    min_comm_ratio: f64,
    max_comm_ratio: f64,
}

fn check_pair(baseline_path: &str, fresh_path: &str, floors: &Floors) -> PairOutcome {
    let &Floors {
        tolerance,
        min_speedup,
        min_sweep_speedup,
        max_fault_overhead,
        max_trace_overhead,
        min_overlap_speedup,
        max_sched_overhead,
        min_comm_ratio,
        max_comm_ratio,
    } = floors;
    let mut out = PairOutcome {
        compared: 0,
        new_records: 0,
        regressed: 0,
        failed_floors: 0,
    };
    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(text) => parse_bench_json(&text),
        Err(e) => {
            // A missing *fresh* file means the smoke run did not happen —
            // that is a hard failure, not a skip.
            eprintln!("perf_check: cannot read fresh {fresh_path}: {e}");
            out.failed_floors += 1;
            return out;
        }
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Some(parse_bench_json(&text)),
        Err(_) => {
            // Per-file report: a bench family introduced in this PR has no
            // committed baseline yet. Its records are new, not vacuous.
            println!(
                "{baseline_path}: no committed baseline — reporting {fresh_path} records as new"
            );
            None
        }
    };

    println!(
        "\n{fresh_path} vs {baseline_path} (tolerance {tolerance:.2}x)\n{:<36} {:>14} {:>14} {:>8}",
        "name", "baseline [us]", "fresh [us]", "ratio"
    );
    for f in fresh.iter().filter(|r| gated(&r.name)) {
        let b = baseline
            .as_ref()
            .and_then(|b| b.iter().find(|r| r.name == f.name));
        let Some(b) = b else {
            out.new_records += 1;
            println!(
                "{:<36} {:>14} {:>14.1} {:>8}",
                f.name,
                "(new)",
                f.median_ns / 1e3,
                "-"
            );
            continue;
        };
        out.compared += 1;
        let ratio = f.median_ns / b.median_ns;
        let verdict = if ratio > tolerance {
            out.regressed += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<36} {:>14.1} {:>14.1} {:>7.2}x {verdict}",
            f.name,
            b.median_ns / 1e3,
            f.median_ns / 1e3,
            ratio
        );
    }

    // Within-run floors, applied per family present in this fresh file.
    // Both sides of a floor come from the same run on the same machine,
    // so the ratios are immune to runner-class variance.
    let find = |prefix: &str| {
        fresh
            .iter()
            .find(|r| r.name.starts_with(prefix) && r.name.ends_with("_quick"))
    };
    if fresh.iter().any(|r| r.name.starts_with("sbsmm_")) {
        match (find("sbsmm_packed_sseC"), find("sbsmm_scalar_sseC")) {
            (Some(packed), Some(scalar)) => {
                let speedup = scalar.median_ns / packed.median_ns;
                println!(
                    "within-run: {} vs {}: {speedup:.2}x (floor {min_speedup:.2}x)",
                    packed.name, scalar.name
                );
                if speedup < min_speedup {
                    eprintln!(
                        "perf_check: packed sbsmm speedup {speedup:.2}x fell below the \
                         {min_speedup:.2}x floor"
                    );
                    out.failed_floors += 1;
                }
            }
            _ => {
                eprintln!(
                    "perf_check: {fresh_path} has sbsmm records but lacks the packed/scalar \
                     quick pair — the floor would be vacuous; failing"
                );
                out.failed_floors += 1;
            }
        }
    }
    if fresh.iter().any(|r| r.name.starts_with("sweep_")) {
        match (find("sweep_warm"), find("sweep_cold")) {
            (Some(warm), Some(cold)) => {
                let speedup = warm.gflops / cold.gflops;
                println!(
                    "within-run: {} vs {}: {speedup:.2}x points/s (floor \
                     {min_sweep_speedup:.2}x), Born iterations {} vs {}",
                    warm.name, cold.name, warm.n, cold.n
                );
                if speedup < min_sweep_speedup {
                    eprintln!(
                        "perf_check: warm sweep throughput {speedup:.2}x fell below the \
                         {min_sweep_speedup:.2}x floor"
                    );
                    out.failed_floors += 1;
                }
                if warm.n >= cold.n {
                    eprintln!(
                        "perf_check: warm sweep saved no Born iterations ({} vs {})",
                        warm.n, cold.n
                    );
                    out.failed_floors += 1;
                }
            }
            _ => {
                eprintln!(
                    "perf_check: {fresh_path} has sweep records but lacks the warm/cold quick \
                     pair — the floor would be vacuous; failing"
                );
                out.failed_floors += 1;
            }
        }
        // Fault-machinery floor: the injection hooks on the worker hot
        // path must be invisible when no plan is armed. A point makes at
        // most a handful of `should_inject` calls per attempt (panic,
        // donor, NaN, journal sites) times the retry cap; 64 calls is a
        // generous bound. `probe.gflops` records whether a fault plan
        // was armed during the bench (1.0 = armed).
        if let (Some(probe), Some(warm)) = (find("sweep_fault_probe"), find("sweep_warm")) {
            let overhead = 64.0 * probe.median_ns / warm.median_ns;
            println!(
                "within-run: fault hooks {:.1} ns/call -> {:.4}% of a warm point (cap {:.1}%)",
                probe.median_ns,
                100.0 * overhead,
                100.0 * max_fault_overhead
            );
            // NaN (e.g. a zeroed warm record) must fail, not pass.
            if overhead.is_nan() || overhead > max_fault_overhead {
                eprintln!(
                    "perf_check: fault machinery costs {:.4}% of a warm point, above the \
                     {:.1}% cap",
                    100.0 * overhead,
                    100.0 * max_fault_overhead
                );
                out.failed_floors += 1;
            }
            if probe.gflops == 0.0 {
                // No plan armed: the sweep must not have retried at all.
                if let Some(counters) = find("sweep_fault_retries") {
                    if counters.n != 0 || counters.median_ns != 0.0 || counters.gflops != 0.0 {
                        eprintln!(
                            "perf_check: fault-free sweep reported recovery activity \
                             (retries {}, cold fallbacks {}, quarantined {})",
                            counters.n, counters.median_ns, counters.gflops
                        );
                        out.failed_floors += 1;
                    }
                }
            }
        }
        // Disarmed-tracing floor: `n` instrumentation calls per warm
        // point (counted from the armed run) times the measured disarmed
        // per-call cost must be invisible next to a warm point's wall
        // time. This is the cost every *untraced* run pays for the
        // instrumentation being compiled in.
        if let (Some(probe), Some(warm)) = (find("sweep_trace_probe"), find("sweep_warm")) {
            let overhead = probe.n as f64 * probe.median_ns / warm.median_ns;
            println!(
                "within-run: disarmed tracing {} calls/point x {:.2} ns -> {:.4}% of a warm \
                 point (cap {:.1}%)",
                probe.n,
                probe.median_ns,
                100.0 * overhead,
                100.0 * max_trace_overhead
            );
            if overhead.is_nan() || overhead > max_trace_overhead {
                eprintln!(
                    "perf_check: disarmed tracing costs {:.4}% of a warm point, above the \
                     {:.1}% cap",
                    100.0 * overhead,
                    100.0 * max_trace_overhead
                );
                out.failed_floors += 1;
            }
        }
        // Stream-overlap floor: on a ≥2-point sweep the pipelined
        // executor must not be slower than the serial one. Both walls
        // come from the same run of `table6_streams --execute`, so the
        // ratio is machine-independent. Exempt: a 1-point sweep has
        // nothing to overlap, and a single-core machine (the overlap
        // record's `n` carries the bench host's available parallelism)
        // cannot run the two stage threads concurrently at all.
        if let (Some(serial), Some(overlap)) =
            (find("sweep_stream_serial"), find("sweep_stream_overlap"))
        {
            let speedup = serial.median_ns / overlap.median_ns;
            println!(
                "within-run: {} vs {}: {speedup:.2}x wall over {} points on {} core(s), \
                 {:.0}% measured overlap (floor {min_overlap_speedup:.2}x)",
                overlap.name,
                serial.name,
                serial.n,
                overlap.n,
                100.0 * overlap.gflops
            );
            if overlap.n < 2 {
                println!("within-run: single-core bench host — overlap speedup floor not applied");
            } else if serial.n >= 2 && (speedup.is_nan() || speedup < min_overlap_speedup) {
                eprintln!(
                    "perf_check: overlapped sweep ran {speedup:.2}x the serial wall on {} \
                     points, below the {min_overlap_speedup:.2}x floor",
                    serial.n
                );
                out.failed_floors += 1;
            }
        }
        // Scheduler-overhead floor: the lowered-DAG bookkeeping per Born
        // iteration (`sweep_sched_overhead.median_ns`) must be invisible
        // next to a warm point's wall time.
        if let (Some(sched), Some(warm)) = (find("sweep_sched_overhead"), find("sweep_warm")) {
            let overhead = sched.median_ns / warm.median_ns;
            println!(
                "within-run: DAG scheduler {} tasks x {:.1} us bookkeeping -> {:.4}% of a warm \
                 point (cap {:.1}%)",
                sched.n,
                sched.median_ns / 1e3,
                100.0 * overhead,
                100.0 * max_sched_overhead
            );
            if overhead.is_nan() || overhead > max_sched_overhead {
                eprintln!(
                    "perf_check: DAG scheduler costs {:.4}% of a warm point, above the {:.1}% cap",
                    100.0 * overhead,
                    100.0 * max_sched_overhead
                );
                out.failed_floors += 1;
            }
        }
    }
    // Communication-volume band (`table45_comm --execute` family): the
    // measured/model volume ratio each `comm45_*` record carries in
    // `gflops` is a deterministic function of the device and the plan —
    // no timing anywhere — so a fixed band holds on every machine.
    if fresh.iter().any(|r| r.name.starts_with("comm45_")) {
        let legs: Vec<&BenchRecord> = fresh
            .iter()
            .filter(|r| r.name.starts_with("comm45_") && r.name.ends_with("_quick"))
            .collect();
        if legs.is_empty() {
            eprintln!(
                "perf_check: {fresh_path} has comm45 records but no quick legs — the volume \
                 band would be vacuous; failing"
            );
            out.failed_floors += 1;
        }
        for leg in legs {
            let ratio = leg.gflops;
            println!(
                "within-run: {} moved {:.0} B/iteration on {} ranks, {ratio:.3}x the model \
                 (band {min_comm_ratio:.2}-{max_comm_ratio:.2})",
                leg.name, leg.median_ns, leg.n
            );
            if !(min_comm_ratio..=max_comm_ratio).contains(&ratio) {
                eprintln!(
                    "perf_check: {} measured/model volume ratio {ratio:.3} is outside the \
                     {min_comm_ratio:.2}-{max_comm_ratio:.2} band",
                    leg.name
                );
                out.failed_floors += 1;
            }
        }
    }
    out
}

/// Validates an exported chrome://tracing artifact. Without
/// `require_overlap`, the artifact must carry duration events from each
/// instrumented subsystem — GF, SSE, and at least one communication
/// plan. With `require_overlap = Some((a, b))` — the overlapped-executor
/// artifact, which runs no comm leg — the requirement is instead that
/// events named `a` and `b` exist and *overlap in wall-clock time on
/// different threads*: the pipelined concurrency, proven straight off
/// the exported file.
fn check_trace_artifact(path: &str, require_overlap: Option<(&str, &str)>) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("perf_check: cannot read trace {path}: {e}");
            return false;
        }
    };
    let stats = match omen_trace::validate_chrome_trace(&text) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("perf_check: {path} is not a valid chrome trace: {e}");
            return false;
        }
    };
    if let Some((a, b)) = require_overlap {
        let overlap = stats.overlap_us(a, b);
        println!(
            "trace artifact {path}: {} events, {} {a} / {} {b} duration events, max \
             cross-thread overlap {overlap:.1} us",
            stats.events,
            stats.spans_named(a),
            stats.spans_named(b),
        );
        let mut ok = true;
        for name in [a, b] {
            if stats.spans_named(name) == 0 {
                eprintln!("perf_check: trace {path} has no {name} duration events");
                ok = false;
            }
        }
        if ok && overlap <= 0.0 {
            eprintln!(
                "perf_check: trace {path} shows no cross-thread overlap between {a} and {b} — \
                 the pipeline ran serially"
            );
            ok = false;
        }
        return ok;
    }
    let comm_spans: usize = stats
        .span_names
        .iter()
        .filter(|(n, _)| n.starts_with("comm_"))
        .map(|&(_, c)| c)
        .sum();
    println!(
        "trace artifact {path}: {} events, {} gf_phase / {} sse_phase / {comm_spans} comm_* \
         duration events",
        stats.events,
        stats.spans_named("gf_phase"),
        stats.spans_named("sse_phase"),
    );
    let mut ok = true;
    for (what, count) in [
        ("gf_phase", stats.spans_named("gf_phase")),
        ("sse_phase", stats.spans_named("sse_phase")),
        ("comm_*", comm_spans),
    ] {
        if count == 0 {
            eprintln!("perf_check: trace {path} has no {what} duration events");
            ok = false;
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baselines = arg_values(&args, "--baseline");
    let freshes = arg_values(&args, "--fresh");
    let trace_out = arg_value(&args, "--trace-out");
    // `--trace-out` alone is a valid invocation (the CI trace leg); the
    // pair requirement applies once any pair flag appears.
    if (baselines.is_empty() && trace_out.is_none()) || baselines.len() != freshes.len() {
        eprintln!(
            "perf_check: need matched --baseline/--fresh pairs (got {} baselines, {} fresh)",
            baselines.len(),
            freshes.len()
        );
        return ExitCode::from(2);
    }
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance must be a number"))
        .unwrap_or(2.0);
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .map(|t| t.parse().expect("--min-speedup must be a number"))
        .unwrap_or(1.2);
    let min_sweep_speedup: f64 = arg_value(&args, "--min-sweep-speedup")
        .map(|t| t.parse().expect("--min-sweep-speedup must be a number"))
        .unwrap_or(0.9);
    let max_fault_overhead: f64 = arg_value(&args, "--max-fault-overhead")
        .map(|t| t.parse().expect("--max-fault-overhead must be a number"))
        .unwrap_or(0.02);
    let max_trace_overhead: f64 = arg_value(&args, "--max-trace-overhead")
        .map(|t| t.parse().expect("--max-trace-overhead must be a number"))
        .unwrap_or(0.02);
    let min_overlap_speedup: f64 = arg_value(&args, "--min-overlap-speedup")
        .map(|t| t.parse().expect("--min-overlap-speedup must be a number"))
        .unwrap_or(1.0);
    let max_sched_overhead: f64 = arg_value(&args, "--max-sched-overhead")
        .map(|t| t.parse().expect("--max-sched-overhead must be a number"))
        .unwrap_or(0.02);
    let min_comm_ratio: f64 = arg_value(&args, "--min-comm-ratio")
        .map(|t| t.parse().expect("--min-comm-ratio must be a number"))
        .unwrap_or(0.15);
    let max_comm_ratio: f64 = arg_value(&args, "--max-comm-ratio")
        .map(|t| t.parse().expect("--max-comm-ratio must be a number"))
        .unwrap_or(1.5);
    let require_overlap = arg_value(&args, "--require-overlap").map(|spec| {
        let (a, b) = spec
            .split_once(',')
            .expect("--require-overlap takes NAME1,NAME2");
        (a.to_string(), b.to_string())
    });
    if require_overlap.is_some() && trace_out.is_none() {
        eprintln!("perf_check: --require-overlap needs --trace-out");
        return ExitCode::from(2);
    }

    let mut compared = 0usize;
    let mut new_records = 0usize;
    let mut regressed = 0usize;
    let mut failed_floors = 0usize;
    let floors = Floors {
        tolerance,
        min_speedup,
        min_sweep_speedup,
        max_fault_overhead,
        max_trace_overhead,
        min_overlap_speedup,
        max_sched_overhead,
        min_comm_ratio,
        max_comm_ratio,
    };
    for (baseline_path, fresh_path) in baselines.iter().zip(&freshes) {
        let outcome = check_pair(baseline_path, fresh_path, &floors);
        compared += outcome.compared;
        new_records += outcome.new_records;
        regressed += outcome.regressed;
        failed_floors += outcome.failed_floors;
    }

    if let Some(path) = &trace_out {
        let require = require_overlap
            .as_ref()
            .map(|(a, b)| (a.as_str(), b.as_str()));
        if !check_trace_artifact(path, require) {
            return ExitCode::FAILURE;
        }
    }

    if compared == 0 && new_records == 0 && baselines.is_empty() {
        // Trace-artifact-only invocation: the artifact check above is the
        // whole gate.
        println!("\nperf_check: trace artifact ok");
        return ExitCode::SUCCESS;
    }
    if compared == 0 && new_records == 0 {
        eprintln!(
            "\nperf_check: no gated quick records matched in any baseline/fresh pair — the gate \
             would be vacuous; failing"
        );
        return ExitCode::FAILURE;
    }
    if regressed > 0 {
        eprintln!("\nperf_check: {regressed}/{compared} records regressed beyond {tolerance:.2}x");
        return ExitCode::FAILURE;
    }
    if failed_floors > 0 {
        eprintln!("\nperf_check: {failed_floors} within-run floor check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("\nperf_check: {compared} compared ({new_records} new) — all within tolerance");
    ExitCode::SUCCESS
}

// `BenchRecord` is only named in type position above; keep a use so the
// import list stays honest if the gate grows.
#[allow(dead_code)]
fn _record_type_anchor(r: &BenchRecord) -> &str {
    &r.name
}
