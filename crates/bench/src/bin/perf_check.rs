//! CI perf-regression gate for the packed kernels.
//!
//! Two checks, both against `--json --quick` smoke output; either failing
//! exits 1:
//!
//! 1. **Baseline comparison** — every packed-kernel `_quick` record in the
//!    fresh `BENCH_kernels.json` is compared against the committed
//!    baseline copy and must not regress by more than the noise tolerance
//!    (default 2×, wide because hosted-runner generations differ).
//! 2. **Within-run speedup floor** — machine-independent backstop for the
//!    cross-machine variance of (1): in the *same* fresh file, the packed
//!    batched kernel must beat the scalar loop by at least
//!    `--min-speedup` (default 1.2×) on the stage-C shape.
//!
//! Only records whose name contains `packed` and carries the `_quick`
//! suffix are gated — full-mode records are committed for the README
//! table but re-measured rarely.
//!
//! ```text
//! perf_check --baseline <committed.json> --fresh <new.json>
//!            [--tolerance 2.0] [--min-speedup 1.2]
//! ```

use omen_bench::{parse_bench_json, BenchRecord};
use std::process::ExitCode;

fn load(path: &str) -> Vec<BenchRecord> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_bench_json(&text),
        Err(e) => {
            eprintln!("perf_check: cannot read {path}: {e}");
            Vec::new()
        }
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `true` for records the gate covers: packed-kernel quick-mode entries.
fn gated(name: &str) -> bool {
    name.contains("packed") && name.ends_with("_quick")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("perf_check: --baseline <path> is required");
        std::process::exit(2);
    });
    let fresh_path = arg_value(&args, "--fresh").unwrap_or_else(|| {
        eprintln!("perf_check: --fresh <path> is required");
        std::process::exit(2);
    });
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|t| t.parse().expect("--tolerance must be a number"))
        .unwrap_or(2.0);
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .map(|t| t.parse().expect("--min-speedup must be a number"))
        .unwrap_or(1.2);

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);

    let mut compared = 0usize;
    let mut regressed = 0usize;
    println!("perf_check: packed-kernel quick records, tolerance {tolerance:.2}x\n");
    println!(
        "{:<36} {:>14} {:>14} {:>8}",
        "name", "baseline [us]", "fresh [us]", "ratio"
    );
    for f in fresh.iter().filter(|r| gated(&r.name)) {
        let Some(b) = baseline.iter().find(|r| r.name == f.name) else {
            println!(
                "{:<36} {:>14} {:>14.1} {:>8}",
                f.name,
                "(new)",
                f.median_ns / 1e3,
                "-"
            );
            continue;
        };
        compared += 1;
        let ratio = f.median_ns / b.median_ns;
        let verdict = if ratio > tolerance {
            regressed += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<36} {:>14.1} {:>14.1} {:>7.2}x {verdict}",
            f.name,
            b.median_ns / 1e3,
            f.median_ns / 1e3,
            ratio
        );
    }

    if compared == 0 {
        eprintln!(
            "\nperf_check: no packed-kernel quick records matched between {baseline_path} and \
             {fresh_path} — the gate would be vacuous; failing"
        );
        return ExitCode::FAILURE;
    }
    if regressed > 0 {
        eprintln!(
            "\nperf_check: {regressed}/{compared} packed records regressed beyond {tolerance:.2}x"
        );
        return ExitCode::FAILURE;
    }
    println!("\nperf_check: {compared} packed records within tolerance");

    // Within-run floor: both records come from the same fresh run on the
    // same machine, so this ratio is immune to runner-class variance.
    let pair = |prefix: &str| {
        fresh
            .iter()
            .find(|r| r.name.starts_with(prefix) && r.name.ends_with("_quick"))
    };
    match (pair("sbsmm_packed_sseC"), pair("sbsmm_scalar_sseC")) {
        (Some(packed), Some(scalar)) => {
            let speedup = scalar.median_ns / packed.median_ns;
            println!(
                "within-run: {} vs {}: {speedup:.2}x (floor {min_speedup:.2}x)",
                packed.name, scalar.name
            );
            if speedup < min_speedup {
                eprintln!(
                    "\nperf_check: packed sbsmm speedup {speedup:.2}x fell below the \
                     {min_speedup:.2}x floor"
                );
                return ExitCode::FAILURE;
            }
        }
        _ => {
            eprintln!(
                "\nperf_check: fresh {fresh_path} lacks the sbsmm packed/scalar quick pair — \
                 the within-run floor would be vacuous; failing"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
