//! One-point RGF solve throughput: the warm-workspace allocation-free
//! path (`rgf_solve_into`) vs the cold allocating wrapper (`rgf_solve`).
//!
//! This is the per-`(kz, E)` unit of work the GF phase repeats thousands
//! of times per Born iteration; the warm/cold gap is what the `Workspace`
//! arena buys. `--json` records both into `BENCH_kernels.json`;
//! `--quick` shrinks the system for the CI smoke run.
use omen_bench::{
    header, json_flag, quick_flag, row, timed_median, write_bench_json, BenchRecord,
    BENCH_JSON_PATH,
};
use omen_linalg::Workspace;
use omen_rgf::testutil::test_system;
use omen_rgf::{rgf_solve, rgf_solve_into, RgfInputs, RgfSolution};

fn main() {
    let quick = quick_flag();
    // Two regimes: small blocks where per-solve allocation is a visible
    // fraction of the work, and GEMM-bound blocks at executable scale.
    let configs: &[(&str, usize, usize, usize)] = if quick {
        &[("small", 24, 12, 5), ("large", 8, 24, 3)]
    } else {
        &[("small", 64, 12, 15), ("large", 24, 48, 7)]
    };
    let mut records = Vec::new();
    for &(tag, nb, bs, reps) in configs {
        println!("RGF per-point solve [{tag}] (nb = {nb} blocks of {bs}x{bs})\n");

        let (m, sl, sg) = test_system(nb, bs, 0.11);
        let inputs = RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        };

        // Warm path: workspace + output buffers reused across solves.
        let mut ws = Workspace::new();
        let mut sol = RgfSolution::empty();
        rgf_solve_into(&inputs, &mut ws, &mut sol); // warmup
        let flops = sol.flops as f64;
        let t_warm = timed_median(reps, || {
            rgf_solve_into(&inputs, &mut ws, &mut sol);
        });

        // Cold path: every solve allocates scratch and output from scratch.
        let t_cold = timed_median(reps, || {
            std::hint::black_box(rgf_solve(&inputs));
        });

        let w = [22, 14, 12, 10];
        header(&["Path", "Time [ms]", "GFLOP/s", "vs cold"], &w);
        for (name, t) in [
            ("rgf_solve_into (warm)", t_warm),
            ("rgf_solve (cold)", t_cold),
        ] {
            row(
                &[
                    name.into(),
                    format!("{:.3}", t * 1e3),
                    format!("{:.2}", flops / t / 1e9),
                    format!("{:.2}x", t_cold / t),
                ],
                &w,
            );
        }
        println!();
        records.push(BenchRecord {
            name: format!("rgf_point_warm_{tag}_nb{nb}_bs{bs}"),
            n: bs,
            median_ns: t_warm * 1e9,
            gflops: flops / t_warm / 1e9,
        });
        records.push(BenchRecord {
            name: format!("rgf_point_cold_{tag}_nb{nb}_bs{bs}"),
            n: bs,
            median_ns: t_cold * 1e9,
            gflops: flops / t_cold / 1e9,
        });
    }
    println!("warm path is allocation-free (see tests/integration_alloc.rs)");

    if json_flag() {
        write_bench_json(BENCH_JSON_PATH, &records).expect("write BENCH_kernels.json");
        println!("wrote {} records to {BENCH_JSON_PATH}", records.len());
    }
}
