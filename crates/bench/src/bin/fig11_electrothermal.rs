//! Fig. 11 (and Fig. 1d): electro-thermal simulation of the FinFET
//! demonstrator — energy currents, spectral current, temperature map.
use omen_core::{electro_thermal_report, Simulation, SimulationConfig};

fn main() {
    println!("Fig. 11: Electro-thermal simulation (reduced-scale FinFET)\n");
    let mut cfg = SimulationConfig::demo();
    cfg.coupling = 0.01;
    cfg.mu_source = 0.4;
    cfg.max_iterations = 10;
    let mut sim = Simulation::new(cfg).expect("valid config");
    let result = sim.run().expect("demo run converges");
    let report = electro_thermal_report(&sim, &result);

    println!(
        "converged current: {:.6e} (profile spread {:.1e}) after {} iterations\n",
        result.current(),
        result.current_nonuniformity(),
        result.records.len()
    );

    println!("x [nm]   I(x)        J_E^el       J_E^ph       J_E^total    T_slab [K]");
    for n in 0..report.x.len() {
        println!(
            "{:6.2}  {:+.4e}  {:+.4e}  {:+.4e}  {:+.4e}   {:6.1}",
            report.x[n],
            report.current_profile[n],
            report.electron_energy_current[n],
            report.phonon_energy_current[n],
            report.total_energy_current[n],
            report.temperature_profile[n]
        );
    }
    println!(
        "\ncontact T = {:.1} K, peak lattice T = {:.1} K (self-heating ΔT = {:.2} K)",
        report.contact_temperature,
        report.t_max(),
        report.t_max() - report.contact_temperature
    );
    println!(
        "energy-conservation error (total flatness): {:.2e}",
        report.energy_conservation_error()
    );

    // Spectral current map: coarse ASCII of j(E, x).
    println!("\nspectral current map (rows: E; cols: interface; '#' strong, '.' weak):");
    let maxj = report
        .spectral_current
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, |a, b| a.max(b.abs()));
    for (ie, rowv) in report.spectral_current.iter().enumerate().step_by(4) {
        let line: String = rowv
            .iter()
            .map(|&j| {
                let r = (j.abs() / maxj.max(1e-300) * 4.0) as usize;
                [' ', '.', ':', '+', '#'][r.min(4)]
            })
            .collect();
        println!("  E[{ie:>3}] |{line}|");
    }
    println!("\npaper: heat generated near the channel end propagates to both contacts;");
    println!("       electron + phonon energy currents sum to a constant (energy conservation)");
}
