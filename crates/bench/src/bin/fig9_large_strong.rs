//! Fig. 9: strong scaling on Summit, Large structure, caching strategies.
use omen_bench::{header, row};

fn main() {
    println!("Fig. 9: Strong scaling on Summit, Large structure (model)\n");
    let w = [8, 12, 12, 14, 12, 10];
    header(
        &[
            "GPUs",
            "NoCache",
            "Cache BC",
            "Cache BC+Spec",
            "Mixed",
            "% HPL",
        ],
        &w,
    );
    for p in omen_perf::fig9(&[3_420, 6_840, 13_680, 27_360]) {
        row(
            &[
                p.gpus.to_string(),
                format!("{:.2}", p.pflops_nocache),
                format!("{:.2}", p.pflops_cache_bc),
                format!("{:.2}", p.pflops_cache_all),
                format!("{:.2}", p.pflops_mixed),
                format!("{:.0}%", p.hpl_fraction * 100.0),
            ],
            &w,
        );
    }
    println!("\n(all columns in Pflop/s, double precision except Mixed)");
    println!(
        "paper: 11.53 [63%], 28.23 [77%], 47.31 [64%], 86.26 [59%]; mixed 91.68 at full scale"
    );
}
