//! Table 4: SSE communication volume, weak scaling (TiB), Small structure.
use omen_bench::{header, row, tib};

fn main() {
    println!("Table 4: SSE Communication Volume Weak Scaling (TiB), Small structure\n");
    let w = [6, 10, 12, 12, 12];
    header(&["Nkz", "Procs", "OMEN", "DaCe", "Reduction"], &w);
    for r in omen_perf::table4() {
        row(
            &[
                r.nk.to_string(),
                r.nprocs.to_string(),
                tib(r.omen),
                tib(r.dace),
                format!("{:.0}x", r.reduction()),
            ],
            &w,
        );
    }
    println!("\npaper OMEN: 32.11 / 89.18 / 174.80 / 288.95 / 431.65");
    println!("paper DaCe: 0.54 [59x] / 1.22 [73x] / 2.17 [81x] / 3.38 [85x] / 4.86 [89x]");
}
