//! Table 8: the RGF three-matrix product `F[n] @ gR[n+1] @ E[n+1]` computed
//! three ways (dense/dense, CSRMM2+GEMMI, CSRMM2+CSRMM2).
use omen_bench::{header, rgf_like_blocks, row, timed_min};
use omen_linalg::{csrmm, gemm, gemmi, CMatrix, CscMatrix, CsrMatrix, Op, C64};

fn main() {
    println!("Table 8: 3-Matrix Multiplication Performance (F @ gR @ E)\n");
    let n = 384;
    let density = 0.06;
    let (f_dense, gr) = rgf_like_blocks(n, density, 11);
    let (e_dense, _) = rgf_like_blocks(n, density, 23);
    let f_csr = CsrMatrix::from_dense(&f_dense, 0.0);
    let e_csr = CsrMatrix::from_dense(&e_dense, 0.0);
    let e_csc = CscMatrix::from_dense(&e_dense, 0.0);
    let mut t1 = CMatrix::zeros(n, n);
    let mut t2 = CMatrix::zeros(n, n);
    let reps = 5;

    // 1. GEMM/GEMM.
    let t_gg = timed_min(reps, || {
        gemm(C64::ONE, &f_dense, Op::N, &gr, Op::N, C64::ZERO, &mut t1);
        gemm(C64::ONE, &t1, Op::N, &e_dense, Op::N, C64::ZERO, &mut t2);
    });
    // 2. CSRMM2(TN on E)/GEMMI: (E^T^T)… stage E@? as in §7.1.4: first
    //    E' = (E_csr^T … ) — we reproduce the paper's second approach:
    //    intermediate = csrmm(E^T, gR^T)…; simplified to one csrmm + gemmi.
    let t_cg = timed_min(reps, || {
        csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
        gemmi(C64::ONE, &t1, &e_csc, C64::ZERO, &mut t2);
    });
    // 3. CSRMM2/CSRMM2: F@gR with CSR, then (E^T @ (F gR)^T)^T via NT-style
    //    second sparse multiply — here: two sparse-left multiplies.
    let t_cc = timed_min(reps, || {
        csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
        // (t1 · E) = (E^T · t1^T)^T: use CSR(E)^T on the left.
        csrmm(C64::ONE, &e_csr, Op::T, &t1, C64::ZERO, &mut t2);
    });

    let w = [22, 12];
    header(&["Approach", "Time [ms]"], &w);
    row(&["GEMM/GEMM".into(), format!("{:.3}", t_gg * 1e3)], &w);
    row(&["CSRMM2/GEMMI".into(), format!("{:.3}", t_cg * 1e3)], &w);
    row(&["CSRMM2/CSRMM2".into(), format!("{:.3}", t_cc * 1e3)], &w);
    println!("\npaper (V100): 116.9 / 67.9 / 12.0 ms — sparse/sparse wins by 5.1-9.7x over dense");
}
