//! Fig. 5: decomposition volume expressions derived from SDFG memlets,
//! cross-checked against the analytic model and the measured executor.
use omen_dataflow::{apply_dace_decomposition, apply_omen_decomposition, bindings, sse_state};
use omen_perf::SimParams;

fn main() {
    println!("Fig. 5: Domain decomposition of SSE — memlet-derived volumes\n");
    let mut omen = sse_state();
    let omen_expr = apply_omen_decomposition(&mut omen);
    let mut dace = sse_state();
    let (_, dace_expr) = apply_dace_decomposition(&mut dace);
    println!("OMEN remote volume  = {omen_expr}\n");
    println!("DaCe remote volume  = {dace_expr}\n");

    let p = SimParams::small(7);
    let procs = 1792.0;
    let (ta, te) = omen_perf::dace_best_tiling(&p, 1792);
    let b = bindings(&[
        ("Nkz", 7.0),
        ("Nqz", 7.0),
        ("NE", 706.0),
        ("Nw", 70.0),
        ("Na", 4864.0),
        ("Nb", 34.0),
        ("Norb", 12.0),
        ("N3D", 3.0),
        ("tE", 706.0 / (procs / 7.0)),
        ("Ta", ta as f64),
        ("TE", te as f64),
    ]);
    let tib = (1u64 << 40) as f64;
    println!("evaluated at Small/Nkz=7/P=1792 (Ta={ta}, TE={te}):");
    println!("  SDFG OMEN G-volume:  {:.1} TiB", omen_expr.eval(&b) / tib);
    println!("  SDFG DaCe volume:    {:.2} TiB", dace_expr.eval(&b) / tib);
    println!(
        "  analytic model:      {:.1} / {:.2} TiB (omen-perf)",
        omen_perf::omen_volume(&p, 1792) / tib,
        omen_perf::dace_volume(&p, 1792) / tib
    );
    println!(
        "  MPI invocations:     OMEN O(9 Nw Nqz NE/tE) = {:.0}; DaCe = 4 (constant)",
        omen_perf::omen_invocations(&p, (706.0 / (procs / 7.0)) as usize)
    );
}
