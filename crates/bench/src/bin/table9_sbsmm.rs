//! Table 9: strided-batched small-matrix multiplication — padded
//! vendor-style batched GEMM vs the specialized SBSMM (scalar loop vs the
//! packed split-complex micro-kernel) vs the fused f16 panel path.
//!
//! The batch uses the transformed SSE kernel's stage-C shape: `12 × 12`
//! items, `A` strided (`Norb²`), `B` shared (stride `0`), accumulating
//! `C`. `--json` merges machine-readable records into
//! `BENCH_kernels.json`; `--quick` shrinks the batch and reps for the CI
//! smoke run (the perf-regression gate compares the `_quick` records
//! against the committed baseline).
use omen_bench::{
    header, json_flag, quick_flag, row, timed_median, write_bench_json, BenchRecord,
    BENCH_JSON_PATH,
};
use omen_linalg::{
    sbsmm, sbsmm_f16, sbsmm_f16_packed, sbsmm_padded, sbsmm_pb, sbsmm_scalar, BatchDims,
    F16APanels, F16BPanels, Normalization, PackedB, SplitF16Batch, Strides, C64,
};

fn main() {
    let quick = quick_flag();
    let suffix = if quick { "_quick" } else { "" };
    let norb = 12;
    let dims = BatchDims::square(norb);
    let bsz = norb * norb;
    let batch = if quick { 512 } else { 4096 };
    let reps = if quick { 5 } else { 9 };
    println!(
        "Table 9: Strided Matrix Multiplication Performance ({norb}x{norb}, batch {batch}, SSE stage-C shape)\n"
    );
    // Stage-C strides: A per-item, B shared, C per-item (accumulating).
    let s = Strides {
        a: bsz,
        b: 0,
        c: bsz,
    };
    let mk = |n: usize, seed: usize| -> Vec<C64> {
        (0..n)
            .map(|i| {
                omen_linalg::c64(
                    ((i * 7 + seed) as f64).sin() * 1e-3,
                    ((i * 3) as f64).cos() * 1e-3,
                )
            })
            .collect()
    };
    let a = mk(batch * bsz, 1);
    let b = mk(bsz, 2);
    let mut c = vec![C64::ZERO; batch * bsz];
    let useful = dims.flops() as f64 * batch as f64;

    // Padded vendor stand-in needs per-item B; reuse the shared block.
    let b_full = mk(batch * bsz, 2);
    let s_full = Strides::packed(dims);
    let t_pad = timed_median(reps, || {
        sbsmm_padded(
            dims,
            batch,
            C64::ONE,
            &a,
            &b_full,
            C64::ZERO,
            &mut c,
            s_full,
            16,
        )
    });

    let t_scalar = timed_median(reps, || {
        sbsmm_scalar(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s)
    });
    let t_packed = timed_median(reps, || {
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s)
    });
    let mut pb = PackedB::empty();
    pb.pack(norb, norb, &b);
    let t_pb = timed_median(reps, || {
        sbsmm_pb(dims, batch, C64::ONE, &a, s.a, &pb, C64::ZERO, &mut c, s.c)
    });

    // f16: scalar split-plane reference vs the fused panel path.
    let a16 = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
    let b16 = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
    let t_f16 = timed_median(reps, || {
        c.fill(C64::ZERO);
        sbsmm_f16(dims, batch, &a16, &b16, &mut c, s)
    });
    let mut ap = F16APanels::empty();
    ap.pack_from_c64(&a, norb, norb, batch, bsz, Normalization::PerTensor);
    let mut bp = F16BPanels::empty();
    bp.pack_from_c64(&b, norb, norb, 1, bsz, Normalization::PerTensor);
    let denorm = 1.0 / (ap.factor * bp.factor);
    let t_f16p = timed_median(reps, || {
        c.fill(C64::ZERO);
        sbsmm_f16_packed(dims, batch, &ap, 0, &bp, 0, denorm, &mut c, bsz);
    });

    let w = [28, 12, 16, 12];
    header(&["Kernel", "Time [ms]", "Useful Gflop/s", "vs scalar"], &w);
    let entries: &[(&str, f64)] = &[
        ("padded batched (cuBLAS-like)", t_pad),
        ("SBSMM scalar (seed loop)", t_scalar),
        ("SBSMM packed micro-kernel", t_packed),
        ("SBSMM packed, prepacked B", t_pb),
        ("SBSMM-16 scalar split-cplx", t_f16),
        ("SBSMM-16 fused f16 panels", t_f16p),
    ];
    for (name, t) in entries {
        row(
            &[
                (*name).into(),
                format!("{:.3}", t * 1e3),
                format!("{:.2}", useful / t / 1e9),
                format!("{:.2}x", t_scalar / t),
            ],
            &w,
        );
    }
    println!(
        "\nuseful fraction of the padded kernel: {:.1}% (paper: ~6-7% useful on cuBLAS)",
        useful / omen_linalg::batched::padded_flops(16, batch) as f64 * 100.0
    );
    println!(
        "paper (V100): cuBLAS 4.62 ms vs SBSMM 0.70 ms (5.76x); Tensor-Core f16 0.13 ms (31x)"
    );
    println!("shape target: packed sbsmm >= 2x the scalar small_gemm loop on stage-C batches");

    if json_flag() {
        let rec = |name: &str, t: f64| BenchRecord {
            name: format!("{name}_{norb}x{norb}_b{batch}{suffix}"),
            n: norb,
            median_ns: t * 1e9,
            gflops: useful / t / 1e9,
        };
        let records = vec![
            rec("sbsmm_scalar_sseC", t_scalar),
            rec("sbsmm_packed_sseC", t_packed),
            rec("sbsmm_packed_pb_sseC", t_pb),
            rec("sbsmm_f16_scalar_sseC", t_f16),
            rec("sbsmm_f16_packed_sseC", t_f16p),
        ];
        write_bench_json(BENCH_JSON_PATH, &records).expect("write BENCH_kernels.json");
        println!("\nwrote {} records to {BENCH_JSON_PATH}", records.len());
    }
}
