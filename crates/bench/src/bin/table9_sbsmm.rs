//! Table 9: strided-batched small-matrix multiplication — padded
//! vendor-style batched GEMM vs the specialized SBSMM vs f16 split-complex.
use omen_bench::{header, row, timed_min};
use omen_linalg::{
    sbsmm, sbsmm_f16, sbsmm_padded, BatchDims, Normalization, SplitF16Batch, Strides, C64,
};

fn main() {
    println!("Table 9: Strided Matrix Multiplication Performance (12x12 batch)\n");
    let dims = BatchDims::square(12);
    let s = Strides::packed(dims);
    let batch = 4096;
    let mk = |seed: usize| -> Vec<C64> {
        (0..batch * s.a)
            .map(|i| {
                omen_linalg::c64(
                    ((i * 7 + seed) as f64).sin() * 1e-3,
                    ((i * 3) as f64).cos() * 1e-3,
                )
            })
            .collect()
    };
    let a = mk(1);
    let b = mk(2);
    let mut c = vec![C64::ZERO; batch * s.c];
    let reps = 5;
    let useful = dims.flops() as f64 * batch as f64;

    let t_pad = timed_min(reps, || {
        sbsmm_padded(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s, 16)
    });
    let t_spec = timed_min(reps, || {
        sbsmm(dims, batch, C64::ONE, &a, &b, C64::ZERO, &mut c, s)
    });
    let a16 = SplitF16Batch::from_c64(&a, Normalization::PerTensor);
    let b16 = SplitF16Batch::from_c64(&b, Normalization::PerTensor);
    let t_f16 = timed_min(reps, || {
        c.fill(C64::ZERO);
        sbsmm_f16(dims, batch, &a16, &b16, &mut c, s)
    });

    let w = [24, 12, 16, 14];
    header(&["Kernel", "Time [ms]", "Useful Gflop/s", "vs padded"], &w);
    let performed_pad = omen_linalg::batched::padded_flops(16, batch) as f64;
    row(
        &[
            "padded batched (cuBLAS-like)".into(),
            format!("{:.3}", t_pad * 1e3),
            format!("{:.2}", useful / t_pad / 1e9),
            "1.00x".into(),
        ],
        &w,
    );
    row(
        &[
            "SBSMM (specialized)".into(),
            format!("{:.3}", t_spec * 1e3),
            format!("{:.2}", useful / t_spec / 1e9),
            format!("{:.2}x", t_pad / t_spec),
        ],
        &w,
    );
    row(
        &[
            "SBSMM-16 (split-complex)".into(),
            format!("{:.3}", t_f16 * 1e3),
            format!("{:.2}", useful / t_f16 / 1e9),
            format!("{:.2}x", t_pad / t_f16),
        ],
        &w,
    );
    println!(
        "\nuseful fraction of the padded kernel: {:.1}% (paper: ~6-7% useful on cuBLAS)",
        useful / performed_pad * 100.0
    );
    println!(
        "paper (V100): cuBLAS 4.62 ms vs SBSMM 0.70 ms (5.76x); Tensor-Core f16 0.13 ms (31x)"
    );
    println!("shape target: specialized beats padded by the padding ratio; f16 emulation trades storage, not speed, on CPU");
}
