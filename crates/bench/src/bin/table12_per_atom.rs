//! Table 12: per-atom performance, OMEN vs DaCe on 6,840 Summit GPUs.
use omen_bench::{header, row};

fn main() {
    println!("Table 12: Per-Atom Performance (model, 6,840 GPUs, Nkz=21, NE=1,220)\n");
    let m = omen_perf::table12();
    let w = [10, 8, 12, 16, 10];
    header(
        &["Variant", "Na", "Time [s]", "Time/Atom [s]", "Speedup"],
        &w,
    );
    row(
        &[
            "OMEN".into(),
            m.omen_na.to_string(),
            format!("{:.2}", m.omen_time),
            format!("{:.4}", m.omen_time_per_atom()),
            "1.0x".into(),
        ],
        &w,
    );
    row(
        &[
            "DaCe".into(),
            m.dace_na.to_string(),
            format!("{:.2}", m.dace_time),
            format!("{:.4}", m.dace_time_per_atom()),
            format!("{:.1}x", m.speedup()),
        ],
        &w,
    );
    println!("\npaper: OMEN 1,064 atoms 4,695.70 s (4.413 s/atom); DaCe 10,240 atoms 333.36 s (0.033 s/atom) = 140.9x");
}
