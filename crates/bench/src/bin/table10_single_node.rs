//! Table 10: single-node GF / SSE phase runtimes for the three code
//! generations: eager "Python" baseline, OMEN-style reference, and the
//! DaCe-transformed kernel (plus mixed precision).
use omen_bench::{header, row, sse_eager, timed};
use omen_core::{Simulation, SimulationConfig};
use omen_linalg::Normalization;

fn main() {
    println!("Table 10: Single-Node Performance (GF and SSE phases)\n");
    let mut cfg = SimulationConfig::demo();
    cfg.max_iterations = 1;
    let sim = Simulation::new(cfg).expect("valid config");
    let (gf, gf_wall) = timed(|| sim.gf_phase());
    let (g_l, g_g, d_l, d_g, gf_times) = (gf.g_l, gf.g_g, gf.d_l, gf.d_g, gf.times);
    let prob = sim.sse_problem();

    let (_, t_eager) = timed(|| sse_eager(&prob, &g_l, &g_g, &d_l, &d_g));
    let (out_ref, t_ref) = timed(|| omen_sse::sse_reference(&prob, &g_l, &g_g, &d_l, &d_g));
    let gla = g_l.to_layout(omen_sse::GLayout::AtomMajor);
    let gga = g_g.to_layout(omen_sse::GLayout::AtomMajor);
    let (out_dace, t_dace) = timed(|| omen_sse::sse_transformed(&prob, &gla, &gga, &d_l, &d_g));
    let (_, t_mix) = timed(|| {
        omen_sse::sse_mixed(
            &prob,
            &gla,
            &gga,
            &d_l,
            &d_g,
            omen_sse::MixedConfig {
                normalization: Normalization::PerTensor,
            },
        )
    });

    let w = [26, 14, 14];
    header(&["Variant", "GF [s]", "SSE [s]"], &w);
    row(
        &[
            "Python (eager temporaries)".into(),
            "(same GF)".into(),
            format!("{t_eager:.3}"),
        ],
        &w,
    );
    row(
        &[
            "OMEN (reference)".into(),
            format!("{gf_wall:.3}"),
            format!("{t_ref:.3}"),
        ],
        &w,
    );
    row(
        &[
            "DaCe (transformed)".into(),
            format!("{gf_wall:.3}"),
            format!("{t_dace:.3}"),
        ],
        &w,
    );
    row(
        &[
            "DaCe (mixed precision)".into(),
            "".into(),
            format!("{t_mix:.3}"),
        ],
        &w,
    );
    println!();
    println!(
        "GF sub-phases: spec {:.3}s  BC {:.3}s  RGF {:.3}s",
        gf_times.specialization.as_secs_f64(),
        gf_times.boundary.as_secs_f64(),
        gf_times.rgf.as_secs_f64()
    );
    println!(
        "SSE speedup DaCe vs reference: {:.2}x (flops ratio {:.3})",
        t_ref / t_dace,
        out_dace.flops as f64 / out_ref.flops as f64
    );
    println!("SSE slowdown eager vs reference: {:.2}x", t_eager / t_ref);
    println!("\npaper (Piz Daint node): GF 1342.8/144.1/111.3 s; SSE 30560/965/29.9 s");
    println!(
        "shape target: eager >> reference > transformed; transformed ~flops/2 x efficiency gain"
    );
}
