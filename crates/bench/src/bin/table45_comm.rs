//! Tables 4/5 executed: measured communication volumes of the live
//! Born loop against the §6.1.2 analytic models.
//!
//! The static `table4_comm_weak` / `table5_comm_strong` bins evaluate
//! the volume *models* at paper scale. This bin closes the loop: with
//! `--execute` it runs the full self-consistent Born iteration under
//! `ExecutorKind::Distributed { ranks }` for ranks × {OMEN, DaCe}
//! exchange schemes, captures one `VolumeLedger` per Born iteration
//! from the installed `PlanKernel`, and checks three things per leg:
//!
//! 1. **Structure** — the DaCe scheme is exactly 4 alltoalls per
//!    iteration and nothing else; the OMEN scheme is 2 broadcasts and
//!    2 reductions per `(q, ω)` round and no alltoalls.
//! 2. **Determinism** — every Born iteration moves byte-identical
//!    volume (the plans are data-independent).
//! 3. **Model agreement** — measured bytes per iteration against
//!    `omen_volume` / `dace_volume_with` evaluated at the live device's
//!    [`SimParams`], surfaced as the `comm(omen)` / `comm(dace)` rows
//!    of the attribution report printed per leg.
//!
//! With `--json` each leg merges a record into `BENCH_sweeps.json`:
//! `comm45_{omen|dace}_r{ranks}[_quick]` with `n` = ranks, `median_ns`
//! = measured bytes per Born iteration (deterministic, so exact), and
//! `gflops` = the measured/model volume ratio that `perf_check` bands
//! with `--min-comm-ratio`/`--max-comm-ratio`. Without `--execute` the
//! bin only prints the model volumes for the legs it would run.
use omen_bench::{
    header, json_flag, quick_flag, row, write_bench_json, BenchRecord, BENCH_SWEEPS_JSON_PATH,
};
use omen_comm::{tiling_for_ranks, CommPlan, OpKind, PlanKernel};
use omen_core::{ExecutorKind, Simulation, SimulationConfig};
use omen_perf::{attribute, dace_volume_with, omen_volume, AttributionModel, SimParams};
use omen_trace as trace;

/// The executed legs: both exchange schemes at 2 and 4 ranks — enough
/// to exercise a momentum-only and a momentum×energy process grid on
/// the tiny device (nk = 2).
const LEGS: [(CommPlan, usize); 4] = [
    (CommPlan::Omen, 2),
    (CommPlan::Omen, 4),
    (CommPlan::Dace, 2),
    (CommPlan::Dace, 4),
];

fn main() {
    let quick = quick_flag();
    let execute = std::env::args().any(|a| a == "--execute");
    println!("Tables 4/5 executed: Born-loop communication volume vs model\n");
    let params = tiny_params();
    model_table(&params);
    if execute {
        execute_legs(&params, quick);
    } else {
        println!("\n(--execute runs the Born loop under ExecutorKind::Distributed and");
        println!(" validates the measured VolumeLedger bytes against these models)");
    }
}

/// [`SimParams`] of the tiny FinFET slice every leg runs, taken from
/// the same live device the simulation will build — the models and the
/// measurement must agree on every dimension.
fn tiny_params() -> SimParams {
    let cfg = SimulationConfig::tiny();
    let sim = Simulation::new(cfg).expect("tiny config is valid");
    let prob = sim.sse_problem();
    SimParams {
        na: prob.na(),
        nb: prob.device.max_neighbors(),
        norb: prob.norb(),
        n3d: 3,
        nk: prob.nk,
        nq: prob.nq,
        ne: prob.ne,
        nw: prob.nw,
        bnum: prob.device.bnum(),
        bc_block_ops: 1.0,
    }
}

/// Model volume for one leg, in bytes per Born iteration.
fn model_bytes(params: &SimParams, plan: CommPlan, ranks: usize) -> f64 {
    match plan {
        CommPlan::Omen => omen_volume(params, ranks),
        CommPlan::Dace => {
            let tiling = tiling_for_ranks(params.na, params.ne, ranks)
                .expect("tiny device fits the bench tilings");
            dace_volume_with(params, tiling.ta, tiling.te)
        }
    }
}

fn model_table(params: &SimParams) {
    let w = [8, 8, 22];
    header(&["scheme", "ranks", "model [B/iteration]"], &w);
    for (plan, ranks) in LEGS {
        row(
            &[
                plan.name().into(),
                ranks.to_string(),
                format!("{:.0}", model_bytes(params, plan, ranks)),
            ],
            &w,
        );
    }
}

/// One executed leg: the tiny Born loop under the distributed executor
/// with the plan kernel's ledger sink kept, returning the (asserted
/// deterministic) measured bytes per iteration and the model ratio.
fn run_leg(params: &SimParams, plan: CommPlan, ranks: usize, iters: usize) -> (u64, f64) {
    let mut cfg = SimulationConfig::tiny();
    cfg.max_iterations = iters;
    cfg.executor = ExecutorKind::Distributed { ranks };
    cfg.comm_plan = plan;
    let mut sim = Simulation::new(cfg).expect("distributed tiny config is valid");
    // `Simulation::new` installed this kernel itself; rebuild it by hand
    // so the per-iteration ledger sink stays in reach.
    let kernel = PlanKernel::new(plan, ranks);
    let sink = kernel.ledger_sink();
    sim.set_kernel(Box::new(kernel));

    trace::reset();
    trace::arm();
    sim.run().expect("distributed Born loop succeeds");
    let snap = trace::snapshot();
    trace::disarm();

    let ledgers = sink.lock().expect("ledger sink lock").clone();
    assert_eq!(ledgers.len(), iters, "one ledger per Born iteration");
    let per_iter: Vec<u64> = ledgers.iter().map(|l| l.total_bytes()).collect();
    assert!(
        per_iter.windows(2).all(|w| w[0] == w[1]),
        "{} plan volume must be identical every iteration: {per_iter:?}",
        plan.name()
    );
    for ledger in &ledgers {
        match plan {
            CommPlan::Omen => {
                let rounds = (params.nq * params.nw) as u64;
                assert_eq!(ledger.calls(OpKind::Bcast), 2 * rounds, "2 bcasts/round");
                assert_eq!(ledger.calls(OpKind::Reduce), 2 * rounds, "2 reduces/round");
                assert_eq!(ledger.calls(OpKind::Alltoall), 0);
            }
            CommPlan::Dace => {
                assert_eq!(ledger.calls(OpKind::Alltoall), 4, "the 4 DaCe alltoalls");
                assert_eq!(ledger.calls(OpKind::Bcast), 0);
                assert_eq!(ledger.calls(OpKind::Reduce), 0);
            }
        }
    }
    let measured = per_iter[0];

    // The attribution report with the comm row for this scheme: the
    // trace-side view of the same measured-vs-model comparison.
    let model = AttributionModel {
        params: *params,
        iterations: iters as u64,
        omen_ranks: (plan == CommPlan::Omen).then_some(ranks),
        dace_tiling: (plan == CommPlan::Dace)
            .then(|| tiling_for_ranks(params.na, params.ne, ranks).expect("leg tiling fits"))
            .map(|t| (t.ta, t.te)),
        // The plan kernel runs its exchange once per Born iteration.
        comm_execs: iters as u64,
        stream: None,
    };
    println!(
        "\n{} plan, {ranks} ranks ({iters} Born iterations):\n{}",
        plan.name(),
        attribute(&snap, &model).render()
    );
    trace::reset();

    (measured, measured as f64 / model_bytes(params, plan, ranks))
}

fn execute_legs(params: &SimParams, quick: bool) {
    let suffix = if quick { "_quick" } else { "" };
    let iters = if quick { 3 } else { 4 };
    let mut records = Vec::new();
    let mut summary = Vec::new();
    for (plan, ranks) in LEGS {
        let (measured, ratio) = run_leg(params, plan, ranks, iters);
        summary.push((plan, ranks, measured, ratio));
        records.push(BenchRecord {
            name: format!("comm45_{}_r{ranks}{suffix}", plan.name()),
            n: ranks,
            median_ns: measured as f64,
            gflops: ratio,
        });
    }

    let w = [8, 8, 22, 22, 12];
    println!();
    header(
        &[
            "scheme",
            "ranks",
            "measured [B/iter]",
            "model [B/iter]",
            "ratio",
        ],
        &w,
    );
    for (plan, ranks, measured, ratio) in summary {
        row(
            &[
                plan.name().into(),
                ranks.to_string(),
                measured.to_string(),
                format!("{:.0}", model_bytes(params, plan, ranks)),
                format!("{ratio:.3}"),
            ],
            &w,
        );
    }
    println!("\nratio = measured/model; the model over-approximates halos (c = Nb), so");
    println!("ratios below 1 are expected at tiny scale — perf_check bands them.");

    if json_flag() {
        write_bench_json(BENCH_SWEEPS_JSON_PATH, &records).expect("write BENCH_sweeps.json");
        println!("wrote {BENCH_SWEEPS_JSON_PATH}");
    }
}
