//! Table 5: SSE communication volume, strong scaling (TiB), Nkz = 7.
use omen_bench::{header, row, tib};

fn main() {
    println!("Table 5: SSE Communication Volume Strong Scaling (TiB), Small structure, Nkz=7\n");
    let w = [10, 12, 12, 12];
    header(&["Procs", "OMEN", "DaCe", "Reduction"], &w);
    for r in omen_perf::table5() {
        row(
            &[
                r.nprocs.to_string(),
                tib(r.omen),
                tib(r.dace),
                format!("{:.0}x", r.reduction()),
            ],
            &w,
        );
    }
    println!("\npaper OMEN: 108.24 / 117.75 / 136.76 / 174.80 / 212.84");
    println!("paper DaCe: 0.95 [114x] / 1.13 [104x] / 1.48 [92x] / 2.17 [80x] / 2.87 [74x]");
}
