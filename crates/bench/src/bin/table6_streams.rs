//! Table 6: concurrent streams in the GF phase. CUDA streams are replaced
//! by worker-thread counts over independent energy-momentum points; the
//! shape to reproduce is diminishing-but-real gains up to high counts.
//!
//! `--execute` adds the real overlapped executor: the same bias sweep run
//! serially and through `omen_core::run_overlapped` (GF phase of point
//! *k+1* against SSE phase of point *k*), with `omen-trace` armed so the
//! measured GF/SSE overlap fraction can be compared against the
//! `omen_perf::StreamModel` pipeline prediction built from the serial
//! run's phase timings. A scheduler-overhead probe times the lowered-DAG
//! bookkeeping (`lower_iteration` + an inline walk) per Born iteration.
//!
//! With `--json` the execute leg merges four records into
//! `BENCH_sweeps.json`: `sweep_stream_serial*` (`n` = sweep points,
//! `median_ns` = wall per point), `sweep_stream_overlap*` (`n` = the
//! machine's available parallelism — `perf_check` exempts single-core
//! runs from the speedup floor — `gflops` = the *measured* overlap
//! fraction), `sweep_stream_model*` (`n` = pipelined tasks, `median_ns`
//! = modeled pipelined wall per point, `gflops` = modeled speedup), and
//! `sweep_sched_overhead*` (`n` = DAG tasks per iteration, `median_ns` =
//! scheduler bookkeeping per iteration). `--quick` shrinks both legs;
//! `--trace-out PATH` exports the overlapped run as chrome-trace JSON.

use omen_bench::{
    arg_value, header, json_flag, quick_flag, row, timed_median, timed_min, write_bench_json,
    BenchRecord, BENCH_SWEEPS_JSON_PATH,
};
use omen_core::{run_overlapped, ExecutorKind, Simulation, SimulationConfig, SimulationResult};
use omen_dataflow::simulation_sdfg;
use omen_device::{DeviceConfig, DeviceStructure};
use omen_rgf::{CacheMode, ElectronParams, ElectronSolver};
use omen_sched::lower_iteration;
use omen_trace as trace;
use std::time::Instant;

fn main() {
    let quick = quick_flag();
    scaling_table(quick);
    if std::env::args().any(|a| a == "--execute") {
        execute_leg(quick);
    }
}

/// The original Table 6 reproduction: stream counts → worker threads
/// over independent (kz, E) electron solves.
fn scaling_table(quick: bool) {
    println!("Table 6: Concurrency in Green's Functions (streams -> worker threads)\n");
    let dev = DeviceStructure::build(DeviceConfig::demo());
    let nk = 2usize;
    let ne = if quick { 8 } else { 24 };
    let kzs: Vec<f64> = (0..nk).map(|i| i as f64).collect();
    let es: Vec<f64> = (0..ne)
        .map(|i| -0.8 + 1.6 * i as f64 / (ne - 1) as f64)
        .collect();
    let run_with = |threads: usize| -> f64 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        timed_min(2, || {
            pool.install(|| {
                use rayon::prelude::*;
                (0..nk * ne).into_par_iter().for_each(|idx| {
                    let (ik, ie) = (idx / ne, idx % ne);
                    let mut solver = ElectronSolver::new(
                        &dev,
                        vec![0.0; dev.num_atoms()],
                        ElectronParams::default(),
                        CacheMode::NoCache,
                        kzs.clone(),
                        es.clone(),
                    );
                    std::hint::black_box(solver.solve(ik, ie, None, None, None));
                });
            })
        })
    };
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let w = [12, 12, 10];
    header(&["Streams", "Time [s]", "Speedup"], &w);
    let base = run_with(1);
    let counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 16] };
    for &t in counts
        .iter()
        .chain((!counts.contains(&auto)).then_some(&auto))
    {
        let time = if t == 1 { base } else { run_with(t) };
        row(
            &[
                if t == auto {
                    format!("auto ({t})")
                } else {
                    t.to_string()
                },
                format!("{time:.3}"),
                format!("{:.2}x", base / time),
            ],
            &w,
        );
    }
    println!("\npaper (Summit): 10.07 / 9.94 / 9.86 / 9.61 / 9.32 s for 1/2/4/16/auto(32)");
}

/// One sweep point: a tiny serial-per-point simulation, bias varied so
/// the points are distinct but every run of this function is identical.
fn sweep_sims(points: usize, iters: usize) -> Vec<Simulation> {
    (0..points)
        .map(|i| {
            let mut cfg = SimulationConfig::tiny();
            cfg.executor = ExecutorKind::Serial;
            cfg.max_iterations = iters;
            cfg.mu_drain = 0.01 * i as f64;
            Simulation::new(cfg).expect("valid sweep point")
        })
        .collect()
}

/// The `--execute` leg: serial vs overlapped wall, model vs measured
/// overlap, and the scheduler-overhead probe.
fn execute_leg(quick: bool) {
    let suffix = if quick { "_quick" } else { "" };
    let (points, iters) = if quick { (4, 4) } else { (8, 6) };
    println!("\n--execute: {points}-point sweep, {iters} Born iterations/point, window 2\n");

    // Both legs run twice and keep the faster repetition (with its
    // matching trace snapshot): the sweep is deterministic, so the min
    // wall is the honest cost and first-run warmup cancels out.
    let reps = 2;

    // --- serial reference, traced: phase busy times feed the model ---
    let mut serial_secs = f64::INFINITY;
    let mut serial_snap = trace::TraceSnapshot::default();
    let mut serial = Vec::new();
    for _ in 0..reps {
        trace::reset();
        trace::arm();
        let t0 = Instant::now();
        let results: Vec<SimulationResult> = sweep_sims(points, iters)
            .into_iter()
            .map(|mut s| s.run().expect("serial sweep point"))
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        let snap = trace::snapshot();
        trace::disarm();
        if secs < serial_secs {
            (serial_secs, serial_snap, serial) = (secs, snap, results);
        }
    }
    let tasks: usize = serial.iter().map(|r| r.records.len()).sum();

    // The Table 6 pipeline model, evaluated at the serial run's measured
    // per-iteration GF/SSE stage costs.
    let model = omen_perf::StreamModel::from_trace(&serial_snap, tasks);

    // --- the same sweep through the real overlapped executor ---
    let mut overlap_secs = f64::INFINITY;
    let mut snap = trace::TraceSnapshot::default();
    let mut outcomes = Vec::new();
    for _ in 0..reps {
        trace::reset();
        trace::arm();
        let t0 = Instant::now();
        let out = run_overlapped(sweep_sims(points, iters), 2);
        let secs = t0.elapsed().as_secs_f64();
        let rep_snap = trace::snapshot();
        trace::disarm();
        if secs < overlap_secs {
            (overlap_secs, snap, outcomes) = (secs, rep_snap, out);
        }
    }

    // The pipeline must not change the physics: bit-identical currents.
    for (s, o) in serial.iter().zip(&outcomes) {
        let o = o.finished().expect("overlapped sweep point");
        assert_eq!(
            s.current().to_bits(),
            o.current().to_bits(),
            "overlapped executor drifted from serial"
        );
    }

    let gf_busy = snap.phase_ns("gf_phase") as f64 * 1e-9;
    let sse_busy = snap.phase_ns("sse_phase") as f64 * 1e-9;
    let measured = omen_perf::measured_overlap_fraction(gf_busy, sse_busy, overlap_secs);

    // --- scheduler bookkeeping per Born iteration: lower + bind + walk
    // the DAG with no-op bodies, no physics ---
    let sdfg = simulation_sdfg();
    let cfg = SimulationConfig::tiny();
    let plan = lower_iteration(&sdfg, cfg.nk, cfg.ne, cfg.nw).expect("simulation SDFG lowers");
    let tasks_per_iter = plan.dag.len();
    let sched_secs = timed_median(if quick { 20 } else { 100 }, || {
        let plan = lower_iteration(&sdfg, cfg.nk, cfg.ne, cfg.nw).expect("simulation SDFG lowers");
        plan.dag.run_inline(|t| {
            std::hint::black_box(t);
        });
    });
    let sched_ns = sched_secs * 1e9;

    let w = [14, 12, 12, 12];
    header(&["variant", "wall [s]", "points/s", "overlap"], &w);
    row(
        &[
            "serial".into(),
            format!("{serial_secs:.3}"),
            format!("{:.2}", points as f64 / serial_secs),
            "-".into(),
        ],
        &w,
    );
    row(
        &[
            "overlapped".into(),
            format!("{overlap_secs:.3}"),
            format!("{:.2}", points as f64 / overlap_secs),
            format!("{:.0}%", 100.0 * measured),
        ],
        &w,
    );
    row(
        &[
            "model".into(),
            format!("{:.3}", model.pipelined_wall()),
            format!("{:.2}", points as f64 / model.pipelined_wall()),
            format!("{:.0}%", 100.0 * model.overlap_fraction()),
        ],
        &w,
    );
    println!(
        "\nmeasured {:.2}x vs modeled {:.2}x speedup over {tasks} pipelined tasks \
         (gf {:.1} ms, sse {:.1} ms per task)",
        serial_secs / overlap_secs,
        model.speedup(),
        1e3 * model.gf_s,
        1e3 * model.sse_s
    );
    println!(
        "scheduler: {tasks_per_iter} DAG tasks/iteration, {:.1} us bookkeeping/iteration",
        sched_ns / 1e3
    );

    if let Some(path) = arg_value("--trace-out") {
        std::fs::write(&path, trace::chrome_trace_json(&snap)).expect("write chrome trace");
        println!("trace: wrote {path} ({} phase windows)", snap.phases.len());
    }
    trace::reset();

    if json_flag() {
        let per_point = |secs: f64| secs * 1e9 / points as f64;
        let records = [
            BenchRecord {
                name: format!("sweep_stream_serial{suffix}"),
                n: points,
                median_ns: per_point(serial_secs),
                gflops: points as f64 / serial_secs,
            },
            BenchRecord {
                name: format!("sweep_stream_overlap{suffix}"),
                n: std::thread::available_parallelism().map_or(1, |n| n.get()),
                median_ns: per_point(overlap_secs),
                gflops: measured,
            },
            BenchRecord {
                name: format!("sweep_stream_model{suffix}"),
                n: tasks,
                median_ns: per_point(model.pipelined_wall()),
                gflops: model.speedup(),
            },
            BenchRecord {
                name: format!("sweep_sched_overhead{suffix}"),
                n: tasks_per_iter,
                median_ns: sched_ns,
                gflops: 0.0,
            },
        ];
        write_bench_json(BENCH_SWEEPS_JSON_PATH, &records).expect("write BENCH_sweeps.json");
        println!("wrote {BENCH_SWEEPS_JSON_PATH}");
    }
}
