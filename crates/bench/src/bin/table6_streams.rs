//! Table 6: concurrent streams in the GF phase. CUDA streams are replaced
//! by worker-thread counts over independent energy-momentum points; the
//! shape to reproduce is diminishing-but-real gains up to high counts.
use omen_bench::{header, row, timed_min};
use omen_device::{DeviceConfig, DeviceStructure};
use omen_rgf::{CacheMode, ElectronParams, ElectronSolver};

fn main() {
    println!("Table 6: Concurrency in Green's Functions (streams -> worker threads)\n");
    let dev = DeviceStructure::build(DeviceConfig::demo());
    let nk = 2usize;
    let ne = 24usize;
    let kzs: Vec<f64> = (0..nk).map(|i| i as f64).collect();
    let es: Vec<f64> = (0..ne)
        .map(|i| -0.8 + 1.6 * i as f64 / (ne - 1) as f64)
        .collect();
    let run_with = |threads: usize| -> f64 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        timed_min(2, || {
            pool.install(|| {
                use rayon::prelude::*;
                (0..nk * ne).into_par_iter().for_each(|idx| {
                    let (ik, ie) = (idx / ne, idx % ne);
                    let mut solver = ElectronSolver::new(
                        &dev,
                        vec![0.0; dev.num_atoms()],
                        ElectronParams::default(),
                        CacheMode::NoCache,
                        kzs.clone(),
                        es.clone(),
                    );
                    std::hint::black_box(solver.solve(ik, ie, None, None, None));
                });
            })
        })
    };
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let w = [12, 12, 10];
    header(&["Streams", "Time [s]", "Speedup"], &w);
    let base = run_with(1);
    for &t in &[1usize, 2, 4, 16, auto] {
        let time = if t == 1 { base } else { run_with(t) };
        row(
            &[
                if t == auto {
                    format!("auto ({t})")
                } else {
                    t.to_string()
                },
                format!("{time:.3}"),
                format!("{:.2}x", base / time),
            ],
            &w,
        );
    }
    println!("\npaper (Summit): 10.07 / 9.94 / 9.86 / 9.61 / 9.32 s for 1/2/4/16/auto(32)");
}
