//! Fig. 10: roofline of the computational kernels on the V100.
use omen_bench::{header, row};
use omen_perf::{attainable, is_compute_bound, paper_kernels, SimParams, V100};

fn main() {
    println!("Fig. 10: Roofline model of the computational kernels (V100, L2-resident)\n");
    let p = SimParams::large(21);
    let ks = paper_kernels(p.block_size() as usize, p.norb);
    let w = [10, 18, 18, 16];
    header(&["Kernel", "OI [flop/byte]", "Attainable", "Regime"], &w);
    for k in &ks {
        row(
            &[
                k.name.into(),
                format!("{:.2}", k.intensity),
                format!("{:.2} Tflop/s", attainable(&V100, k, true) / 1e12),
                if is_compute_bound(&V100, k, true) {
                    "compute-bound".into()
                } else {
                    "memory-bound".into()
                },
            ],
            &w,
        );
    }
    println!("\npaper: RGF on the DP compute ceiling; SSE-64 on the L2 bandwidth slope;");
    println!("       SSE-16 gains from 4x smaller elements but stays bandwidth-limited");
}
