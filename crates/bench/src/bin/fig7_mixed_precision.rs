//! Fig. 7: mixed-precision SSE — output value distribution (a) and the
//! convergence of the electronic current for f64 vs f16 with/without
//! normalization (b).
use omen_core::{KernelVariant, Simulation, SimulationConfig};
use omen_linalg::{magnitude_distribution, Normalization};

fn main() {
    println!("Fig. 7: double- vs half-precision SSE\n");
    let mut cfg = SimulationConfig::tiny();
    cfg.coupling = 0.01;
    cfg.max_iterations = 10;
    cfg.tolerance = 1e-9;

    // (a) output value distribution of Σ< (real/imaginary planes).
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let gf = sim.gf_phase();
    let (gl, gg, dl, dg) = (gf.g_l, gf.g_g, gf.d_l, gf.d_g);
    let out = sim.sse_phase(&gl, &gg, &dl, &dg);
    let sl = out.sigma_l.to_layout(omen_sse::GLayout::PairMajor);
    for (plane, vals) in [
        (
            "Sigma< (real)",
            omen_linalg::norms::real_plane(sl.as_slice()),
        ),
        (
            "Sigma< (imaginary)",
            omen_linalg::norms::imag_plane(sl.as_slice()),
        ),
    ] {
        let d = magnitude_distribution(&vals);
        println!(
            "(a) {plane}: {} nonzero values spanning 1e{} .. 1e{} ({} decades)",
            d.nonzeros,
            d.decade_lo,
            d.decade_lo + d.counts.len() as i32 - 1,
            d.counts.len()
        );
    }
    println!("    paper: values span ~1e-21 .. 1e-1 — far beyond binary16's 12-decade range\n");

    // (b) convergence of the current per iteration.
    let run = |kernel: KernelVariant| -> Vec<f64> {
        let mut c = cfg.clone();
        c.kernel = kernel;
        Simulation::new(c)
            .expect("valid config")
            .run()
            .expect("reference run converges")
            .current_history()
    };
    let h64 = run(KernelVariant::Transformed);
    let h16 = run(KernelVariant::Mixed(Normalization::PerTensor));
    let h16raw = run(KernelVariant::Mixed(Normalization::None));
    println!("(b) iteration, I(64-bit), I(16-bit norm), I(16-bit raw), relerr(norm), relerr(raw)");
    for i in 0..h64.len().min(h16.len()).min(h16raw.len()) {
        println!(
            "  {:>2}  {:.8e}  {:.8e}  {:.8e}   {:.2e}   {:.2e}",
            i + 1,
            h64[i],
            h16[i],
            h16raw[i],
            ((h16[i] - h64[i]) / h64[i]).abs(),
            ((h16raw[i] - h64[i]) / h64[i]).abs()
        );
    }
    let last = h64.len() - 1;
    println!(
        "\nconverged relative difference: normalized {:.2e}, unnormalized {:.2e}",
        ((h16[h16.len() - 1] - h64[last]) / h64[last]).abs(),
        ((h16raw[h16raw.len() - 1] - h64[last]) / h64[last]).abs()
    );
    println!("paper: 1.2e-6 with normalization, 3e-3 without");
}
