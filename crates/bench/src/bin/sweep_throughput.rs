//! Sweep-service throughput: cold independent solves vs the warm-started
//! sweep through `omen-serve`.
//!
//! Runs the same FinFET bias sweep twice — once as isolated cold
//! simulations, once as a server job whose points warm-start from their
//! neighbors — and reports sweep-points/second plus the measured Born
//! iteration counts. `--json` merges the records into
//! `BENCH_sweeps.json`; `--quick` shrinks the sweep for CI smoke runs.
//!
//! Record encoding: `n` carries the *total Born iterations* of the sweep
//! (the physical work), `median_ns` the wall time per point, and `gflops`
//! the sweep throughput in points/second.
//!
//! Two fault-machinery records ride along. `sweep_fault_probe*` measures
//! one `omen_fault::should_inject` call (`median_ns` = ns/call, `n` =
//! probe iterations, `gflops` = 1 when a fault plan was armed) so
//! `perf_check` can bound the per-point cost of the injection hooks.
//! `sweep_fault_retries*` repurposes the fields as raw counters: `n` =
//! retries, `median_ns` = cold fallbacks, `gflops` = quarantined donors
//! — all exactly zero in a fault-free run.
//!
//! Two tracing records follow the same pattern. `sweep_traced_warm*` is
//! the warm sweep re-run with the `omen-trace` registry armed (same field
//! meaning as `sweep_warm*`). `sweep_trace_probe*` carries the
//! disarmed-overhead inputs `perf_check` gates on: `n` = instrumentation
//! calls per warm point counted from the armed run's snapshot,
//! `median_ns` = cost of one *disarmed* instrumentation call, `gflops` =
//! the armed/disarmed wall-time ratio of the warm sweep. Passing
//! `--trace-out PATH` additionally exports the armed run as
//! chrome://tracing JSON.

use omen_bench::{
    arg_value, header, json_flag, quick_flag, row, write_bench_json, BenchRecord,
    BENCH_SWEEPS_JSON_PATH,
};
use omen_core::Simulation;
use omen_serve::{CacheConfig, ServerConfig, SweepServer, SweepSpec};
use omen_trace as trace;
use std::time::Instant;

fn main() {
    let quick = quick_flag();
    let points = if quick { 4 } else { 8 };
    let suffix = if quick { "_quick" } else { "" };
    let spec = SweepSpec::finfet_bias(points);
    println!(
        "sweep_throughput: {points}-point FinFET bias sweep ({:.2} .. {:.2} eV)\n",
        spec.values[0],
        spec.values[points - 1]
    );

    // --- cold: every point an independent simulation ---
    let t0 = Instant::now();
    let mut cold_iters = 0u32;
    let mut cold_currents = Vec::with_capacity(points);
    for i in 0..points {
        let run = Simulation::new(spec.config_for(i))
            .expect("valid sweep point")
            .run()
            .expect("cold sweep point converges");
        cold_iters += run.records.len() as u32;
        cold_currents.push(run.current());
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // --- warm: the same sweep as one server job ---
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        cache: CacheConfig::default(),
        ..ServerConfig::default()
    });
    let t0 = Instant::now();
    let result = server
        .submit(spec)
        .expect("valid sweep")
        .wait()
        .expect("sweep completes");
    let warm_secs = t0.elapsed().as_secs_f64();
    let m = result.metrics;

    let widths = [10usize, 12, 12, 14, 12];
    header(
        &["variant", "points/s", "secs", "born iters", "warm pts"],
        &widths,
    );
    row(
        &[
            "cold".into(),
            format!("{:.3}", points as f64 / cold_secs),
            format!("{cold_secs:.2}"),
            format!("{cold_iters}"),
            "0".into(),
        ],
        &widths,
    );
    row(
        &[
            "warm".into(),
            format!("{:.3}", points as f64 / warm_secs),
            format!("{warm_secs:.2}"),
            format!("{}", m.born_iterations),
            format!("{}", m.warm_points),
        ],
        &widths,
    );
    println!(
        "\nwarm start: {:.2}x points/s, {} Born iterations saved, cache hit rate {:.0}%",
        cold_secs / warm_secs,
        m.iterations_saved,
        100.0 * m.cache_hit_rate()
    );
    println!(
        "fault machinery: {} retries, {} cold fallbacks, {} quarantined (plan {})",
        m.retries,
        m.cold_fallbacks,
        m.quarantined,
        if omen_fault::active() {
            "armed"
        } else {
            "disabled"
        }
    );

    // --- fault-hook overhead probe: one should_inject call, measured
    // through the same global entry point the worker hot path uses ---
    let probe_iters = 100_000u64;
    let t0 = Instant::now();
    let mut fired = 0u64;
    for i in 0..probe_iters {
        if omen_fault::should_inject(omen_fault::FaultSite::NanPoison, i) {
            fired += 1;
        }
    }
    let probe_ns = t0.elapsed().as_nanos() as f64 / probe_iters as f64;
    std::hint::black_box(fired);
    println!("fault probe: {probe_ns:.1} ns per should_inject call");

    // --- traced warm sweep: the same job with the trace registry armed ---
    trace::reset();
    trace::arm();
    let traced_server = SweepServer::start(ServerConfig {
        workers: 1,
        cache: CacheConfig::default(),
        ..ServerConfig::default()
    });
    let t0 = Instant::now();
    let traced_result = traced_server
        .submit(SweepSpec::finfet_bias(points))
        .expect("valid sweep")
        .wait()
        .expect("traced sweep completes");
    let traced_secs = t0.elapsed().as_secs_f64();
    // Join the workers so every span guard has dropped before snapshot.
    drop(traced_server);
    let snap = trace::snapshot();
    trace::disarm();

    // Instrumentation calls the armed warm sweep actually made, counted
    // from the registry itself: every span and phase guard (enter + drop),
    // every event, and the counter increments on the kernel hot paths —
    // one `add2` per gemm/sbsmm call, two pack-size adds per sbsmm, one
    // add per comm call, one SSE-flops add per kernel application.
    let sse_runs = snap.spans.iter().filter(|s| s.name == "sse_kernel").count() as u64;
    let trace_ops = 2 * (snap.spans.len() + snap.phases.len() + snap.events.len()) as u64
        + snap.counter(trace::Counter::GemmCalls)
        + 3 * snap.counter(trace::Counter::SbsmmCalls)
        + snap.counter(trace::Counter::CommCalls)
        + sse_runs;
    let ops_per_point = trace_ops / points as u64;

    // Disarmed per-call cost: the price every *untraced* run pays for the
    // instrumentation being compiled in. Three calls per iteration.
    let t0 = Instant::now();
    for i in 0..probe_iters {
        let _span = trace::span!("disarmed_probe");
        trace::add2(trace::Counter::GemmCalls, 0, trace::Counter::GemmFlops, 0);
        trace::event2("disarmed_probe", i as f64, 0.0);
    }
    let trace_probe_ns = t0.elapsed().as_nanos() as f64 / (3 * probe_iters) as f64;
    trace::rearm_from_env();
    println!(
        "trace: armed sweep {:.2}x the untraced warm sweep; {} instrumentation calls/point, \
         {trace_probe_ns:.2} ns/call disarmed",
        traced_secs / warm_secs,
        ops_per_point
    );

    if let Some(path) = arg_value("--trace-out") {
        std::fs::write(&path, trace::chrome_trace_json(&snap)).expect("write chrome trace");
        println!("trace: wrote {path} ({} spans)", snap.spans.len());
    }
    trace::reset();

    for (p, cold) in result.points.iter().zip(&cold_currents) {
        let rel = ((p.current - cold) / cold).abs();
        assert!(
            rel < 1e-2,
            "warm observable drifted from cold at {}: rel {rel}",
            p.value
        );
    }

    if json_flag() {
        let per_point = |secs: f64| secs * 1e9 / points as f64;
        let records = [
            BenchRecord {
                name: format!("sweep_cold{suffix}"),
                n: cold_iters as usize,
                median_ns: per_point(cold_secs),
                gflops: points as f64 / cold_secs,
            },
            BenchRecord {
                name: format!("sweep_warm{suffix}"),
                n: m.born_iterations as usize,
                median_ns: per_point(warm_secs),
                gflops: points as f64 / warm_secs,
            },
            BenchRecord {
                name: format!("sweep_fault_probe{suffix}"),
                n: probe_iters as usize,
                median_ns: probe_ns,
                // Records whether a fault plan was armed during the
                // bench; perf_check only asserts zero retries when not.
                gflops: if omen_fault::active() { 1.0 } else { 0.0 },
            },
            BenchRecord {
                name: format!("sweep_fault_retries{suffix}"),
                n: m.retries as usize,
                median_ns: m.cold_fallbacks as f64,
                gflops: m.quarantined as f64,
            },
            BenchRecord {
                name: format!("sweep_traced_warm{suffix}"),
                n: traced_result.metrics.born_iterations as usize,
                median_ns: per_point(traced_secs),
                gflops: points as f64 / traced_secs,
            },
            BenchRecord {
                name: format!("sweep_trace_probe{suffix}"),
                n: ops_per_point as usize,
                median_ns: trace_probe_ns,
                gflops: traced_secs / warm_secs,
            },
        ];
        write_bench_json(BENCH_SWEEPS_JSON_PATH, &records).expect("write BENCH_sweeps.json");
        println!("wrote {BENCH_SWEEPS_JSON_PATH}");
    }
}
