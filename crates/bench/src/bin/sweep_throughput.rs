//! Sweep-service throughput: cold independent solves vs the warm-started
//! sweep through `omen-serve`.
//!
//! Runs the same FinFET bias sweep twice — once as isolated cold
//! simulations, once as a server job whose points warm-start from their
//! neighbors — and reports sweep-points/second plus the measured Born
//! iteration counts. `--json` merges the records into
//! `BENCH_sweeps.json`; `--quick` shrinks the sweep for CI smoke runs.
//!
//! Record encoding: `n` carries the *total Born iterations* of the sweep
//! (the physical work), `median_ns` the wall time per point, and `gflops`
//! the sweep throughput in points/second.

use omen_bench::{
    header, json_flag, quick_flag, row, write_bench_json, BenchRecord, BENCH_SWEEPS_JSON_PATH,
};
use omen_core::Simulation;
use omen_serve::{CacheConfig, ServerConfig, SweepServer, SweepSpec};
use std::time::Instant;

fn main() {
    let quick = quick_flag();
    let points = if quick { 4 } else { 8 };
    let suffix = if quick { "_quick" } else { "" };
    let spec = SweepSpec::finfet_bias(points);
    println!(
        "sweep_throughput: {points}-point FinFET bias sweep ({:.2} .. {:.2} eV)\n",
        spec.values[0],
        spec.values[points - 1]
    );

    // --- cold: every point an independent simulation ---
    let t0 = Instant::now();
    let mut cold_iters = 0u32;
    let mut cold_currents = Vec::with_capacity(points);
    for i in 0..points {
        let run = Simulation::new(spec.config_for(i))
            .expect("valid sweep point")
            .run();
        cold_iters += run.records.len() as u32;
        cold_currents.push(run.current());
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // --- warm: the same sweep as one server job ---
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        cache: CacheConfig::default(),
    });
    let t0 = Instant::now();
    let result = server
        .submit(spec)
        .expect("valid sweep")
        .wait()
        .expect("sweep completes");
    let warm_secs = t0.elapsed().as_secs_f64();
    let m = result.metrics;

    let widths = [10usize, 12, 12, 14, 12];
    header(
        &["variant", "points/s", "secs", "born iters", "warm pts"],
        &widths,
    );
    row(
        &[
            "cold".into(),
            format!("{:.3}", points as f64 / cold_secs),
            format!("{cold_secs:.2}"),
            format!("{cold_iters}"),
            "0".into(),
        ],
        &widths,
    );
    row(
        &[
            "warm".into(),
            format!("{:.3}", points as f64 / warm_secs),
            format!("{warm_secs:.2}"),
            format!("{}", m.born_iterations),
            format!("{}", m.warm_points),
        ],
        &widths,
    );
    println!(
        "\nwarm start: {:.2}x points/s, {} Born iterations saved, cache hit rate {:.0}%",
        cold_secs / warm_secs,
        m.iterations_saved,
        100.0 * m.cache_hit_rate()
    );
    for (p, cold) in result.points.iter().zip(&cold_currents) {
        let rel = ((p.current - cold) / cold).abs();
        assert!(
            rel < 1e-2,
            "warm observable drifted from cold at {}: rel {rel}",
            p.value
        );
    }

    if json_flag() {
        let per_point = |secs: f64| secs * 1e9 / points as f64;
        let records = [
            BenchRecord {
                name: format!("sweep_cold{suffix}"),
                n: cold_iters as usize,
                median_ns: per_point(cold_secs),
                gflops: points as f64 / cold_secs,
            },
            BenchRecord {
                name: format!("sweep_warm{suffix}"),
                n: m.born_iterations as usize,
                median_ns: per_point(warm_secs),
                gflops: points as f64 / warm_secs,
            },
        ];
        write_bench_json(BENCH_SWEEPS_JSON_PATH, &records).expect("write BENCH_sweeps.json");
        println!("wrote {BENCH_SWEEPS_JSON_PATH}");
    }
}
