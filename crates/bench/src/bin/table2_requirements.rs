//! Table 2: requirements for accurate dissipative DFT+NEGF simulations.
use omen_bench::{header, row};

fn main() {
    println!("Table 2: Requirements for Accurate Dissipative DFT+NEGF Simulations\n");
    let w = [10, 52, 10];
    header(&["Variable", "Description", "Value"], &w);
    for r in omen_perf::table2_requirements() {
        row(
            &[r.variable.into(), r.description.into(), r.value.into()],
            &w,
        );
    }
}
