//! Fig. 8: strong/weak scaling of OMEN vs DaCe on Piz Daint and Summit
//! (modeled times), plus a measured small-scale execution of both
//! communication plans on the simulated MPI.
use omen_bench::{header, row};
use omen_comm::{run_dace_plan, run_omen_plan, DaceTiling, OmenGrid};
use omen_perf::{fig8_strong, fig8_weak, MachineSpec};
use omen_sse::testutil::{random_inputs, tiny_device};
use omen_sse::SseProblem;

fn main() {
    println!("Fig. 8: DaCe OMEN simulation scalability (model)\n");
    let w = [8, 6, 14, 14, 14, 14, 10, 10];
    for (machine, strong_gpus, weak_pts) in [
        (
            MachineSpec::piz_daint(),
            vec![112usize, 300, 1000, 2000, 5300],
            vec![
                (3usize, 384usize),
                (5, 640),
                (7, 896),
                (9, 1152),
                (11, 1408),
            ],
        ),
        (
            MachineSpec::summit(),
            vec![114, 342, 684, 1368],
            vec![(3, 396), (5, 660), (7, 924), (9, 1188), (11, 1452)],
        ),
    ] {
        println!("== {} strong scaling (Small, Nkz=7) ==", machine.name);
        header(
            &[
                "GPUs",
                "Nkz",
                "OMEN comp",
                "OMEN comm",
                "DaCe comp",
                "DaCe comm",
                "speedup",
                "comm x",
            ],
            &w,
        );
        for p in fig8_strong(&machine, &strong_gpus) {
            row(
                &[
                    p.gpus.to_string(),
                    p.nk.to_string(),
                    format!("{:.0}", p.omen_comp),
                    format!("{:.0}", p.omen_comm),
                    format!("{:.1}", p.dace_comp),
                    format!("{:.2}", p.dace_comm),
                    format!("{:.0}x", p.speedup()),
                    format!("{:.0}x", p.comm_improvement()),
                ],
                &w,
            );
        }
        println!(
            "\n== {} weak scaling (Nkz grows with machine) ==",
            machine.name
        );
        header(
            &[
                "GPUs",
                "Nkz",
                "OMEN comp",
                "OMEN comm",
                "DaCe comp",
                "DaCe comm",
                "speedup",
                "comm x",
            ],
            &w,
        );
        for p in fig8_weak(&machine, &weak_pts) {
            row(
                &[
                    p.gpus.to_string(),
                    p.nk.to_string(),
                    format!("{:.0}", p.omen_comp),
                    format!("{:.0}", p.omen_comm),
                    format!("{:.1}", p.dace_comp),
                    format!("{:.2}", p.dace_comm),
                    format!("{:.0}x", p.speedup()),
                    format!("{:.0}x", p.comm_improvement()),
                ],
                &w,
            );
        }
        println!();
    }
    println!("paper: total speedup up to 16.3x (Piz Daint) / 24.5x (Summit); comm 417x / 80x\n");

    // Measured: execute both plans for real on simulated ranks.
    println!("== measured plan execution (simulated MPI, tiny device) ==");
    let dev = tiny_device();
    let prob = SseProblem::new(&dev, 2, 10, 2, 3, 1.0, 1.0);
    let (gl, gg, dl, dg) = random_inputs(&prob, 5);
    let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
    let tiling = DaceTiling::new(3, 2, prob.na(), prob.ne);
    let (_, lo) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);
    let (_, ld) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);
    println!(
        "  OMEN: {} bytes in {} MPI calls",
        lo.total_bytes(),
        lo.total_calls()
    );
    println!(
        "  DaCe: {} bytes in {} MPI calls (4 Alltoallv)",
        ld.total_bytes(),
        ld.total_calls()
    );
    println!(
        "  measured reduction: {:.1}x volume, {:.0}x calls",
        lo.total_bytes() as f64 / ld.total_bytes() as f64,
        lo.total_calls() as f64 / ld.total_calls() as f64
    );
}
