//! Shared utilities of the benchmark harness: table formatting, timing,
//! workload construction, and the "eager-temporaries" SSE variant standing
//! in for the paper's plain-Python baseline (Table 10).

use omen_linalg::{matmul, CMatrix, C64};
use omen_sse::{d_combination, DTensor, GTensor, SseProblem};
use std::time::Instant;

/// Prints a formatted table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times a closure `reps` times, returning the minimum seconds.
pub fn timed_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Pretty-prints a byte count in TiB.
pub fn tib(bytes: f64) -> String {
    format!("{:.2}", bytes / (1u64 << 40) as f64)
}

/// The "Python" baseline of Table 10: the reference SSE arithmetic
/// evaluated numpy-style — every small operation allocates fresh
/// `CMatrix` temporaries and goes through the generic (interpreter-like,
/// dynamically dispatched) operator path. Produces identical values to
/// `sse_reference`; only the execution style differs.
pub fn sse_eager(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
) -> (GTensor, GTensor) {
    let norb = prob.norb();
    let na = prob.na();
    let mut sigma_l = GTensor::zeros(prob.nk, prob.ne, na, norb, omen_sse::GLayout::PairMajor);
    let mut sigma_g = GTensor::zeros(prob.nk, prob.ne, na, norb, omen_sse::GLayout::PairMajor);
    let grads = &prob.device.gradients;
    let to_mat = |s: &[C64]| CMatrix::from_vec(norb, norb, s.to_vec());
    // Boxed closures emulate per-op dynamic dispatch.
    type OpBox<'a> = Box<dyn Fn(&CMatrix, &CMatrix) -> CMatrix + 'a>;
    let mul: OpBox = Box::new(|a: &CMatrix, b: &CMatrix| matmul(a, b));
    let add: OpBox = Box::new(|a: &CMatrix, b: &CMatrix| a + b);

    for a in 0..na {
        for (pair, b) in prob.pairs_of(a) {
            let rev = prob.rev_pair[pair];
            for q in 0..prob.nq {
                for m in 0..prob.nw {
                    let dc_l = d_combination(d_l, q, m, pair, rev, a, b);
                    let dc_g = d_combination(d_g, q, m, pair, rev, a, b);
                    let steps = prob.omega_steps(m);
                    for i in 0..3 {
                        let mut c_l = CMatrix::zeros(norb, norb);
                        let mut c_g = CMatrix::zeros(norb, norb);
                        for j in 0..3 {
                            let gj = to_mat(grads.grads[rev][j].as_slice());
                            c_l = add(&c_l, &gj.scaled(dc_l[j * 3 + i]));
                            c_g = add(&c_g, &gj.scaled(dc_g[j * 3 + i]));
                        }
                        let gi = to_mat(grads.grads[pair][i].as_slice());
                        for k in 0..prob.nk {
                            let kk = prob.k_minus_q(k, q);
                            for e in 0..prob.ne {
                                if e >= steps {
                                    let t =
                                        mul(&mul(&gi, &to_mat(g_l.block(kk, e - steps, b))), &c_l);
                                    accum(sigma_l.block_mut(k, e, a), &t);
                                    let t =
                                        mul(&mul(&gi, &to_mat(g_g.block(kk, e - steps, b))), &c_g);
                                    accum(sigma_g.block_mut(k, e, a), &t);
                                }
                                if e + steps < prob.ne {
                                    let t =
                                        mul(&mul(&gi, &to_mat(g_l.block(kk, e + steps, b))), &c_g);
                                    accum(sigma_l.block_mut(k, e, a), &t);
                                    let t =
                                        mul(&mul(&gi, &to_mat(g_g.block(kk, e + steps, b))), &c_l);
                                    accum(sigma_g.block_mut(k, e, a), &t);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (sigma_l, sigma_g)
}

fn accum(dst: &mut [C64], src: &CMatrix) {
    for (d, s) in dst.iter_mut().zip(src.as_slice()) {
        *d += *s;
    }
}

/// Builds a Hamiltonian-like sparse block pair for Tables 7–8: an RGF
/// off-diagonal coupling block (sparse) and a dense `g^R`-like block.
pub fn rgf_like_blocks(n: usize, density: f64, seed: u64) -> (CMatrix, CMatrix) {
    let sparse = CMatrix::from_fn(n, n, |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(seed);
        let v = (h >> 11) as f64 / (1u64 << 53) as f64;
        if v < density {
            omen_linalg::c64(v - 0.5, 0.1 * v)
        } else {
            C64::ZERO
        }
    });
    let dense = CMatrix::from_fn(n, n, |i, j| {
        omen_linalg::c64(
            ((i * 7 + j * 13) as f64 + seed as f64).sin() * 0.3,
            ((i + 3 * j) as f64).cos() * 0.2,
        )
    });
    (sparse, dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_sse::sse_reference;
    use omen_sse::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn eager_matches_reference() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 3);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let (sl, sg) = sse_eager(&prob, &gl, &gg, &dl, &dg);
        let d = sl.max_deviation(&reference.sigma_l) / reference.sigma_l.max_abs();
        assert!(d < 1e-12, "eager Σ< deviates by {d}");
        let d = sg.max_deviation(&reference.sigma_g) / reference.sigma_g.max_abs();
        assert!(d < 1e-12, "eager Σ> deviates by {d}");
    }

    #[test]
    fn helpers() {
        assert_eq!(tib((1u64 << 40) as f64), "1.00");
        let (s, d) = rgf_like_blocks(8, 0.2, 1);
        assert_eq!(s.shape(), (8, 8));
        assert!(s.as_slice().iter().filter(|z| z.abs() > 0.0).count() < 40);
        assert!(d.max_abs() > 0.0);
        let t = timed_min(2, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t >= 0.0);
    }
}
