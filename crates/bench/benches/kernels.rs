//! Criterion microbenchmarks of the paper's kernel-level comparisons
//! (Tables 6-10 counterparts at statistically robust sample counts).

use criterion::{criterion_group, criterion_main, Criterion};
use omen_bench::rgf_like_blocks;
use omen_linalg::{
    csrmm, gemm, gemmi, invert, sbsmm, sbsmm_padded, BatchDims, CMatrix, CscMatrix, CsrMatrix,
    Op, Strides, C64,
};
use omen_rgf::{rgf_solve, surface_gf, BoundaryMethod, RgfInputs};
use omen_sse::testutil::{random_inputs, tiny_device, tiny_problem};
use omen_sse::{sse_reference, sse_transformed, GLayout};
use std::hint::black_box;

/// Table 7: sparse-dense multiplication strategies.
fn bench_spmm(c: &mut Criterion) {
    let n = 192;
    let (sp, dn) = rgf_like_blocks(n, 0.06, 7);
    let csr = CsrMatrix::from_dense(&sp, 0.0);
    let csc = CscMatrix::from_dense(&sp, 0.0);
    let mut out = CMatrix::zeros(n, n);
    let mut g = c.benchmark_group("table7_spmm");
    g.bench_function("gemm_nn", |b| {
        b.iter(|| gemm(C64::ONE, black_box(&sp), Op::N, black_box(&dn), Op::N, C64::ZERO, &mut out))
    });
    g.bench_function("csrmm_nn", |b| {
        b.iter(|| csrmm(C64::ONE, black_box(&csr), Op::N, black_box(&dn), C64::ZERO, &mut out))
    });
    g.bench_function("csrmm_tn", |b| {
        b.iter(|| csrmm(C64::ONE, black_box(&csr), Op::T, black_box(&dn), C64::ZERO, &mut out))
    });
    g.bench_function("gemmi_nn", |b| {
        b.iter(|| gemmi(C64::ONE, black_box(&dn), black_box(&csc), C64::ZERO, &mut out))
    });
    g.finish();
}

/// Table 8: the three-matrix RGF product.
fn bench_threemat(c: &mut Criterion) {
    let n = 192;
    let (f_dense, gr) = rgf_like_blocks(n, 0.06, 11);
    let (e_dense, _) = rgf_like_blocks(n, 0.06, 23);
    let f_csr = CsrMatrix::from_dense(&f_dense, 0.0);
    let e_csr = CsrMatrix::from_dense(&e_dense, 0.0);
    let e_csc = CscMatrix::from_dense(&e_dense, 0.0);
    let mut t1 = CMatrix::zeros(n, n);
    let mut t2 = CMatrix::zeros(n, n);
    let mut g = c.benchmark_group("table8_threemat");
    g.bench_function("gemm_gemm", |b| {
        b.iter(|| {
            gemm(C64::ONE, &f_dense, Op::N, &gr, Op::N, C64::ZERO, &mut t1);
            gemm(C64::ONE, &t1, Op::N, &e_dense, Op::N, C64::ZERO, &mut t2);
        })
    });
    g.bench_function("csrmm_gemmi", |b| {
        b.iter(|| {
            csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
            gemmi(C64::ONE, &t1, &e_csc, C64::ZERO, &mut t2);
        })
    });
    g.bench_function("csrmm_csrmm", |b| {
        b.iter(|| {
            csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
            csrmm(C64::ONE, &e_csr, Op::T, &t1, C64::ZERO, &mut t2);
        })
    });
    g.finish();
}

/// Table 9: specialized vs padded batched small-matrix multiply.
fn bench_sbsmm(c: &mut Criterion) {
    let dims = BatchDims::square(12);
    let s = Strides::packed(dims);
    let batch = 512;
    let a: Vec<C64> = (0..batch * s.a).map(|i| omen_linalg::c64((i as f64).sin(), 0.3)).collect();
    let bm: Vec<C64> = (0..batch * s.b).map(|i| omen_linalg::c64(0.1, (i as f64).cos())).collect();
    let mut out = vec![C64::ZERO; batch * s.c];
    let mut g = c.benchmark_group("table9_sbsmm");
    g.bench_function("specialized", |b| {
        b.iter(|| sbsmm(dims, batch, C64::ONE, black_box(&a), black_box(&bm), C64::ZERO, &mut out, s))
    });
    g.bench_function("padded16", |b| {
        b.iter(|| sbsmm_padded(dims, batch, C64::ONE, black_box(&a), black_box(&bm), C64::ZERO, &mut out, s, 16))
    });
    g.finish();
}

/// Table 10: the two SSE schedules.
fn bench_sse_phases(c: &mut Criterion) {
    let dev = tiny_device();
    let prob = tiny_problem(&dev);
    let (gl, gg, dl, dg) = random_inputs(&prob, 42);
    let gla = gl.to_layout(GLayout::AtomMajor);
    let gga = gg.to_layout(GLayout::AtomMajor);
    let mut g = c.benchmark_group("table10_sse");
    g.sample_size(10);
    g.bench_function("reference", |b| {
        b.iter(|| sse_reference(&prob, black_box(&gl), &gg, &dl, &dg))
    });
    g.bench_function("transformed", |b| {
        b.iter(|| sse_transformed(&prob, black_box(&gla), &gga, &dl, &dg))
    });
    g.finish();
}

/// Boundary-method ablation: decimation vs fixed point.
fn bench_boundary(c: &mut Criterion) {
    let n = 48;
    let d = CMatrix::from_fn(n, n, |i, j| {
        if i == j { omen_linalg::c64(0.5, 1e-5) } else { omen_linalg::c64(-0.08, 0.0) }
    });
    let hop = CMatrix::from_fn(n, n, |i, j| if i == j { omen_linalg::c64(-1.0, 0.0) } else { C64::ZERO });
    let mut g = c.benchmark_group("boundary");
    g.bench_function("sancho_rubio", |b| {
        b.iter(|| surface_gf(BoundaryMethod::SanchoRubio, black_box(&d), &hop, &hop, 1e-12, 200))
    });
    g.bench_function("fixed_point", |b| {
        b.iter(|| surface_gf(BoundaryMethod::FixedPoint, black_box(&d), &hop, &hop, 1e-12, 2000))
    });
    g.finish();
}

/// RGF vs dense inversion.
fn bench_rgf(c: &mut Criterion) {
    let nb = 10;
    let bs = 24;
    let mut m = omen_linalg::BlockTriDiag::zeros(nb, bs);
    for b in 0..nb {
        m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
            if i == j { omen_linalg::c64(2.0, 0.01) } else { omen_linalg::c64(-0.3, 0.02) }
        });
    }
    for b in 0..nb - 1 {
        m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| if i == j { omen_linalg::c64(-0.8, 0.0) } else { C64::ZERO });
        m.lower[b] = m.upper[b].adjoint();
    }
    let sl = vec![CMatrix::zeros(bs, bs); nb];
    let sg = vec![CMatrix::zeros(bs, bs); nb];
    let mut g = c.benchmark_group("rgf");
    g.sample_size(10);
    g.bench_function("rgf_solve", |b| {
        b.iter(|| rgf_solve(&RgfInputs { m: black_box(&m), sigma_l: &sl, sigma_g: &sg }))
    });
    g.bench_function("dense_invert", |b| {
        b.iter(|| invert(black_box(&m.to_dense())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_threemat,
    bench_sbsmm,
    bench_sse_phases,
    bench_boundary,
    bench_rgf
);
criterion_main!(benches);
