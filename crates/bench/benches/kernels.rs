//! Microbenchmarks of the paper's kernel-level comparisons (Tables 6–10
//! counterparts), run with the harness-free timing utilities in
//! `omen_bench` (the build environment has no crates.io access, so the
//! criterion dependency is replaced by min-of-N wall-clock timing).
//!
//! Run with: `cargo bench --bench kernels`

use omen_bench::{header, rgf_like_blocks, row, timed_min};
use omen_linalg::{
    csrmm, gemm, gemmi, invert, sbsmm, sbsmm_padded, BatchDims, CMatrix, CscMatrix, CsrMatrix, Op,
    Strides, C64,
};
use omen_rgf::{rgf_solve, surface_gf, BoundaryMethod, RgfInputs};
use omen_sse::testutil::{random_inputs, tiny_device, tiny_problem};
use omen_sse::{sse_reference, sse_transformed, GLayout};
use std::hint::black_box;

const W: [usize; 2] = [28, 12];

fn report(group: &str, name: &str, reps: usize, mut f: impl FnMut()) {
    let secs = timed_min(reps, &mut f);
    row(&[format!("{group}/{name}"), format!("{:.3e}", secs)], &W);
}

/// Table 7: sparse-dense multiplication strategies.
fn bench_spmm() {
    let n = 192;
    let (sp, dn) = rgf_like_blocks(n, 0.06, 7);
    let csr = CsrMatrix::from_dense(&sp, 0.0);
    let csc = CscMatrix::from_dense(&sp, 0.0);
    let mut out = CMatrix::zeros(n, n);
    report("table7_spmm", "gemm_nn", 5, || {
        gemm(
            C64::ONE,
            black_box(&sp),
            Op::N,
            black_box(&dn),
            Op::N,
            C64::ZERO,
            &mut out,
        )
    });
    report("table7_spmm", "csrmm_nn", 5, || {
        csrmm(
            C64::ONE,
            black_box(&csr),
            Op::N,
            black_box(&dn),
            C64::ZERO,
            &mut out,
        )
    });
    report("table7_spmm", "csrmm_tn", 5, || {
        csrmm(
            C64::ONE,
            black_box(&csr),
            Op::T,
            black_box(&dn),
            C64::ZERO,
            &mut out,
        )
    });
    report("table7_spmm", "gemmi_nn", 5, || {
        gemmi(
            C64::ONE,
            black_box(&dn),
            black_box(&csc),
            C64::ZERO,
            &mut out,
        )
    });
}

/// Table 8: the three-matrix RGF product.
fn bench_threemat() {
    let n = 192;
    let (f_dense, gr) = rgf_like_blocks(n, 0.06, 11);
    let (e_dense, _) = rgf_like_blocks(n, 0.06, 23);
    let f_csr = CsrMatrix::from_dense(&f_dense, 0.0);
    let e_csr = CsrMatrix::from_dense(&e_dense, 0.0);
    let e_csc = CscMatrix::from_dense(&e_dense, 0.0);
    let mut t1 = CMatrix::zeros(n, n);
    let mut t2 = CMatrix::zeros(n, n);
    report("table8_threemat", "gemm_gemm", 5, || {
        gemm(C64::ONE, &f_dense, Op::N, &gr, Op::N, C64::ZERO, &mut t1);
        gemm(C64::ONE, &t1, Op::N, &e_dense, Op::N, C64::ZERO, &mut t2);
    });
    report("table8_threemat", "csrmm_gemmi", 5, || {
        csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
        gemmi(C64::ONE, &t1, &e_csc, C64::ZERO, &mut t2);
    });
    report("table8_threemat", "csrmm_csrmm", 5, || {
        csrmm(C64::ONE, &f_csr, Op::N, &gr, C64::ZERO, &mut t1);
        csrmm(C64::ONE, &e_csr, Op::T, &t1, C64::ZERO, &mut t2);
    });
}

/// Table 9: specialized vs padded batched small-matrix multiply.
fn bench_sbsmm() {
    let dims = BatchDims::square(12);
    let s = Strides::packed(dims);
    let batch = 512;
    let a: Vec<C64> = (0..batch * s.a)
        .map(|i| omen_linalg::c64((i as f64).sin(), 0.3))
        .collect();
    let bm: Vec<C64> = (0..batch * s.b)
        .map(|i| omen_linalg::c64(0.1, (i as f64).cos()))
        .collect();
    let mut out = vec![C64::ZERO; batch * s.c];
    report("table9_sbsmm", "specialized", 5, || {
        sbsmm(
            dims,
            batch,
            C64::ONE,
            black_box(&a),
            black_box(&bm),
            C64::ZERO,
            &mut out,
            s,
        )
    });
    report("table9_sbsmm", "padded16", 5, || {
        sbsmm_padded(
            dims,
            batch,
            C64::ONE,
            black_box(&a),
            black_box(&bm),
            C64::ZERO,
            &mut out,
            s,
            16,
        )
    });
}

/// Table 10: the two SSE schedules.
fn bench_sse_phases() {
    let dev = tiny_device();
    let prob = tiny_problem(&dev);
    let (gl, gg, dl, dg) = random_inputs(&prob, 42);
    let gla = gl.to_layout(GLayout::AtomMajor);
    let gga = gg.to_layout(GLayout::AtomMajor);
    report("table10_sse", "reference", 3, || {
        black_box(sse_reference(&prob, black_box(&gl), &gg, &dl, &dg));
    });
    report("table10_sse", "transformed", 3, || {
        black_box(sse_transformed(&prob, black_box(&gla), &gga, &dl, &dg));
    });
}

/// Boundary-method ablation: decimation vs fixed point.
fn bench_boundary() {
    let n = 48;
    let d = CMatrix::from_fn(n, n, |i, j| {
        if i == j {
            omen_linalg::c64(0.5, 1e-5)
        } else {
            omen_linalg::c64(-0.08, 0.0)
        }
    });
    let hop = CMatrix::from_fn(n, n, |i, j| {
        if i == j {
            omen_linalg::c64(-1.0, 0.0)
        } else {
            C64::ZERO
        }
    });
    report("boundary", "sancho_rubio", 5, || {
        black_box(surface_gf(
            BoundaryMethod::SanchoRubio,
            black_box(&d),
            &hop,
            &hop,
            1e-12,
            200,
        ));
    });
    report("boundary", "fixed_point", 5, || {
        black_box(surface_gf(
            BoundaryMethod::FixedPoint,
            black_box(&d),
            &hop,
            &hop,
            1e-12,
            2000,
        ));
    });
}

/// RGF vs dense inversion.
fn bench_rgf() {
    let nb = 10;
    let bs = 24;
    let mut m = omen_linalg::BlockTriDiag::zeros(nb, bs);
    for b in 0..nb {
        m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
            if i == j {
                omen_linalg::c64(2.0, 0.01)
            } else {
                omen_linalg::c64(-0.3, 0.02)
            }
        });
    }
    for b in 0..nb - 1 {
        m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| {
            if i == j {
                omen_linalg::c64(-0.8, 0.0)
            } else {
                C64::ZERO
            }
        });
        m.lower[b] = m.upper[b].adjoint();
    }
    let sl = vec![CMatrix::zeros(bs, bs); nb];
    let sg = vec![CMatrix::zeros(bs, bs); nb];
    report("rgf", "rgf_solve", 3, || {
        black_box(rgf_solve(&RgfInputs {
            m: black_box(&m),
            sigma_l: &sl,
            sigma_g: &sg,
        }));
    });
    report("rgf", "dense_invert", 3, || {
        black_box(invert(black_box(&m.to_dense())));
    });
}

fn main() {
    println!("kernel microbenchmarks (min-of-N wall clock)\n");
    header(&["benchmark", "min [s]"], &W);
    bench_spmm();
    bench_threemat();
    bench_sbsmm();
    bench_sse_phases();
    bench_boundary();
    bench_rgf();
}
