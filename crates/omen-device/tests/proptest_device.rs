//! Property-based tests on the synthetic device generator: the structural
//! invariants the NEGF solver relies on must hold for *every* geometry.

use omen_device::{DeviceConfig, DeviceStructure};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    (2usize..7, 1usize..4, 1usize..4, 0.2f64..0.35).prop_map(|(nx_slabs, ny, norb, ax)| {
        DeviceConfig {
            nx: nx_slabs,
            ny,
            cols_per_slab: 1,
            norb,
            ax,
            ay: ax,
            az: ax,
            cutoff: ax * 1.05,
            seed: 0xABCD,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hamiltonian_always_hermitian(cfg in arb_config(), kz in -3.1f64..3.1) {
        let dev = DeviceStructure::build(cfg);
        prop_assert!(dev.hamiltonian(kz).is_hermitian(1e-11));
        prop_assert!(dev.overlap(kz).is_hermitian(1e-11));
        prop_assert!(dev.dynamical(kz).is_hermitian(1e-11));
    }

    #[test]
    fn acoustic_sum_rule_every_geometry(cfg in arb_config()) {
        let dev = DeviceStructure::build(cfg);
        let phi = dev.dynamical(0.0).to_dense();
        let n = phi.rows();
        for dir in 0..3 {
            let u: Vec<omen_linalg::C64> = (0..n)
                .map(|i| if i % 3 == dir { omen_linalg::C64::ONE } else { omen_linalg::C64::ZERO })
                .collect();
            let f = phi.matvec(&u);
            let maxf = f.iter().map(|z| z.abs()).fold(0.0, f64::max);
            prop_assert!(maxf < 1e-10, "translation dir {dir} costs {maxf}");
        }
    }

    #[test]
    fn neighbor_list_symmetric(cfg in arb_config()) {
        let dev = DeviceStructure::build(cfg);
        for p in &dev.neighbors.pairs {
            let found = dev.neighbors.of(p.to).iter().any(|q| {
                q.to == p.from && q.z_image == -p.z_image
                    && (q.delta[0] + p.delta[0]).abs() < 1e-12
            });
            prop_assert!(found);
        }
    }

    #[test]
    fn material_file_round_trips(cfg in arb_config()) {
        let dev = DeviceStructure::build(cfg);
        let bytes = omen_device::serialize_structure(&dev);
        let back = omen_device::deserialize_structure(&bytes).unwrap();
        prop_assert_eq!(back.num_atoms(), dev.num_atoms());
        prop_assert_eq!(back.neighbors.num_pairs(), dev.neighbors.num_pairs());
    }

    #[test]
    fn potential_bounds_respected(cfg in arb_config(), vds in 0.0f64..1.0) {
        let dev = DeviceStructure::build(cfg);
        let u = dev.linear_potential(vds, 0.25, 0.75);
        for &v in &u {
            prop_assert!(v <= 1e-12 && v >= -vds - 1e-12);
        }
    }
}
