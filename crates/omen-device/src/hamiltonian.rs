//! Assembly of the kz-dependent Hamiltonian `H(kz)` and overlap `S(kz)`
//! block-tridiagonal matrices.
//!
//! Couplings through periodic z-image `m` acquire the Bloch phase
//! `e^{i m kz}` with `kz ∈ [−π, π]` (the paper's momentum representation of
//! the tall fin direction, Fig. 1b). The slab partition of the lattice
//! yields the `bnum` diagonal blocks RGF recurses over.

use crate::lattice::Lattice;
use crate::material::Material;
use crate::neighbors::NeighborList;
use omen_linalg::{c64, BlockTriDiag, CMatrix, C64};

/// Assembles `H(kz)` with an optional per-atom electrostatic potential
/// (eV) added to the on-site blocks. `potential` must be empty or
/// `num_atoms` long.
pub fn assemble_hamiltonian(
    lattice: &Lattice,
    neighbors: &NeighborList,
    material: &Material,
    kz: f64,
    potential: &[f64],
) -> BlockTriDiag {
    assert!(
        potential.is_empty() || potential.len() == lattice.num_atoms(),
        "potential length must be 0 or Na"
    );
    let norb = material.norb;
    let aps = lattice.atoms_per_slab();
    let bs = aps * norb;
    let mut h = BlockTriDiag::zeros(lattice.num_slabs, bs);

    // On-site blocks.
    for (a, atom) in lattice.atoms.iter().enumerate() {
        let mut onsite = material.onsite_block();
        if !potential.is_empty() {
            for o in 0..norb {
                onsite[(o, o)] += c64(potential[a], 0.0);
            }
        }
        let r0 = atom.slab_offset * norb;
        h.diag[atom.slab].add_block(r0, r0, C64::ONE, &onsite);
    }

    // Hopping blocks with Bloch phases.
    scatter_pair_blocks(lattice, neighbors, &mut h, norb, |p| {
        let phase = C64::cis(kz * p.z_image as f64);
        material.hopping_block(p.delta).scaled(phase)
    });
    h
}

/// Assembles the overlap matrix `S(kz)` (identity + short-ranged overlap).
pub fn assemble_overlap(
    lattice: &Lattice,
    neighbors: &NeighborList,
    material: &Material,
    kz: f64,
) -> BlockTriDiag {
    let norb = material.norb;
    let aps = lattice.atoms_per_slab();
    let bs = aps * norb;
    let mut s = BlockTriDiag::zeros(lattice.num_slabs, bs);
    for b in 0..lattice.num_slabs {
        s.diag[b] = CMatrix::identity(bs);
    }
    scatter_pair_blocks(lattice, neighbors, &mut s, norb, |p| {
        let phase = C64::cis(kz * p.z_image as f64);
        material.overlap_block(p.delta).scaled(phase)
    });
    s
}

/// Assembles the dynamical matrix `Φ(qz)` (3 degrees of freedom per atom,
/// mass-normalized) with the acoustic sum rule
/// `Φ_aa = −Σ_{(b,m)} Φ_ab(m; qz=0)` so that uniform translations at
/// `qz = 0` cost zero energy.
pub fn assemble_dynamical(
    lattice: &Lattice,
    neighbors: &NeighborList,
    material: &Material,
    qz: f64,
) -> BlockTriDiag {
    let n3d = 3;
    let aps = lattice.atoms_per_slab();
    let bs = aps * n3d;
    let mut phi = BlockTriDiag::zeros(lattice.num_slabs, bs);

    // Off-site (and z-image) blocks with phases.
    scatter_pair_blocks(lattice, neighbors, &mut phi, n3d, |p| {
        let phase = C64::cis(qz * p.z_image as f64);
        material.force_block(p.delta).scaled(phase)
    });

    // Acoustic sum rule on the on-site blocks (phase-free sum).
    for (a, atom) in lattice.atoms.iter().enumerate() {
        let mut acc = CMatrix::zeros(n3d, n3d);
        for p in neighbors.of(a) {
            acc += &material.force_block(p.delta);
        }
        let r0 = atom.slab_offset * n3d;
        phi.diag[atom.slab].add_block(r0, r0, c64(-1.0, 0.0), &acc);
    }
    phi
}

/// Scatters one `block(pair)` per directed neighbor pair into the
/// block-tridiagonal structure. `sub` is the per-atom sub-block size
/// (`norb` for electrons, `3` for phonons).
fn scatter_pair_blocks(
    lattice: &Lattice,
    neighbors: &NeighborList,
    target: &mut BlockTriDiag,
    sub: usize,
    mut block: impl FnMut(&crate::neighbors::Neighbor) -> CMatrix,
) {
    for p in &neighbors.pairs {
        let fa = lattice.atoms[p.from];
        let ta = lattice.atoms[p.to];
        let r0 = fa.slab_offset * sub;
        let c0 = ta.slab_offset * sub;
        let blk = block(p);
        match ta.slab as i64 - fa.slab as i64 {
            0 => target.diag[fa.slab].add_block(r0, c0, C64::ONE, &blk),
            1 => target.upper[fa.slab].add_block(r0, c0, C64::ONE, &blk),
            -1 => target.lower[ta.slab].add_block(r0, c0, C64::ONE, &blk),
            _ => panic!("neighbor list spans non-adjacent slabs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::neighbors::NeighborList;

    fn setup() -> (Lattice, NeighborList, Material) {
        let l = Lattice::rectangular(6, 2, 1, 0.25, 0.25, 0.25);
        let nl = NeighborList::build(&l, 0.26);
        let m = Material::silicon_like(3);
        (l, nl, m)
    }

    #[test]
    fn hamiltonian_hermitian_at_all_kz() {
        let (l, nl, m) = setup();
        for &kz in &[0.0, 0.7, -1.3, std::f64::consts::PI] {
            let h = assemble_hamiltonian(&l, &nl, &m, kz, &[]);
            assert!(h.is_hermitian(1e-12), "H(kz={kz}) not Hermitian");
        }
    }

    #[test]
    fn overlap_hermitian_and_diag_dominant() {
        let (l, nl, m) = setup();
        let s = assemble_overlap(&l, &nl, &m, 0.9);
        assert!(s.is_hermitian(1e-12));
        // Identity on the diagonal entries.
        for b in &s.diag {
            for i in 0..b.rows() {
                assert!((b[(i, i)].re - 1.0).abs() < 0.5);
            }
        }
    }

    #[test]
    fn dynamical_hermitian_and_acoustic_sum_rule() {
        let (l, nl, m) = setup();
        let phi = assemble_dynamical(&l, &nl, &m, 0.0);
        assert!(phi.is_hermitian(1e-12));
        // Acoustic sum rule: at qz = 0 the row sums over all 3x3 blocks
        // vanish -> uniform translation is a zero mode. Check via dense
        // matrix times the uniform displacement vector.
        let d = phi.to_dense();
        let n = d.rows();
        for dir in 0..3 {
            let u: Vec<C64> = (0..n)
                .map(|i| if i % 3 == dir { C64::ONE } else { C64::ZERO })
                .collect();
            let f = d.matvec(&u);
            let maxf = f.iter().map(|z| z.abs()).fold(0.0, f64::max);
            assert!(
                maxf < 1e-12,
                "translation mode (dir {dir}) not free: {maxf}"
            );
        }
    }

    #[test]
    fn dynamical_positive_semidefinite_at_zero_qz() {
        // All Gershgorin-ish checks are weak; instead verify u†Φu >= 0 for a
        // few random displacement vectors.
        let (l, nl, m) = setup();
        let phi = assemble_dynamical(&l, &nl, &m, 0.0).to_dense();
        let n = phi.rows();
        for s in 0..8 {
            let u: Vec<C64> = (0..n)
                .map(|i| c64(((i * 7 + s * 13) as f64).sin(), ((i * 3 + s) as f64).cos()))
                .collect();
            let pu = phi.matvec(&u);
            let quad: f64 = u
                .iter()
                .zip(pu.iter())
                .map(|(a, b)| (a.conj() * *b).re)
                .sum();
            assert!(quad > -1e-10, "negative phonon quadratic form: {quad}");
        }
    }

    #[test]
    fn potential_shifts_diagonal() {
        let (l, nl, m) = setup();
        let h0 = assemble_hamiltonian(&l, &nl, &m, 0.3, &[]);
        let pot = vec![0.25; l.num_atoms()];
        let h1 = assemble_hamiltonian(&l, &nl, &m, 0.3, &pot);
        let d0 = h0.to_dense();
        let d1 = h1.to_dense();
        for i in 0..d0.rows() {
            assert!((d1[(i, i)] - d0[(i, i)] - c64(0.25, 0.0)).abs() < 1e-13);
        }
        // Off-diagonals untouched.
        assert!((d1[(0, 1)] - d0[(0, 1)]).abs() < 1e-14);
    }

    #[test]
    fn kz_only_affects_z_image_couplings() {
        // With az too large for z-image coupling, H must be kz-independent.
        let l = Lattice::rectangular(6, 2, 1, 0.25, 0.25, 2.0);
        let nl = NeighborList::build(&l, 0.26);
        let m = Material::silicon_like(2);
        let h1 = assemble_hamiltonian(&l, &nl, &m, 0.0, &[]).to_dense();
        let h2 = assemble_hamiltonian(&l, &nl, &m, 1.1, &[]).to_dense();
        assert!(h1.approx_eq(&h2, 1e-14));
    }

    #[test]
    fn kz_pi_and_minus_pi_agree() {
        // e^{iπm} == e^{-iπm} for integer m: Brillouin-zone edge consistency.
        let (l, nl, m) = setup();
        let hp = assemble_hamiltonian(&l, &nl, &m, std::f64::consts::PI, &[]).to_dense();
        let hm = assemble_hamiltonian(&l, &nl, &m, -std::f64::consts::PI, &[]).to_dense();
        assert!(hp.approx_eq(&hm, 1e-12));
    }
}
