//! The `∇H` coupling-derivative table consumed by the SSE kernels.
//!
//! Eq. (2)–(3) of the paper contract `∇_i H_ab` (the derivative of the
//! Hamiltonian coupling between neighbor atoms `a` and `b` with respect to
//! displacement direction `i ∈ {x,y,z}`) against electron and phonon
//! Green's functions. CP2K computes these with DFT; our synthetic material
//! differentiates the radial hopping law.

use crate::lattice::Lattice;
use crate::material::Material;
use crate::neighbors::NeighborList;
use omen_linalg::CMatrix;

/// `∇H` blocks for every directed neighbor pair, indexed like
/// [`NeighborList::pairs`].
#[derive(Clone, Debug)]
pub struct GradientTable {
    /// `grads[p][i]` is the `norb × norb` matrix `∂H/∂R_i` for pair `p`.
    pub grads: Vec<[CMatrix; 3]>,
    /// Orbitals per atom, for convenience.
    pub norb: usize,
}

impl GradientTable {
    /// Computes the table from the device description.
    pub fn build(_lattice: &Lattice, neighbors: &NeighborList, material: &Material) -> Self {
        let grads = neighbors
            .pairs
            .iter()
            .map(|p| material.gradient_blocks(p.delta))
            .collect();
        GradientTable {
            grads,
            norb: material.norb,
        }
    }

    /// Number of directed pairs covered.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// The three derivative matrices of pair `p`.
    pub fn of_pair(&self, p: usize) -> &[CMatrix; 3] {
        &self.grads[p]
    }

    /// Total storage in complex elements (for the data-ingestion model).
    pub fn num_elements(&self) -> usize {
        self.grads.len() * 3 * self.norb * self.norb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::neighbors::NeighborList;

    #[test]
    fn table_aligns_with_pairs() {
        let l = Lattice::rectangular(4, 2, 1, 0.25, 0.25, 0.25);
        let nl = NeighborList::build(&l, 0.26);
        let m = Material::silicon_like(3);
        let g = GradientTable::build(&l, &nl, &m);
        assert_eq!(g.len(), nl.num_pairs());
        assert!(!g.is_empty());
        assert_eq!(g.num_elements(), nl.num_pairs() * 3 * 9);
        for (p, n) in g.grads.iter().zip(nl.pairs.iter()) {
            for (pd, &nd) in p.iter().zip(n.delta.iter()) {
                assert_eq!(pd.shape(), (3, 3));
                // Gradient magnitude should scale with |delta_i|.
                if nd.abs() < 1e-12 {
                    assert!(
                        pd.max_abs() < 1e-10,
                        "zero-displacement direction must have zero gradient"
                    );
                }
            }
        }
    }

    #[test]
    fn reverse_pair_gradient_consistency() {
        // For the reverse pair (b -> a, -m): ∇H_ba = -(∇H_ab)^T.
        let l = Lattice::rectangular(4, 2, 1, 0.25, 0.25, 0.25);
        let nl = NeighborList::build(&l, 0.26);
        let m = Material::silicon_like(3);
        let g = GradientTable::build(&l, &nl, &m);
        for (pi, p) in nl.pairs.iter().enumerate() {
            // locate reverse pair
            let (qi, _) = nl
                .pairs
                .iter()
                .enumerate()
                .find(|(_, q)| {
                    q.from == p.to
                        && q.to == p.from
                        && q.z_image == -p.z_image
                        && (q.delta[0] + p.delta[0]).abs() < 1e-12
                        && (q.delta[1] + p.delta[1]).abs() < 1e-12
                        && (q.delta[2] + p.delta[2]).abs() < 1e-12
                })
                .expect("reverse pair exists");
            for d in 0..3 {
                let want = g.grads[pi][d]
                    .transpose()
                    .scaled(omen_linalg::c64(-1.0, 0.0));
                assert!(g.grads[qi][d].approx_eq(&want, 1e-13));
            }
        }
    }
}
