//! Binary material-file format and the data-ingestion path (§7.1.1).
//!
//! The paper's simulator loads GiBs of CP2K output (Hamiltonian blocks,
//! derivative blocks, structural data) from a parallel filesystem; naive
//! per-rank reads cost ~30 minutes at scale, chunked broadcast staging
//! brings it under a minute. Here we define the on-disk format — a
//! deterministic little-endian layout built with `bytes` — so the staging
//! simulation in `omen-comm` ships real payloads, and a loader that
//! round-trips a [`DeviceStructure`].

use crate::structure::{DeviceConfig, DeviceStructure};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number identifying the material file format ("OMENMAT1").
pub const MAGIC: u64 = 0x4F4D_454E_4D41_5431;

/// Errors produced by [`deserialize_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended prematurely.
    Truncated,
    /// The embedded payload checksum does not match the regenerated data.
    ChecksumMismatch,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::BadMagic => write!(f, "not a material file (bad magic)"),
            IngestError::Truncated => write!(f, "material file truncated"),
            IngestError::ChecksumMismatch => write!(f, "material payload checksum mismatch"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Serializes a device structure to the material-file format.
///
/// The payload carries the generator configuration *and* the full `∇H`
/// gradient table plus per-pair geometry — the bulky part CP2K would
/// produce — so the byte volume scales like the real ingestion problem:
/// `O(pairs · 3 · Norb²)` doubles.
pub fn serialize_structure(dev: &DeviceStructure) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(MAGIC);
    let c = &dev.config;
    buf.put_u64_le(c.nx as u64);
    buf.put_u64_le(c.ny as u64);
    buf.put_u64_le(c.cols_per_slab as u64);
    buf.put_u64_le(c.norb as u64);
    buf.put_f64_le(c.ax);
    buf.put_f64_le(c.ay);
    buf.put_f64_le(c.az);
    buf.put_f64_le(c.cutoff);
    buf.put_u64_le(c.seed);

    // Bulk payload: per-pair displacement + gradient blocks.
    buf.put_u64_le(dev.neighbors.num_pairs() as u64);
    let mut checksum = 0.0f64;
    for (p, g) in dev.neighbors.pairs.iter().zip(dev.gradients.grads.iter()) {
        buf.put_u64_le(p.from as u64);
        buf.put_u64_le(p.to as u64);
        buf.put_i8(p.z_image);
        for d in 0..3 {
            buf.put_f64_le(p.delta[d]);
        }
        for mat in g.iter() {
            for z in mat.as_slice() {
                buf.put_f64_le(z.re);
                buf.put_f64_le(z.im);
                checksum += z.re.abs() + z.im.abs();
            }
        }
    }
    buf.put_f64_le(checksum);
    buf.freeze()
}

/// Parses a material file, rebuilds the device from its configuration, and
/// verifies the payload against the regenerated gradient table.
pub fn deserialize_structure(mut data: &[u8]) -> Result<DeviceStructure, IngestError> {
    let need = |data: &[u8], n: usize| {
        if data.remaining() < n {
            Err(IngestError::Truncated)
        } else {
            Ok(())
        }
    };
    need(data, 8)?;
    if data.get_u64_le() != MAGIC {
        return Err(IngestError::BadMagic);
    }
    need(data, 8 * 4 + 8 * 4 + 8)?;
    let nx = data.get_u64_le() as usize;
    let ny = data.get_u64_le() as usize;
    let cols_per_slab = data.get_u64_le() as usize;
    let norb = data.get_u64_le() as usize;
    let ax = data.get_f64_le();
    let ay = data.get_f64_le();
    let az = data.get_f64_le();
    let cutoff = data.get_f64_le();
    let seed = data.get_u64_le();
    let config = DeviceConfig {
        nx,
        ny,
        cols_per_slab,
        norb,
        ax,
        ay,
        az,
        cutoff,
        seed,
    };
    let dev = DeviceStructure::build(config);

    need(data, 8)?;
    let npairs = data.get_u64_le() as usize;
    if npairs != dev.neighbors.num_pairs() {
        return Err(IngestError::ChecksumMismatch);
    }
    let per_pair = 8 + 8 + 1 + 3 * 8 + 3 * norb * norb * 16;
    need(data, npairs * per_pair + 8)?;
    let mut checksum = 0.0f64;
    for g in dev.gradients.grads.iter() {
        let _from = data.get_u64_le();
        let _to = data.get_u64_le();
        let _m = data.get_i8();
        for _ in 0..3 {
            let _ = data.get_f64_le();
        }
        for mat in g.iter() {
            for z in mat.as_slice() {
                let re = data.get_f64_le();
                let im = data.get_f64_le();
                // Regeneration is deterministic, so the comparison can be
                // bit-exact — any corrupted payload bit is detected.
                if re.to_bits() != z.re.to_bits() || im.to_bits() != z.im.to_bits() {
                    return Err(IngestError::ChecksumMismatch);
                }
                checksum += re.abs() + im.abs();
            }
        }
    }
    let stored = data.get_f64_le();
    if (stored - checksum).abs() > 1e-6 * checksum.max(1.0) {
        return Err(IngestError::ChecksumMismatch);
    }
    Ok(dev)
}

/// The serialized size in bytes of a device's material file, without
/// building the buffer (used by the staging model at paper scales).
pub fn serialized_size(num_pairs: usize, norb: usize) -> usize {
    8 /* magic */ + 4 * 8 + 4 * 8 + 8 /* config */
        + 8 /* pair count */
        + num_pairs * (8 + 8 + 1 + 24 + 3 * norb * norb * 16)
        + 8 /* checksum */
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{DeviceConfig, DeviceStructure};

    #[test]
    fn round_trip() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let bytes = serialize_structure(&dev);
        let back = deserialize_structure(&bytes).expect("round trip");
        assert_eq!(back.config, dev.config);
        assert_eq!(back.num_atoms(), dev.num_atoms());
        assert_eq!(back.neighbors.num_pairs(), dev.neighbors.num_pairs());
    }

    #[test]
    fn size_formula_matches() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let bytes = serialize_structure(&dev);
        assert_eq!(
            bytes.len(),
            serialized_size(dev.neighbors.num_pairs(), dev.config.norb)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = serialize_structure(&DeviceStructure::build(DeviceConfig::tiny())).to_vec();
        data[0] ^= 0xFF;
        assert_eq!(
            deserialize_structure(&data).unwrap_err(),
            IngestError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected() {
        let data = serialize_structure(&DeviceStructure::build(DeviceConfig::tiny()));
        for cut in [4usize, 40, data.len() / 2, data.len() - 1] {
            assert_eq!(
                deserialize_structure(&data[..cut]).unwrap_err(),
                IngestError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let mut data = serialize_structure(&dev).to_vec();
        // Flip a byte inside the gradient payload.
        let off = data.len() - 100;
        data[off] ^= 0x01;
        assert_eq!(
            deserialize_structure(&data).unwrap_err(),
            IngestError::ChecksumMismatch
        );
    }
}
