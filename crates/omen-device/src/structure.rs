//! The assembled device description: lattice + neighbors + material +
//! operator constructors, with presets matching the paper's structures.

use crate::gradient::GradientTable;
use crate::hamiltonian::{assemble_dynamical, assemble_hamiltonian, assemble_overlap};
use crate::lattice::Lattice;
use crate::material::Material;
use crate::neighbors::NeighborList;
use omen_linalg::BlockTriDiag;

/// Build parameters of a synthetic device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Columns along transport.
    pub nx: usize,
    /// Rows across the fin.
    pub ny: usize,
    /// Columns per slab (block).
    pub cols_per_slab: usize,
    /// Orbitals per atom.
    pub norb: usize,
    /// Lattice constants (nm).
    pub ax: f64,
    /// Lattice constant along y (nm).
    pub ay: f64,
    /// Periodicity along z (nm).
    pub az: f64,
    /// Coupling cutoff (nm).
    pub cutoff: f64,
    /// Material seed (orbital mixing pattern).
    pub seed: u64,
}

impl DeviceConfig {
    /// A minimal structure for fast unit tests:
    /// 8 slabs × 2 atoms × 2 orbitals.
    pub fn tiny() -> Self {
        DeviceConfig {
            nx: 8,
            ny: 2,
            cols_per_slab: 1,
            norb: 2,
            ax: 0.25,
            ay: 0.25,
            az: 0.25,
            cutoff: 0.26,
            seed: 0x5EED_0A70,
        }
    }

    /// A laptop-scale demonstrator used by the examples and the
    /// electro-thermal harness (hundreds of atoms).
    pub fn demo() -> Self {
        DeviceConfig {
            nx: 24,
            ny: 4,
            cols_per_slab: 1,
            norb: 3,
            ax: 0.25,
            ay: 0.25,
            az: 0.25,
            cutoff: 0.26,
            seed: 0x5EED_0A70,
        }
    }

    /// A reduced-scale proxy of the paper's "Small" structure
    /// (W = 2.1 nm, L = 35 nm, Na = 4,864): same aspect ratio and slab
    /// partitioning, scaled to run on one machine.
    pub fn small_proxy() -> Self {
        DeviceConfig {
            nx: 35,
            ny: 7,
            cols_per_slab: 1,
            norb: 4,
            ax: 0.25,
            ay: 0.3,
            az: 0.25,
            cutoff: 0.31,
            seed: 0x5EED_0A70,
        }
    }

    /// Total number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.nx * self.ny
    }
}

/// A fully assembled synthetic device.
#[derive(Clone, Debug)]
pub struct DeviceStructure {
    /// The generating configuration.
    pub config: DeviceConfig,
    /// Atom positions and slab partition.
    pub lattice: Lattice,
    /// Directed neighbor pairs.
    pub neighbors: NeighborList,
    /// Material model.
    pub material: Material,
    /// `∇H` table aligned with `neighbors.pairs`.
    pub gradients: GradientTable,
}

impl DeviceStructure {
    /// Builds the device from a configuration.
    pub fn build(config: DeviceConfig) -> Self {
        let lattice = Lattice::rectangular(
            config.nx,
            config.ny,
            config.cols_per_slab,
            config.ax,
            config.ay,
            config.az,
        );
        let neighbors = NeighborList::build(&lattice, config.cutoff);
        let mut material = Material::silicon_like(config.norb);
        material.seed = config.seed;
        let gradients = GradientTable::build(&lattice, &neighbors, &material);
        DeviceStructure {
            config,
            lattice,
            neighbors,
            material,
            gradients,
        }
    }

    /// Number of atoms (`Na`).
    pub fn num_atoms(&self) -> usize {
        self.lattice.num_atoms()
    }

    /// Number of diagonal blocks (`bnum`).
    pub fn bnum(&self) -> usize {
        self.lattice.num_slabs
    }

    /// Electron block size (`atoms_per_slab × Norb`).
    pub fn block_size_el(&self) -> usize {
        self.lattice.atoms_per_slab() * self.material.norb
    }

    /// Phonon block size (`atoms_per_slab × 3`).
    pub fn block_size_ph(&self) -> usize {
        self.lattice.atoms_per_slab() * 3
    }

    /// Maximum neighbors per atom (`Nb`).
    pub fn max_neighbors(&self) -> usize {
        self.neighbors.max_neighbors
    }

    /// Assembles `H(kz)` with zero potential.
    pub fn hamiltonian(&self, kz: f64) -> BlockTriDiag {
        assemble_hamiltonian(&self.lattice, &self.neighbors, &self.material, kz, &[])
    }

    /// Assembles `H(kz)` with the per-atom electrostatic `potential` (eV).
    pub fn hamiltonian_with_potential(&self, kz: f64, potential: &[f64]) -> BlockTriDiag {
        assemble_hamiltonian(
            &self.lattice,
            &self.neighbors,
            &self.material,
            kz,
            potential,
        )
    }

    /// Assembles `S(kz)`.
    pub fn overlap(&self, kz: f64) -> BlockTriDiag {
        assemble_overlap(&self.lattice, &self.neighbors, &self.material, kz)
    }

    /// Assembles `Φ(qz)`.
    pub fn dynamical(&self, qz: f64) -> BlockTriDiag {
        assemble_dynamical(&self.lattice, &self.neighbors, &self.material, qz)
    }

    /// A linear source→drain potential ramp: `0` before `x_on`, `−vds`
    /// after `x_off`, linear in between — the textbook approximation of the
    /// self-consistent electrostatic profile under bias.
    pub fn linear_potential(&self, vds: f64, x_on_frac: f64, x_off_frac: f64) -> Vec<f64> {
        let len = self.lattice.length().max(1e-12);
        let x_on = x_on_frac * len;
        let x_off = x_off_frac * len;
        self.lattice
            .atoms
            .iter()
            .map(|a| {
                let x = a.pos[0];
                if x <= x_on {
                    0.0
                } else if x >= x_off {
                    -vds
                } else {
                    -vds * (x - x_on) / (x_off - x_on)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_tiny() {
        let d = DeviceStructure::build(DeviceConfig::tiny());
        assert_eq!(d.num_atoms(), 16);
        assert_eq!(d.bnum(), 8);
        assert_eq!(d.block_size_el(), 4);
        assert_eq!(d.block_size_ph(), 6);
        assert!(d.max_neighbors() >= 3);
        assert_eq!(d.gradients.len(), d.neighbors.num_pairs());
    }

    #[test]
    fn operators_consistent_shapes() {
        let d = DeviceStructure::build(DeviceConfig::tiny());
        let h = d.hamiltonian(0.4);
        let s = d.overlap(0.4);
        let phi = d.dynamical(0.4);
        assert_eq!(h.num_blocks(), d.bnum());
        assert_eq!(h.block_size(), d.block_size_el());
        assert_eq!(s.block_size(), d.block_size_el());
        assert_eq!(phi.block_size(), d.block_size_ph());
        assert!(h.is_hermitian(1e-12));
        assert!(s.is_hermitian(1e-12));
        assert!(phi.is_hermitian(1e-12));
    }

    #[test]
    fn potential_profile_monotone() {
        let d = DeviceStructure::build(DeviceConfig::demo());
        let u = d.linear_potential(0.6, 0.25, 0.75);
        assert_eq!(u.len(), d.num_atoms());
        // First slab at 0, last at -0.6.
        let first = d
            .lattice
            .atoms
            .iter()
            .position(|a| a.pos[0] == 0.0)
            .unwrap();
        assert_eq!(u[first], 0.0);
        let len = d.lattice.length();
        let last = d
            .lattice
            .atoms
            .iter()
            .position(|a| (a.pos[0] - len).abs() < 1e-12)
            .unwrap();
        assert!((u[last] + 0.6).abs() < 1e-12);
        // Monotone nonincreasing along x.
        let mut by_x: Vec<(f64, f64)> = d
            .lattice
            .atoms
            .iter()
            .zip(u.iter())
            .map(|(a, &v)| (a.pos[0], v))
            .collect();
        by_x.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in by_x.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn presets_have_expected_scale() {
        assert_eq!(DeviceConfig::tiny().num_atoms(), 16);
        assert_eq!(DeviceConfig::demo().num_atoms(), 96);
        assert_eq!(DeviceConfig::small_proxy().num_atoms(), 245);
    }
}
