//! # omen-device
//!
//! Synthetic nano-device generator — the CP2K substitute of the
//! reproduction (see `DESIGN.md` §2 for the substitution argument).
//!
//! Produces everything the NEGF solver consumes:
//! * a FinFET-slice lattice partitioned into `bnum` slabs ([`lattice`]),
//! * short-ranged neighbor lists with periodic z-images ([`neighbors`]),
//! * Hermitian kz-dependent `H(kz)`/`S(kz)` and a dynamical matrix `Φ(qz)`
//!   obeying the acoustic sum rule ([`hamiltonian`]),
//! * the `∇H` derivative table entering the scattering self-energies
//!   ([`gradient`]),
//! * a binary material-file format plus loaders for the data-ingestion
//!   experiments ([`ingest`]).

pub mod gradient;
pub mod hamiltonian;
pub mod ingest;
pub mod lattice;
pub mod material;
pub mod neighbors;
pub mod structure;

pub use gradient::GradientTable;
pub use hamiltonian::{assemble_dynamical, assemble_hamiltonian, assemble_overlap};
pub use ingest::{deserialize_structure, serialize_structure, serialized_size, IngestError};
pub use lattice::{Atom, Lattice};
pub use material::Material;
pub use neighbors::{Neighbor, NeighborList};
pub use structure::{DeviceConfig, DeviceStructure};
