//! Material parameterization — the synthetic stand-in for CP2K's DFT output.
//!
//! CP2K would provide, per atom pair, `Norb × Norb` Hamiltonian and overlap
//! coupling blocks, their position derivatives `∇H`, and `3 × 3`
//! inter-atomic force-constant blocks. We generate all of these from a
//! short-ranged analytic model:
//!
//! * hopping magnitude `t(r) = t0 · exp(−(r − r0)/λ)`;
//! * an orbital mixing pattern that makes blocks dense like DFT (not
//!   diagonal like simple tight-binding), with a deterministic
//!   pseudo-random component so no accidental symmetry survives;
//! * spring constants `k(r) = k0 · exp(−(r − r0)/λ_ph)` entering a
//!   longitudinal/transverse force-constant block.
//!
//! The generated operators keep every property the solver relies on:
//! Hermiticity, short range (block-tridiagonality), positive-definite
//! overlap, and the acoustic sum rule for `Φ`.

use omen_linalg::{c64, CMatrix, C64};

/// Material parameters of the synthetic device.
#[derive(Clone, Debug, PartialEq)]
pub struct Material {
    /// Orbitals per atom (`Norb`).
    pub norb: usize,
    /// On-site orbital energies (eV), length `norb`.
    pub onsite: Vec<f64>,
    /// Hopping prefactor `t0` (eV).
    pub t0: f64,
    /// Reference bond length `r0` (nm).
    pub r0: f64,
    /// Hopping decay length `λ` (nm).
    pub lambda: f64,
    /// Overlap prefactor (dimensionless, small).
    pub s0: f64,
    /// Spring-constant prefactor `k0` (eV²; mass-normalized so `Φ` has
    /// units of energy², matching `ω²` on the phonon grid).
    pub k0: f64,
    /// Spring decay length (nm).
    pub lambda_ph: f64,
    /// Fraction of transverse (non-longitudinal) restoring force.
    pub transverse_frac: f64,
    /// Seed for the deterministic orbital-mixing pattern.
    pub seed: u64,
}

impl Material {
    /// A silicon-like parameter set (energies in eV, lengths in nm).
    pub fn silicon_like(norb: usize) -> Material {
        let onsite = (0..norb)
            .map(|o| 0.35 * (o as f64 - (norb as f64 - 1.0) / 2.0))
            .collect();
        Material {
            norb,
            onsite,
            t0: 1.2,
            r0: 0.25,
            lambda: 0.12,
            s0: 0.04,
            k0: 3.0e-3,
            lambda_ph: 0.12,
            transverse_frac: 0.25,
            seed: 0x5EED_0A70,
        }
    }

    /// Radial hopping magnitude `t(r)` in eV.
    pub fn hopping(&self, r: f64) -> f64 {
        -self.t0 * (-(r - self.r0) / self.lambda).exp()
    }

    /// Radial derivative `dt/dr` in eV/nm.
    pub fn hopping_deriv(&self, r: f64) -> f64 {
        -self.hopping(r) / self.lambda
    }

    /// Radial overlap magnitude `s(r)` (dimensionless).
    pub fn overlap(&self, r: f64) -> f64 {
        self.s0 * (-(r - self.r0) / self.lambda).exp()
    }

    /// Radial spring constant `k(r)` in eV².
    pub fn spring(&self, r: f64) -> f64 {
        self.k0 * (-(r - self.r0) / self.lambda_ph).exp()
    }

    /// The `norb × norb` orbital mixing pattern for a displacement
    /// direction `u = δ/r`. Real-valued and constructed so
    /// `pattern(u)ᵀ == pattern(−u)`, which makes `H(kz)` Hermitian.
    pub fn orbital_pattern(&self, unit: [f64; 3]) -> CMatrix {
        let n = self.norb;
        CMatrix::from_fn(n, n, |i, j| {
            // Symmetric base + direction-odd antisymmetric part: swapping
            // (i,j) and negating u leaves the value unchanged.
            let sym = mix_hash(self.seed, i.min(j), i.max(j), 0);
            let anti = mix_hash(self.seed, i.min(j), i.max(j), 1);
            let sgn = if i < j {
                1.0
            } else if i > j {
                -1.0
            } else {
                0.0
            };
            let dir = unit[0] * 0.9 + unit[1] * 0.7 + unit[2] * 0.5;
            let diag_boost = if i == j { 1.0 } else { 0.45 };
            c64(diag_boost * sym + 0.3 * sgn * dir * anti, 0.0)
        })
    }

    /// Full `norb × norb` hopping block for displacement `delta`.
    pub fn hopping_block(&self, delta: [f64; 3]) -> CMatrix {
        let r = norm3(delta);
        let unit = [delta[0] / r, delta[1] / r, delta[2] / r];
        self.orbital_pattern(unit)
            .scaled(C64::from_re(self.hopping(r)))
    }

    /// Full `norb × norb` overlap block for displacement `delta`.
    pub fn overlap_block(&self, delta: [f64; 3]) -> CMatrix {
        let r = norm3(delta);
        let unit = [delta[0] / r, delta[1] / r, delta[2] / r];
        self.orbital_pattern(unit)
            .scaled(C64::from_re(self.overlap(r)))
    }

    /// `∇H` blocks: the three `norb × norb` derivative matrices
    /// `∂H_ab/∂R_i`, `i ∈ {x, y, z}`, for displacement `delta`.
    ///
    /// We differentiate only the radial factor (the dominant term):
    /// `∂H/∂R_i = t'(r) · (δ_i / r) · pattern(δ̂)`.
    pub fn gradient_blocks(&self, delta: [f64; 3]) -> [CMatrix; 3] {
        let r = norm3(delta);
        let unit = [delta[0] / r, delta[1] / r, delta[2] / r];
        let pat = self.orbital_pattern(unit);
        let dt = self.hopping_deriv(r);
        [
            pat.scaled(C64::from_re(dt * unit[0])),
            pat.scaled(C64::from_re(dt * unit[1])),
            pat.scaled(C64::from_re(dt * unit[2])),
        ]
    }

    /// `3 × 3` force-constant block for displacement `delta`
    /// (mass-normalized): `Φ_ab = −k(r) [(1−f) δ̂⊗δ̂ + f·I]`.
    pub fn force_block(&self, delta: [f64; 3]) -> CMatrix {
        let r = norm3(delta);
        let u = [delta[0] / r, delta[1] / r, delta[2] / r];
        let k = self.spring(r);
        let f = self.transverse_frac;
        CMatrix::from_fn(3, 3, |i, j| {
            let long = u[i] * u[j] * (1.0 - f);
            let trans = if i == j { f } else { 0.0 };
            c64(-k * (long + trans), 0.0)
        })
    }

    /// On-site Hamiltonian block (diagonal orbital energies).
    pub fn onsite_block(&self) -> CMatrix {
        CMatrix::from_diag(&self.onsite.iter().map(|&e| c64(e, 0.0)).collect::<Vec<_>>())
    }
}

/// Euclidean norm of a 3-vector.
pub fn norm3(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// Deterministic hash → value in `[0.5, 1.0]`, used for the orbital mixing
/// pattern (SplitMix64 finalizer).
fn mix_hash(seed: u64, a: usize, b: usize, salt: u64) -> f64 {
    let mut x = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + a as u64))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(7 + b as u64))
        .wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(13 + salt));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    0.5 + 0.5 * (x as f64 / u64::MAX as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopping_decays_with_distance() {
        let m = Material::silicon_like(4);
        assert!(m.hopping(0.25).abs() > m.hopping(0.35).abs());
        assert!(m.hopping(0.25) < 0.0, "attractive hopping convention");
        // Derivative is positive (hopping rises toward zero with distance).
        assert!(m.hopping_deriv(0.25) > 0.0);
    }

    #[test]
    fn pattern_transpose_symmetry() {
        // pattern(u)^T == pattern(-u): the key Hermiticity ingredient.
        let m = Material::silicon_like(5);
        let u = [0.6, -0.64, 0.48];
        let nu = [-0.6, 0.64, -0.48];
        let p = m.orbital_pattern(u);
        let q = m.orbital_pattern(nu);
        assert!(p.transpose().approx_eq(&q, 1e-14));
    }

    #[test]
    fn hopping_block_reciprocity() {
        // T_ba(-δ) == T_ab(δ)^T  (real blocks).
        let m = Material::silicon_like(4);
        let d = [0.25, 0.1, -0.05];
        let nd = [-0.25, -0.1, 0.05];
        let t_ab = m.hopping_block(d);
        let t_ba = m.hopping_block(nd);
        assert!(t_ba.approx_eq(&t_ab.transpose(), 1e-14));
    }

    #[test]
    fn gradient_is_antisymmetric_under_reversal() {
        // ∇H_ba(-δ) == -(∇H_ab(δ))^T because t'(r)·δ̂ flips sign.
        let m = Material::silicon_like(3);
        let d = [0.2, -0.12, 0.09];
        let nd = [-0.2, 0.12, -0.09];
        let ga = m.gradient_blocks(d);
        let gb = m.gradient_blocks(nd);
        for i in 0..3 {
            assert!(gb[i].approx_eq(&ga[i].transpose().scaled(c64(-1.0, 0.0)), 1e-14));
        }
    }

    #[test]
    fn force_block_symmetric_negative_definiteish() {
        let m = Material::silicon_like(4);
        let f = m.force_block([0.25, 0.0, 0.0]);
        assert!(f.is_hermitian(1e-14));
        // Longitudinal (x) component strongest.
        assert!(f[(0, 0)].re < f[(1, 1)].re);
        assert!(f[(0, 0)].re < 0.0);
        // Transverse isotropy: yy == zz for an x-directed bond.
        assert!((f[(1, 1)].re - f[(2, 2)].re).abs() < 1e-14);
    }

    #[test]
    fn force_block_even_under_reversal() {
        // Φ(δ) == Φ(-δ): u⊗u is even in u.
        let m = Material::silicon_like(4);
        let f1 = m.force_block([0.2, 0.1, 0.0]);
        let f2 = m.force_block([-0.2, -0.1, 0.0]);
        assert!(f1.approx_eq(&f2, 1e-14));
    }

    #[test]
    fn onsite_block_is_diagonal_real() {
        let m = Material::silicon_like(4);
        let h0 = m.onsite_block();
        assert!(h0.is_hermitian(0.0));
        assert_eq!(h0[(0, 1)], C64::ZERO);
        // Mean orbital energy centred on zero.
        let tr: f64 = (0..4).map(|i| h0[(i, i)].re).sum();
        assert!(tr.abs() < 1e-12);
    }

    #[test]
    fn deterministic_pattern() {
        let m = Material::silicon_like(6);
        let p1 = m.orbital_pattern([1.0, 0.0, 0.0]);
        let p2 = m.orbital_pattern([1.0, 0.0, 0.0]);
        assert!(p1.approx_eq(&p2, 0.0), "pattern must be deterministic");
        // Different seed -> different pattern.
        let mut m2 = m.clone();
        m2.seed ^= 0xFFFF;
        let p3 = m2.orbital_pattern([1.0, 0.0, 0.0]);
        assert!(!p1.approx_eq(&p3, 1e-6));
    }

    #[test]
    fn overlap_much_smaller_than_hopping() {
        let m = Material::silicon_like(4);
        assert!(m.overlap(0.25) < 0.1 * m.hopping(0.25).abs());
    }
}
