//! Atomic lattice generation for FinFET-slice devices.
//!
//! The paper simulates a 2-D slice of a Si FinFET in the x–y plane
//! (Fig. 1b): transport along x, confinement along y, and the tall z
//! direction treated as periodic and represented by a momentum `kz`. We
//! generate a rectangular lattice of atoms — `nx` columns along transport ×
//! `ny` rows across the fin width — grouped into `bnum` slabs of
//! `cols_per_slab` columns each. Couplings never reach beyond one slab,
//! which is what makes `H`, `S`, and `Φ` block-tridiagonal.

/// One atom of the device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Position in nanometres, `[x, y, z]`; all atoms sit at `z = 0` in the
    /// reference cell (periodic images handle the z direction).
    pub pos: [f64; 3],
    /// Slab (block) index along transport.
    pub slab: usize,
    /// Index of this atom within its slab.
    pub slab_offset: usize,
}

/// The generated lattice.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// All atoms, ordered slab-major (slab 0 first, then slab 1, …).
    pub atoms: Vec<Atom>,
    /// Number of columns along transport.
    pub nx: usize,
    /// Number of rows across the fin.
    pub ny: usize,
    /// Columns per slab.
    pub cols_per_slab: usize,
    /// Number of slabs (`bnum`).
    pub num_slabs: usize,
    /// Lattice constant along x (nm).
    pub ax: f64,
    /// Lattice constant along y (nm).
    pub ay: f64,
    /// Periodicity along z (nm) — the momentum direction.
    pub az: f64,
}

impl Lattice {
    /// Generates an `nx × ny` lattice grouped into slabs of
    /// `cols_per_slab` columns.
    ///
    /// # Panics
    /// Panics if `nx` is not divisible by `cols_per_slab`.
    pub fn rectangular(
        nx: usize,
        ny: usize,
        cols_per_slab: usize,
        ax: f64,
        ay: f64,
        az: f64,
    ) -> Self {
        assert!(nx > 0 && ny > 0 && cols_per_slab > 0);
        assert!(
            nx.is_multiple_of(cols_per_slab),
            "nx = {nx} must be divisible by cols_per_slab = {cols_per_slab}"
        );
        let num_slabs = nx / cols_per_slab;
        let mut atoms = Vec::with_capacity(nx * ny);
        // Slab-major ordering so the Hamiltonian block structure is
        // contiguous: all atoms of slab 0, then slab 1, …
        for s in 0..num_slabs {
            let mut off = 0;
            for cx in 0..cols_per_slab {
                let ix = s * cols_per_slab + cx;
                for iy in 0..ny {
                    atoms.push(Atom {
                        pos: [ix as f64 * ax, iy as f64 * ay, 0.0],
                        slab: s,
                        slab_offset: off,
                    });
                    off += 1;
                }
            }
        }
        Lattice {
            atoms,
            nx,
            ny,
            cols_per_slab,
            num_slabs,
            ax,
            ay,
            az,
        }
    }

    /// Total number of atoms (`Na`).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Atoms per slab.
    pub fn atoms_per_slab(&self) -> usize {
        self.cols_per_slab * self.ny
    }

    /// Device length along transport (nm).
    pub fn length(&self) -> f64 {
        (self.nx.saturating_sub(1)) as f64 * self.ax
    }

    /// Device width across the fin (nm).
    pub fn width(&self) -> f64 {
        (self.ny.saturating_sub(1)) as f64 * self.ay
    }

    /// Global atom index from `(slab, slab_offset)`.
    pub fn atom_index(&self, slab: usize, slab_offset: usize) -> usize {
        slab * self.atoms_per_slab() + slab_offset
    }

    /// The x coordinate of slab `s`'s first column.
    pub fn slab_x(&self, s: usize) -> f64 {
        (s * self.cols_per_slab) as f64 * self.ax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_count_and_ordering() {
        let l = Lattice::rectangular(6, 3, 2, 0.25, 0.25, 0.5);
        assert_eq!(l.num_atoms(), 18);
        assert_eq!(l.num_slabs, 3);
        assert_eq!(l.atoms_per_slab(), 6);
        // Slab-major: first 6 atoms in slab 0.
        for (i, a) in l.atoms.iter().enumerate() {
            assert_eq!(a.slab, i / 6, "atom {i}");
            assert_eq!(a.slab_offset, i % 6);
            assert_eq!(l.atom_index(a.slab, a.slab_offset), i);
        }
    }

    #[test]
    fn positions_cover_expected_extent() {
        let l = Lattice::rectangular(8, 4, 2, 0.25, 0.3, 0.5);
        assert!((l.length() - 7.0 * 0.25).abs() < 1e-12);
        assert!((l.width() - 3.0 * 0.3).abs() < 1e-12);
        let max_x = l.atoms.iter().map(|a| a.pos[0]).fold(0.0, f64::max);
        assert!((max_x - l.length()).abs() < 1e-12);
    }

    #[test]
    fn slab_positions_monotone() {
        let l = Lattice::rectangular(9, 2, 3, 0.25, 0.25, 0.5);
        assert_eq!(l.num_slabs, 3);
        assert!(l.slab_x(0) < l.slab_x(1));
        // All atoms of slab s lie within [slab_x(s), slab_x(s)+width).
        for a in &l.atoms {
            let x0 = l.slab_x(a.slab);
            assert!(a.pos[0] >= x0 - 1e-12);
            assert!(a.pos[0] < x0 + 3.0 * 0.25);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_columns_panic() {
        let _ = Lattice::rectangular(7, 2, 2, 0.25, 0.25, 0.5);
    }
}
