//! Neighbor-list construction.
//!
//! Couplings are short-ranged: atom `a` couples to atom `b` when their
//! in-plane distance (including one periodic image along z) is below the
//! material cutoff. Each directed pair carries the displacement vector
//! `δ = R_b − R_a` and the z-image index `m ∈ {−1, 0, +1}` that produces
//! the `e^{i m kz}` Bloch phase in `H(kz)`.

use crate::lattice::Lattice;

/// A directed coupling from atom `from` to atom `to` through z-image `m`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Source atom (global index).
    pub from: usize,
    /// Target atom (global index).
    pub to: usize,
    /// Displacement `R_to + m·az·ẑ − R_from` in nm.
    pub delta: [f64; 3],
    /// Periodic image index along z.
    pub z_image: i8,
    /// Euclidean length of `delta`.
    pub dist: f64,
}

/// Neighbor list with per-atom adjacency offsets.
#[derive(Clone, Debug)]
pub struct NeighborList {
    /// All directed neighbor pairs, sorted by `from`.
    pub pairs: Vec<Neighbor>,
    /// `offsets[a]..offsets[a+1]` indexes the pairs whose source is `a`.
    pub offsets: Vec<usize>,
    /// Maximum neighbor count over all atoms (`Nb` in the paper).
    pub max_neighbors: usize,
}

impl NeighborList {
    /// Builds the neighbor list of `lattice` with interaction `cutoff` (nm).
    ///
    /// Self-coupling through a periodic z image (same atom, `m = ±1`) is
    /// included when `az <= cutoff`; the `m = 0` self-pair is excluded
    /// (it is the on-site block, handled separately).
    ///
    /// # Panics
    /// Panics if the cutoff exceeds one slab width — that would break the
    /// block-tridiagonal structure RGF relies on.
    pub fn build(lattice: &Lattice, cutoff: f64) -> Self {
        // Columns c and c' in non-adjacent slabs are at least
        // (cols_per_slab + 1) columns apart, so block-tridiagonality holds
        // as long as the cutoff cannot bridge that distance.
        let limit = (lattice.cols_per_slab + 1) as f64 * lattice.ax;
        assert!(
            cutoff < limit - 1e-12,
            "cutoff {cutoff} nm reaches beyond adjacent slabs (limit {limit} nm): H would not be block-tridiagonal"
        );
        let n = lattice.num_atoms();
        let mut pairs = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut max_neighbors = 0usize;
        for a in 0..n {
            let pa = lattice.atoms[a].pos;
            let mut count = 0usize;
            for b in 0..n {
                for m in -1i8..=1 {
                    if b == a && m == 0 {
                        continue;
                    }
                    let pb = lattice.atoms[b].pos;
                    let delta = [
                        pb[0] - pa[0],
                        pb[1] - pa[1],
                        pb[2] + m as f64 * lattice.az - pa[2],
                    ];
                    let dist =
                        (delta[0] * delta[0] + delta[1] * delta[1] + delta[2] * delta[2]).sqrt();
                    if dist <= cutoff {
                        pairs.push(Neighbor {
                            from: a,
                            to: b,
                            delta,
                            z_image: m,
                            dist,
                        });
                        count += 1;
                    }
                }
            }
            offsets.push(pairs.len());
            max_neighbors = max_neighbors.max(count);
        }
        NeighborList {
            pairs,
            offsets,
            max_neighbors,
        }
    }

    /// The neighbors of atom `a`.
    pub fn of(&self, a: usize) -> &[Neighbor] {
        &self.pairs[self.offsets[a]..self.offsets[a + 1]]
    }

    /// Number of atoms covered.
    pub fn num_atoms(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Average neighbor count.
    pub fn avg_neighbors(&self) -> f64 {
        self.num_pairs() as f64 / self.num_atoms() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::rectangular(6, 3, 2, 0.25, 0.25, 0.25)
    }

    #[test]
    fn symmetry_of_directed_pairs() {
        let l = lat();
        let nl = NeighborList::build(&l, 0.3);
        // For every (a -> b, m) there is (b -> a, -m) with negated delta.
        for p in &nl.pairs {
            let found = nl.of(p.to).iter().any(|q| {
                q.to == p.from
                    && q.z_image == -p.z_image
                    && (q.delta[0] + p.delta[0]).abs() < 1e-12
                    && (q.delta[1] + p.delta[1]).abs() < 1e-12
                    && (q.delta[2] + p.delta[2]).abs() < 1e-12
            });
            assert!(found, "missing reverse pair for {p:?}");
        }
    }

    #[test]
    fn nearest_neighbor_count_interior() {
        let l = lat();
        // Cutoff covering only nearest neighbors (0.25 nm): interior atoms
        // have 4 in-plane + 2 z-image self pairs.
        let nl = NeighborList::build(&l, 0.26);
        let interior = l
            .atoms
            .iter()
            .position(|a| {
                a.pos[0] > 0.0 && a.pos[0] < l.length() && a.pos[1] > 0.0 && a.pos[1] < l.width()
            })
            .unwrap();
        assert_eq!(nl.of(interior).len(), 6);
    }

    #[test]
    fn z_images_present_when_in_range() {
        let l = lat();
        let nl = NeighborList::build(&l, 0.26);
        // Every atom couples to its own z images at distance az = 0.25.
        for a in 0..l.num_atoms() {
            let self_images = nl.of(a).iter().filter(|p| p.to == a).count();
            assert_eq!(self_images, 2, "atom {a}");
        }
    }

    #[test]
    fn z_images_absent_when_out_of_range() {
        let l = Lattice::rectangular(6, 3, 2, 0.25, 0.25, 1.0);
        let nl = NeighborList::build(&l, 0.3);
        for p in &nl.pairs {
            assert_eq!(
                p.z_image, 0,
                "no z image should be within 0.3 of 1.0 period"
            );
        }
    }

    #[test]
    fn couplings_stay_within_adjacent_slabs() {
        let l = lat();
        let nl = NeighborList::build(&l, 0.5); // equals slab width
        for p in &nl.pairs {
            let ds = l.atoms[p.from].slab as i64 - l.atoms[p.to].slab as i64;
            assert!(ds.abs() <= 1, "pair {p:?} spans non-adjacent slabs");
        }
    }

    #[test]
    #[should_panic(expected = "block-tridiagonal")]
    fn oversized_cutoff_panics() {
        // cols_per_slab = 2, ax = 0.25 -> limit = 0.75 nm.
        let l = lat();
        let _ = NeighborList::build(&l, 0.8);
    }

    #[test]
    fn offsets_consistent() {
        let l = lat();
        let nl = NeighborList::build(&l, 0.3);
        assert_eq!(nl.num_atoms(), l.num_atoms());
        let total: usize = (0..nl.num_atoms()).map(|a| nl.of(a).len()).sum();
        assert_eq!(total, nl.num_pairs());
        assert!(nl.max_neighbors >= nl.avg_neighbors() as usize);
    }
}
