//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so this crate vendors
//! the subset its property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], `num::f64::NORMAL`, [`ProptestConfig`], and the
//! [`proptest!`] / `prop_assert!` / `prop_assume!` macros.
//!
//! Differences from the real crate, chosen to keep the shim small:
//!
//! * sampling is a deterministic xorshift stream seeded per test (stable
//!   across runs and platforms) — there is no persistence file;
//! * failing cases are reported but **not shrunk**;
//! * `prop_assume!` skips the current case instead of resampling.

/// Deterministic pseudo-random generator (xorshift64*).
pub mod shim_rng {
    /// The generator. Not cryptographic; stable across platforms.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Creates a generator from a nonzero seed.
        pub fn seeded(seed: u64) -> Self {
            Rng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(hi > lo, "empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

use shim_rng::Rng;

/// A value generator (shim of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut Rng) -> usize {
        rng.range_u64(self.start as u64, self.end as u64) as usize
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut Rng) -> usize {
        rng.range_u64(*self.start() as u64, *self.end() as u64 + 1) as usize
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut Rng) -> u64 {
        rng.range_u64(self.start, self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);

    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
        )
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::{Rng, Strategy};

    /// Generates `Vec`s of exactly `len` elements.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric strategies (shim of `proptest::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Rng, Strategy};

        /// Strategy yielding normal (finite, non-subnormal, non-NaN)
        /// doubles of either sign.
        pub struct NormalF64;

        /// Normal doubles, mirroring `proptest::num::f64::NORMAL`.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;

            fn sample(&self, rng: &mut Rng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Per-test configuration (shim of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case when two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Seed from the test name for stream independence.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                let mut rng = $crate::shim_rng::Rng::seeded(seed);
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            case + 1,
                            cfg.cases,
                            msg,
                            stringify!($($arg),*)
                        );
                    }
                }
            }
        )*
    };
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 1usize..=5, y in -2.0f64..2.0, z in 0u64..7) {
            prop_assert!((1..=5).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
            prop_assert!(z < 7);
        }

        #[test]
        fn map_and_vec_compose(v in crate::collection::vec((0.0f64..1.0).prop_map(|x| x * 2.0), 10)) {
            prop_assert!(v.len() == 10);
            prop_assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }
}
