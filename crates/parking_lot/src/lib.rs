//! A minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` with parking_lot's non-poisoning `lock()` signature
//! over `std::sync::Mutex` (a poisoned lock propagates the panic, which
//! matches parking_lot's effective behavior for this workspace).

/// A mutual-exclusion lock with infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}
