//! A minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` with parking_lot's non-poisoning `lock()` signature
//! over `std::sync::Mutex` (a poisoned lock propagates the panic, which
//! matches parking_lot's effective behavior for this workspace).

/// A mutual-exclusion lock with infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A condition variable pairing with [`Mutex`].
///
/// Since [`MutexGuard`] is the std guard type, this wraps
/// `std::sync::Condvar` directly. `wait` keeps std's consuming signature
/// (take the guard, return it re-acquired) rather than parking_lot's
/// `&mut` one — the borrow checker cannot move a guard out of `&mut`
/// without unsafe, and callers in this workspace use the returned guard.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).expect("mutex poisoned")
    }

    /// Blocks until notified or `timeout` elapses; the boolean is `true`
    /// when the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self.0.wait_timeout(guard, timeout).expect("mutex poisoned");
        (guard, res.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one()
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cvar.wait(ready);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock();
        let (_guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(5));
        assert!(timed_out);
    }
}
