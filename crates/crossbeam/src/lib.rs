//! A minimal, dependency-free stand-in for the `crossbeam` crate.
//!
//! Only the `channel::unbounded` MPSC subset used by the simulated MPI
//! runtime is provided, backed by `std::sync::mpsc` (whose unbounded
//! channel has the same send/recv semantics for this use).

/// Unbounded channels (shim of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
