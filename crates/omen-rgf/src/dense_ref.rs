//! Dense reference NEGF solver.
//!
//! Solves Eq. (1) of the paper by brute force:
//! `G^R = M⁻¹` with `M = E·S − H − Σ^R`, then
//! `G^≷ = G^R · Σ^≷ · G^A`. Cubic in the full device dimension, so usable
//! only at test scale — its purpose is to pin down the RGF implementation
//! (every RGF block must match the corresponding dense block).

use omen_linalg::{invert, matmul3, BlockTriDiag, CMatrix};

/// Full-matrix NEGF solution.
pub struct DenseSolution {
    /// Retarded Green's function (full matrix).
    pub gr: CMatrix,
    /// Advanced Green's function `G^A = (G^R)†`.
    pub ga: CMatrix,
    /// Lesser Green's function.
    pub gl: CMatrix,
    /// Greater Green's function.
    pub gg: CMatrix,
}

/// Solves the dense NEGF system.
///
/// * `m` — the block-tridiagonal `E·S − H − Σ^R` with boundary self-energies
///   already folded into the first/last diagonal blocks;
/// * `sigma_l`, `sigma_g` — block-diagonal lesser/greater self-energies
///   (scattering plus boundary), one block per slab.
pub fn dense_solve(m: &BlockTriDiag, sigma_l: &[CMatrix], sigma_g: &[CMatrix]) -> DenseSolution {
    let nb = m.num_blocks();
    let bs = m.block_size();
    assert_eq!(sigma_l.len(), nb, "sigma_l must have one block per slab");
    assert_eq!(sigma_g.len(), nb, "sigma_g must have one block per slab");

    let md = m.to_dense();
    let gr = invert(&md);
    let ga = gr.adjoint();

    let assemble_blockdiag = |blocks: &[CMatrix]| {
        let mut out = CMatrix::zeros(nb * bs, nb * bs);
        for (b, blk) in blocks.iter().enumerate() {
            assert_eq!(blk.shape(), (bs, bs), "self-energy block shape");
            out.set_block(b * bs, b * bs, blk);
        }
        out
    };

    let sl = assemble_blockdiag(sigma_l);
    let sg = assemble_blockdiag(sigma_g);
    let gl = matmul3(&gr, &sl, &ga);
    let gg = matmul3(&gr, &sg, &ga);
    DenseSolution { gr, ga, gl, gg }
}

impl DenseSolution {
    /// Extracts the `(i, j)` block of a full-matrix Green's function.
    pub fn block(of: &CMatrix, bs: usize, i: usize, j: usize) -> CMatrix {
        of.block(i * bs, j * bs, bs, bs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::{c64, matmul, C64};

    fn test_system(nb: usize, bs: usize) -> (BlockTriDiag, Vec<CMatrix>, Vec<CMatrix>) {
        let mut m = BlockTriDiag::zeros(nb, bs);
        for b in 0..nb {
            m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
                if i == j {
                    c64(2.0 + 0.1 * b as f64, 1e-2) // +iη keeps it invertible
                } else {
                    c64(-0.4, 0.05)
                }
            });
        }
        for b in 0..nb - 1 {
            m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| c64(-0.5 - 0.01 * (i + j) as f64, 0.0));
            m.lower[b] = m.upper[b].adjoint();
        }
        // Anti-Hermitian Σ^< / Σ^> blocks (iX with X Hermitian).
        let mk_sigma = |seed: f64| {
            (0..nb)
                .map(|b| {
                    let mut x = CMatrix::from_fn(bs, bs, |i, j| {
                        c64(
                            ((i + 2 * j + b) as f64 + seed).sin() * 0.1,
                            ((2 * i + j) as f64 - seed).cos() * 0.1,
                        )
                    });
                    x.hermitianize();
                    x.scaled(C64::I)
                })
                .collect::<Vec<_>>()
        };
        (m, mk_sigma(0.3), mk_sigma(1.7))
    }

    #[test]
    fn gr_inverts_m() {
        let (m, sl, sg) = test_system(4, 3);
        let sol = dense_solve(&m, &sl, &sg);
        let prod = matmul(&m.to_dense(), &sol.gr);
        assert!(prod.approx_eq(&CMatrix::identity(12), 1e-9));
    }

    #[test]
    fn lesser_greater_anti_hermitian() {
        let (m, sl, sg) = test_system(3, 2);
        let sol = dense_solve(&m, &sl, &sg);
        assert!(
            sol.gl.is_anti_hermitian(1e-10),
            "G^< must be anti-Hermitian"
        );
        assert!(
            sol.gg.is_anti_hermitian(1e-10),
            "G^> must be anti-Hermitian"
        );
    }

    #[test]
    fn keldysh_identity() {
        // G^> − G^< = G^R (Σ^> − Σ^<) G^A; when Σ^> − Σ^< = Σ^R − Σ^A
        // (true for boundary self-energies), this equals G^R − G^A.
        // Here we verify the weaker algebraic identity directly.
        let (m, sl, sg) = test_system(3, 2);
        let sol = dense_solve(&m, &sl, &sg);
        let bs = 2;
        let nb = 3;
        let mut diff_sigma = CMatrix::zeros(nb * bs, nb * bs);
        for b in 0..nb {
            let d = &sg[b] - &sl[b];
            diff_sigma.set_block(b * bs, b * bs, &d);
        }
        let want = matmul3(&sol.gr, &diff_sigma, &sol.ga);
        let got = &sol.gg - &sol.gl;
        assert!(got.approx_eq(&want, 1e-10));
    }

    #[test]
    fn block_extraction() {
        let (m, sl, sg) = test_system(3, 2);
        let sol = dense_solve(&m, &sl, &sg);
        let b11 = DenseSolution::block(&sol.gr, 2, 1, 1);
        assert_eq!(b11.shape(), (2, 2));
        assert_eq!(b11[(0, 0)], sol.gr[(2, 2)]);
    }
}
