//! The Recursive Green's Function (RGF) algorithm [Svizhenko et al. 2002],
//! the workhorse of the paper's GF phase.
//!
//! Given the block-tridiagonal `M = E·S − H − Σ^R` (boundary self-energies
//! folded into the end blocks) and block-diagonal `Σ^≷`, RGF computes the
//! diagonal and first off-diagonal blocks of `G^R` and `G^≷` in
//! `O(bnum · bs³)` instead of the dense `O((bnum·bs)³)`:
//!
//! 1. a forward sweep builds left-connected Green's functions `gL`, `gl`;
//! 2. a backward sweep assembles the fully-connected blocks.
//!
//! Every block this module produces is validated against the dense
//! reference solver in the test suite.

use crate::dense_ref::DenseSolution;
use omen_linalg::{
    gemm, gemm_flops, lu::lu_flops, matmul, matmul3_into, matmul_into, matmul_op, BlockTriDiag,
    CMatrix, Op, Workspace, C64,
};

/// Inputs of one RGF solve: one energy-momentum point.
pub struct RgfInputs<'a> {
    /// `E·S − H − Σ^R` (block-tridiagonal; boundary Σ folded into the
    /// first and last diagonal blocks).
    pub m: &'a BlockTriDiag,
    /// Lesser self-energy, one diagonal block per slab (scattering +
    /// boundary contributions).
    pub sigma_l: &'a [CMatrix],
    /// Greater self-energy blocks.
    pub sigma_g: &'a [CMatrix],
}

/// Output blocks of one RGF solve.
#[derive(Clone, Debug)]
pub struct RgfSolution {
    /// `G^R[n][n]`.
    pub gr_diag: Vec<CMatrix>,
    /// `G^R[n][n+1]`.
    pub gr_upper: Vec<CMatrix>,
    /// `G^R[n+1][n]`.
    pub gr_lower: Vec<CMatrix>,
    /// `G^<[n][n]`.
    pub gl_diag: Vec<CMatrix>,
    /// `G^>[n][n]`.
    pub gg_diag: Vec<CMatrix>,
    /// `G^<[n+1][n]` (needed by the current operator).
    pub gl_lower: Vec<CMatrix>,
    /// `G^>[n+1][n]`.
    pub gg_lower: Vec<CMatrix>,
    /// Real flops performed (8 per complex MAC convention).
    pub flops: u64,
}

/// Solves one energy-momentum point with RGF, allocating fresh output and
/// scratch storage. Hot paths should hold a [`Workspace`] and a reusable
/// [`RgfSolution`] and call [`rgf_solve_into`] instead.
pub fn rgf_solve(inp: &RgfInputs) -> RgfSolution {
    let mut ws = Workspace::new();
    let mut out = RgfSolution::empty();
    rgf_solve_into(inp, &mut ws, &mut out);
    out
}

/// Resizes `v` to `n` blocks of `bs × bs`, reusing existing buffers.
fn ensure_blocks(v: &mut Vec<CMatrix>, n: usize, bs: usize) {
    v.truncate(n);
    for m in v.iter_mut() {
        m.resize(bs, bs);
    }
    while v.len() < n {
        v.push(CMatrix::zeros(bs, bs));
    }
}

/// Left-connected lesser/greater block:
/// `out = gL (Σ≷ + L g≷_prev L†) gL†` (the `prev` term only for `n > 0`).
#[allow(clippy::too_many_arguments)]
fn left_connected_lg(
    sigma: &CMatrix,
    prev: Option<(&CMatrix, &CMatrix)>, // (L[n−1], g≷_left[n−1])
    g: &CMatrix,
    s: &mut CMatrix,
    t1: &mut CMatrix,
    t2: &mut CMatrix,
    out: &mut CMatrix,
    flops: &mut u64,
    g3: u64,
) {
    s.copy_from(sigma);
    if let Some((l, p)) = prev {
        // L[n−1] · p · L[n−1]†
        matmul_into(l, p, t1);
        gemm(C64::ONE, t1, Op::N, l, Op::C, C64::ZERO, t2);
        *flops += 2 * g3;
        *s += &*t2;
    }
    matmul_into(g, s, t1);
    gemm(C64::ONE, t1, Op::N, g, Op::C, C64::ZERO, out);
    *flops += 2 * g3;
}

/// One lesser/greater backward-recursion step (identical algebra for `<`
/// and `>`, different Σ). `gu = gL[n]·U` is hoisted by the caller and
/// shared between both applications.
#[allow(clippy::too_many_arguments)]
fn backward_lg_step(
    gu: &CMatrix,
    gl_n: &CMatrix,
    u: &CMatrix,
    l: &CMatrix,
    g_conn_next: &CMatrix, // G^R[n+1][n+1]
    g_less_next: &CMatrix, // G≷[n+1][n+1]
    g_less_left: &CMatrix, // g≷_left[n]
    t1: &mut CMatrix,
    t2: &mut CMatrix,
    t3: &mut CMatrix,
    t4: &mut CMatrix,
    diag_out: &mut CMatrix,
    lower_out: &mut CMatrix,
    flops: &mut u64,
    g3: u64,
) {
    // T1 = gL·U·G≷[n+1]·U†·gL†  (gu = gL·U precomputed)
    matmul_into(gu, g_less_next, t1);
    gemm(C64::ONE, t1, Op::N, u, Op::C, C64::ZERO, t2);
    gemm(C64::ONE, t2, Op::N, gl_n, Op::C, C64::ZERO, t1); // t1 = T1
                                                           // T3 = gL·U·G^R[n+1]·L·g≷_left[n]
    matmul_into(gu, g_conn_next, t2);
    matmul3_into(t2, l, g_less_left, t4, t3); // t3 = T3
    *flops += 6 * g3;

    // diag = g≷_left + T1 + T3 − T3† (the adjoint keeps it anti-Hermitian).
    diag_out.copy_from(g_less_left);
    *diag_out += &*t1;
    *diag_out += &*t3;
    t3.adjoint_into(t4);
    *diag_out -= &*t4;

    // Off-diagonal: G≷[n+1][n] = −(G^R[n+1]·L·g≷_left + G≷[n+1]·U†·gL†).
    matmul3_into(g_conn_next, l, g_less_left, t1, lower_out);
    gemm(C64::ONE, g_less_next, Op::N, u, Op::C, C64::ZERO, t1);
    gemm(C64::ONE, t1, Op::N, gl_n, Op::C, C64::ONE, lower_out);
    *flops += 4 * g3;
    lower_out.scale_inplace(C64::from_re(-1.0));
}

/// Solves one energy-momentum point with RGF into a reusable solution.
///
/// All temporaries come from `ws` and every output block reuses `out`'s
/// buffers, so a warm `(ws, out)` pair makes the solve **allocation-free**
/// — the property the `integration_alloc` regression test pins down. The
/// forward/backward sweeps share the workspace's block buffers; values are
/// identical to the seed implementation up to floating-point
/// reassociation inside GEMM tiles.
pub fn rgf_solve_into(inp: &RgfInputs, ws: &mut Workspace, out: &mut RgfSolution) {
    let m = inp.m;
    let nb = m.num_blocks();
    let bs = m.block_size();
    assert_eq!(inp.sigma_l.len(), nb, "sigma_l blocks");
    assert_eq!(inp.sigma_g.len(), nb, "sigma_g blocks");
    let mut flops: u64 = 0;
    let g3 = gemm_flops(bs, bs, bs);

    ensure_blocks(&mut out.gr_diag, nb, bs);
    ensure_blocks(&mut out.gl_diag, nb, bs);
    ensure_blocks(&mut out.gg_diag, nb, bs);
    ensure_blocks(&mut out.gr_upper, nb.saturating_sub(1), bs);
    ensure_blocks(&mut out.gr_lower, nb.saturating_sub(1), bs);
    ensure_blocks(&mut out.gl_lower, nb.saturating_sub(1), bs);
    ensure_blocks(&mut out.gg_lower, nb.saturating_sub(1), bs);

    // Scratch blocks (returned to the workspace at the end).
    let mut t1 = ws.take(bs, bs);
    let mut t2 = ws.take(bs, bs);
    let mut t3 = ws.take(bs, bs);
    let mut t4 = ws.take(bs, bs);
    let mut s = ws.take(bs, bs);
    let mut eff = ws.take(bs, bs);
    let mut gu = ws.take(bs, bs);
    let mut grd_s = ws.take(bs, bs);
    let mut dl_s = ws.take(bs, bs);
    let mut dg_s = ws.take(bs, bs);

    // ---------- forward sweep: left-connected quantities ----------
    let mut g_left = ws.take_vec(); // gL[n]
    let mut gl_left = ws.take_vec(); // g<[n] left-connected
    let mut gg_left = ws.take_vec();

    for n in 0..nb {
        eff.copy_from(&m.diag[n]);
        if n > 0 {
            // M[n][n] − L[n−1] · gL[n−1] · U[n−1]
            matmul_into(&m.lower[n - 1], &g_left[n - 1], &mut t1);
            matmul_into(&t1, &m.upper[n - 1], &mut t2);
            flops += 2 * g3;
            eff -= &t2;
        }
        let mut g = ws.take(bs, bs);
        ws.invert_into(&eff, &mut g);
        flops += lu_flops(bs, bs);

        // Left-connected lesser/greater: g≷ = gL (Σ≷ + L g≷_prev L†) gL†.
        let mut gl = ws.take(bs, bs);
        let prev_l = (n > 0).then(|| (&m.lower[n - 1], &gl_left[n - 1]));
        left_connected_lg(
            &inp.sigma_l[n],
            prev_l,
            &g,
            &mut s,
            &mut t1,
            &mut t2,
            &mut gl,
            &mut flops,
            g3,
        );
        let mut gg = ws.take(bs, bs);
        let prev_g = (n > 0).then(|| (&m.lower[n - 1], &gg_left[n - 1]));
        left_connected_lg(
            &inp.sigma_g[n],
            prev_g,
            &g,
            &mut s,
            &mut t1,
            &mut t2,
            &mut gg,
            &mut flops,
            g3,
        );

        g_left.push(g);
        gl_left.push(gl);
        gg_left.push(gg);
    }

    // ---------- backward sweep: fully-connected blocks ----------
    out.gr_diag[nb - 1].copy_from(&g_left[nb - 1]);
    out.gl_diag[nb - 1].copy_from(&gl_left[nb - 1]);
    out.gg_diag[nb - 1].copy_from(&gg_left[nb - 1]);

    for n in (0..nb.saturating_sub(1)).rev() {
        let u = &m.upper[n]; // M[n][n+1]
        let l = &m.lower[n]; // M[n+1][n]
        let gl_n = &g_left[n];

        // Retarded off-diagonals:
        // G[n+1][n] = −G[n+1][n+1] · L · gL[n]
        matmul3_into(&out.gr_diag[n + 1], l, gl_n, &mut t1, &mut out.gr_lower[n]);
        out.gr_lower[n].scale_inplace(C64::from_re(-1.0));
        // G[n][n+1] = −gL[n] · U · G[n+1][n+1]
        matmul3_into(gl_n, u, &out.gr_diag[n + 1], &mut t1, &mut out.gr_upper[n]);
        out.gr_upper[n].scale_inplace(C64::from_re(-1.0));
        flops += 4 * g3;

        // Retarded diagonal: G[n][n] = gL[n] + gL[n]·U·G[n+1][n+1]·L·gL[n]
        //                            = gL[n] − G[n][n+1]·L·gL[n].
        grd_s.copy_from(gl_n);
        matmul3_into(&out.gr_upper[n], l, gl_n, &mut t1, &mut t2);
        flops += 2 * g3;
        grd_s -= &t2;

        // gu = gL[n]·U, shared by the lesser and greater steps below.
        matmul_into(gl_n, u, &mut gu);
        flops += g3;

        backward_lg_step(
            &gu,
            gl_n,
            u,
            l,
            &out.gr_diag[n + 1],
            &out.gl_diag[n + 1],
            &gl_left[n],
            &mut t1,
            &mut t2,
            &mut t3,
            &mut t4,
            &mut dl_s,
            &mut out.gl_lower[n],
            &mut flops,
            g3,
        );
        backward_lg_step(
            &gu,
            gl_n,
            u,
            l,
            &out.gr_diag[n + 1],
            &out.gg_diag[n + 1],
            &gg_left[n],
            &mut t1,
            &mut t2,
            &mut t3,
            &mut t4,
            &mut dg_s,
            &mut out.gg_lower[n],
            &mut flops,
            g3,
        );

        // Diagonal writes happen last: the steps above still read the
        // `n + 1` diagonals of the same vectors.
        out.gr_diag[n].copy_from(&grd_s);
        out.gl_diag[n].copy_from(&dl_s);
        out.gg_diag[n].copy_from(&dg_s);
    }

    ws.give_vec(g_left);
    ws.give_vec(gl_left);
    ws.give_vec(gg_left);
    for sc in [t1, t2, t3, t4, s, eff, gu, grd_s, dl_s, dg_s] {
        ws.give(sc);
    }
    out.flops = flops;
}

impl RgfSolution {
    /// A zero-block solution, the reusable output slot for
    /// [`rgf_solve_into`]. Performs no allocation.
    pub fn empty() -> Self {
        RgfSolution {
            gr_diag: Vec::new(),
            gr_upper: Vec::new(),
            gr_lower: Vec::new(),
            gl_diag: Vec::new(),
            gg_diag: Vec::new(),
            gl_lower: Vec::new(),
            gg_lower: Vec::new(),
            flops: 0,
        }
    }

    /// Checks the blocks against a dense solution; returns the largest
    /// absolute deviation over all compared blocks.
    pub fn max_deviation_from_dense(&self, dense: &DenseSolution, bs: usize) -> f64 {
        let nb = self.gr_diag.len();
        let mut worst = 0.0f64;
        let mut upd = |got: &CMatrix, want: &CMatrix| {
            worst = worst.max((got - want).max_abs());
        };
        for n in 0..nb {
            upd(&self.gr_diag[n], &DenseSolution::block(&dense.gr, bs, n, n));
            upd(&self.gl_diag[n], &DenseSolution::block(&dense.gl, bs, n, n));
            upd(&self.gg_diag[n], &DenseSolution::block(&dense.gg, bs, n, n));
        }
        for n in 0..nb.saturating_sub(1) {
            upd(
                &self.gr_upper[n],
                &DenseSolution::block(&dense.gr, bs, n, n + 1),
            );
            upd(
                &self.gr_lower[n],
                &DenseSolution::block(&dense.gr, bs, n + 1, n),
            );
            upd(
                &self.gl_lower[n],
                &DenseSolution::block(&dense.gl, bs, n + 1, n),
            );
            upd(
                &self.gg_lower[n],
                &DenseSolution::block(&dense.gg, bs, n + 1, n),
            );
        }
        worst
    }

    /// Spectral-function diagonal `A[n] = i(G^R[n][n] − G^A[n][n])`.
    pub fn spectral_diag(&self) -> Vec<CMatrix> {
        self.gr_diag
            .iter()
            .map(|g| {
                let mut a = g - &g.adjoint();
                a.scale_inplace(C64::I);
                a
            })
            .collect()
    }
}

/// Measured vs modeled: the paper's RGF flop model per energy-momentum
/// point, `8·(26·bnum − 25)·bs³` (dense-operation term of §6.1.1).
pub fn rgf_flops_model(bnum: usize, bs: usize) -> u64 {
    8 * (26 * bnum as u64 - 25) * (bs as u64).pow(3)
}

/// Convenience used by tests and benches: `A·B·C` with `C = B†`.
pub fn sandwich_adjoint(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let ab = matmul(a, b);
    matmul_op(&ab, Op::N, b, Op::C)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::dense_solve;
    use omen_linalg::c64;

    use crate::testutil::test_system;

    #[test]
    fn rgf_matches_dense_small() {
        for &(nb, bs) in &[(2usize, 2usize), (3, 2), (4, 3), (6, 4), (8, 2)] {
            let (m, sl, sg) = test_system(nb, bs, 0.37 * nb as f64);
            let rgf = rgf_solve(&RgfInputs {
                m: &m,
                sigma_l: &sl,
                sigma_g: &sg,
            });
            let dense = dense_solve(&m, &sl, &sg);
            let dev = rgf.max_deviation_from_dense(&dense, bs);
            assert!(dev < 1e-9, "nb={nb} bs={bs}: deviation {dev}");
        }
    }

    #[test]
    fn single_block_degenerates_to_direct_solve() {
        let (m, sl, sg) = test_system(1, 4, 0.9);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let dense = dense_solve(&m, &sl, &sg);
        assert!(rgf.max_deviation_from_dense(&dense, 4) < 1e-10);
        assert!(rgf.gr_upper.is_empty());
    }

    #[test]
    fn lesser_greater_anti_hermitian_diagonals() {
        let (m, sl, sg) = test_system(5, 3, 1.1);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for n in 0..5 {
            assert!(rgf.gl_diag[n].is_anti_hermitian(1e-10), "G<[{n}]");
            assert!(rgf.gg_diag[n].is_anti_hermitian(1e-10), "G>[{n}]");
        }
    }

    #[test]
    fn keldysh_difference_identity() {
        // G^> − G^< == G^R − G^A when Σ^> − Σ^< == Σ^R − Σ^A == −iΓ_total.
        // Build Σ^≷ satisfying the identity with the anti-Hermitian part of M.
        let (mut m, _, _) = test_system(4, 2, 0.0);
        // Anti-Hermitian part of M's diagonal: M − M† restricted blockwise.
        // Σ^R − Σ^A = −(M − M†) since M = ES − H − Σ^R and ES−H Hermitian.
        let nb = 4;
        let occ = 0.3;
        let mut sl = Vec::new();
        let mut sg = Vec::new();
        for b in 0..nb {
            let ra = &m.diag[b] - &m.diag[b].adjoint(); // = −(Σ^R − Σ^A)
            let ra = ra.scaled(c64(-1.0, 0.0));
            sl.push(ra.scaled(c64(-occ, 0.0)));
            sg.push(ra.scaled(c64(1.0 - occ, 0.0)));
        }
        // Ensure the off-diagonal blocks are exactly Hermitian-conjugate.
        for b in 0..nb - 1 {
            m.lower[b] = m.upper[b].adjoint();
        }
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for n in 0..nb {
            let lhs = &rgf.gg_diag[n] - &rgf.gl_diag[n];
            let rhs = &rgf.gr_diag[n] - &rgf.gr_diag[n].adjoint();
            assert!(
                lhs.approx_eq(&rhs, 1e-9),
                "block {n}: ‖(G>−G<)−(GR−GA)‖ = {}",
                (&lhs - &rhs).max_abs()
            );
        }
    }

    #[test]
    fn flops_counted_and_scale() {
        let (m, sl, sg) = test_system(6, 3, 0.5);
        let r1 = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let (m2, sl2, sg2) = test_system(12, 3, 0.5);
        let r2 = rgf_solve(&RgfInputs {
            m: &m2,
            sigma_l: &sl2,
            sigma_g: &sg2,
        });
        assert!(r1.flops > 0);
        // Doubling the block count roughly doubles the work.
        let ratio = r2.flops as f64 / r1.flops as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
        // The paper's model grows the same way.
        let model_ratio = rgf_flops_model(12, 3) as f64 / rgf_flops_model(6, 3) as f64;
        assert!((model_ratio - ratio).abs() < 0.6);
    }

    #[test]
    fn spectral_diag_hermitian_positive_trace() {
        let (m, sl, sg) = test_system(4, 3, 2.2);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for a in rgf.spectral_diag() {
            assert!(a.is_hermitian(1e-10));
            assert!(a.trace().re > 0.0, "spectral weight must be positive");
        }
    }
}
