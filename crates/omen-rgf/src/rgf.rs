//! The Recursive Green's Function (RGF) algorithm [Svizhenko et al. 2002],
//! the workhorse of the paper's GF phase.
//!
//! Given the block-tridiagonal `M = E·S − H − Σ^R` (boundary self-energies
//! folded into the end blocks) and block-diagonal `Σ^≷`, RGF computes the
//! diagonal and first off-diagonal blocks of `G^R` and `G^≷` in
//! `O(bnum · bs³)` instead of the dense `O((bnum·bs)³)`:
//!
//! 1. a forward sweep builds left-connected Green's functions `gL`, `gl`;
//! 2. a backward sweep assembles the fully-connected blocks.
//!
//! Every block this module produces is validated against the dense
//! reference solver in the test suite.

use crate::dense_ref::DenseSolution;
use omen_linalg::{
    gemm, gemm_flops, invert, lu::lu_flops, matmul, matmul3, matmul_op, BlockTriDiag, CMatrix, Op,
    C64,
};

/// Inputs of one RGF solve: one energy-momentum point.
pub struct RgfInputs<'a> {
    /// `E·S − H − Σ^R` (block-tridiagonal; boundary Σ folded into the
    /// first and last diagonal blocks).
    pub m: &'a BlockTriDiag,
    /// Lesser self-energy, one diagonal block per slab (scattering +
    /// boundary contributions).
    pub sigma_l: &'a [CMatrix],
    /// Greater self-energy blocks.
    pub sigma_g: &'a [CMatrix],
}

/// Output blocks of one RGF solve.
#[derive(Clone, Debug)]
pub struct RgfSolution {
    /// `G^R[n][n]`.
    pub gr_diag: Vec<CMatrix>,
    /// `G^R[n][n+1]`.
    pub gr_upper: Vec<CMatrix>,
    /// `G^R[n+1][n]`.
    pub gr_lower: Vec<CMatrix>,
    /// `G^<[n][n]`.
    pub gl_diag: Vec<CMatrix>,
    /// `G^>[n][n]`.
    pub gg_diag: Vec<CMatrix>,
    /// `G^<[n+1][n]` (needed by the current operator).
    pub gl_lower: Vec<CMatrix>,
    /// `G^>[n+1][n]`.
    pub gg_lower: Vec<CMatrix>,
    /// Real flops performed (8 per complex MAC convention).
    pub flops: u64,
}

/// Solves one energy-momentum point with RGF.
pub fn rgf_solve(inp: &RgfInputs) -> RgfSolution {
    let m = inp.m;
    let nb = m.num_blocks();
    let bs = m.block_size();
    assert_eq!(inp.sigma_l.len(), nb, "sigma_l blocks");
    assert_eq!(inp.sigma_g.len(), nb, "sigma_g blocks");
    let mut flops: u64 = 0;
    let g3 = gemm_flops(bs, bs, bs);

    // ---------- forward sweep: left-connected quantities ----------
    let mut g_left: Vec<CMatrix> = Vec::with_capacity(nb); // gL[n]
    let mut gl_left: Vec<CMatrix> = Vec::with_capacity(nb); // g<[n] left-connected
    let mut gg_left: Vec<CMatrix> = Vec::with_capacity(nb);

    for n in 0..nb {
        let eff = if n == 0 {
            m.diag[0].clone()
        } else {
            // M[n][n] − L[n−1] · gL[n−1] · U[n−1]
            let t = matmul3(&m.lower[n - 1], &g_left[n - 1], &m.upper[n - 1]);
            flops += 2 * g3;
            &m.diag[n] - &t
        };
        let g = invert(&eff);
        flops += lu_flops(bs, bs);

        // Left-connected lesser/greater: g≷ = gL (Σ≷ + L g≷_prev L†) gL†.
        let make = |sigma: &CMatrix, prev: Option<&CMatrix>, flops: &mut u64| -> CMatrix {
            let mut s = sigma.clone();
            if let Some(p) = prev {
                // L[n−1] · p · L[n−1]†
                let lp = matmul(&m.lower[n - 1], p);
                let mut t = CMatrix::zeros(bs, bs);
                gemm(
                    C64::ONE,
                    &lp,
                    Op::N,
                    &m.lower[n - 1],
                    Op::C,
                    C64::ZERO,
                    &mut t,
                );
                *flops += 2 * g3;
                s += &t;
            }
            let gs = matmul(&g, &s);
            let mut out = CMatrix::zeros(bs, bs);
            gemm(C64::ONE, &gs, Op::N, &g, Op::C, C64::ZERO, &mut out);
            *flops += 2 * g3;
            out
        };
        let prev_l = if n == 0 { None } else { Some(&gl_left[n - 1]) };
        let gl = make(&inp.sigma_l[n], prev_l, &mut flops);
        let prev_g = if n == 0 { None } else { Some(&gg_left[n - 1]) };
        let gg = make(&inp.sigma_g[n], prev_g, &mut flops);

        g_left.push(g);
        gl_left.push(gl);
        gg_left.push(gg);
    }

    // ---------- backward sweep: fully-connected blocks ----------
    let mut gr_diag = vec![CMatrix::zeros(bs, bs); nb];
    let mut gr_upper = vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)];
    let mut gr_lower = vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)];
    let mut gl_diag = vec![CMatrix::zeros(bs, bs); nb];
    let mut gg_diag = vec![CMatrix::zeros(bs, bs); nb];
    let mut gl_lower = vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)];
    let mut gg_lower = vec![CMatrix::zeros(bs, bs); nb.saturating_sub(1)];

    gr_diag[nb - 1] = g_left[nb - 1].clone();
    gl_diag[nb - 1] = gl_left[nb - 1].clone();
    gg_diag[nb - 1] = gg_left[nb - 1].clone();

    for n in (0..nb.saturating_sub(1)).rev() {
        let u = &m.upper[n]; // M[n][n+1]
        let l = &m.lower[n]; // M[n+1][n]
        let gl_n = &g_left[n];

        // Retarded off-diagonals:
        // G[n+1][n] = −G[n+1][n+1] · L · gL[n]
        let grl = matmul3(&gr_diag[n + 1], l, gl_n).scaled(C64::from_re(-1.0));
        // G[n][n+1] = −gL[n] · U · G[n+1][n+1]
        let gru = matmul3(gl_n, u, &gr_diag[n + 1]).scaled(C64::from_re(-1.0));
        flops += 4 * g3;

        // Retarded diagonal: G[n][n] = gL[n] + gL[n]·U·G[n+1][n+1]·L·gL[n]
        //                            = gL[n] − G[n][n+1]·L·gL[n].
        let mut grd = gl_n.clone();
        let corr = matmul3(&gru, l, gl_n);
        flops += 2 * g3;
        grd -= &corr;

        // Lesser/greater recursions (identical algebra, different Σ).
        let step = |g_conn_next: &CMatrix,
                    g_less_next: &CMatrix,
                    g_less_left: &CMatrix,
                    flops: &mut u64|
         -> (CMatrix, CMatrix) {
            // T1 = gL·U·G≷[n+1]·U†·gL†
            let gu = matmul(gl_n, u);
            let t1a = matmul(&gu, g_less_next);
            let mut t1b = CMatrix::zeros(bs, bs);
            gemm(C64::ONE, &t1a, Op::N, u, Op::C, C64::ZERO, &mut t1b);
            let mut t1 = CMatrix::zeros(bs, bs);
            gemm(C64::ONE, &t1b, Op::N, gl_n, Op::C, C64::ZERO, &mut t1);
            // T3 = gL·U·G^R[n+1]·L·g≷_left[n]
            let t3a = matmul(&gu, g_conn_next);
            let t3 = matmul3(&t3a, l, g_less_left);
            *flops += 7 * g3;
            // T4 = −T3† (keeps the result anti-Hermitian).
            let t4 = t3.adjoint().scaled(C64::from_re(-1.0));

            let mut diag = g_less_left.clone();
            diag += &t1;
            diag += &t3;
            diag += &t4;

            // Off-diagonal: G≷[n+1][n] = −(G^R[n+1]·L·g≷_left + G≷[n+1]·U†·gL†)
            let o1 = matmul3(g_conn_next, l, g_less_left);
            let mut o2a = CMatrix::zeros(bs, bs);
            gemm(C64::ONE, g_less_next, Op::N, u, Op::C, C64::ZERO, &mut o2a);
            let mut o2 = CMatrix::zeros(bs, bs);
            gemm(C64::ONE, &o2a, Op::N, gl_n, Op::C, C64::ZERO, &mut o2);
            *flops += 4 * g3;
            let mut lower = o1;
            lower += &o2;
            lower.scale_inplace(C64::from_re(-1.0));
            (diag, lower)
        };

        let (gld, gll) = step(&gr_diag[n + 1], &gl_diag[n + 1], &gl_left[n], &mut flops);
        let (ggd, ggl) = step(&gr_diag[n + 1], &gg_diag[n + 1], &gg_left[n], &mut flops);

        gr_diag[n] = grd;
        gr_upper[n] = gru;
        gr_lower[n] = grl;
        gl_diag[n] = gld;
        gg_diag[n] = ggd;
        gl_lower[n] = gll;
        gg_lower[n] = ggl;
    }

    RgfSolution {
        gr_diag,
        gr_upper,
        gr_lower,
        gl_diag,
        gg_diag,
        gl_lower,
        gg_lower,
        flops,
    }
}

impl RgfSolution {
    /// Checks the blocks against a dense solution; returns the largest
    /// absolute deviation over all compared blocks.
    pub fn max_deviation_from_dense(&self, dense: &DenseSolution, bs: usize) -> f64 {
        let nb = self.gr_diag.len();
        let mut worst = 0.0f64;
        let mut upd = |got: &CMatrix, want: &CMatrix| {
            worst = worst.max((got - want).max_abs());
        };
        for n in 0..nb {
            upd(&self.gr_diag[n], &DenseSolution::block(&dense.gr, bs, n, n));
            upd(&self.gl_diag[n], &DenseSolution::block(&dense.gl, bs, n, n));
            upd(&self.gg_diag[n], &DenseSolution::block(&dense.gg, bs, n, n));
        }
        for n in 0..nb.saturating_sub(1) {
            upd(
                &self.gr_upper[n],
                &DenseSolution::block(&dense.gr, bs, n, n + 1),
            );
            upd(
                &self.gr_lower[n],
                &DenseSolution::block(&dense.gr, bs, n + 1, n),
            );
            upd(
                &self.gl_lower[n],
                &DenseSolution::block(&dense.gl, bs, n + 1, n),
            );
            upd(
                &self.gg_lower[n],
                &DenseSolution::block(&dense.gg, bs, n + 1, n),
            );
        }
        worst
    }

    /// Spectral-function diagonal `A[n] = i(G^R[n][n] − G^A[n][n])`.
    pub fn spectral_diag(&self) -> Vec<CMatrix> {
        self.gr_diag
            .iter()
            .map(|g| {
                let mut a = g - &g.adjoint();
                a.scale_inplace(C64::I);
                a
            })
            .collect()
    }
}

/// Measured vs modeled: the paper's RGF flop model per energy-momentum
/// point, `8·(26·bnum − 25)·bs³` (dense-operation term of §6.1.1).
pub fn rgf_flops_model(bnum: usize, bs: usize) -> u64 {
    8 * (26 * bnum as u64 - 25) * (bs as u64).pow(3)
}

/// Convenience used by tests and benches: `A·B·C` with `C = B†`.
pub fn sandwich_adjoint(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let ab = matmul(a, b);
    matmul_op(&ab, Op::N, b, Op::C)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::dense_solve;
    use omen_linalg::c64;

    /// Builds a physically-shaped random test system: Hermitian H-like part
    /// plus +iη, anti-Hermitian Σ^≷ blocks.
    fn test_system(nb: usize, bs: usize, seed: f64) -> (BlockTriDiag, Vec<CMatrix>, Vec<CMatrix>) {
        let mut m = BlockTriDiag::zeros(nb, bs);
        for b in 0..nb {
            let mut h = CMatrix::from_fn(bs, bs, |i, j| {
                c64(
                    ((i * 3 + j * 7 + b) as f64 + seed).sin() * 0.3,
                    ((i + 2 * j) as f64 - seed).cos() * 0.2,
                )
            });
            h.hermitianize();
            // M = E − H + iη on the diagonal.
            m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
                let e = if i == j { c64(1.5, 5e-2) } else { C64::ZERO };
                e - h[(i, j)]
            });
        }
        for b in 0..nb - 1 {
            m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| {
                c64(
                    -0.6 + 0.05 * ((i + 2 * j + b) as f64 + seed).sin(),
                    0.04 * ((i * 2 + j) as f64).cos(),
                )
            });
            m.lower[b] = m.upper[b].adjoint();
        }
        let mk_sigma = |shift: f64| {
            (0..nb)
                .map(|b| {
                    let mut x = CMatrix::from_fn(bs, bs, |i, j| {
                        c64(
                            ((i + 3 * j + 2 * b) as f64 + shift).sin() * 0.15,
                            ((3 * i + j + b) as f64 - shift).cos() * 0.15,
                        )
                    });
                    x.hermitianize();
                    x.scaled(C64::I)
                })
                .collect::<Vec<_>>()
        };
        (m, mk_sigma(seed + 0.4), mk_sigma(seed + 2.9))
    }

    #[test]
    fn rgf_matches_dense_small() {
        for &(nb, bs) in &[(2usize, 2usize), (3, 2), (4, 3), (6, 4), (8, 2)] {
            let (m, sl, sg) = test_system(nb, bs, 0.37 * nb as f64);
            let rgf = rgf_solve(&RgfInputs {
                m: &m,
                sigma_l: &sl,
                sigma_g: &sg,
            });
            let dense = dense_solve(&m, &sl, &sg);
            let dev = rgf.max_deviation_from_dense(&dense, bs);
            assert!(dev < 1e-9, "nb={nb} bs={bs}: deviation {dev}");
        }
    }

    #[test]
    fn single_block_degenerates_to_direct_solve() {
        let (m, sl, sg) = test_system(1, 4, 0.9);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let dense = dense_solve(&m, &sl, &sg);
        assert!(rgf.max_deviation_from_dense(&dense, 4) < 1e-10);
        assert!(rgf.gr_upper.is_empty());
    }

    #[test]
    fn lesser_greater_anti_hermitian_diagonals() {
        let (m, sl, sg) = test_system(5, 3, 1.1);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for n in 0..5 {
            assert!(rgf.gl_diag[n].is_anti_hermitian(1e-10), "G<[{n}]");
            assert!(rgf.gg_diag[n].is_anti_hermitian(1e-10), "G>[{n}]");
        }
    }

    #[test]
    fn keldysh_difference_identity() {
        // G^> − G^< == G^R − G^A when Σ^> − Σ^< == Σ^R − Σ^A == −iΓ_total.
        // Build Σ^≷ satisfying the identity with the anti-Hermitian part of M.
        let (mut m, _, _) = test_system(4, 2, 0.0);
        // Anti-Hermitian part of M's diagonal: M − M† restricted blockwise.
        // Σ^R − Σ^A = −(M − M†) since M = ES − H − Σ^R and ES−H Hermitian.
        let nb = 4;
        let occ = 0.3;
        let mut sl = Vec::new();
        let mut sg = Vec::new();
        for b in 0..nb {
            let ra = &m.diag[b] - &m.diag[b].adjoint(); // = −(Σ^R − Σ^A)
            let ra = ra.scaled(c64(-1.0, 0.0));
            sl.push(ra.scaled(c64(-occ, 0.0)));
            sg.push(ra.scaled(c64(1.0 - occ, 0.0)));
        }
        // Ensure the off-diagonal blocks are exactly Hermitian-conjugate.
        for b in 0..nb - 1 {
            m.lower[b] = m.upper[b].adjoint();
        }
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for n in 0..nb {
            let lhs = &rgf.gg_diag[n] - &rgf.gl_diag[n];
            let rhs = &rgf.gr_diag[n] - &rgf.gr_diag[n].adjoint();
            assert!(
                lhs.approx_eq(&rhs, 1e-9),
                "block {n}: ‖(G>−G<)−(GR−GA)‖ = {}",
                (&lhs - &rhs).max_abs()
            );
        }
    }

    #[test]
    fn flops_counted_and_scale() {
        let (m, sl, sg) = test_system(6, 3, 0.5);
        let r1 = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let (m2, sl2, sg2) = test_system(12, 3, 0.5);
        let r2 = rgf_solve(&RgfInputs {
            m: &m2,
            sigma_l: &sl2,
            sigma_g: &sg2,
        });
        assert!(r1.flops > 0);
        // Doubling the block count roughly doubles the work.
        let ratio = r2.flops as f64 / r1.flops as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
        // The paper's model grows the same way.
        let model_ratio = rgf_flops_model(12, 3) as f64 / rgf_flops_model(6, 3) as f64;
        assert!((model_ratio - ratio).abs() < 0.6);
    }

    #[test]
    fn spectral_diag_hermitian_positive_trace() {
        let (m, sl, sg) = test_system(4, 3, 2.2);
        let rgf = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for a in rgf.spectral_diag() {
            assert!(a.is_hermitian(1e-10));
            assert!(a.trace().re > 0.0, "spectral weight must be positive");
        }
    }
}
