//! Physical observables extracted from Green's function blocks: currents,
//! transmission, densities — the quantities behind Figs. 1(d) and 11.

use omen_linalg::{invert, matmul, matmul3, BlockTriDiag, CMatrix, C64};

/// Per-energy particle current through the interface between blocks `n` and
/// `n+1`:
///
/// `j_n(E) = 2 · Re Tr[ (H − E·S)[n][n+1] · G^<[n+1][n] ]
///         = −2 · Re Tr[ U[n] · G^<[n+1][n] ]`
///
/// with `U[n] = (E·S − H)[n][n+1]`. Positive values flow from block `n`
/// toward block `n+1` (source → drain); for a ballistic conductor the value
/// equals `T(E)·(f_L − f_R)` at every interface. The caller multiplies by
/// the grid weight `dE/2π` and sums over energy/momentum (spin degeneracy
/// included there).
pub fn interface_current(u: &CMatrix, gl_lower: &CMatrix) -> f64 {
    -2.0 * matmul(u, gl_lower).trace().re
}

/// Per-energy Meir-Wingreen current through the *left* contact:
///
/// `i_L(E) = Re Tr[ Σ^<_L · G^>[0][0] − Σ^>_L · G^<[0][0] ]`.
///
/// (The trace of a product of two anti-Hermitian matrices is real; `Re`
/// discards only numerical noise.) Positive = net injection from the left
/// lead into the device. For a two-terminal device in steady state,
/// `i_L(E)` integrates to the same current as [`interface_current`] at any
/// interface.
pub fn contact_current(
    sigma_l_boundary: &CMatrix,
    sigma_g_boundary: &CMatrix,
    gl0: &CMatrix,
    gg0: &CMatrix,
) -> f64 {
    let t1 = matmul(sigma_l_boundary, gg0).trace();
    let t2 = matmul(sigma_g_boundary, gl0).trace();
    (t1 - t2).re
}

/// Ballistic transmission via the Caroli formula, computed densely (test
/// and validation use):
///
/// `T(E) = Tr[ Γ_L · G^R[0][N−1] · Γ_R · (G^R[0][N−1])† ]`.
pub fn caroli_transmission(m: &BlockTriDiag, gamma_left: &CMatrix, gamma_right: &CMatrix) -> f64 {
    let bs = m.block_size();
    let nb = m.num_blocks();
    let gr = invert(&m.to_dense());
    let corner = gr.block(0, (nb - 1) * bs, bs, bs);
    let t = matmul3(gamma_left, &corner, gamma_right);
    let tt = matmul(&t, &corner.adjoint());
    tt.trace().re
}

/// Per-block electron (or phonon-energy) occupation:
/// `n = Re(−i·diag(G^<)) = +Im diag(G^<)` summed over the block —
/// proportional to the carrier density in the slab.
pub fn block_occupation(gl_diag: &CMatrix) -> f64 {
    let n = gl_diag.rows();
    (0..n).map(|i| gl_diag[(i, i)].im).sum::<f64>()
}

/// Per-orbital occupation vector of one block.
pub fn orbital_occupation(gl_diag: &CMatrix) -> Vec<f64> {
    (0..gl_diag.rows()).map(|i| gl_diag[(i, i)].im).collect()
}

/// Local density of states of one block: `Tr A / 2π` with
/// `A = i(G^R − G^A)`.
pub fn block_ldos(gr_diag: &CMatrix) -> f64 {
    let n = gr_diag.rows();
    let tr: f64 = (0..n)
        .map(|i| {
            let z = gr_diag[(i, i)];
            (C64::I * (z - z.conj())).re
        })
        .sum();
    tr / (2.0 * std::f64::consts::PI)
}

/// Energy-resolved current spectrum along the device: one value per
/// interface (length `nb − 1`), for the spectral-current map of Fig. 11.
pub fn current_profile(m: &BlockTriDiag, gl_lower: &[CMatrix]) -> Vec<f64> {
    (0..m.num_blocks() - 1)
        .map(|n| interface_current(&m.upper[n], &gl_lower[n]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{boundary_self_energies, contact_sigma_lg, fermi, BoundaryMethod};
    use crate::rgf::{rgf_solve, RgfInputs};
    use omen_linalg::c64;

    /// A clean 1-orbital, bs=1 tight-binding chain with open boundaries:
    /// H = 2t on-site (band centred at 2t), −t hopping, so the band is
    /// [0, 4t]. Returns (M with boundary folded, Σ^<, Σ^>, Γ_L, Γ_R,
    /// Σ_L^R, Σ_R^R) at energy `e` and occupations `f_l`, `f_r`.
    #[allow(clippy::type_complexity)]
    fn ballistic_chain(
        nb: usize,
        e: f64,
        f_l: f64,
        f_r: f64,
    ) -> (
        BlockTriDiag,
        Vec<CMatrix>,
        Vec<CMatrix>,
        CMatrix,
        CMatrix,
        CMatrix,
        CMatrix,
    ) {
        let t = 1.0;
        // η must stay well above the decimation branch-point floor
        // (see `boundary::surface_gf` docs): 1e-6 of the bandwidth is safe.
        let eta = 1e-6;
        let mut m = BlockTriDiag::zeros(nb, 1);
        for b in 0..nb {
            m.diag[b] = CMatrix::from_fn(1, 1, |_, _| c64(e - 2.0 * t, eta));
        }
        for b in 0..nb - 1 {
            m.upper[b] = CMatrix::from_fn(1, 1, |_, _| c64(t, 0.0)); // −H = +t
            m.lower[b] = m.upper[b].clone();
        }
        let bse = boundary_self_energies(
            BoundaryMethod::SanchoRubio,
            &m.diag[0],
            &m.upper[0],
            &m.lower[0],
            &m.diag[nb - 1],
            &m.upper[nb - 2],
            &m.lower[nb - 2],
            1e-14,
            500,
        );
        let mut mfolded = m.clone();
        mfolded.diag[0] -= &bse.left;
        let last = nb - 1;
        mfolded.diag[last] -= &bse.right;

        let (sl_l, sg_l) = contact_sigma_lg(&bse.left, f_l, false);
        let (sl_r, sg_r) = contact_sigma_lg(&bse.right, f_r, false);
        let mut sigma_l = vec![CMatrix::zeros(1, 1); nb];
        let mut sigma_g = vec![CMatrix::zeros(1, 1); nb];
        sigma_l[0] += &sl_l;
        sigma_g[0] += &sg_l;
        sigma_l[last] += &sl_r;
        sigma_g[last] += &sg_r;
        (
            mfolded,
            sigma_l,
            sigma_g,
            bse.gamma_left,
            bse.gamma_right,
            bse.left,
            bse.right,
        )
    }

    #[test]
    fn ballistic_transmission_is_unity_in_band() {
        // Perfect chain: T(E) = 1 inside the band.
        for &e in &[0.5, 1.0, 2.0, 3.2] {
            let (m, _, _, gl, gr, _, _) = ballistic_chain(6, e, 1.0, 0.0);
            let t = caroli_transmission(&m, &gl, &gr);
            assert!((t - 1.0).abs() < 1e-4, "T({e}) = {t}");
        }
    }

    #[test]
    fn transmission_zero_outside_band() {
        let (m, _, _, gl, gr, _, _) = ballistic_chain(6, 5.0, 1.0, 0.0);
        let t = caroli_transmission(&m, &gl, &gr);
        assert!(t.abs() < 1e-4, "T outside band = {t}");
    }

    #[test]
    fn current_matches_transmission_times_bias_window() {
        // Landauer at a single energy: j(E) = T(E)·(f_L − f_R) = 1·(1−0).
        let (m, sl, sg, gaml, gamr, sbl, _) = ballistic_chain(8, 1.7, 1.0, 0.0);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let t = caroli_transmission(&m, &gaml, &gamr);
        // Interface currents must be equal at every interface (conservation)
        // and equal T·(f_L − f_R).
        let j: Vec<f64> = (0..7)
            .map(|n| interface_current(&m.upper[n], &sol.gl_lower[n]))
            .collect();
        for (n, jn) in j.iter().enumerate() {
            assert!((jn - t).abs() < 1e-4, "interface {n}: j = {jn}, T = {t}");
        }
        // Contact current agrees.
        let (sl_b, sg_b) = contact_sigma_lg(&sbl, 1.0, false);
        let ic = contact_current(&sl_b, &sg_b, &sol.gl_diag[0], &sol.gg_diag[0]);
        assert!((ic - t).abs() < 1e-4, "contact current {ic} vs T {t}");
    }

    #[test]
    fn zero_bias_zero_current() {
        let f = fermi(1.7, 1.0, 0.025);
        let (m, sl, sg, _, _, _, _) = ballistic_chain(6, 1.7, f, f);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        for n in 0..5 {
            let j = interface_current(&m.upper[n], &sol.gl_lower[n]);
            assert!(j.abs() < 1e-6, "interface {n}: {j}");
        }
    }

    #[test]
    fn reverse_bias_reverses_current() {
        let (m, sl, sg, _, _, _, _) = ballistic_chain(6, 1.7, 0.0, 1.0);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let j = interface_current(&m.upper[2], &sol.gl_lower[2]);
        assert!(j < -1e-4, "current should flow right-to-left: {j}");
        assert!((j + 1.0).abs() < 1e-4, "magnitude should be T = 1: {j}");
    }

    #[test]
    fn occupation_follows_filling() {
        let (m, sl, sg, _, _, _, _) = ballistic_chain(6, 1.7, 1.0, 1.0);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        // Fully occupied state: occupation equals the spectral weight.
        for n in 0..6 {
            let occ = block_occupation(&sol.gl_diag[n]);
            let ldos = block_ldos(&sol.gr_diag[n]) * 2.0 * std::f64::consts::PI;
            assert!(
                (occ - ldos).abs() < 1e-4,
                "block {n}: occ {occ} vs A {ldos}"
            );
            assert!(occ > 0.0);
        }
        let (m0, sl0, sg0, _, _, _, _) = ballistic_chain(6, 1.7, 0.0, 0.0);
        let sol0 = rgf_solve(&RgfInputs {
            m: &m0,
            sigma_l: &sl0,
            sigma_g: &sg0,
        });
        for n in 0..6 {
            assert!(block_occupation(&sol0.gl_diag[n]).abs() < 1e-6);
        }
    }

    #[test]
    fn current_profile_length() {
        let (m, sl, sg, _, _, _, _) = ballistic_chain(5, 1.0, 1.0, 0.0);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let prof = current_profile(&m, &sol.gl_lower);
        assert_eq!(prof.len(), 4);
        // Conservation: flat profile.
        // Conservation is exact up to the O(η) absorption of the finite
        // broadening.
        for w in prof.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-5);
        }
    }

    #[test]
    fn orbital_occupation_sums_to_block() {
        let (m, sl, sg, _, _, _, _) = ballistic_chain(4, 1.3, 0.7, 0.2);
        let sol = rgf_solve(&RgfInputs {
            m: &m,
            sigma_l: &sl,
            sigma_g: &sg,
        });
        let per_orb = orbital_occupation(&sol.gl_diag[1]);
        let total: f64 = per_orb.iter().sum();
        assert!((total - block_occupation(&sol.gl_diag[1])).abs() < 1e-12);
    }
}
