//! Per-point GF solvers: assembly ("specialization"), boundary conditions,
//! and RGF for electron `(kz, E)` and phonon `(qz, ω)` points, with the
//! three caching modes of §7.1.2.
//!
//! For each energy-momentum point the GF phase performs:
//! (a) **specialization** — assembling `H(kz)`, `S(kz)` (or `Φ(qz)`) from
//!     the material data;
//! (b) **boundary conditions** — lead surface-GF computation;
//! (c) **RGF** — the recursive solve.
//!
//! (a) depends on the momentum only and (b) on the point only — neither
//! depends on the self-consistent iteration, so both can be cached at a
//! steep memory cost (the paper: 3 GB + 1 GB per point for the "Large"
//! device). [`CacheMode`] selects the compute-memory tradeoff.

use crate::bccache::BoundaryCache;
use crate::boundary::{
    bose, boundary_self_energies_ws, contact_sigma_lg, fermi, BoundaryMethod, BoundarySelfEnergies,
};
use crate::rgf::{rgf_solve_into, RgfInputs, RgfSolution};
use omen_device::DeviceStructure;
use omen_linalg::{c64, BlockTriDiag, CMatrix, WorkspaceLease, WorkspacePool};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Compute/memory tradeoff of the GF phase (§7.1.2, Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Recompute specialization and boundary conditions every iteration.
    NoCache,
    /// Cache boundary conditions; re-specialize every iteration.
    CacheBc,
    /// Cache both specialization and boundary conditions.
    CacheBcSpec,
}

/// Wall-clock spent in each GF sub-phase (for the caching benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Time in operator assembly (specialization).
    pub specialization: Duration,
    /// Time in boundary-condition computation.
    pub boundary: Duration,
    /// Time in the RGF solver itself.
    pub rgf: Duration,
}

impl PhaseTimes {
    /// Total across sub-phases.
    pub fn total(&self) -> Duration {
        self.specialization + self.boundary + self.rgf
    }

    /// Accumulates another sample.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.specialization += other.specialization;
        self.boundary += other.boundary;
        self.rgf += other.rgf;
    }
}

/// Contact and numerical parameters of the electron GF solver.
#[derive(Clone, Copy, Debug)]
pub struct ElectronParams {
    /// Retarded broadening `η` (eV). Keep ≳ 1e-6 of the bandwidth.
    pub eta: f64,
    /// Source (left) chemical potential (eV).
    pub mu_source: f64,
    /// Drain (right) chemical potential (eV).
    pub mu_drain: f64,
    /// Contact electron temperature `k_B T` (eV).
    pub kt: f64,
    /// Surface-GF algorithm.
    pub method: BoundaryMethod,
    /// Decimation tolerance.
    pub bc_tol: f64,
    /// Decimation iteration cap.
    pub bc_max_iter: usize,
}

impl Default for ElectronParams {
    fn default() -> Self {
        ElectronParams {
            eta: 1e-5,
            mu_source: 0.0,
            mu_drain: 0.0,
            kt: 0.025,
            method: BoundaryMethod::SanchoRubio,
            bc_tol: 1e-13,
            bc_max_iter: 200,
        }
    }
}

/// Contact parameters of the phonon GF solver.
#[derive(Clone, Copy, Debug)]
pub struct PhononParams {
    /// Broadening added to `ω` before squaring (energy units).
    pub eta: f64,
    /// Contact lattice temperature `k_B T` (eV).
    pub kt: f64,
    /// Surface-GF algorithm.
    pub method: BoundaryMethod,
    /// Decimation tolerance.
    pub bc_tol: f64,
    /// Decimation iteration cap.
    pub bc_max_iter: usize,
}

impl Default for PhononParams {
    fn default() -> Self {
        PhononParams {
            eta: 2e-5,
            kt: 0.025,
            method: BoundaryMethod::SanchoRubio,
            bc_tol: 1e-13,
            bc_max_iter: 200,
        }
    }
}

/// One Green's-function solver over a 2-D grid of points — the common
/// interface of [`ElectronSolver`] (`(kz, E)` points) and
/// [`PhononSolver`] (`(qz, ω)` points).
///
/// The trait is what the driver's execution engine programs against: a
/// point sweep is `solve_point` over every `(i, j)` of the grid, with the
/// optional scattering self-energy blocks of the current Born iteration.
/// Construction stays on the concrete types (their parameter sets differ);
/// construction is cheap — caches start empty — so parallel executors
/// build one solver per worker.
pub trait GfSolver {
    /// Solves grid point `(i, j)` given optional retarded/lesser/greater
    /// scattering self-energy blocks (`None` on the ballistic first
    /// iteration).
    fn solve_point(
        &mut self,
        i: usize,
        j: usize,
        sigma_r: Option<&[CMatrix]>,
        sigma_l: Option<&[CMatrix]>,
        sigma_g: Option<&[CMatrix]>,
    ) -> PointSolution;

    /// The carrier this solver models (diagnostics/logging).
    fn carrier(&self) -> &'static str;

    /// Approximate resident bytes of the solver's caches.
    fn cache_bytes(&self) -> usize;
}

/// Output of one GF point solve.
pub struct PointSolution {
    /// The RGF blocks.
    pub sol: RgfSolution,
    /// The folded `M` (for current operators: its `upper` blocks).
    pub m: BlockTriDiag,
    /// Left boundary `Σ^≷` blocks (for Meir-Wingreen currents).
    pub boundary_lg_left: (CMatrix, CMatrix),
    /// Right boundary `Σ^≷` blocks.
    pub boundary_lg_right: (CMatrix, CMatrix),
    /// Left/right broadenings `Γ`.
    pub gamma: (CMatrix, CMatrix),
    /// Sub-phase timings of this solve.
    pub times: PhaseTimes,
}

/// Electron GF solver bound to one device, potential profile, and cache
/// policy. One instance serves all `(kz, E)` points across the
/// self-consistent iteration.
pub struct ElectronSolver<'a> {
    device: &'a DeviceStructure,
    potential: Vec<f64>,
    /// Parameters (public: adjusted between runs by the driver).
    pub params: ElectronParams,
    mode: CacheMode,
    kz_values: Vec<f64>,
    energies: Vec<f64>,
    spec_cache: Vec<Option<(BlockTriDiag, BlockTriDiag)>>, // per kz: (H, S)
    bc_cache: Vec<Option<BoundarySelfEnergies>>,           // per (ik, ie)
    shared_bc: Option<Arc<BoundaryCache>>,
    /// Scratch arena threaded through the boundary and RGF solves; a
    /// pool-backed lease when the solver was built with
    /// [`ElectronSolver::with_workspace_pool`].
    ws: WorkspaceLease<'a>,
}

impl<'a> ElectronSolver<'a> {
    /// Creates a solver for the grid `kz_values × energies`.
    pub fn new(
        device: &'a DeviceStructure,
        potential: Vec<f64>,
        params: ElectronParams,
        mode: CacheMode,
        kz_values: Vec<f64>,
        energies: Vec<f64>,
    ) -> Self {
        let nk = kz_values.len();
        let ne = energies.len();
        ElectronSolver {
            device,
            potential,
            params,
            mode,
            kz_values,
            energies,
            spec_cache: vec![None; nk],
            bc_cache: vec![None; nk * ne],
            shared_bc: None,
            ws: WorkspaceLease::detached(),
        }
    }

    /// Swaps the solver's scratch arena for a lease on `pool`, so the
    /// buffers warmed by this solver's points survive the solver and warm
    /// the next sweep (and the next Born iteration).
    pub fn with_workspace_pool(mut self, pool: &'a WorkspacePool) -> Self {
        self.ws = pool.lease();
        self
    }

    /// Routes boundary-condition lookups through a cache shared across
    /// workers and Born iterations (and, via seeding, across sweep
    /// points); takes precedence over the solver-local cache.
    pub fn with_shared_boundary(mut self, cache: Arc<BoundaryCache>) -> Self {
        assert_eq!(
            cache.len(),
            self.kz_values.len() * self.energies.len(),
            "shared boundary cache sized for a different grid"
        );
        self.shared_bc = Some(cache);
        self
    }

    /// The cache policy in force.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Approximate resident bytes of the caches (the memory side of the
    /// compute-memory tradeoff).
    pub fn cache_bytes(&self) -> usize {
        let bs = self.device.block_size_el();
        let bnum = self.device.bnum();
        let spec = self
            .spec_cache
            .iter()
            .flatten()
            .count()
            * 2 // H and S
            * (bnum * 3) // diag + upper + lower (over-estimate by 2 blocks)
            * bs * bs * 16;
        let bc = self.bc_cache.iter().flatten().count() * 4 * bs * bs * 16;
        spec + bc
    }

    /// Solves point `(ik, ie)` given the scattering self-energy blocks
    /// (`None` for the ballistic first iteration).
    pub fn solve(
        &mut self,
        ik: usize,
        ie: usize,
        sigma_r_scatt: Option<&[CMatrix]>,
        sigma_l_scatt: Option<&[CMatrix]>,
        sigma_g_scatt: Option<&[CMatrix]>,
    ) -> PointSolution {
        let kz = self.kz_values[ik];
        let e = self.energies[ie];
        let bnum = self.device.bnum();
        let bs = self.device.block_size_el();
        let mut times = PhaseTimes::default();

        // --- (a) specialization ---
        let t0 = Instant::now();
        let use_spec_cache = self.mode == CacheMode::CacheBcSpec;
        // Fill the cache on a miss, then borrow from it — the operator
        // pair is large (2·bnum·3 blocks), so no per-point clones.
        let local_spec;
        let (h, s) = if use_spec_cache {
            if self.spec_cache[ik].is_none() {
                let h = self.device.hamiltonian_with_potential(kz, &self.potential);
                let s = self.device.overlap(kz);
                self.spec_cache[ik] = Some((h, s));
            }
            let (h, s) = self.spec_cache[ik].as_ref().unwrap();
            (h, s)
        } else {
            local_spec = (
                self.device.hamiltonian_with_potential(kz, &self.potential),
                self.device.overlap(kz),
            );
            (&local_spec.0, &local_spec.1)
        };
        times.specialization = t0.elapsed();

        // M = (E + iη)·S − H.
        let zc = c64(e, self.params.eta);
        let mut m = s.linear_comb(zc, h, c64(-1.0, 0.0));

        // --- (b) boundary conditions (ballistic lead blocks) ---
        let t1 = Instant::now();
        let bc_key = ik * self.energies.len() + ie;
        let use_bc_cache = self.mode != CacheMode::NoCache;
        // Same cache-or-local discipline as the specialization: reads go
        // through a borrow; only the two Γ blocks handed to the caller
        // are cloned (on both paths — the cache must keep its copy).
        // A shared cache (cross-worker, cross-iteration) takes precedence
        // over the solver-local one.
        let local_bse;
        let bse = if let Some(shared) = &self.shared_bc {
            local_bse = shared.resolve(
                bc_key,
                self.params.method,
                &m.diag[0],
                &m.upper[0],
                &m.lower[0],
                &m.diag[bnum - 1],
                &m.upper[bnum - 2],
                &m.lower[bnum - 2],
                self.params.bc_tol,
                self.params.bc_max_iter,
                &mut self.ws,
            );
            &local_bse
        } else if use_bc_cache {
            if self.bc_cache[bc_key].is_none() {
                self.bc_cache[bc_key] = Some(boundary_self_energies_ws(
                    self.params.method,
                    &m.diag[0],
                    &m.upper[0],
                    &m.lower[0],
                    &m.diag[bnum - 1],
                    &m.upper[bnum - 2],
                    &m.lower[bnum - 2],
                    self.params.bc_tol,
                    self.params.bc_max_iter,
                    &mut self.ws,
                ));
            }
            self.bc_cache[bc_key].as_ref().unwrap()
        } else {
            local_bse = boundary_self_energies_ws(
                self.params.method,
                &m.diag[0],
                &m.upper[0],
                &m.lower[0],
                &m.diag[bnum - 1],
                &m.upper[bnum - 2],
                &m.lower[bnum - 2],
                self.params.bc_tol,
                self.params.bc_max_iter,
                &mut self.ws,
            );
            &local_bse
        };
        times.boundary = t1.elapsed();

        // Fold boundary and scattering Σ^R into M.
        m.diag[0] -= &bse.left;
        m.diag[bnum - 1] -= &bse.right;
        if let Some(sr) = sigma_r_scatt {
            assert_eq!(sr.len(), bnum, "sigma_r blocks");
            for (b, blk) in sr.iter().enumerate() {
                let neg = blk.scaled(c64(-1.0, 0.0));
                m.diag[b] += &neg;
            }
        }

        // Boundary Σ^≷ with contact Fermi factors.
        let f_l = fermi(e, self.params.mu_source, self.params.kt);
        let f_r = fermi(e, self.params.mu_drain, self.params.kt);
        let (sl_l, sg_l) = contact_sigma_lg(&bse.left, f_l, false);
        let (sl_r, sg_r) = contact_sigma_lg(&bse.right, f_r, false);

        let mut sigma_l = match sigma_l_scatt {
            Some(s) => s.to_vec(),
            None => vec![CMatrix::zeros(bs, bs); bnum],
        };
        let mut sigma_g = match sigma_g_scatt {
            Some(s) => s.to_vec(),
            None => vec![CMatrix::zeros(bs, bs); bnum],
        };
        sigma_l[0] += &sl_l;
        sigma_g[0] += &sg_l;
        sigma_l[bnum - 1] += &sl_r;
        sigma_g[bnum - 1] += &sg_r;

        // --- (c) RGF ---
        let t2 = Instant::now();
        let mut sol = RgfSolution::empty();
        rgf_solve_into(
            &RgfInputs {
                m: &m,
                sigma_l: &sigma_l,
                sigma_g: &sigma_g,
            },
            &mut self.ws,
            &mut sol,
        );
        times.rgf = t2.elapsed();

        PointSolution {
            sol,
            m,
            boundary_lg_left: (sl_l, sg_l),
            boundary_lg_right: (sl_r, sg_r),
            gamma: (bse.gamma_left.clone(), bse.gamma_right.clone()),
            times,
        }
    }
}

impl GfSolver for ElectronSolver<'_> {
    fn solve_point(
        &mut self,
        i: usize,
        j: usize,
        sigma_r: Option<&[CMatrix]>,
        sigma_l: Option<&[CMatrix]>,
        sigma_g: Option<&[CMatrix]>,
    ) -> PointSolution {
        self.solve(i, j, sigma_r, sigma_l, sigma_g)
    }

    fn carrier(&self) -> &'static str {
        "electron"
    }

    fn cache_bytes(&self) -> usize {
        ElectronSolver::cache_bytes(self)
    }
}

/// Phonon GF solver: solves `(ω² − Φ(qz) − Π^R)·D^R = I` per `(qz, ω)`
/// point with Bose-occupied contacts at the lattice temperature.
pub struct PhononSolver<'a> {
    device: &'a DeviceStructure,
    /// Parameters (public: adjusted between runs by the driver).
    pub params: PhononParams,
    mode: CacheMode,
    qz_values: Vec<f64>,
    omegas: Vec<f64>,
    spec_cache: Vec<Option<BlockTriDiag>>, // per qz: Φ
    bc_cache: Vec<Option<BoundarySelfEnergies>>,
    shared_bc: Option<Arc<BoundaryCache>>,
    /// Scratch arena threaded through the boundary and RGF solves.
    ws: WorkspaceLease<'a>,
}

impl<'a> PhononSolver<'a> {
    /// Creates a solver for the grid `qz_values × omegas` (ω > 0).
    pub fn new(
        device: &'a DeviceStructure,
        params: PhononParams,
        mode: CacheMode,
        qz_values: Vec<f64>,
        omegas: Vec<f64>,
    ) -> Self {
        assert!(
            omegas.iter().all(|&w| w > 0.0),
            "phonon frequencies must be positive"
        );
        let nq = qz_values.len();
        let nw = omegas.len();
        PhononSolver {
            device,
            params,
            mode,
            qz_values,
            omegas,
            spec_cache: vec![None; nq],
            bc_cache: vec![None; nq * nw],
            shared_bc: None,
            ws: WorkspaceLease::detached(),
        }
    }

    /// Swaps the solver's scratch arena for a lease on `pool` (see
    /// [`ElectronSolver::with_workspace_pool`]).
    pub fn with_workspace_pool(mut self, pool: &'a WorkspacePool) -> Self {
        self.ws = pool.lease();
        self
    }

    /// Routes boundary-condition lookups through a shared cache (see
    /// [`ElectronSolver::with_shared_boundary`]).
    pub fn with_shared_boundary(mut self, cache: Arc<BoundaryCache>) -> Self {
        assert_eq!(
            cache.len(),
            self.qz_values.len() * self.omegas.len(),
            "shared boundary cache sized for a different grid"
        );
        self.shared_bc = Some(cache);
        self
    }

    /// Solves point `(iq, iw)` with optional scattering `Π` blocks.
    pub fn solve(
        &mut self,
        iq: usize,
        iw: usize,
        pi_r_scatt: Option<&[CMatrix]>,
        pi_l_scatt: Option<&[CMatrix]>,
        pi_g_scatt: Option<&[CMatrix]>,
    ) -> PointSolution {
        let qz = self.qz_values[iq];
        let w = self.omegas[iw];
        let bnum = self.device.bnum();
        let bs = self.device.block_size_ph();
        let mut times = PhaseTimes::default();

        let t0 = Instant::now();
        let use_spec_cache = self.mode == CacheMode::CacheBcSpec;
        // Cache-or-local borrow: no per-point clone of Φ (bnum·3 blocks).
        let local_phi;
        let phi = if use_spec_cache {
            if self.spec_cache[iq].is_none() {
                self.spec_cache[iq] = Some(self.device.dynamical(qz));
            }
            self.spec_cache[iq].as_ref().unwrap()
        } else {
            local_phi = self.device.dynamical(qz);
            &local_phi
        };
        times.specialization = t0.elapsed();

        // M = (ω + iη)² I − Φ.
        let z2 = c64(w, self.params.eta) * c64(w, self.params.eta);
        let mut m = BlockTriDiag::zeros(bnum, bs);
        for b in 0..bnum {
            m.diag[b] = CMatrix::from_diag(&vec![z2; bs]);
            m.diag[b] -= &phi.diag[b];
        }
        for b in 0..bnum - 1 {
            m.upper[b] = phi.upper[b].scaled(c64(-1.0, 0.0));
            m.lower[b] = phi.lower[b].scaled(c64(-1.0, 0.0));
        }

        let t1 = Instant::now();
        let bc_key = iq * self.omegas.len() + iw;
        let use_bc_cache = self.mode != CacheMode::NoCache;
        // Cache-or-local borrow, mirroring the electron solver.
        let local_bse;
        let bse = if let Some(shared) = &self.shared_bc {
            local_bse = shared.resolve(
                bc_key,
                self.params.method,
                &m.diag[0],
                &m.upper[0],
                &m.lower[0],
                &m.diag[bnum - 1],
                &m.upper[bnum - 2],
                &m.lower[bnum - 2],
                self.params.bc_tol,
                self.params.bc_max_iter,
                &mut self.ws,
            );
            &local_bse
        } else if use_bc_cache {
            if self.bc_cache[bc_key].is_none() {
                self.bc_cache[bc_key] = Some(boundary_self_energies_ws(
                    self.params.method,
                    &m.diag[0],
                    &m.upper[0],
                    &m.lower[0],
                    &m.diag[bnum - 1],
                    &m.upper[bnum - 2],
                    &m.lower[bnum - 2],
                    self.params.bc_tol,
                    self.params.bc_max_iter,
                    &mut self.ws,
                ));
            }
            self.bc_cache[bc_key].as_ref().unwrap()
        } else {
            local_bse = boundary_self_energies_ws(
                self.params.method,
                &m.diag[0],
                &m.upper[0],
                &m.lower[0],
                &m.diag[bnum - 1],
                &m.upper[bnum - 2],
                &m.lower[bnum - 2],
                self.params.bc_tol,
                self.params.bc_max_iter,
                &mut self.ws,
            );
            &local_bse
        };
        times.boundary = t1.elapsed();

        m.diag[0] -= &bse.left;
        m.diag[bnum - 1] -= &bse.right;
        if let Some(pr) = pi_r_scatt {
            for (b, blk) in pr.iter().enumerate() {
                let neg = blk.scaled(c64(-1.0, 0.0));
                m.diag[b] += &neg;
            }
        }

        // Bose-occupied contacts (both at the same heat-sink temperature).
        let n = bose(w, self.params.kt);
        let (pl_l, pg_l) = contact_sigma_lg(&bse.left, n, true);
        let (pl_r, pg_r) = contact_sigma_lg(&bse.right, n, true);

        let mut pi_l = match pi_l_scatt {
            Some(s) => s.to_vec(),
            None => vec![CMatrix::zeros(bs, bs); bnum],
        };
        let mut pi_g = match pi_g_scatt {
            Some(s) => s.to_vec(),
            None => vec![CMatrix::zeros(bs, bs); bnum],
        };
        pi_l[0] += &pl_l;
        pi_g[0] += &pg_l;
        pi_l[bnum - 1] += &pl_r;
        pi_g[bnum - 1] += &pg_r;

        let t2 = Instant::now();
        let mut sol = RgfSolution::empty();
        rgf_solve_into(
            &RgfInputs {
                m: &m,
                sigma_l: &pi_l,
                sigma_g: &pi_g,
            },
            &mut self.ws,
            &mut sol,
        );
        times.rgf = t2.elapsed();

        PointSolution {
            sol,
            m,
            boundary_lg_left: (pl_l, pg_l),
            boundary_lg_right: (pl_r, pg_r),
            gamma: (bse.gamma_left.clone(), bse.gamma_right.clone()),
            times,
        }
    }
}

impl PhononSolver<'_> {
    /// Approximate resident bytes of the caches (mirrors
    /// [`ElectronSolver::cache_bytes`]).
    pub fn cache_bytes(&self) -> usize {
        let bs = self.device.block_size_ph();
        let bnum = self.device.bnum();
        let spec = self.spec_cache.iter().flatten().count() * (bnum * 3) * bs * bs * 16;
        let bc = self.bc_cache.iter().flatten().count() * 4 * bs * bs * 16;
        spec + bc
    }
}

impl GfSolver for PhononSolver<'_> {
    fn solve_point(
        &mut self,
        i: usize,
        j: usize,
        sigma_r: Option<&[CMatrix]>,
        sigma_l: Option<&[CMatrix]>,
        sigma_g: Option<&[CMatrix]>,
    ) -> PointSolution {
        self.solve(i, j, sigma_r, sigma_l, sigma_g)
    }

    fn carrier(&self) -> &'static str {
        "phonon"
    }

    fn cache_bytes(&self) -> usize {
        PhononSolver::cache_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_device::DeviceConfig;

    fn device() -> DeviceStructure {
        DeviceStructure::build(DeviceConfig::tiny())
    }

    fn grids() -> (Vec<f64>, Vec<f64>) {
        (vec![0.0, 1.0], vec![-0.5, 0.0, 0.5])
    }

    #[test]
    fn electron_point_solves_and_is_physical() {
        let dev = device();
        let (ks, es) = grids();
        let mut solver = ElectronSolver::new(
            &dev,
            vec![0.0; dev.num_atoms()],
            ElectronParams::default(),
            CacheMode::NoCache,
            ks,
            es,
        );
        let out = solver.solve(0, 1, None, None, None);
        assert_eq!(out.sol.gr_diag.len(), dev.bnum());
        for n in 0..dev.bnum() {
            assert!(out.sol.gl_diag[n].is_anti_hermitian(1e-8), "G<[{n}]");
            assert!(out.sol.gg_diag[n].is_anti_hermitian(1e-8), "G>[{n}]");
        }
        assert!(out.gamma.0.is_hermitian(1e-8));
    }

    #[test]
    fn phonon_point_solves() {
        let dev = device();
        let mut solver = PhononSolver::new(
            &dev,
            PhononParams::default(),
            CacheMode::NoCache,
            vec![0.5],
            vec![0.005, 0.01],
        );
        let out = solver.solve(0, 0, None, None, None);
        for n in 0..dev.bnum() {
            assert!(out.sol.gl_diag[n].is_anti_hermitian(1e-8), "D<[{n}]");
        }
    }

    #[test]
    fn cache_modes_agree_bitwise() {
        let dev = device();
        let (ks, es) = grids();
        let pot = dev.linear_potential(0.2, 0.25, 0.75);
        let mk = |mode| {
            ElectronSolver::new(
                &dev,
                pot.clone(),
                ElectronParams::default(),
                mode,
                ks.clone(),
                es.clone(),
            )
        };
        let mut s_none = mk(CacheMode::NoCache);
        let mut s_bc = mk(CacheMode::CacheBc);
        let mut s_full = mk(CacheMode::CacheBcSpec);
        for round in 0..2 {
            for ik in 0..2 {
                for ie in 0..3 {
                    let a = s_none.solve(ik, ie, None, None, None);
                    let b = s_bc.solve(ik, ie, None, None, None);
                    let c = s_full.solve(ik, ie, None, None, None);
                    let dev_ab = (&a.sol.gr_diag[0] - &b.sol.gr_diag[0]).max_abs();
                    let dev_ac = (&a.sol.gr_diag[0] - &c.sol.gr_diag[0]).max_abs();
                    assert!(dev_ab < 1e-13, "round {round} ({ik},{ie}): {dev_ab}");
                    assert!(dev_ac < 1e-13, "round {round} ({ik},{ie}): {dev_ac}");
                }
            }
        }
        // Cache sizes reflect the policy.
        assert_eq!(s_none.cache_bytes(), 0);
        assert!(s_bc.cache_bytes() > 0);
        assert!(s_full.cache_bytes() > s_bc.cache_bytes());
    }

    #[test]
    fn scattering_sigma_changes_solution() {
        let dev = device();
        let (ks, es) = grids();
        let bs = dev.block_size_el();
        let mut solver = ElectronSolver::new(
            &dev,
            vec![0.0; dev.num_atoms()],
            ElectronParams::default(),
            CacheMode::NoCache,
            ks,
            es,
        );
        let ballistic = solver.solve(0, 1, None, None, None);
        // A small anti-Hermitian Σ^R (lifetime broadening).
        let sr: Vec<CMatrix> = (0..dev.bnum())
            .map(|_| CMatrix::from_diag(&vec![c64(0.0, -0.01); bs]))
            .collect();
        let scattered = solver.solve(0, 1, Some(&sr), None, None);
        let diff = (&ballistic.sol.gr_diag[2] - &scattered.sol.gr_diag[2]).max_abs();
        assert!(diff > 1e-6, "Σ^R must affect G^R (diff {diff})");
    }

    #[test]
    fn timings_populated() {
        let dev = device();
        let (ks, es) = grids();
        let mut solver = ElectronSolver::new(
            &dev,
            vec![0.0; dev.num_atoms()],
            ElectronParams::default(),
            CacheMode::CacheBcSpec,
            ks,
            es,
        );
        let first = solver.solve(1, 0, None, None, None);
        assert!(first.times.total() > Duration::ZERO);
        // Second call hits both caches: boundary time collapses.
        let second = solver.solve(1, 0, None, None, None);
        assert!(second.times.boundary <= first.times.boundary);
    }
}
