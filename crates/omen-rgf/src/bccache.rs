//! Shared cross-iteration (and cross-sweep-point) boundary-condition
//! cache.
//!
//! The per-solver caches of [`crate::points`] live only as long as their
//! solver — and parallel executors build one solver per worker per Born
//! iteration, so those caches never survive an iteration. The boundary
//! self-energies, however, depend only on the ballistic operator `M` of
//! each `(kz, E)` / `(qz, ω)` point, never on the scattering self-energies
//! of the Born loop: computing them once per run is exact. A
//! [`BoundaryCache`] is shared by every worker of every iteration (the
//! driver holds it in an `Arc`), turning the per-iteration boundary cost
//! into a one-time cost.
//!
//! The same structure carries warm starts *between* sweep points in
//! `omen-serve`: a completed point's cache is cloned for its neighbor —
//! [`BoundaryCache::fresh_clone`] when the sweep axis leaves the boundary
//! operators untouched (temperature or coupling sweeps: occupations and
//! scattering strength don't enter `M`), or demoted to surface-GF *seeds*
//! via [`BoundaryCache::seed_clone`] when it does (bias sweeps shift the
//! electrostatic potential in the lead blocks). Seeds are refined to the
//! new point's own fixed-point equation by
//! [`crate::boundary::surface_gf_seeded`], with a Sancho-Rubio fallback,
//! so a warm boundary is always as exact as a cold one.

use crate::boundary::{
    boundary_self_energies_seeded_ws, boundary_self_energies_ws, BoundaryMethod,
    BoundarySelfEnergies, SeedOutcome,
};
use omen_linalg::{CMatrix, Workspace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One cached point: nothing, a warm-start seed, or a finished result.
enum BcSlot {
    /// Nothing known about this point yet (cold compute).
    Empty,
    /// Surface GFs of a neighboring sweep point, to be refined.
    Seed { g_left: CMatrix, g_right: CMatrix },
    /// Boundary self-energies valid for this exact point.
    Fresh(Box<BoundarySelfEnergies>),
}

/// Counters describing how a [`BoundaryCache`] earned its keep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundaryCacheStats {
    /// Lookups served from a `Fresh` slot (no boundary solve at all).
    pub hits: u64,
    /// Lookups that had to solve (cold or seeded).
    pub misses: u64,
    /// Lead solves warm-started from a seed that converged by refinement.
    pub refined: u64,
    /// Seeded lead solves that fell back to Sancho-Rubio decimation.
    pub fallbacks: u64,
    /// Total surface-GF iterations actually spent through this cache.
    pub iterations: u64,
}

/// A thread-safe boundary-condition store over a flat point grid
/// (key = `ik * ne + ie`, matching the per-solver caches).
pub struct BoundaryCache {
    slots: Vec<Mutex<BcSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    refined: AtomicU64,
    fallbacks: AtomicU64,
    iterations: AtomicU64,
}

impl BoundaryCache {
    /// An empty cache over `npoints` grid points.
    pub fn new(npoints: usize) -> Self {
        BoundaryCache {
            slots: (0..npoints).map(|_| Mutex::new(BcSlot::Empty)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refined: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
        }
    }

    /// Number of grid points covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache covers no points.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the point's boundary self-energies: from the cache when
    /// `Fresh`, otherwise computed — refined from a `Seed` when one is
    /// present, cold otherwise — and published for every later iteration.
    ///
    /// Values are deterministic regardless of which worker resolves a
    /// point first (seeds are fixed before a run starts), preserving the
    /// serial/parallel bitwise-equivalence invariant of the executors.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve(
        &self,
        idx: usize,
        method: BoundaryMethod,
        d_first: &CMatrix,
        upper_first: &CMatrix,
        lower_first: &CMatrix,
        d_last: &CMatrix,
        upper_last: &CMatrix,
        lower_last: &CMatrix,
        tol: f64,
        max_iter: usize,
        ws: &mut Workspace,
    ) -> BoundarySelfEnergies {
        let seed = {
            let slot = self.slots[idx].lock().expect("boundary cache poisoned");
            match &*slot {
                BcSlot::Fresh(bse) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (**bse).clone();
                }
                BcSlot::Seed { g_left, g_right } => Some((g_left.clone(), g_right.clone())),
                BcSlot::Empty => None,
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bse = match seed {
            Some((g_left, g_right)) => {
                let (bse, left_outcome, right_outcome) = boundary_self_energies_seeded_ws(
                    g_left,
                    g_right,
                    d_first,
                    upper_first,
                    lower_first,
                    d_last,
                    upper_last,
                    lower_last,
                    tol,
                    max_iter,
                    max_iter,
                    ws,
                );
                for outcome in [left_outcome, right_outcome] {
                    match outcome {
                        SeedOutcome::Refined => self.refined.fetch_add(1, Ordering::Relaxed),
                        SeedOutcome::Fallback => self.fallbacks.fetch_add(1, Ordering::Relaxed),
                    };
                }
                bse
            }
            None => boundary_self_energies_ws(
                method,
                d_first,
                upper_first,
                lower_first,
                d_last,
                upper_last,
                lower_last,
                tol,
                max_iter,
                ws,
            ),
        };
        self.iterations
            .fetch_add(bse.iterations as u64, Ordering::Relaxed);
        *self.slots[idx].lock().expect("boundary cache poisoned") =
            BcSlot::Fresh(Box::new(bse.clone()));
        bse
    }

    /// A full clone: every `Fresh` result stays `Fresh`. Correct only when
    /// the recipient's boundary operators are identical (temperature,
    /// coupling, or any sweep axis that never enters `M`).
    pub fn fresh_clone(&self) -> BoundaryCache {
        let slots = self
            .slots
            .iter()
            .map(|s| {
                let slot = s.lock().expect("boundary cache poisoned");
                Mutex::new(match &*slot {
                    BcSlot::Empty => BcSlot::Empty,
                    BcSlot::Seed { g_left, g_right } => BcSlot::Seed {
                        g_left: g_left.clone(),
                        g_right: g_right.clone(),
                    },
                    BcSlot::Fresh(bse) => BcSlot::Fresh(bse.clone()),
                })
            })
            .collect();
        BoundaryCache {
            slots,
            ..BoundaryCache::new(0)
        }
    }

    /// A demoted clone: every `Fresh` result becomes a surface-GF `Seed`
    /// for the recipient to refine. Correct for any neighboring sweep
    /// point (bias sweeps included) — the seeds only steer the iteration,
    /// the recipient solves its own equations.
    pub fn seed_clone(&self) -> BoundaryCache {
        let slots = self
            .slots
            .iter()
            .map(|s| {
                let slot = s.lock().expect("boundary cache poisoned");
                Mutex::new(match &*slot {
                    BcSlot::Empty => BcSlot::Empty,
                    BcSlot::Seed { g_left, g_right } => BcSlot::Seed {
                        g_left: g_left.clone(),
                        g_right: g_right.clone(),
                    },
                    BcSlot::Fresh(bse) => BcSlot::Seed {
                        g_left: bse.g_left.clone(),
                        g_right: bse.g_right.clone(),
                    },
                })
            })
            .collect();
        BoundaryCache {
            slots,
            ..BoundaryCache::new(0)
        }
    }

    /// Usage counters since construction.
    pub fn stats(&self) -> BoundaryCacheStats {
        BoundaryCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
        }
    }

    /// Approximate resident bytes across all slots.
    pub fn bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                let slot = s.lock().expect("boundary cache poisoned");
                match &*slot {
                    BcSlot::Empty => 0,
                    BcSlot::Seed { g_left, g_right } => {
                        (g_left.rows() * g_left.cols() + g_right.rows() * g_right.cols()) * 16
                    }
                    BcSlot::Fresh(bse) => {
                        let n = bse.left.rows();
                        6 * n * n * 16
                    }
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    fn chain(e: f64, n: usize) -> (CMatrix, CMatrix, CMatrix) {
        let d = CMatrix::from_fn(n, n, |i, j| if i == j { c64(e, 1e-4) } else { C64_ZERO });
        let hop = CMatrix::from_fn(n, n, |i, j| if i == j { c64(-1.0, 0.0) } else { C64_ZERO });
        (d, hop.clone(), hop)
    }

    const C64_ZERO: omen_linalg::C64 = omen_linalg::C64::ZERO;

    #[test]
    fn resolve_hits_after_first_compute() {
        let cache = BoundaryCache::new(2);
        let (d, a, b) = chain(3.0, 2);
        let mut ws = Workspace::new();
        let first = cache.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-12,
            300,
            &mut ws,
        );
        let again = cache.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-12,
            300,
            &mut ws,
        );
        assert!(first.left.approx_eq(&again.left, 0.0), "hit must be exact");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn seed_clone_refines_cheaper_than_cold() {
        let cache = BoundaryCache::new(1);
        let (d, a, b) = chain(3.0, 2);
        let mut ws = Workspace::new();
        cache.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-12,
            300,
            &mut ws,
        );
        // A nearby "bias point": seeds refine instead of decimating, and
        // the result matches a cold solve.
        let warm = cache.seed_clone();
        let (d2, a2, b2) = chain(3.01, 2);
        let from_seed = warm.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d2,
            &a2,
            &b2,
            &d2,
            &a2,
            &b2,
            1e-12,
            300,
            &mut ws,
        );
        let cold = boundary_self_energies_ws(
            BoundaryMethod::SanchoRubio,
            &d2,
            &a2,
            &b2,
            &d2,
            &a2,
            &b2,
            1e-12,
            300,
            &mut ws,
        );
        assert!(
            from_seed.left.approx_eq(&cold.left, 1e-8),
            "seeded boundary deviates from cold"
        );
        let stats = warm.stats();
        assert_eq!(stats.refined, 2, "both leads should refine");
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn fresh_clone_carries_results_over() {
        let cache = BoundaryCache::new(1);
        let (d, a, b) = chain(3.0, 2);
        let mut ws = Workspace::new();
        cache.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-12,
            300,
            &mut ws,
        );
        let carried = cache.fresh_clone();
        carried.resolve(
            0,
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-12,
            300,
            &mut ws,
        );
        let stats = carried.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "carried slot is Fresh");
    }
}
