//! # omen-rgf
//!
//! Recursive Green's Function solvers — the paper's GF phase (§4 Eq. 1).

pub mod bccache;
pub mod boundary;
pub mod dense_ref;
pub mod observables;
pub mod points;
pub mod rgf;
pub mod testutil;

pub use bccache::{BoundaryCache, BoundaryCacheStats};
pub use boundary::{
    bose, boundary_self_energies, boundary_self_energies_seeded_ws, boundary_self_energies_ws,
    contact_sigma_lg, fermi, surface_gf, surface_gf_seeded, surface_gf_ws, BoundaryMethod,
    BoundarySelfEnergies, SeedOutcome, SurfaceGf,
};
pub use dense_ref::{dense_solve, DenseSolution};
pub use observables::{
    block_ldos, block_occupation, caroli_transmission, contact_current, current_profile,
    interface_current, orbital_occupation,
};
pub use points::{
    CacheMode, ElectronParams, ElectronSolver, GfSolver, PhaseTimes, PhononParams, PhononSolver,
    PointSolution,
};
pub use rgf::{rgf_flops_model, rgf_solve, rgf_solve_into, RgfInputs, RgfSolution};
