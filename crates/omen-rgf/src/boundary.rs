//! Open-boundary self-energies from semi-infinite leads.
//!
//! The device's first and last slabs connect to semi-infinite periodic
//! leads. Eliminating the leads produces the boundary self-energies
//! `Σ^R_B = τ g_s τ'` where `g_s` is the lead surface Green's function.
//! Two algorithms compute `g_s`:
//!
//! * [`BoundaryMethod::SanchoRubio`] — the decimation scheme (doubling
//!   convergence; the production choice);
//! * [`BoundaryMethod::FixedPoint`] — plain self-consistent iteration
//!   `g ← (D − α g β)⁻¹`, linear convergence (the paper instead pipelines a
//!   contour-integral method on GPUs; decimation computes the same surface
//!   GF, and the fixed-point variant serves as the slow baseline for the
//!   boundary-conditions ablation bench).
//!
//! Lesser/greater boundary terms follow from local equilibrium in the
//! contacts: `Σ^<_B = −f·(Σ^R_B − Σ^A_B)` with the Fermi factor for
//! electrons, `Π^<_B = n_B·(Π^R_B − Π^A_B)` with the Bose factor for
//! phonons.

use omen_linalg::{matmul, matmul3, matmul3_into, CMatrix, Workspace, C64};

/// Surface Green's function algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryMethod {
    /// Sancho-Rubio decimation (doubling).
    SanchoRubio,
    /// Naive fixed-point iteration (baseline).
    FixedPoint,
}

/// Outcome of a surface-GF computation.
#[derive(Clone, Debug)]
pub struct SurfaceGf {
    /// The surface Green's function of the lead.
    pub g: CMatrix,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual `‖g − (D − α g β)⁻¹‖_max`.
    pub residual: f64,
}

/// Computes the lead surface Green's function solving
///
/// **Conditioning caveat**: at energies within ~`η` of a band branch point
/// (e.g. the exact band centre of a 1-D chain) the decimation's first step
/// amplifies by `1/η`; broadenings below ~1e-7 of the bandwidth can then
/// converge to a spurious fixed point. Callers should keep `η ≳ 1e-6` of
/// the bandwidth and check [`SurfaceGf::residual`].
///
/// Solves
/// `g = (D − α · g · β)⁻¹`, where `D` is the principal-layer block of
/// `M = E·S − H` (with `+iη` broadening included by the caller), `α` the
/// coupling from the surface layer *into* the lead and `β` the coupling
/// back.
pub fn surface_gf(
    method: BoundaryMethod,
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    tol: f64,
    max_iter: usize,
) -> SurfaceGf {
    let mut ws = Workspace::new();
    surface_gf_ws(method, d, alpha, beta, tol, max_iter, &mut ws)
}

/// [`surface_gf`] with caller-supplied scratch: every iteration temporary
/// comes from `ws`, so repeated boundary solves with a warm workspace
/// allocate only the returned surface GF.
pub fn surface_gf_ws(
    method: BoundaryMethod,
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> SurfaceGf {
    match method {
        BoundaryMethod::SanchoRubio => sancho_rubio(d, alpha, beta, tol, max_iter, ws),
        BoundaryMethod::FixedPoint => fixed_point(d, alpha, beta, tol, max_iter, ws),
    }
}

fn residual_of(
    g: &CMatrix,
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    ws: &mut Workspace,
) -> f64 {
    // ‖g − (D − α g β)⁻¹‖.
    let mut agb = ws.take(d.rows(), d.cols());
    let mut t = ws.take(d.rows(), d.cols());
    let mut refreshed = ws.take(d.rows(), d.cols());
    matmul3_into(alpha, g, beta, &mut t, &mut agb);
    t.copy_from(d);
    t -= &agb;
    ws.invert_into(&t, &mut refreshed);
    refreshed -= g;
    let res = refreshed.max_abs();
    ws.give(agb);
    ws.give(t);
    ws.give(refreshed);
    res
}

fn sancho_rubio(
    d: &CMatrix,
    alpha0: &CMatrix,
    beta0: &CMatrix,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> SurfaceGf {
    let n = d.rows();
    let mut es = ws.take(n, n); // surface effective block
    let mut eb = ws.take(n, n); // bulk effective block
    let mut a = ws.take(n, n);
    let mut b = ws.take(n, n);
    let mut g0 = ws.take(n, n);
    let mut agb = ws.take(n, n);
    let mut bga = ws.take(n, n);
    let mut t = ws.take(n, n);
    let mut next = ws.take(n, n);
    es.copy_from(d);
    eb.copy_from(d);
    a.copy_from(alpha0);
    b.copy_from(beta0);
    let mut iterations = 0;
    while iterations < max_iter {
        iterations += 1;
        ws.invert_into(&eb, &mut g0);
        matmul3_into(&a, &g0, &b, &mut t, &mut agb);
        matmul3_into(&b, &g0, &a, &mut t, &mut bga);
        es -= &agb;
        eb -= &agb;
        eb -= &bga;
        // a ← a·g·a, b ← b·g·b (via `next` so the operands stay intact).
        matmul3_into(&a, &g0, &a, &mut t, &mut next);
        std::mem::swap(&mut a, &mut next);
        matmul3_into(&b, &g0, &b, &mut t, &mut next);
        std::mem::swap(&mut b, &mut next);
        if a.max_abs().max(b.max_abs()) < tol {
            break;
        }
    }
    let mut g = CMatrix::zeros(n, n);
    ws.invert_into(&es, &mut g);
    for sc in [es, eb, a, b, g0, agb, bga, t, next] {
        ws.give(sc);
    }
    let residual = residual_of(&g, d, alpha0, beta0, ws);
    SurfaceGf {
        g,
        iterations,
        residual,
    }
}

fn fixed_point(
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> SurfaceGf {
    let n = d.rows();
    let mut g = CMatrix::zeros(n, n);
    ws.invert_into(d, &mut g);
    fixed_point_from(g, d, alpha, beta, tol, max_iter, ws)
}

/// The damped fixed-point iteration starting from an explicit initial
/// guess `g` (the cold start uses `g = D⁻¹`; warm starts hand over a
/// neighboring sweep point's converged surface GF).
fn fixed_point_from(
    mut g: CMatrix,
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> SurfaceGf {
    let n = d.rows();
    let mut agb = ws.take(n, n);
    let mut t = ws.take(n, n);
    let mut next = ws.take(n, n);
    let mut iterations = 0;
    #[allow(unused_assignments)]
    let mut res = f64::INFINITY;
    while iterations < max_iter {
        iterations += 1;
        matmul3_into(alpha, &g, beta, &mut t, &mut agb);
        t.copy_from(d);
        t -= &agb;
        ws.invert_into(&t, &mut next);
        next -= &g;
        res = next.max_abs();
        // Damped update stabilizes the linear iteration near band edges:
        // g ← (g + next)/2, where `next` currently holds `next − g`.
        next.scale_inplace(C64::from_re(0.5));
        g += &next;
        if res < tol {
            break;
        }
    }
    for sc in [agb, t, next] {
        ws.give(sc);
    }
    let residual = residual_of(&g, d, alpha, beta, ws);
    SurfaceGf {
        g,
        iterations,
        residual,
    }
}

/// Outcome of a seeded (warm-started) surface-GF refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedOutcome {
    /// The damped fixed-point refinement of the seed converged.
    Refined,
    /// The refinement stalled; the solve fell back to Sancho-Rubio.
    Fallback,
}

/// Refines a warm-start `seed` surface GF (e.g. a neighboring sweep
/// point's converged `g_s`) by damped fixed-point iteration (at most
/// `refine_iter` steps), falling back to a cold Sancho-Rubio decimation
/// (at most `max_iter` steps) when the seed is too far from the new fixed
/// point to converge.
///
/// The result always satisfies the *new* point's fixed-point equation to
/// `tol` (checked via [`SurfaceGf::residual`]): seeding changes the
/// iteration path, never the equation being solved, so a warm boundary is
/// as exact as a cold one.
#[allow(clippy::too_many_arguments)]
pub fn surface_gf_seeded(
    seed: CMatrix,
    d: &CMatrix,
    alpha: &CMatrix,
    beta: &CMatrix,
    tol: f64,
    refine_iter: usize,
    max_iter: usize,
    ws: &mut Workspace,
) -> (SurfaceGf, SeedOutcome) {
    let refined = fixed_point_from(seed, d, alpha, beta, tol, refine_iter, ws);
    // Accept only a genuinely converged refinement; a seed from a distant
    // bias point can stall the linear iteration.
    if refined.residual <= tol * 10.0 {
        return (refined, SeedOutcome::Refined);
    }
    let mut cold = sancho_rubio(d, alpha, beta, tol, max_iter, ws);
    cold.iterations += refined.iterations;
    (cold, SeedOutcome::Fallback)
}

/// Both boundary self-energies of a homogeneous block-tridiagonal system.
#[derive(Clone, Debug)]
pub struct BoundarySelfEnergies {
    /// `Σ^R_B` folded into the first diagonal block.
    pub left: CMatrix,
    /// `Σ^R_B` folded into the last diagonal block.
    pub right: CMatrix,
    /// Left broadening `Γ_L = i(Σ_L − Σ_L†)`.
    pub gamma_left: CMatrix,
    /// Right broadening `Γ_R`.
    pub gamma_right: CMatrix,
    /// Left lead surface Green's function (kept as the warm-start seed
    /// for adjacent sweep points).
    pub g_left: CMatrix,
    /// Right lead surface Green's function.
    pub g_right: CMatrix,
    /// Decimation iterations spent (left + right).
    pub iterations: usize,
}

/// Computes the left/right boundary self-energies for a system whose lead
/// principal layers replicate the first/last device blocks.
///
/// * `d_first`, `d_last` — `M` diagonal blocks of the first/last slabs;
/// * `upper`, `lower` — the `M[n][n+1]` / `M[n+1][n]` couplings at each end
///   (`(upper_first, lower_first)` for the left lead, `(upper_last,
///   lower_last)` for the right).
#[allow(clippy::too_many_arguments)]
pub fn boundary_self_energies(
    method: BoundaryMethod,
    d_first: &CMatrix,
    upper_first: &CMatrix,
    lower_first: &CMatrix,
    d_last: &CMatrix,
    upper_last: &CMatrix,
    lower_last: &CMatrix,
    tol: f64,
    max_iter: usize,
) -> BoundarySelfEnergies {
    let mut ws = Workspace::new();
    boundary_self_energies_ws(
        method,
        d_first,
        upper_first,
        lower_first,
        d_last,
        upper_last,
        lower_last,
        tol,
        max_iter,
        &mut ws,
    )
}

/// [`boundary_self_energies`] with caller-supplied scratch (the per-point
/// GF solvers thread their per-worker workspace through here).
#[allow(clippy::too_many_arguments)]
pub fn boundary_self_energies_ws(
    method: BoundaryMethod,
    d_first: &CMatrix,
    upper_first: &CMatrix,
    lower_first: &CMatrix,
    d_last: &CMatrix,
    upper_last: &CMatrix,
    lower_last: &CMatrix,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> BoundarySelfEnergies {
    // Left lead extends to −∞. Surface cell couples deeper via
    // M[-1,-2] = lower, back via M[-2,-1] = upper.
    let left_surface = surface_gf_ws(method, d_first, lower_first, upper_first, tol, max_iter, ws);
    // Right lead extends to +∞: surface couples deeper via upper, back via
    // lower.
    let right_surface = surface_gf_ws(method, d_last, upper_last, lower_last, tol, max_iter, ws);
    fold_boundaries(
        left_surface,
        right_surface,
        upper_first,
        lower_first,
        upper_last,
        lower_last,
        ws,
    )
}

/// [`boundary_self_energies_ws`] warm-started from a neighboring sweep
/// point's surface GFs (see [`surface_gf_seeded`]). Returns the seed
/// outcome of each lead alongside the (exact) self-energies.
#[allow(clippy::too_many_arguments)]
pub fn boundary_self_energies_seeded_ws(
    seed_left: CMatrix,
    seed_right: CMatrix,
    d_first: &CMatrix,
    upper_first: &CMatrix,
    lower_first: &CMatrix,
    d_last: &CMatrix,
    upper_last: &CMatrix,
    lower_last: &CMatrix,
    tol: f64,
    refine_iter: usize,
    max_iter: usize,
    ws: &mut Workspace,
) -> (BoundarySelfEnergies, SeedOutcome, SeedOutcome) {
    let (left_surface, left_outcome) = surface_gf_seeded(
        seed_left,
        d_first,
        lower_first,
        upper_first,
        tol,
        refine_iter,
        max_iter,
        ws,
    );
    let (right_surface, right_outcome) = surface_gf_seeded(
        seed_right,
        d_last,
        upper_last,
        lower_last,
        tol,
        refine_iter,
        max_iter,
        ws,
    );
    let bse = fold_boundaries(
        left_surface,
        right_surface,
        upper_first,
        lower_first,
        upper_last,
        lower_last,
        ws,
    );
    (bse, left_outcome, right_outcome)
}

/// Folds the two lead surface GFs into boundary self-energies:
/// `Σ_L = lower · g_s · upper` and `Σ_R = upper · g_s · lower`.
fn fold_boundaries(
    left_surface: SurfaceGf,
    right_surface: SurfaceGf,
    upper_first: &CMatrix,
    lower_first: &CMatrix,
    upper_last: &CMatrix,
    lower_last: &CMatrix,
    ws: &mut Workspace,
) -> BoundarySelfEnergies {
    let n = left_surface.g.rows();
    let mut t = ws.take(n, n);
    let mut left = CMatrix::zeros(n, n);
    matmul3_into(lower_first, &left_surface.g, upper_first, &mut t, &mut left);
    let mut right = CMatrix::zeros(n, n);
    matmul3_into(upper_last, &right_surface.g, lower_last, &mut t, &mut right);
    ws.give(t);

    let gamma = |sig: &CMatrix| {
        let mut g = sig - &sig.adjoint();
        g.scale_inplace(C64::I);
        g
    };
    BoundarySelfEnergies {
        gamma_left: gamma(&left),
        gamma_right: gamma(&right),
        left,
        right,
        g_left: left_surface.g,
        g_right: right_surface.g,
        iterations: left_surface.iterations + right_surface.iterations,
    }
}

/// Fermi-Dirac occupation `f(E) = 1/(e^{(E−μ)/kT} + 1)`.
pub fn fermi(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (x.exp() + 1.0)
    }
}

/// Bose-Einstein occupation `n(ω) = 1/(e^{ω/kT} − 1)` (ω > 0).
pub fn bose(w: f64, kt: f64) -> f64 {
    assert!(w > 0.0, "Bose factor needs ω > 0");
    let x = w / kt;
    if x > 40.0 {
        0.0
    } else {
        1.0 / (x.exp_m1())
    }
}

/// Equilibrium lesser/greater boundary self-energies of a contact with
/// occupation `occ` (Fermi factor for electrons, Bose factor for phonons)
/// and statistics sign `boson`:
///
/// * fermions: `Σ^< = −f (Σ^R − Σ^A)`, `Σ^> = (1−f)(Σ^R − Σ^A)`;
/// * bosons:   `Π^< = n (Π^R − Π^A)`,  `Π^> = (1+n)(Π^R − Π^A)`.
///
/// Both satisfy `Σ^> − Σ^< = Σ^R − Σ^A`, the identity the RGF lesser
/// recursion relies on.
pub fn contact_sigma_lg(sigma_r: &CMatrix, occ: f64, boson: bool) -> (CMatrix, CMatrix) {
    let ra = sigma_r - &sigma_r.adjoint(); // Σ^R − Σ^A
    if boson {
        (
            ra.scaled(C64::from_re(occ)),
            ra.scaled(C64::from_re(1.0 + occ)),
        )
    } else {
        (
            ra.scaled(C64::from_re(-occ)),
            ra.scaled(C64::from_re(1.0 - occ)),
        )
    }
}

/// Convenience: validates that a surface GF satisfies its own fixed-point
/// equation (used in tests and debug assertions).
pub fn surface_residual(g: &CMatrix, d: &CMatrix, alpha: &CMatrix, beta: &CMatrix) -> f64 {
    let agb = matmul3(alpha, g, beta);
    (&matmul(&(d - &agb), g) - &CMatrix::identity(d.rows())).max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    /// A simple 1-orbital chain: D = (E + iη) − ε0, α = β = −t.
    fn chain_blocks(e: f64, eta: f64, eps0: f64, t: f64, n: usize) -> (CMatrix, CMatrix, CMatrix) {
        let d = CMatrix::from_fn(n, n, |i, j| {
            if i == j {
                c64(e - eps0, eta)
            } else if i.abs_diff(j) == 1 {
                c64(-t * 0.3, 0.0) // intra-block coupling
            } else {
                C64::ZERO
            }
        });
        let hop = CMatrix::from_fn(n, n, |i, j| if i == j { c64(-t, 0.0) } else { C64::ZERO });
        (d, hop.clone(), hop)
    }

    #[test]
    fn scalar_chain_analytic_surface_gf() {
        // For the scalar chain g = 1/(E − ε0 − t² g): inside the band the
        // imaginary part is −sqrt(4t² − x²)/(2t²) with x = E − ε0.
        let (d, a, b) = chain_blocks(0.3, 1e-9, 0.0, 1.0, 1);
        let s = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-14, 100);
        let x: f64 = 0.3;
        let t: f64 = 1.0;
        let want_im = -(4.0 * t * t - x * x).sqrt() / (2.0 * t * t);
        let want_re = x / (2.0 * t * t);
        assert!(
            (s.g[(0, 0)].im - want_im).abs() < 1e-6,
            "im {}",
            s.g[(0, 0)].im
        );
        assert!(
            (s.g[(0, 0)].re - want_re).abs() < 1e-6,
            "re {}",
            s.g[(0, 0)].re
        );
    }

    #[test]
    fn decimation_converges_fast() {
        let (d, a, b) = chain_blocks(0.5, 1e-6, 0.0, 1.0, 3);
        let s = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-12, 200);
        assert!(
            s.iterations < 60,
            "decimation took {} iterations",
            s.iterations
        );
        assert!(s.residual < 1e-8, "residual {}", s.residual);
    }

    #[test]
    fn fixed_point_agrees_with_decimation() {
        // Outside the band (E far from ε0) both converge to the same g.
        let (d, a, b) = chain_blocks(3.0, 1e-4, 0.0, 1.0, 2);
        let s1 = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-13, 300);
        let s2 = surface_gf(BoundaryMethod::FixedPoint, &d, &a, &b, 1e-13, 5000);
        assert!(
            s1.g.approx_eq(&s2.g, 1e-6),
            "methods disagree: {} vs {}",
            s1.g[(0, 0)],
            s2.g[(0, 0)]
        );
        assert!(
            s2.iterations > s1.iterations,
            "fixed point should be slower"
        );
    }

    #[test]
    fn surface_gf_satisfies_dyson() {
        let (d, a, b) = chain_blocks(0.2, 1e-6, -0.1, 0.8, 3);
        let s = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-13, 200);
        assert!(surface_residual(&s.g, &d, &a, &b) < 1e-7);
    }

    #[test]
    fn retarded_surface_gf_has_negative_imag_diag() {
        // Causality: Im g_s(diag) <= 0 for a retarded GF.
        let (d, a, b) = chain_blocks(0.1, 1e-6, 0.0, 1.0, 3);
        let s = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-13, 200);
        for i in 0..3 {
            assert!(
                s.g[(i, i)].im <= 1e-10,
                "Im g[{i},{i}] = {}",
                s.g[(i, i)].im
            );
        }
    }

    #[test]
    fn gamma_hermitian_positive_in_band() {
        let (d, a, b) = chain_blocks(0.4, 1e-8, 0.0, 1.0, 1);
        let bse = boundary_self_energies(
            BoundaryMethod::SanchoRubio,
            &d,
            &a,
            &b,
            &d,
            &a,
            &b,
            1e-13,
            200,
        );
        assert!(bse.gamma_left.is_hermitian(1e-9));
        assert!(bse.gamma_right.is_hermitian(1e-9));
        // Γ positive (scalar case) inside the band.
        assert!(bse.gamma_left[(0, 0)].re > 0.0);
        assert!(bse.gamma_right[(0, 0)].re > 0.0);
    }

    #[test]
    fn occupation_functions() {
        assert!((fermi(0.0, 0.0, 0.025) - 0.5).abs() < 1e-12);
        assert!(fermi(10.0, 0.0, 0.025) < 1e-12);
        assert!((fermi(-10.0, 0.0, 0.025) - 1.0).abs() < 1e-12);
        // Bose diverges at ω -> 0+ and decays at large ω.
        assert!(bose(1e-4, 0.025) > 100.0);
        assert!(bose(2.0, 0.025) < 1e-12);
    }

    #[test]
    fn seeded_refinement_is_exact() {
        // Solve at E, then warm-start a nearby energy E+δ from it: the
        // refinement must converge and agree with a cold decimation solve.
        let (d, a, b) = chain_blocks(3.0, 1e-4, 0.0, 1.0, 2);
        let cold = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-12, 300);
        let (d2, a2, b2) = chain_blocks(3.02, 1e-4, 0.0, 1.0, 2);
        let cold2 = surface_gf(BoundaryMethod::SanchoRubio, &d2, &a2, &b2, 1e-12, 300);
        let mut ws = Workspace::new();
        let (warm, outcome) =
            surface_gf_seeded(cold.g.clone(), &d2, &a2, &b2, 1e-12, 5000, 300, &mut ws);
        assert_eq!(outcome, SeedOutcome::Refined);
        assert!(warm.residual < 1e-11, "residual {}", warm.residual);
        assert!(
            warm.g.approx_eq(&cold2.g, 1e-8),
            "warm and cold surface GFs disagree"
        );

        // A hopeless seed with a tiny refinement budget must fall back to
        // decimation and still land on the exact answer.
        let garbage = CMatrix::identity(2).scaled(c64(1e6, -1e6));
        let (fb, fb_outcome) = surface_gf_seeded(garbage, &d2, &a2, &b2, 1e-12, 10, 300, &mut ws);
        assert_eq!(fb_outcome, SeedOutcome::Fallback);
        assert!(fb.g.approx_eq(&cold2.g, 1e-8));
    }

    #[test]
    fn contact_sigma_identities() {
        let (d, a, b) = chain_blocks(0.4, 1e-8, 0.0, 1.0, 2);
        let s = surface_gf(BoundaryMethod::SanchoRubio, &d, &a, &b, 1e-13, 200);
        let sig = matmul3(&b, &s.g, &a);
        for &(occ, boson) in &[(0.3, false), (1.7, true)] {
            let (sl, sg) = contact_sigma_lg(&sig, occ, boson);
            // Σ^> − Σ^< = Σ^R − Σ^A.
            let lhs = &sg - &sl;
            let rhs = &sig - &sig.adjoint();
            assert!(lhs.approx_eq(&rhs, 1e-12), "boson={boson}");
            // Both anti-Hermitian.
            assert!(sl.is_anti_hermitian(1e-12));
            assert!(sg.is_anti_hermitian(1e-12));
        }
    }
}
