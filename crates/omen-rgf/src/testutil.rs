//! Shared test-system construction for RGF tests and benches.
//!
//! Public (not `cfg(test)`) for the same reason as `omen_sse::testutil`:
//! the bench binaries and the workspace-level integration tests build the
//! same physically-shaped systems.

use omen_linalg::{c64, BlockTriDiag, CMatrix, C64};

/// Builds a physically-shaped random test system: Hermitian `H`-like part
/// plus `+iη` broadening on the diagonal, Hermitian-conjugate couplings,
/// and anti-Hermitian `Σ^≷` blocks. Deterministic in `(nb, bs, seed)`.
pub fn test_system(nb: usize, bs: usize, seed: f64) -> (BlockTriDiag, Vec<CMatrix>, Vec<CMatrix>) {
    let mut m = BlockTriDiag::zeros(nb, bs);
    for b in 0..nb {
        let mut h = CMatrix::from_fn(bs, bs, |i, j| {
            c64(
                ((i * 3 + j * 7 + b) as f64 + seed).sin() * 0.3,
                ((i + 2 * j) as f64 - seed).cos() * 0.2,
            )
        });
        h.hermitianize();
        // M = E − H + iη on the diagonal.
        m.diag[b] = CMatrix::from_fn(bs, bs, |i, j| {
            let e = if i == j { c64(1.5, 5e-2) } else { C64::ZERO };
            e - h[(i, j)]
        });
    }
    for b in 0..nb - 1 {
        m.upper[b] = CMatrix::from_fn(bs, bs, |i, j| {
            c64(
                -0.6 + 0.05 * ((i + 2 * j + b) as f64 + seed).sin(),
                0.04 * ((i * 2 + j) as f64).cos(),
            )
        });
        m.lower[b] = m.upper[b].adjoint();
    }
    let mk_sigma = |shift: f64| {
        (0..nb)
            .map(|b| {
                let mut x = CMatrix::from_fn(bs, bs, |i, j| {
                    c64(
                        ((i + 3 * j + 2 * b) as f64 + shift).sin() * 0.15,
                        ((3 * i + j + b) as f64 - shift).cos() * 0.15,
                    )
                });
                x.hermitianize();
                x.scaled(C64::I)
            })
            .collect::<Vec<_>>()
    };
    (m, mk_sigma(seed + 0.4), mk_sigma(seed + 2.9))
}
