//! # omen-fault
//!
//! Deterministic, seed-driven fault injection for the fault-tolerance
//! layer spanning `omen-serve`, `omen-core`, and `omen-comm`.
//!
//! The paper's extreme-scale runs (arXiv 1912.10024) survive multi-hour
//! Born loops across thousands of ranks only because no single poisoned
//! point can take the job down. Reproducing that failure model needs a
//! way to *provoke* the failures on demand — reproducibly, so a chaos
//! test that passes once passes always. This crate provides that
//! harness:
//!
//! * a [`FaultPlan`] holds a seed plus one injection probability per
//!   [`FaultSite`];
//! * every injection decision is a pure hash of
//!   `(seed, site, caller key)` — no RNG state, no wall clock, no
//!   thread-interleaving dependence. The same plan and the same call
//!   keys produce the same faults on every run and every machine;
//! * the plan is compiled into the normal build but **inert unless
//!   enabled**: the process-wide plan defaults to
//!   [`FaultPlan::disabled`] and only arms when `OMEN_FAULT_SEED` is
//!   set in the environment (or a test calls [`install`]).
//!
//! ## Environment knobs
//!
//! | variable            | meaning                                             |
//! |---------------------|-----------------------------------------------------|
//! | `OMEN_FAULT_SEED`   | arms the plan with this seed (u64)                  |
//! | `OMEN_FAULT_RATE`   | default per-site rate when armed (default `0.1`)    |
//! | `OMEN_FAULT_PANIC`  | worker-panic rate override                          |
//! | `OMEN_FAULT_NAN`    | point NaN-poisoning rate override                   |
//! | `OMEN_FAULT_FRAME`  | frame-corruption rate override                      |
//! | `OMEN_FAULT_DONOR`  | warm-start donor-corruption rate override           |
//!
//! Sites only fire where a supervisor is prepared to catch them: callers
//! must opt in per call site (e.g. `omen-core` injects NaN poisoning
//! only into simulations that were handed an explicit fault key by
//! `omen-serve`), so arming the plan chaos-tests the *fault-tolerant*
//! paths without poisoning unsupervised unit tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An injectable failure site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A worker thread panics while processing a sweep point.
    WorkerPanic,
    /// A point's Σ state is poisoned with NaN mid-Born-loop.
    NanPoison,
    /// A serialized frame is corrupted on its way to the journal.
    FrameCorrupt,
    /// A warm-start donor's tensors are corrupted before seeding.
    DonorCorrupt,
}

impl FaultSite {
    /// Every site, for iteration and reporting.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::WorkerPanic,
        FaultSite::NanPoison,
        FaultSite::FrameCorrupt,
        FaultSite::DonorCorrupt,
    ];

    /// Stable short name (used in log/panic messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::NanPoison => "nan-poison",
            FaultSite::FrameCorrupt => "frame-corrupt",
            FaultSite::DonorCorrupt => "donor-corrupt",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::NanPoison => 1,
            FaultSite::FrameCorrupt => 2,
            FaultSite::DonorCorrupt => 3,
        }
    }

    /// Per-site salt so the same key draws independent decisions per
    /// site.
    fn salt(self) -> u64 {
        [
            0x9e37_79b9_7f4a_7c15,
            0xc2b2_ae3d_27d4_eb4f,
            0x1656_67b1_9e37_79f9,
            0x27d4_eb2f_1656_67c5,
        ][self.index()]
    }

    fn env_var(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "OMEN_FAULT_PANIC",
            FaultSite::NanPoison => "OMEN_FAULT_NAN",
            FaultSite::FrameCorrupt => "OMEN_FAULT_FRAME",
            FaultSite::DonorCorrupt => "OMEN_FAULT_DONOR",
        }
    }
}

/// A deterministic fault-injection plan: a seed plus one probability per
/// site. Copyable and cheap; decisions are pure functions of the plan
/// and the caller-supplied key.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// The seed every decision hash mixes in.
    pub seed: u64,
    rates: [f64; 4],
}

impl FaultPlan {
    /// The inert plan: never injects anything.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: [0.0; 4],
        }
    }

    /// A plan injecting every site at `rate` under `seed`.
    pub fn seeded(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [rate; 4],
        }
    }

    /// Returns the plan with `site`'s rate replaced.
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// The injection probability of `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// True when any site can fire.
    pub fn enabled(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// The plan the environment describes: [`FaultPlan::disabled`]
    /// unless `OMEN_FAULT_SEED` is set, in which case every site runs at
    /// `OMEN_FAULT_RATE` (default 0.1) with per-site overrides.
    pub fn from_env() -> FaultPlan {
        let Some(seed) = env_u64("OMEN_FAULT_SEED") else {
            return FaultPlan::disabled();
        };
        let base = env_f64("OMEN_FAULT_RATE").unwrap_or(0.1);
        let mut plan = FaultPlan::seeded(seed, base.clamp(0.0, 1.0));
        for site in FaultSite::ALL {
            if let Some(rate) = env_f64(site.env_var()) {
                plan = plan.with_rate(site, rate);
            }
        }
        plan
    }

    /// The deterministic injection decision for `site` at `key`.
    ///
    /// `key` identifies the call site's unit of work (e.g. a hash of the
    /// sweep point's value and retry attempt). The decision is a pure
    /// hash of `(seed, site, key)`: independent of call order, thread
    /// interleaving, and wall clock, so a chaos run is exactly
    /// reproducible from the seed.
    pub fn should_inject(&self, site: FaultSite, key: u64) -> bool {
        let rate = self.rates[site.index()];
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ splitmix64(key));
        unit_f64(h) < rate
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// SplitMix64 finalizer: the decision/derivation hash primitive.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds `b` into key `a` (order-sensitive), for composing call-site
/// keys out of several identifiers (point value bits, attempt index, …).
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// Deterministic delay jitter in `[0, max_ns)` for `(seed, key)` — the
/// chaos-scheduling counterpart of [`FaultPlan::should_inject`]. The
/// `omen-sched` tests perturb worker interleavings with it: a pure
/// function of the seed, so any ordering bug it exposes replays exactly.
pub fn jitter_ns(seed: u64, key: u64, max_ns: u64) -> u64 {
    if max_ns == 0 {
        return 0;
    }
    mix(seed, key) % max_ns
}

fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministically flips one bit of `bytes` (keyed by `key`); no-op on
/// an empty slice. The canonical frame-corruption primitive: a single
/// bit flip is the smallest corruption a checksum must catch.
pub fn corrupt_bytes(bytes: &mut [u8], key: u64) {
    if bytes.is_empty() {
        return;
    }
    let h = splitmix64(key ^ 0x5bf0_3635);
    let pos = (h as usize) % bytes.len();
    let bit = (h >> 32) % 8;
    bytes[pos] ^= 1 << bit;
}

// --- process-wide plan -------------------------------------------------

fn global() -> &'static RwLock<FaultPlan> {
    static PLAN: OnceLock<RwLock<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| RwLock::new(FaultPlan::from_env()))
}

/// The process-wide plan (a copy).
pub fn plan() -> FaultPlan {
    *global().read().expect("fault plan lock")
}

/// Replaces the process-wide plan. Chaos tests call this to pin their
/// plan regardless of the environment; the override applies to the whole
/// process, so tests sharing a binary must agree on the plan.
pub fn install(plan: FaultPlan) {
    *global().write().expect("fault plan lock") = plan;
}

/// True when the process-wide plan can inject anything. Tests use this
/// to relax exact-count assertions that injected retries legitimately
/// perturb.
pub fn active() -> bool {
    plan().enabled()
}

static COUNTS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// The process-wide injection decision for `site` at `key`; counts every
/// injection so chaos tests can assert faults actually fired.
pub fn should_inject(site: FaultSite, key: u64) -> bool {
    let fire = plan().should_inject(site, key);
    if fire {
        COUNTS[site.index()].fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// Injections fired at `site` since process start.
pub fn injected(site: FaultSite) -> u64 {
    COUNTS[site.index()].load(Ordering::Relaxed)
}

/// Total injections fired since process start.
pub fn injected_total() -> u64 {
    FaultSite::ALL.iter().map(|&s| injected(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.enabled());
        for site in FaultSite::ALL {
            for key in 0..1000 {
                assert!(!plan.should_inject(site, key));
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::seeded(7, 0.25);
        assert!(plan.enabled());
        let n = 20_000u64;
        for site in FaultSite::ALL {
            let fired = (0..n).filter(|&k| plan.should_inject(site, k)).count() as f64;
            let rate = fired / n as f64;
            assert!(
                (rate - 0.25).abs() < 0.02,
                "{}: empirical rate {rate}",
                site.name()
            );
            // Re-evaluation gives the identical decision set.
            for k in 0..100 {
                assert_eq!(plan.should_inject(site, k), plan.should_inject(site, k));
            }
        }
        // Sites draw independently: the same key need not fire everywhere.
        let k = (0..n)
            .find(|&k| {
                plan.should_inject(FaultSite::WorkerPanic, k)
                    != plan.should_inject(FaultSite::NanPoison, k)
            })
            .expect("sites must be decorrelated");
        assert!(k < n);
    }

    #[test]
    fn seeds_change_the_decision_set() {
        let a = FaultPlan::seeded(1, 0.3);
        let b = FaultPlan::seeded(2, 0.3);
        let differs = (0..1000u64).any(|k| {
            a.should_inject(FaultSite::WorkerPanic, k) != b.should_inject(FaultSite::WorkerPanic, k)
        });
        assert!(differs, "different seeds must draw different faults");
    }

    #[test]
    fn with_rate_overrides_one_site() {
        let plan = FaultPlan::seeded(3, 0.0).with_rate(FaultSite::FrameCorrupt, 1.0);
        assert!(plan.enabled());
        assert_eq!(plan.rate(FaultSite::WorkerPanic), 0.0);
        assert_eq!(plan.rate(FaultSite::FrameCorrupt), 1.0);
        assert!(plan.should_inject(FaultSite::FrameCorrupt, 42));
        assert!(!plan.should_inject(FaultSite::WorkerPanic, 42));
    }

    #[test]
    fn corrupt_bytes_flips_exactly_one_bit() {
        let original: Vec<u8> = (0..64).collect();
        let mut corrupted = original.clone();
        corrupt_bytes(&mut corrupted, 99);
        let diff: u32 = original
            .iter()
            .zip(&corrupted)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        // Deterministic: the same key flips the same bit.
        let mut again = original.clone();
        corrupt_bytes(&mut again, 99);
        assert_eq!(again, corrupted);
        // Empty slices are a no-op.
        corrupt_bytes(&mut [], 1);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(1, 2), mix(1, 3));
    }
}
