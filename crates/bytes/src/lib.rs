//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The workspace builds without crates.io access, so this crate vendors
//! the subset the material-file format (`omen-device::ingest`) uses:
//! [`BytesMut`] with little-endian `put_*` writers, [`Bytes`] as a frozen
//! read-only buffer, and the [`Buf`] reader trait for `&[u8]` with
//! advancing `get_*` accessors. Byte layouts match the real crate exactly
//! (little-endian, no padding), so files serialized here parse with the
//! real `bytes` and vice versa.

use std::ops::Deref;

/// A frozen, read-only byte buffer (shim: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer with little-endian writers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Writer trait: appends fixed-width values (shim of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reader trait: consumes fixed-width values from the front (shim of
/// `bytes::Buf`).
///
/// # Panics
///
/// Like the real crate, `get_*` panics when fewer bytes remain than the
/// value needs — callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.take_bytes(1)[0] as i8
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-3.5);
        buf.put_i8(-7);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 17);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -3.5);
        assert_eq!(r.get_i8(), -7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        assert_eq!(&buf[..], &[1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn reader_advances() {
        let mut r: &[u8] = &[1, 0, 2, 0];
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8(), 0);
        assert_eq!(r.get_u8(), 2);
        assert_eq!(r.remaining(), 1);
    }
}
