//! Stream-style overlap of the Born iteration's two phases across sweep
//! points (the `table6_streams` execution model).
//!
//! A sweep point alternates a GF stage (independent RGF solves, the
//! parallel bulk) and an SSE stage (the self-energy update feeding the
//! next iteration). Serially, point *k+1* waits for all of point *k*.
//! The [`StreamExecutor`] runs the two stages on two persistent worker
//! threads connected by bounded queues, so while point *k* sits in its
//! SSE stage, point *k+1* is already inside its GF stage — the overlap
//! the paper's Table 6 models with CUDA streams, reproduced here with
//! a two-stage thread pipeline.
//!
//! Design constraints honored:
//! * **Bounded in-flight window** — at most `window` points admitted and
//!   not yet finished, capping peak memory (each point owns per-point
//!   kernel state, the double-buffered `KernelState` of the driver).
//! * **Warm zero-alloc coordination** — queues, slots, and scratch are
//!   members reused across [`StreamExecutor::run_into`] calls; points
//!   move through the pipeline by value. After a cold first sweep the
//!   coordinating thread performs no heap allocation.
//! * **Panic isolation** — each stage runs under `catch_unwind`; a
//!   poisoned point leaves the pipeline marked
//!   [`StreamOutcome::panicked`] while every other point completes
//!   (`Counter::SchedPanics` records the event).

use omen_trace::{add as trace_add, span, Counter};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A sweep point that can run through the two-stage pipeline.
///
/// The pipeline repeats `gf_stage(); sse_stage()` until `sse_stage`
/// returns `false` (converged, exhausted, or failed — the point keeps
/// its own verdict). Points move between worker threads by value, hence
/// `Send + 'static`.
pub trait PipelinedPoint: Send + 'static {
    /// Runs the next GF stage (the parallel Green's-function solves).
    fn gf_stage(&mut self);
    /// Runs the SSE stage completing the iteration the last
    /// [`gf_stage`](PipelinedPoint::gf_stage) started; returns `true`
    /// when another round is needed.
    fn sse_stage(&mut self) -> bool;
}

/// A point back out of the pipeline.
#[derive(Debug)]
pub struct StreamOutcome<P> {
    /// The point, carrying whatever result state it accumulated.
    pub point: P,
    /// True when a stage panicked; the point's result is whatever it
    /// held at the instant of the panic.
    pub panicked: bool,
}

struct Slot<P> {
    idx: usize,
    point: P,
}

struct Done<P> {
    idx: usize,
    point: P,
    panicked: bool,
}

struct Queue<P> {
    q: Mutex<VecDeque<Slot<P>>>,
    cv: Condvar,
}

impl<P> Queue<P> {
    fn new() -> Queue<P> {
        Queue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, slot: Slot<P>) {
        self.q.lock().expect("queue lock").push_back(slot);
        self.cv.notify_one();
    }

    /// Pops the next slot, or `None` once `stop` is set and the queue
    /// drained.
    fn pop(&self, stop: &AtomicBool) -> Option<Slot<P>> {
        let mut q = self.q.lock().expect("queue lock");
        loop {
            if let Some(slot) = q.pop_front() {
                return Some(slot);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            q = self.cv.wait(q).expect("queue lock");
        }
    }
}

struct Shared<P> {
    gf: Queue<P>,
    sse: Queue<P>,
    done: Mutex<VecDeque<Done<P>>>,
    done_cv: Condvar,
    stop: AtomicBool,
}

impl<P> Shared<P> {
    fn finish(&self, done: Done<P>) {
        self.done.lock().expect("done lock").push_back(done);
        self.done_cv.notify_one();
    }
}

/// The two-stage GF/SSE pipeline over owned sweep points.
///
/// Construction spawns the two stage workers; they persist across
/// [`run_into`](StreamExecutor::run_into) calls (warm sweeps reuse
/// them) and exit on drop.
pub struct StreamExecutor<P: PipelinedPoint> {
    shared: Arc<Shared<P>>,
    window: usize,
    /// Points waiting for admission, reused across runs.
    pending: VecDeque<Slot<P>>,
    /// Per-index outcome slots, reused across runs.
    scratch: Vec<Option<StreamOutcome<P>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: PipelinedPoint> StreamExecutor<P> {
    /// Builds the pipeline with a bounded in-flight window (clamped to
    /// at least 2 — a window of 1 cannot overlap anything).
    pub fn new(window: usize) -> StreamExecutor<P> {
        let shared: Arc<Shared<P>> = Arc::new(Shared {
            gf: Queue::new(),
            sse: Queue::new(),
            done: Mutex::new(VecDeque::new()),
            done_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let gf_end = Arc::clone(&shared);
        let sse_end = Arc::clone(&shared);
        let workers = vec![
            std::thread::Builder::new()
                .name("omen-sched-gf".into())
                .spawn(move || gf_worker(&gf_end))
                .expect("spawn gf worker"),
            std::thread::Builder::new()
                .name("omen-sched-sse".into())
                .spawn(move || sse_worker(&sse_end))
                .expect("spawn sse worker"),
        ];
        StreamExecutor {
            shared,
            window: window.max(2),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            workers,
        }
    }

    /// The bounded in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Runs every point through the pipeline, returning outcomes in the
    /// input order. Convenience wrapper over
    /// [`run_into`](StreamExecutor::run_into).
    pub fn run(&mut self, points: Vec<P>) -> Vec<StreamOutcome<P>> {
        let mut points = points;
        let mut out = Vec::new();
        self.run_into(&mut points, &mut out);
        out
    }

    /// Runs every point in `points` (drained) through the pipeline and
    /// appends outcomes to `out` in input order. With `out` pre-reserved
    /// and the pipeline warm, the coordinating thread allocates nothing.
    pub fn run_into(&mut self, points: &mut Vec<P>, out: &mut Vec<StreamOutcome<P>>) {
        let n = points.len();
        if n == 0 {
            return;
        }
        for (idx, point) in points.drain(..).enumerate() {
            self.pending.push_back(Slot { idx, point });
        }
        self.scratch.clear();
        self.scratch.resize_with(n, || None);
        // Size every queue for the whole batch up front. Queue occupancy
        // depends on worker timing, so without this a lucky warmup can
        // leave a queue under-sized and a later same-sized run would
        // grow it mid-flight — on the coordinating thread.
        self.shared.gf.q.lock().expect("queue lock").reserve(n);
        self.shared.sse.q.lock().expect("queue lock").reserve(n);
        self.shared.done.lock().expect("done lock").reserve(n);
        // Admit up to `window` points, then one per completion.
        let admit_now = self.window.min(n);
        for _ in 0..admit_now {
            let slot = self.pending.pop_front().expect("admission within n");
            self.shared.gf.push(slot);
        }
        let mut collected = 0;
        while collected < n {
            let done = {
                let mut q = self.shared.done.lock().expect("done lock");
                loop {
                    if let Some(d) = q.pop_front() {
                        break d;
                    }
                    q = self.shared.done_cv.wait(q).expect("done lock");
                }
            };
            self.scratch[done.idx] = Some(StreamOutcome {
                point: done.point,
                panicked: done.panicked,
            });
            collected += 1;
            if let Some(slot) = self.pending.pop_front() {
                self.shared.gf.push(slot);
            }
        }
        for slot in self.scratch.iter_mut() {
            out.push(slot.take().expect("all outcomes collected"));
        }
    }
}

impl<P: PipelinedPoint> Drop for StreamExecutor<P> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.gf.cv.notify_all();
        self.shared.sse.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn gf_worker<P: PipelinedPoint>(shared: &Shared<P>) {
    while let Some(mut slot) = shared.gf.pop(&shared.stop) {
        let _s = span!("stream_gf_stage");
        trace_add(Counter::SchedTasks, 1);
        let ok = catch_unwind(AssertUnwindSafe(|| slot.point.gf_stage())).is_ok();
        drop(_s);
        if ok {
            shared.sse.push(slot);
        } else {
            trace_add(Counter::SchedPanics, 1);
            shared.finish(Done {
                idx: slot.idx,
                point: slot.point,
                panicked: true,
            });
        }
    }
}

fn sse_worker<P: PipelinedPoint>(shared: &Shared<P>) {
    while let Some(mut slot) = shared.sse.pop(&shared.stop) {
        let _s = span!("stream_sse_stage");
        trace_add(Counter::SchedTasks, 1);
        let verdict = catch_unwind(AssertUnwindSafe(|| slot.point.sse_stage()));
        drop(_s);
        match verdict {
            Ok(true) => shared.gf.push(slot),
            Ok(false) => shared.finish(Done {
                idx: slot.idx,
                point: slot.point,
                panicked: false,
            }),
            Err(_) => {
                trace_add(Counter::SchedPanics, 1);
                shared.finish(Done {
                    idx: slot.idx,
                    point: slot.point,
                    panicked: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A fake point: `rounds` gf+sse rounds, recording stage calls, with
    /// optional panics driven by a deterministic fault plan.
    struct FakePoint {
        id: usize,
        rounds: usize,
        gf_calls: usize,
        sse_calls: usize,
        panic_in_gf: bool,
        panic_in_sse: bool,
        concurrent_peak: Arc<AtomicUsize>,
        in_gf: Arc<AtomicUsize>,
    }

    impl FakePoint {
        fn new(id: usize, rounds: usize) -> FakePoint {
            FakePoint {
                id,
                rounds,
                gf_calls: 0,
                sse_calls: 0,
                panic_in_gf: false,
                panic_in_sse: false,
                concurrent_peak: Arc::new(AtomicUsize::new(0)),
                in_gf: Arc::new(AtomicUsize::new(0)),
            }
        }
    }

    impl PipelinedPoint for FakePoint {
        fn gf_stage(&mut self) {
            if self.panic_in_gf {
                panic!("chaos in gf of point {}", self.id);
            }
            self.gf_calls += 1;
            self.in_gf.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            self.in_gf.fetch_sub(1, Ordering::SeqCst);
        }

        fn sse_stage(&mut self) -> bool {
            if self.panic_in_sse && self.sse_calls + 1 == self.rounds {
                panic!("chaos in sse of point {}", self.id);
            }
            // Record whether some other point is inside its GF stage
            // while this one sits in SSE — the overlap the pipeline
            // exists to create (sampled around the stage's work).
            if self.in_gf.load(Ordering::SeqCst) > 0 {
                self.concurrent_peak.fetch_add(1, Ordering::SeqCst);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            if self.in_gf.load(Ordering::SeqCst) > 0 {
                self.concurrent_peak.fetch_add(1, Ordering::SeqCst);
            }
            self.sse_calls += 1;
            self.sse_calls < self.rounds
        }
    }

    #[test]
    fn all_points_complete_in_order_with_full_rounds() {
        let mut exec = StreamExecutor::new(2);
        let points: Vec<FakePoint> = (0..5).map(|i| FakePoint::new(i, 3)).collect();
        let outcomes = exec.run(points);
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            assert!(!o.panicked);
            assert_eq!(o.point.id, i, "input order preserved");
            assert_eq!(o.point.gf_calls, 3);
            assert_eq!(o.point.sse_calls, 3);
        }
    }

    #[test]
    fn gf_and_sse_stages_actually_overlap() {
        let mut exec = StreamExecutor::new(3);
        let peak = Arc::new(AtomicUsize::new(0));
        let in_gf = Arc::new(AtomicUsize::new(0));
        let points: Vec<FakePoint> = (0..6)
            .map(|i| {
                let mut p = FakePoint::new(i, 4);
                p.concurrent_peak = Arc::clone(&peak);
                p.in_gf = Arc::clone(&in_gf);
                p
            })
            .collect();
        let outcomes = exec.run(points);
        assert!(outcomes.iter().all(|o| !o.panicked));
        assert!(
            peak.load(Ordering::SeqCst) > 0,
            "some SSE stage must observe a concurrent GF stage"
        );
    }

    #[test]
    fn seeded_panics_are_isolated_per_point() {
        // The chaos plan decides per point whether a stage panics; every
        // healthy point must still finish with full rounds.
        let plan = omen_fault::FaultPlan::seeded(7, 0.4);
        let mut exec = StreamExecutor::new(2);
        let points: Vec<FakePoint> = (0..8)
            .map(|i| {
                let mut p = FakePoint::new(i, 2);
                p.panic_in_gf = plan.should_inject(omen_fault::FaultSite::WorkerPanic, i as u64);
                p.panic_in_sse =
                    plan.should_inject(omen_fault::FaultSite::WorkerPanic, 1000 + i as u64);
                p
            })
            .collect();
        let expect_panic: Vec<bool> = points
            .iter()
            .map(|p| p.panic_in_gf || p.panic_in_sse)
            .collect();
        assert!(
            expect_panic.iter().any(|&b| b) && !expect_panic.iter().all(|&b| b),
            "seed 7 at rate 0.4 must poison some but not all of 8 points"
        );
        let outcomes = exec.run(points);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.panicked, expect_panic[i], "point {i}");
            if !o.panicked {
                assert_eq!(o.point.gf_calls, 2);
                assert_eq!(o.point.sse_calls, 2);
            }
        }
        // The executor survives for the next (clean) sweep.
        let outcomes = exec.run((0..3).map(|i| FakePoint::new(i, 1)).collect());
        assert!(outcomes.iter().all(|o| !o.panicked));
    }

    #[test]
    fn run_into_reuses_caller_storage() {
        let mut exec = StreamExecutor::new(2);
        let mut points: Vec<FakePoint> = (0..4).map(|i| FakePoint::new(i, 2)).collect();
        let mut out = Vec::with_capacity(4);
        exec.run_into(&mut points, &mut out);
        assert!(points.is_empty());
        assert_eq!(out.len(), 4);
        // Second sweep through the same storage.
        points.extend((0..4).map(|i| FakePoint::new(10 + i, 1)));
        out.clear();
        exec.run_into(&mut points, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].point.id, 10);
    }
}
