//! The executable task DAG and its worker-pool runtime.
//!
//! A [`TaskDag`] is the runtime form of a lowered SDFG: tasks in
//! schedule order with forward-only dependency edges (producers have
//! smaller indices than consumers, exactly the invariant
//! `omen_dataflow::lower` guarantees). Execution offers two modes:
//!
//! * [`TaskDag::run_inline`] — dependency order on the calling thread,
//!   zero scheduling machinery. This is the mode the liveness-driven
//!   arena ([`crate::arena`]) pairs with for its zero-alloc warm path.
//! * [`TaskDag::run`] — a scoped worker pool draining a lowest-index-
//!   first ready queue. Each task runs under `catch_unwind`: a panic is
//!   isolated (counted in `Counter::SchedPanics`), its dependents are
//!   skipped, every independent task still runs, and the error names
//!   both sets.
//!
//! Determinism of *results* is the caller's job (write into per-task
//! slots, fold in index order — the `DagExecutor` idiom in `omen-core`);
//! determinism of *interleavings* is deliberately absent, and the test
//! suite stresses it with seeded `omen-fault` delays.

use omen_trace::{add as trace_add, Counter};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Deterministic per-task start delays for chaos testing: task `i`
/// sleeps `omen_fault::jitter_ns(seed, i, max_ns)` before running.
#[derive(Clone, Copy, Debug)]
pub struct DelayPlan {
    /// Chaos seed (pure function of `(seed, task)` → delay).
    pub seed: u64,
    /// Exclusive upper bound on the injected delay, nanoseconds.
    pub max_ns: u64,
}

impl DelayPlan {
    fn delay(&self, task: usize) -> std::time::Duration {
        std::time::Duration::from_nanos(omen_fault::jitter_ns(self.seed, task as u64, self.max_ns))
    }
}

/// Why a [`TaskDag::run`] did not complete cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagRunError {
    /// Tasks whose closure panicked (isolated, not propagated).
    pub panicked: Vec<usize>,
    /// Tasks skipped because a (transitive) dependency panicked.
    pub skipped: Vec<usize>,
}

impl std::fmt::Display for DagRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task(s) panicked ({:?}), {} skipped downstream",
            self.panicked.len(),
            self.panicked,
            self.skipped.len()
        )
    }
}

impl std::error::Error for DagRunError {}

/// A task DAG in schedule order: edges always point from a lower index
/// (producer) to a higher one (consumer).
#[derive(Clone, Debug, Default)]
pub struct TaskDag {
    labels: Vec<String>,
    /// Producers each task waits for.
    deps: Vec<Vec<usize>>,
    /// Consumers unblocked when each task completes (derived).
    dependents: Vec<Vec<usize>>,
}

impl TaskDag {
    /// An empty DAG.
    pub fn new() -> TaskDag {
        TaskDag::default()
    }

    /// Appends a task depending on the given earlier tasks, returning
    /// its index.
    ///
    /// # Panics
    /// If any dependency is not an earlier task (forward edges only —
    /// the invariant that makes index order a topological order).
    pub fn add_task(&mut self, label: &str, deps: &[usize]) -> usize {
        let id = self.labels.len();
        for &d in deps {
            assert!(d < id, "task {id} ({label}) depends on non-earlier {d}");
            self.dependents[d].push(id);
        }
        self.labels.push(label.to_string());
        self.deps.push(deps.to_vec());
        self.dependents.push(Vec::new());
        id
    }

    /// Builds the runtime DAG from a lowered SDFG schedule.
    pub fn from_lowered(lowered: &omen_dataflow::LoweredDag) -> TaskDag {
        let mut dag = TaskDag::new();
        for (t, task) in lowered.tasks.iter().enumerate() {
            let deps = lowered.deps_of(t);
            dag.add_task(&task.name, &deps);
        }
        dag
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of task `t`.
    pub fn label(&self, t: usize) -> &str {
        &self.labels[t]
    }

    /// Producers task `t` waits for.
    pub fn deps_of(&self, t: usize) -> &[usize] {
        &self.deps[t]
    }

    /// Runs every task on the calling thread in index (= dependency)
    /// order. No queueing, no locking, no allocation: the companion of
    /// the arena's zero-alloc warm path.
    pub fn run_inline<F: FnMut(usize)>(&self, mut f: F) {
        for t in 0..self.len() {
            trace_add(Counter::SchedTasks, 1);
            f(t);
        }
    }

    /// Runs the DAG on `threads` scoped workers (at least one), honoring
    /// every dependency edge and isolating panics. Tasks become ready
    /// when all producers completed; workers drain the ready set lowest
    /// index first. Returns `Err` when any task panicked; independent
    /// tasks still ran to completion.
    pub fn run<F>(&self, threads: usize, f: F) -> Result<(), DagRunError>
    where
        F: Fn(usize) + Sync,
    {
        self.run_with_delays(threads, None, f)
    }

    /// [`TaskDag::run`] with deterministic chaos delays before each task
    /// (interleaving fuzzing for the ordering proptests).
    pub fn run_with_delays<F>(
        &self,
        threads: usize,
        delays: Option<DelayPlan>,
        f: F,
    ) -> Result<(), DagRunError>
    where
        F: Fn(usize) + Sync,
    {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        let threads = threads.max(1).min(n);
        let sched = Sched {
            state: Mutex::new(SchedState::new(self)),
            ready_cv: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| self.worker(&sched, delays, &f));
            }
        });
        let state = sched.state.into_inner().expect("workers exited cleanly");
        if state.panicked.is_empty() {
            Ok(())
        } else {
            let mut panicked = state.panicked;
            let mut skipped = state.skipped;
            panicked.sort_unstable();
            skipped.sort_unstable();
            Err(DagRunError { panicked, skipped })
        }
    }

    fn worker<F: Fn(usize) + Sync>(&self, sched: &Sched, delays: Option<DelayPlan>, f: &F) {
        loop {
            let task = {
                let mut st = sched.state.lock().expect("scheduler lock");
                loop {
                    if let Some(std::cmp::Reverse(t)) = st.ready.pop() {
                        break t;
                    }
                    if st.settled == self.len() {
                        return;
                    }
                    st = sched.ready_cv.wait(st).expect("scheduler lock");
                }
            };
            if let Some(plan) = delays {
                std::thread::sleep(plan.delay(task));
            }
            trace_add(Counter::SchedTasks, 1);
            let ok = catch_unwind(AssertUnwindSafe(|| f(task))).is_ok();
            if !ok {
                trace_add(Counter::SchedPanics, 1);
            }
            let mut st = sched.state.lock().expect("scheduler lock");
            st.settle(self, task, if ok { Settle::Done } else { Settle::Panicked });
            // Everyone wakes: new ready tasks, or completion.
            sched.ready_cv.notify_all();
        }
    }
}

struct Sched {
    state: Mutex<SchedState>,
    ready_cv: Condvar,
}

enum Settle {
    Done,
    Panicked,
    Skipped,
}

struct SchedState {
    /// Unmet-producer count per task.
    indegree: Vec<usize>,
    /// Min-heap of runnable tasks (lowest index first).
    ready: BinaryHeap<std::cmp::Reverse<usize>>,
    /// Tasks that reached a terminal state (done/panicked/skipped).
    settled: usize,
    /// True for tasks that panicked or were skipped (poisons dependents).
    poisoned: Vec<bool>,
    panicked: Vec<usize>,
    skipped: Vec<usize>,
}

impl SchedState {
    fn new(dag: &TaskDag) -> SchedState {
        let mut st = SchedState {
            indegree: dag.deps.iter().map(Vec::len).collect(),
            ready: BinaryHeap::new(),
            settled: 0,
            poisoned: vec![false; dag.len()],
            panicked: Vec::new(),
            skipped: Vec::new(),
        };
        for (t, &d) in st.indegree.iter().enumerate() {
            if d == 0 {
                st.ready.push(std::cmp::Reverse(t));
            }
        }
        st
    }

    /// Marks `task` terminal and releases (or poisons) its dependents.
    fn settle(&mut self, dag: &TaskDag, task: usize, how: Settle) {
        self.settled += 1;
        match how {
            Settle::Done => {}
            Settle::Panicked => {
                self.poisoned[task] = true;
                self.panicked.push(task);
            }
            Settle::Skipped => {
                self.poisoned[task] = true;
                self.skipped.push(task);
            }
        }
        for &next in &dag.dependents[task] {
            self.indegree[next] -= 1;
            if self.indegree[next] == 0 {
                if dag.deps[next].iter().any(|&d| self.poisoned[d]) {
                    // A producer died: skip transitively, never run.
                    self.settle(dag, next, Settle::Skipped);
                } else {
                    self.ready.push(std::cmp::Reverse(next));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A diamond: 0 → {1, 2} → 3.
    fn diamond() -> TaskDag {
        let mut dag = TaskDag::new();
        let a = dag.add_task("a", &[]);
        let b = dag.add_task("b", &[a]);
        let c = dag.add_task("c", &[a]);
        dag.add_task("d", &[b, c]);
        dag
    }

    #[test]
    fn inline_runs_in_index_order() {
        let dag = diamond();
        let mut order = Vec::new();
        dag.run_inline(|t| order.push(t));
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_run_honors_dependencies() {
        let dag = diamond();
        let done = [(); 4].map(|_| AtomicUsize::new(0));
        let stamp = AtomicUsize::new(0);
        dag.run(4, |t| {
            for &d in dag.deps_of(t) {
                assert!(
                    done[d].load(Ordering::SeqCst) > 0,
                    "task {t} ran before dep {d}"
                );
            }
            done[t].store(1 + stamp.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        })
        .expect("no panics");
        for d in &done {
            assert!(d.load(Ordering::SeqCst) > 0, "every task ran");
        }
    }

    #[test]
    fn panic_is_isolated_and_dependents_skip() {
        let dag = diamond();
        let ran = [(); 4].map(|_| AtomicUsize::new(0));
        let err = dag
            .run(2, |t| {
                ran[t].fetch_add(1, Ordering::SeqCst);
                if t == 1 {
                    panic!("chaos");
                }
            })
            .expect_err("task 1 panicked");
        assert_eq!(err.panicked, vec![1]);
        assert_eq!(err.skipped, vec![3]);
        // The independent sibling still ran; the dependent did not.
        assert_eq!(ran[2].load(Ordering::SeqCst), 1);
        assert_eq!(ran[3].load(Ordering::SeqCst), 0);
    }

    #[test]
    fn from_lowered_simulation_sdfg() {
        let lowered = omen_dataflow::lower_sdfg(&omen_dataflow::simulation_sdfg()).unwrap();
        let dag = TaskDag::from_lowered(&lowered);
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.label(2), "sse_kernel");
        assert_eq!(dag.deps_of(2), &[0, 1]);
        dag.run(2, |_| {}).expect("clean run");
    }

    #[test]
    fn delayed_runs_still_honor_dependencies() {
        let dag = diamond();
        for seed in 0..8 {
            let done = [(); 4].map(|_| AtomicUsize::new(0));
            dag.run_with_delays(
                3,
                Some(DelayPlan {
                    seed,
                    max_ns: 200_000,
                }),
                |t| {
                    for &d in dag.deps_of(t) {
                        assert!(done[d].load(Ordering::SeqCst) == 1);
                    }
                    done[t].store(1, Ordering::SeqCst);
                },
            )
            .expect("no panics");
        }
    }
}
