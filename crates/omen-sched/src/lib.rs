//! # omen-sched
//!
//! The executable half of the data-centric thesis: where
//! `omen-dataflow` *analyzes* the SDFG (symbolic memlet volumes → the
//! paper's communication argument), this crate *runs* it.
//!
//! * [`dag`] — [`TaskDag`]: the runtime DAG lowered from the graph
//!   (tasklets → tasks, memlets → forward dependency edges), executed
//!   inline or on a panic-isolating worker pool.
//! * [`arena`] — memlet liveness intervals drive buffer reservation out
//!   of the `omen-linalg` [`Workspace`](omen_linalg::Workspace) arena:
//!   allocate at first write, release at last read, zero-alloc warm.
//! * [`stream`] — the two-stage GF/SSE pipeline overlapping the GF
//!   phase of sweep point *k+1* with the SSE phase of point *k*
//!   (bounded in-flight window, owned points moving between persistent
//!   workers — the Table 6 streams model, executed).
//! * [`lower`] — binds the lowered tasklet names of the simulation
//!   SDFG to typed per-point work items ([`BoundTask`]) the `omen-core`
//!   driver dispatches onto its `GfSolver`/`SseKernel` entry points.
//!
//! Everything is instrumented through `omen-trace`
//! (`Counter::SchedTasks`/`Counter::SchedPanics`, stage spans), so
//! `omen-perf` can attribute measured overlap against the model.

pub mod arena;
pub mod dag;
pub mod lower;
pub mod stream;

pub use arena::{run_with_arena, ArenaBuffers, BufferPlan};
pub use dag::{DagRunError, DelayPlan, TaskDag};
pub use lower::{lower_iteration, BoundTask, IterationPlan, PlanError};
pub use stream::{PipelinedPoint, StreamExecutor, StreamOutcome};
