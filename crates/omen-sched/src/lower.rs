//! Binding: from a lowered SDFG schedule to typed, grid-expanded tasks.
//!
//! `omen_dataflow::lower` produces *symbolic* tasks — one `TaskSpec`
//! per tasklet, still parameterized by its enclosing map ranges. This
//! module expands those scopes over concrete grid extents and binds the
//! tasklet names of the paper's simulation SDFG to typed work items
//! ([`BoundTask`]): per-`(kz, E)` electron RGF solves, per-`(qz, ω)`
//! phonon solves, and the monolithic SSE update. The driver in
//! `omen-core` maps each [`BoundTask`] onto the real `GfSolver` /
//! `SseKernel` entry points; this crate never touches physics.

use crate::dag::TaskDag;
use omen_dataflow::{lower_sdfg, GraphError, LoweredDag, Sdfg};
use std::fmt;

/// A task bound to a concrete kernel invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundTask {
    /// One electron RGF solve at momentum index `ik`, energy index `ie`.
    GfElectron {
        /// Momentum (kz) grid index.
        ik: usize,
        /// Energy grid index.
        ie: usize,
    },
    /// One phonon RGF solve at momentum index `iq`, frequency index `iw`.
    GfPhonon {
        /// Momentum (qz) grid index.
        iq: usize,
        /// Frequency grid index.
        iw: usize,
    },
    /// The monolithic SSE update (Σ/Π from all G/D) — kept as one task
    /// because only the monolithic kernel is bit-reproducible against
    /// the serial driver (the per-point SSE kernels are 1e-12-accurate,
    /// not bitwise).
    Sse,
}

/// Failure to bind a lowered graph to the runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The graph itself is malformed.
    Graph(GraphError),
    /// A tasklet name has no runtime binding.
    UnboundTasklet(String),
    /// A map iteration variable has no concrete extent.
    UnboundVar {
        /// The tasklet whose scope uses the variable.
        task: String,
        /// The unbound variable.
        var: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Graph(e) => write!(f, "graph error: {e}"),
            PlanError::UnboundTasklet(name) => {
                write!(f, "tasklet \"{name}\" has no runtime binding")
            }
            PlanError::UnboundVar { task, var } => {
                write!(
                    f,
                    "tasklet \"{task}\": no extent bound for map variable \"{var}\""
                )
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PlanError {
    fn from(e: GraphError) -> PlanError {
        PlanError::Graph(e)
    }
}

/// One Born iteration lowered, expanded, and bound: the task DAG the
/// DAG engine executes, with [`BoundTask`] payloads index-aligned to
/// the DAG's tasks, plus the symbolic schedule (for buffer planning).
#[derive(Clone, Debug)]
pub struct IterationPlan {
    /// The runtime DAG (forward edges, schedule order).
    pub dag: TaskDag,
    /// Payload of each DAG task.
    pub tasks: Vec<BoundTask>,
    /// The symbolic schedule the plan was expanded from, with liveness.
    pub lowered: LoweredDag,
}

impl IterationPlan {
    /// Number of GF point tasks (electron + phonon).
    pub fn gf_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| !matches!(t, BoundTask::Sse))
            .count()
    }
}

/// Lowers `sdfg` and expands it over the concrete grids: `nk` momentum
/// points, `ne` energies, `nw` phonon frequencies (phonon momenta share
/// `nk`, as in the driver). Each expanded GF point becomes one DAG
/// task; memlet-derived edges expand all-to-all between the groups they
/// connect, so the SSE task waits on every G/D producer exactly as the
/// write→read memlets dictate.
pub fn lower_iteration(
    sdfg: &Sdfg,
    nk: usize,
    ne: usize,
    nw: usize,
) -> Result<IterationPlan, PlanError> {
    let lowered = lower_sdfg(sdfg)?;
    let extent = |task: &str, var: &str| -> Result<usize, PlanError> {
        match var {
            "kz" | "qz" => Ok(nk),
            "E" => Ok(ne),
            "w" => Ok(nw),
            _ => Err(PlanError::UnboundVar {
                task: task.to_string(),
                var: var.to_string(),
            }),
        }
    };
    // Expand each symbolic task into its instance range.
    let mut instances: Vec<(usize, usize)> = Vec::new(); // (start, count) per symbolic task
    let mut tasks: Vec<BoundTask> = Vec::new();
    for spec in &lowered.tasks {
        let start = tasks.len();
        match spec.name.as_str() {
            // GF tasklets expand over their enclosing point grids: one
            // task per map instance, coordinates row-major over the
            // scope's variables (outermost first).
            "RGF_electrons" | "RGF_phonons" => {
                let mut count = 1usize;
                for m in &spec.maps {
                    for v in &m.vars {
                        count *= extent(&spec.name, v)?;
                    }
                }
                let inner = if spec.name == "RGF_electrons" { ne } else { nw }.max(1);
                for j in 0..count {
                    tasks.push(if spec.name == "RGF_electrons" {
                        BoundTask::GfElectron {
                            ik: j / inner,
                            ie: j % inner,
                        }
                    } else {
                        BoundTask::GfPhonon {
                            iq: j / inner,
                            iw: j % inner,
                        }
                    });
                }
            }
            // The SSE tasklet stays monolithic: its 6-D map runs *inside*
            // the kernel, which is the bit-reproducible unit.
            "sse_kernel" => tasks.push(BoundTask::Sse),
            other => return Err(PlanError::UnboundTasklet(other.to_string())),
        }
        instances.push((start, tasks.len() - start));
    }
    // Expand the symbolic edges all-to-all between instance groups and
    // build the runtime DAG in the same flat order.
    let mut dag = TaskDag::new();
    for (sym, spec) in lowered.tasks.iter().enumerate() {
        let (start, count) = instances[sym];
        let producers: Vec<usize> = lowered
            .deps_of(sym)
            .into_iter()
            .flat_map(|p| {
                let (ps, pc) = instances[p];
                ps..ps + pc
            })
            .collect();
        for j in 0..count {
            debug_assert_eq!(start + j, dag.len());
            dag.add_task(&spec.name, &producers);
        }
    }
    debug_assert_eq!(dag.len(), tasks.len());
    Ok(IterationPlan {
        dag,
        tasks,
        lowered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_dataflow::simulation_sdfg;

    #[test]
    fn simulation_plan_expands_points_and_deps() {
        let (nk, ne, nw) = (2, 5, 3);
        let plan = lower_iteration(&simulation_sdfg(), nk, ne, nw).unwrap();
        // nk·ne electrons + nk·nw phonons + 1 SSE.
        assert_eq!(plan.dag.len(), nk * ne + nk * nw + 1);
        assert_eq!(plan.gf_tasks(), nk * ne + nk * nw);
        // First electron point and its coordinates.
        assert_eq!(plan.tasks[0], BoundTask::GfElectron { ik: 0, ie: 0 });
        assert_eq!(plan.tasks[ne], BoundTask::GfElectron { ik: 1, ie: 0 });
        assert_eq!(plan.tasks[nk * ne], BoundTask::GfPhonon { iq: 0, iw: 0 });
        // The SSE task is last and waits on every GF point.
        let sse = plan.dag.len() - 1;
        assert_eq!(plan.tasks[sse], BoundTask::Sse);
        assert_eq!(plan.dag.deps_of(sse).len(), nk * ne + nk * nw);
        // GF points are mutually independent.
        for t in 0..sse {
            assert!(plan.dag.deps_of(t).is_empty());
        }
        // Liveness survives the expansion for buffer planning.
        assert!(plan.lowered.interval("G").is_some());
    }

    #[test]
    fn unknown_tasklets_are_rejected() {
        let mut sdfg = Sdfg::new("x");
        let mut s = omen_dataflow::State::default();
        s.add_node(omen_dataflow::Node::Tasklet {
            name: "mystery".into(),
        });
        sdfg.add_state(s);
        let err = lower_iteration(&sdfg, 1, 1, 1).expect_err("unbound tasklet");
        assert_eq!(err, PlanError::UnboundTasklet("mystery".into()));
    }
}
