//! Liveness-driven buffer reservation out of the `omen-linalg`
//! [`Workspace`] arena.
//!
//! The lowering's [`DataInterval`]s say exactly when each container
//! must exist: from its first writer to its last reader. A
//! [`BufferPlan`] turns those intervals into per-task acquire/release
//! lists; [`run_with_arena`] walks a [`TaskDag`] inline, checking each
//! buffer out of the workspace at its first write and returning it at
//! its last use — never earlier, never later. Because
//! [`Workspace::take_buf`] is a best-fit reuse pool, the second (warm)
//! walk of the same plan performs no heap allocation at all; the
//! workspace integration test pins that with a counting allocator.

use crate::dag::TaskDag;
use omen_dataflow::{DataInterval, LoweredDag};
use omen_linalg::{Workspace, C64};

/// Per-task buffer reservation schedule derived from liveness.
#[derive(Clone, Debug, Default)]
pub struct BufferPlan {
    /// Container names, one per planned buffer (plan-buffer id order).
    names: Vec<String>,
    /// Element count per planned buffer.
    lens: Vec<usize>,
    /// `acquire[t]` = plan-buffer ids checked out before task `t` runs.
    acquire: Vec<Vec<usize>>,
    /// `release[t]` = plan-buffer ids returned after task `t` finishes.
    release: Vec<Vec<usize>>,
}

impl BufferPlan {
    /// Builds the reservation schedule for a lowered DAG. `size_of`
    /// maps a container name to its element count (the lowering keeps
    /// volumes symbolic; the runtime knows the concrete dims).
    pub fn from_liveness(lowered: &LoweredDag, size_of: impl Fn(&str) -> usize) -> BufferPlan {
        let n = lowered.tasks.len();
        let mut plan = BufferPlan {
            names: Vec::new(),
            lens: Vec::new(),
            acquire: vec![Vec::new(); n],
            release: vec![Vec::new(); n],
        };
        for DataInterval {
            data,
            first_write,
            last_use,
        } in &lowered.liveness
        {
            let id = plan.names.len();
            plan.names.push(data.clone());
            plan.lens.push(size_of(data));
            plan.acquire[*first_write].push(id);
            plan.release[*last_use].push(id);
        }
        plan
    }

    /// Number of planned buffers.
    pub fn buffer_count(&self) -> usize {
        self.names.len()
    }

    /// Container name of plan-buffer `id`.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }
}

/// The live buffers of an in-flight arena walk. Reusable across runs:
/// the slot vector is sized once and kept, so a warm walk performs no
/// allocation on the coordinating thread.
#[derive(Debug, Default)]
pub struct ArenaBuffers {
    slots: Vec<Option<Vec<C64>>>,
}

impl ArenaBuffers {
    /// Slot storage for `plan` (call once, reuse across runs).
    pub fn for_plan(plan: &BufferPlan) -> ArenaBuffers {
        ArenaBuffers {
            slots: (0..plan.buffer_count()).map(|_| None).collect(),
        }
    }

    /// Mutable view of a live buffer by plan-buffer id; `None` outside
    /// its liveness interval.
    pub fn get_mut(&mut self, id: usize) -> Option<&mut [C64]> {
        self.slots.get_mut(id)?.as_deref_mut()
    }

    /// Looks a live buffer up by container name (linear scan — the plan
    /// has a handful of containers, and no allocation is permitted on
    /// the warm path).
    pub fn by_name_mut<'a>(&'a mut self, plan: &BufferPlan, name: &str) -> Option<&'a mut [C64]> {
        let id = plan.names.iter().position(|n| n == name)?;
        self.get_mut(id)
    }
}

/// Walks `dag` inline (dependency = index order), reserving buffers out
/// of `ws` per `plan`: acquired zeroed before each task's first write,
/// released after its last use. The task closure sees exactly the
/// buffers that are live at its position.
///
/// # Panics
/// If `plan` and `dag` disagree on task count, or `bufs` was built for
/// a different plan.
pub fn run_with_arena(
    dag: &TaskDag,
    plan: &BufferPlan,
    ws: &mut Workspace,
    bufs: &mut ArenaBuffers,
    mut f: impl FnMut(usize, &mut ArenaBuffers),
) {
    assert_eq!(plan.acquire.len(), dag.len(), "plan built for another DAG");
    assert_eq!(
        bufs.slots.len(),
        plan.buffer_count(),
        "buffers built for another plan"
    );
    dag.run_inline(|t| {
        for &id in &plan.acquire[t] {
            bufs.slots[id] = Some(ws.take_buf(plan.lens[id]));
        }
        f(t, bufs);
        for &id in &plan.release[t] {
            let buf = bufs.slots[id].take().expect("released buffer was live");
            ws.give_buf(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_dataflow::{lower_sdfg, simulation_sdfg};

    fn plan_for_sim() -> (TaskDag, BufferPlan) {
        let lowered = lower_sdfg(&simulation_sdfg()).unwrap();
        let dag = TaskDag::from_lowered(&lowered);
        let plan = BufferPlan::from_liveness(&lowered, |name| match name {
            "G" => 64,
            "D" => 32,
            "Sigma" => 64,
            "Pi" => 32,
            other => panic!("unplanned container {other}"),
        });
        (dag, plan)
    }

    #[test]
    fn buffers_live_exactly_their_intervals() {
        let (dag, plan) = plan_for_sim();
        let mut ws = Workspace::new();
        let mut bufs = ArenaBuffers::for_plan(&plan);
        run_with_arena(&dag, &plan, &mut ws, &mut bufs, |t, bufs| match t {
            // Electron solve: G just allocated, D/Sigma not yet live.
            0 => {
                assert!(bufs.by_name_mut(&plan, "G").is_some());
                assert!(bufs.by_name_mut(&plan, "D").is_none());
                assert!(bufs.by_name_mut(&plan, "Sigma").is_none());
            }
            // Phonon solve: G still live (SSE reads it later), D live.
            1 => {
                assert!(bufs.by_name_mut(&plan, "G").is_some());
                assert!(bufs.by_name_mut(&plan, "D").is_some());
            }
            // SSE: everything live; outputs were just acquired zeroed.
            2 => {
                for name in ["G", "D", "Sigma", "Pi"] {
                    let buf = bufs.by_name_mut(&plan, name).expect("live at SSE");
                    assert!(buf.iter().all(|v| *v == C64::ZERO) || name == "G" || name == "D");
                }
            }
            _ => unreachable!(),
        });
        // Everything was released back to the pool.
        assert!(bufs.slots.iter().all(Option::is_none));
        assert!(ws.pooled_bytes() >= (64 + 32 + 64 + 32) * 16);
    }

    #[test]
    fn warm_walk_reuses_pooled_buffers() {
        let (dag, plan) = plan_for_sim();
        let mut ws = Workspace::new();
        let mut bufs = ArenaBuffers::for_plan(&plan);
        run_with_arena(&dag, &plan, &mut ws, &mut bufs, |_, _| {});
        let pooled = ws.pooled_bytes();
        run_with_arena(&dag, &plan, &mut ws, &mut bufs, |_, _| {});
        // The pool neither grew nor shrank: every warm take was a reuse.
        assert_eq!(ws.pooled_bytes(), pooled);
    }
}
