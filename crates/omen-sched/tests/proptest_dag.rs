//! Property-based tests for the task-DAG runtime: any valid lowered DAG
//! (forward-only edges), executed on any worker count under seeded
//! chaos delays, must run every task exactly once and never run a
//! consumer before its producers — the memlet-dependency contract the
//! scheduler owes the lowered SDFG. Panic isolation must likewise hold
//! for an arbitrary victim: exactly the transitive dependents skip.

use omen_sched::{DelayPlan, TaskDag};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maximum tasks per generated DAG (edges are drawn from a u64 bitmask
/// over earlier tasks, so this must stay ≤ 64).
const MAX_TASKS: usize = 16;

/// Builds a valid DAG from `n` tasks and per-task edge bitmasks: task
/// `i` depends on each earlier task `d` whose bit is set in `bits[i]`.
/// Forward-only by construction — exactly the invariant
/// `omen_dataflow::lower` guarantees the scheduler.
fn build_dag(n: usize, bits: &[u64]) -> TaskDag {
    let mut dag = TaskDag::new();
    for (i, b) in bits.iter().enumerate().take(n) {
        let deps: Vec<usize> = (0..i).filter(|d| (b >> d) & 1 == 1).collect();
        dag.add_task("t", &deps);
    }
    dag
}

/// Transitive dependents of `victim` (the tasks a panic must poison).
fn descendants(dag: &TaskDag, victim: usize) -> Vec<usize> {
    let mut poisoned = vec![false; dag.len()];
    poisoned[victim] = true;
    for t in victim + 1..dag.len() {
        if dag.deps_of(t).iter().any(|&d| poisoned[d]) {
            poisoned[t] = true;
        }
    }
    (0..dag.len())
        .filter(|&t| t != victim && poisoned[t])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn execution_respects_memlet_dependencies(
        n in 1usize..MAX_TASKS,
        bits in proptest::collection::vec(0u64..u64::MAX, MAX_TASKS),
        threads in 1usize..5,
        seed in 0u64..1_000_000,
        max_ns in 0u64..80_000,
    ) {
        let dag = build_dag(n, &bits);
        let runs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let order_violations = AtomicUsize::new(0);
        dag.run_with_delays(threads, Some(DelayPlan { seed, max_ns }), |t| {
            for &d in dag.deps_of(t) {
                if runs[d].load(Ordering::SeqCst) == 0 {
                    order_violations.fetch_add(1, Ordering::SeqCst);
                }
            }
            runs[t].fetch_add(1, Ordering::SeqCst);
        }).expect("no panics injected");
        prop_assert_eq!(order_violations.load(Ordering::SeqCst), 0);
        for (t, r) in runs.iter().enumerate() {
            prop_assert_eq!(r.load(Ordering::SeqCst), 1, "task {} run count", t);
        }
    }

    #[test]
    fn panic_poisons_exactly_the_transitive_dependents(
        n in 2usize..MAX_TASKS,
        bits in proptest::collection::vec(0u64..u64::MAX, MAX_TASKS),
        threads in 1usize..5,
        victim_pick in 0usize..1_000,
        seed in 0u64..1_000_000,
    ) {
        let dag = build_dag(n, &bits);
        let victim = victim_pick % n;
        let runs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let err = dag
            .run_with_delays(threads, Some(DelayPlan { seed, max_ns: 20_000 }), |t| {
                runs[t].fetch_add(1, Ordering::SeqCst);
                if t == victim {
                    panic!("chaos");
                }
            })
            .expect_err("the victim panicked");
        prop_assert_eq!(err.panicked, vec![victim]);
        prop_assert_eq!(err.skipped, descendants(&dag, victim));
        // Skipped tasks never ran; every task outside the poisoned cone
        // ran exactly once despite the failure.
        let poisoned = descendants(&dag, victim);
        for (t, r) in runs.iter().enumerate() {
            let expected = if poisoned.contains(&t) { 0 } else { 1 };
            prop_assert_eq!(r.load(Ordering::SeqCst), expected, "task {} run count", t);
        }
    }
}
