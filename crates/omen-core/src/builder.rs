//! Validated simulation construction: [`SimulationConfig`],
//! [`SimulationBuilder`], and [`ConfigError`].
//!
//! Bare struct literals made it possible to hand the driver configurations
//! that panic deep inside grid or solver code (`ne = 0`, inverted energy
//! windows, mixing factors outside `(0, 1]`, …). Construction now goes
//! through [`SimulationBuilder::build`] (or [`Simulation::new`], which
//! validates the same way) and every invalid input surfaces as a typed
//! [`ConfigError`] instead of a panic.
//!
//! [`Simulation::new`]: crate::driver::Simulation::new

use crate::executor::ExecutorKind;
use omen_comm::{grid_for_ranks, CommPlan};
use omen_device::DeviceConfig;
use omen_linalg::Normalization;
use omen_rgf::CacheMode;
use omen_sse::{MixedConfig, MixedKernel, ReferenceKernel, SseKernel, TransformedKernel};

/// Which SSE kernel the simulation runs (§5.3–5.4 / Table 10 / Fig. 7).
///
/// This is the enum-shaped convenience selector kept on the config; the
/// driver dispatches through the [`SseKernel`] trait, and custom kernels
/// plug in via [`crate::driver::Simulation::set_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelVariant {
    /// OMEN-style reference loops.
    Reference,
    /// DaCe-transformed kernel.
    Transformed,
    /// Mixed-precision (binary16) kernel with the given normalization.
    Mixed(Normalization),
}

impl KernelVariant {
    /// Constructs the trait-object kernel this variant names.
    pub fn to_kernel(self) -> Box<dyn SseKernel> {
        match self {
            KernelVariant::Reference => Box::new(ReferenceKernel::new()),
            KernelVariant::Transformed => Box::new(TransformedKernel::new()),
            KernelVariant::Mixed(normalization) => {
                Box::new(MixedKernel::new(MixedConfig { normalization }))
            }
        }
    }
}

/// Full configuration of a simulation.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Device geometry/material.
    pub device: DeviceConfig,
    /// Momentum points (`Nkz = Nqz`).
    pub nk: usize,
    /// Energy points (`NE`).
    pub ne: usize,
    /// Phonon frequency points (`Nω`).
    pub nw: usize,
    /// Energy window (eV).
    pub e_min: f64,
    /// Upper edge of the energy window (eV).
    pub e_max: f64,
    /// Source chemical potential (eV).
    pub mu_source: f64,
    /// Drain chemical potential (eV); `Vds = mu_source − mu_drain`.
    pub mu_drain: f64,
    /// Contact temperature `k_B·T` (eV).
    pub kt: f64,
    /// Electron-phonon coupling strength (dimensionless prefactor).
    pub coupling: f64,
    /// Born iteration cap.
    pub max_iterations: usize,
    /// Relative current-change convergence threshold.
    pub tolerance: f64,
    /// Linear mixing factor on the self-energies (1 = no damping).
    pub mixing: f64,
    /// SSE kernel.
    pub kernel: KernelVariant,
    /// GF-phase point executor.
    pub executor: ExecutorKind,
    /// SSE communication scheme used by [`ExecutorKind::Distributed`]
    /// (ignored by every other executor): OMEN's round-based replication
    /// or the data-centric `Alltoallv` redistribution.
    pub comm_plan: CommPlan,
    /// GF-phase caching policy (§7.1.2).
    pub cache_mode: CacheMode,
    /// Electron broadening (eV).
    pub eta: f64,
    /// Phonon broadening (energy units).
    pub eta_ph: f64,
    /// Potential ramp `(x_on, x_off)` as fractions of the device length.
    pub ramp: (f64, f64),
    /// When `true`, [`Simulation::run`] returns
    /// [`DriverError::Unconverged`] if the iteration cap is reached
    /// before the tolerance is met (the default `false` keeps the
    /// legacy best-effort behavior: the cap is a budget, not a promise).
    ///
    /// [`Simulation::run`]: crate::driver::Simulation::run
    /// [`DriverError::Unconverged`]: crate::driver::DriverError::Unconverged
    pub require_convergence: bool,
    /// Warm-start divergence watchdog: after this many Born iterations a
    /// *seeded* run whose relative current change still exceeds
    /// [`SimulationConfig::warm_divergence_threshold`] fails with
    /// [`DriverError::WarmDiverged`], so the caller can quarantine the
    /// donor and restart cold. `0` disables the check (the default).
    ///
    /// [`DriverError::WarmDiverged`]: crate::driver::DriverError::WarmDiverged
    pub warm_divergence_after: usize,
    /// Relative-change bound the watchdog compares against. A healthy
    /// warm start contracts geometrically from the first iteration; a
    /// poisoned donor keeps the current swinging by O(1) factors.
    pub warm_divergence_threshold: f64,
}

impl SimulationConfig {
    /// A stable laptop-scale configuration on the `tiny` device.
    pub fn tiny() -> SimulationConfig {
        SimulationConfig {
            device: DeviceConfig::tiny(),
            nk: 2,
            ne: 24,
            nw: 2,
            e_min: -1.2,
            e_max: 1.2,
            mu_source: 0.3,
            mu_drain: 0.0,
            kt: 0.025,
            coupling: 0.005,
            max_iterations: 12,
            tolerance: 1e-4,
            mixing: 0.6,
            kernel: KernelVariant::Transformed,
            executor: ExecutorKind::default(),
            comm_plan: CommPlan::Omen,
            cache_mode: CacheMode::CacheBcSpec,
            eta: 1e-5,
            eta_ph: 2e-5,
            ramp: (0.3, 0.7),
            require_convergence: false,
            warm_divergence_after: 0,
            warm_divergence_threshold: 10.0,
        }
    }

    /// The electro-thermal demonstrator (Fig. 11 scale-down).
    pub fn demo() -> SimulationConfig {
        SimulationConfig {
            device: DeviceConfig::demo(),
            nk: 3,
            ne: 48,
            nw: 3,
            ..SimulationConfig::tiny()
        }
    }

    /// A builder seeded with this configuration.
    pub fn into_builder(self) -> SimulationBuilder {
        SimulationBuilder { config: self }
    }

    /// A builder seeded with [`SimulationConfig::tiny`].
    pub fn builder() -> SimulationBuilder {
        SimulationConfig::tiny().into_builder()
    }

    /// Checks every invariant the driver relies on.
    ///
    /// Comparisons are written in negated form (`!(x > 0.0)`) on purpose:
    /// NaN fails every ordering, so the negation rejects NaN inputs too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), ConfigError> {
        let dev = &self.device;
        if dev.nx == 0 || dev.ny == 0 || dev.norb == 0 {
            return Err(ConfigError::EmptyDevice {
                nx: dev.nx,
                ny: dev.ny,
                norb: dev.norb,
            });
        }
        if dev.cols_per_slab == 0 || dev.nx / dev.cols_per_slab < 2 {
            return Err(ConfigError::TooFewSlabs {
                nx: dev.nx,
                cols_per_slab: dev.cols_per_slab,
            });
        }
        if self.nk == 0 {
            return Err(ConfigError::EmptyGrid { grid: "nk" });
        }
        if self.ne < 2 {
            return Err(ConfigError::EmptyGrid { grid: "ne" });
        }
        if self.nw == 0 {
            return Err(ConfigError::EmptyGrid { grid: "nw" });
        }
        if self.ne <= self.nw {
            return Err(ConfigError::StencilTooWide {
                ne: self.ne,
                nw: self.nw,
            });
        }
        if !(self.e_min < self.e_max) {
            return Err(ConfigError::EmptyEnergyWindow {
                e_min: self.e_min,
                e_max: self.e_max,
            });
        }
        if !(self.mixing > 0.0 && self.mixing <= 1.0) {
            return Err(ConfigError::InvalidMixing {
                mixing: self.mixing,
            });
        }
        if self.max_iterations == 0 {
            return Err(ConfigError::NoIterations);
        }
        if !(self.tolerance > 0.0) || !self.tolerance.is_finite() {
            return Err(ConfigError::InvalidTolerance {
                tolerance: self.tolerance,
            });
        }
        if !(self.kt > 0.0) {
            return Err(ConfigError::InvalidTemperature { kt: self.kt });
        }
        if !(self.coupling >= 0.0) {
            return Err(ConfigError::InvalidCoupling {
                coupling: self.coupling,
            });
        }
        if !(self.eta > 0.0) || !(self.eta_ph > 0.0) {
            return Err(ConfigError::InvalidBroadening {
                eta: self.eta,
                eta_ph: self.eta_ph,
            });
        }
        let (on, off) = self.ramp;
        if !(0.0 <= on && on < off && off <= 1.0) {
            return Err(ConfigError::InvalidRamp { on, off });
        }
        if let ExecutorKind::Partitioned { ranks: 0 } = self.executor {
            return Err(ConfigError::NoRanks);
        }
        if let ExecutorKind::Distributed { ranks } = self.executor {
            if ranks == 0 {
                return Err(ConfigError::NoRanks);
            }
            if grid_for_ranks(self.nk, self.ne, ranks).is_none() {
                return Err(ConfigError::RanksDontFit {
                    ranks,
                    nk: self.nk,
                    ne: self.ne,
                });
            }
        }
        if !(self.warm_divergence_threshold > 0.0) || !self.warm_divergence_threshold.is_finite() {
            return Err(ConfigError::InvalidDivergenceBound {
                threshold: self.warm_divergence_threshold,
            });
        }
        Ok(())
    }
}

/// Rejected configurations, by invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Device has a zero dimension.
    EmptyDevice {
        /// Columns along transport.
        nx: usize,
        /// Rows across the fin.
        ny: usize,
        /// Orbitals per atom.
        norb: usize,
    },
    /// Fewer than two RGF slabs (boundary blocks need two).
    TooFewSlabs {
        /// Columns along transport.
        nx: usize,
        /// Columns per slab.
        cols_per_slab: usize,
    },
    /// A point grid is empty (or, for `ne`, below the two-point minimum).
    EmptyGrid {
        /// Which grid (`"nk"`, `"ne"`, `"nw"`).
        grid: &'static str,
    },
    /// The `E ± ℏω` stencil radius `nw` does not fit in `ne` points.
    StencilTooWide {
        /// Energy points.
        ne: usize,
        /// Frequency points (stencil radius).
        nw: usize,
    },
    /// `e_min < e_max` violated.
    EmptyEnergyWindow {
        /// Lower edge (eV).
        e_min: f64,
        /// Upper edge (eV).
        e_max: f64,
    },
    /// Mixing factor outside `(0, 1]`.
    InvalidMixing {
        /// Offending value.
        mixing: f64,
    },
    /// `max_iterations == 0`.
    NoIterations,
    /// Convergence tolerance not a positive finite number.
    InvalidTolerance {
        /// Offending value.
        tolerance: f64,
    },
    /// Contact temperature not positive.
    InvalidTemperature {
        /// Offending value (eV).
        kt: f64,
    },
    /// Negative (or NaN) electron-phonon coupling.
    InvalidCoupling {
        /// Offending value.
        coupling: f64,
    },
    /// Non-positive broadening would put poles on the real axis.
    InvalidBroadening {
        /// Electron broadening (eV).
        eta: f64,
        /// Phonon broadening.
        eta_ph: f64,
    },
    /// Potential ramp not `0 ≤ on < off ≤ 1`.
    InvalidRamp {
        /// Ramp start (fraction).
        on: f64,
        /// Ramp end (fraction).
        off: f64,
    },
    /// Rank-decomposed executor with zero ranks.
    NoRanks,
    /// No `gk × ge` process grid with exactly `ranks` ranks fits the
    /// `nk × ne` point set (e.g. a prime rank count exceeding both).
    RanksDontFit {
        /// Requested rank count.
        ranks: usize,
        /// Momentum points.
        nk: usize,
        /// Energy points.
        ne: usize,
    },
    /// Warm-divergence threshold not a positive finite number.
    InvalidDivergenceBound {
        /// Offending value.
        threshold: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyDevice { nx, ny, norb } => write!(
                f,
                "device has a zero dimension (nx = {nx}, ny = {ny}, norb = {norb})"
            ),
            ConfigError::TooFewSlabs { nx, cols_per_slab } => write!(
                f,
                "need at least 2 transport slabs: nx = {nx}, cols_per_slab = {cols_per_slab}"
            ),
            ConfigError::EmptyGrid { grid } => {
                write!(f, "point grid `{grid}` is empty (ne needs ≥ 2 points)")
            }
            ConfigError::StencilTooWide { ne, nw } => write!(
                f,
                "energy window must exceed the phonon stencil radius: ne = {ne} ≤ nw = {nw}"
            ),
            ConfigError::EmptyEnergyWindow { e_min, e_max } => {
                write!(f, "empty energy window: e_min = {e_min} ≥ e_max = {e_max}")
            }
            ConfigError::InvalidMixing { mixing } => {
                write!(f, "mixing factor must satisfy 0 < mixing ≤ 1, got {mixing}")
            }
            ConfigError::NoIterations => write!(f, "max_iterations must be ≥ 1"),
            ConfigError::InvalidTolerance { tolerance } => {
                write!(f, "tolerance must be positive and finite, got {tolerance}")
            }
            ConfigError::InvalidTemperature { kt } => {
                write!(f, "contact temperature must be positive, got kt = {kt} eV")
            }
            ConfigError::InvalidCoupling { coupling } => {
                write!(f, "electron-phonon coupling must be ≥ 0, got {coupling}")
            }
            ConfigError::InvalidBroadening { eta, eta_ph } => write!(
                f,
                "broadenings must be positive: eta = {eta}, eta_ph = {eta_ph}"
            ),
            ConfigError::InvalidRamp { on, off } => write!(
                f,
                "potential ramp must satisfy 0 ≤ on < off ≤ 1, got ({on}, {off})"
            ),
            ConfigError::NoRanks => write!(f, "rank-decomposed executor needs ≥ 1 rank"),
            ConfigError::RanksDontFit { ranks, nk, ne } => {
                write!(f, "no {ranks}-rank process grid fits nk = {nk}, ne = {ne}")
            }
            ConfigError::InvalidDivergenceBound { threshold } => write!(
                f,
                "warm-divergence threshold must be positive and finite, got {threshold}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validated construction of a [`crate::driver::Simulation`].
///
/// ```
/// use omen_core::{ExecutorKind, KernelVariant, SimulationConfig};
///
/// let sim = SimulationConfig::builder()
///     .nk(2)
///     .ne(24)
///     .bias(0.3, 0.0)
///     .kernel(KernelVariant::Transformed)
///     .executor(ExecutorKind::Rayon { threads: 0 })
///     .build()
///     .expect("valid configuration");
/// assert_eq!(sim.config().nk, 2);
/// ```
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    config: SimulationConfig,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationConfig::builder()
    }
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        }
    };
}

impl SimulationBuilder {
    setter!(
        /// Sets the device geometry/material.
        device: DeviceConfig
    );
    setter!(
        /// Sets the momentum point count (`Nkz = Nqz`).
        nk: usize
    );
    setter!(
        /// Sets the energy point count (`NE`).
        ne: usize
    );
    setter!(
        /// Sets the phonon frequency point count (`Nω`).
        nw: usize
    );
    setter!(
        /// Sets the contact temperature `k_B·T` (eV).
        kt: f64
    );
    setter!(
        /// Sets the electron-phonon coupling prefactor.
        coupling: f64
    );
    setter!(
        /// Sets the Born iteration cap.
        max_iterations: usize
    );
    setter!(
        /// Sets the relative convergence threshold on the current.
        tolerance: f64
    );
    setter!(
        /// Sets the linear self-energy mixing factor (1 = no damping).
        mixing: f64
    );
    setter!(
        /// Selects the SSE kernel.
        kernel: KernelVariant
    );
    setter!(
        /// Selects the GF-phase point executor.
        executor: ExecutorKind
    );
    setter!(
        /// Selects the SSE communication scheme for
        /// [`ExecutorKind::Distributed`].
        comm_plan: CommPlan
    );
    setter!(
        /// Selects the GF-phase caching policy.
        cache_mode: CacheMode
    );
    setter!(
        /// Sets the electron broadening `η` (eV).
        eta: f64
    );
    setter!(
        /// Sets the phonon broadening (energy units).
        eta_ph: f64
    );
    setter!(
        /// Makes [`crate::driver::Simulation::run`] fail with a typed
        /// error when the iteration cap is hit before convergence.
        require_convergence: bool
    );

    /// Arms the warm-start divergence watchdog: a seeded run whose
    /// relative current change still exceeds `threshold` after `after`
    /// Born iterations fails with
    /// [`crate::driver::DriverError::WarmDiverged`]. `after = 0`
    /// disables the check.
    pub fn warm_divergence(mut self, after: usize, threshold: f64) -> Self {
        self.config.warm_divergence_after = after;
        self.config.warm_divergence_threshold = threshold;
        self
    }

    /// Sets the energy window `[e_min, e_max]` (eV).
    pub fn energy_window(mut self, e_min: f64, e_max: f64) -> Self {
        self.config.e_min = e_min;
        self.config.e_max = e_max;
        self
    }

    /// Sets the contact chemical potentials (eV);
    /// `Vds = mu_source − mu_drain`.
    pub fn bias(mut self, mu_source: f64, mu_drain: f64) -> Self {
        self.config.mu_source = mu_source;
        self.config.mu_drain = mu_drain;
        self
    }

    /// Sets the potential ramp window as fractions of the device length.
    pub fn ramp(mut self, on: f64, off: f64) -> Self {
        self.config.ramp = (on, off);
        self
    }

    /// The configuration as currently assembled (not yet validated).
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Validates without building.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.config.validate()
    }

    /// Validates and builds the simulation (device assembly included).
    pub fn build(self) -> Result<crate::driver::Simulation, ConfigError> {
        crate::driver::Simulation::new(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        SimulationConfig::tiny().validate().expect("tiny valid");
        SimulationConfig::demo().validate().expect("demo valid");
    }

    #[test]
    fn builder_round_trips_fields() {
        let b = SimulationConfig::builder()
            .nk(3)
            .ne(30)
            .nw(2)
            .energy_window(-0.9, 0.9)
            .bias(0.25, -0.05)
            .mixing(0.5)
            .executor(ExecutorKind::Serial);
        let cfg = b.config();
        assert_eq!(cfg.nk, 3);
        assert_eq!(cfg.ne, 30);
        assert_eq!((cfg.e_min, cfg.e_max), (-0.9, 0.9));
        assert_eq!((cfg.mu_source, cfg.mu_drain), (0.25, -0.05));
        assert_eq!(cfg.executor, ExecutorKind::Serial);
        b.validate().expect("assembled config valid");
    }

    /// Every invalid-config class maps to its own descriptive error.
    #[test]
    fn each_invalid_class_rejected() {
        let check = |mutate: &dyn Fn(&mut SimulationConfig), want: fn(&ConfigError) -> bool| {
            let mut cfg = SimulationConfig::tiny();
            mutate(&mut cfg);
            let err = cfg.validate().expect_err("must be rejected");
            assert!(want(&err), "wrong error class: {err:?}");
            // Display is populated (descriptive, non-empty).
            assert!(!err.to_string().is_empty());
        };
        check(&|c| c.device.nx = 0, |e| {
            matches!(e, ConfigError::EmptyDevice { .. })
        });
        check(&|c| c.device.cols_per_slab = c.device.nx, |e| {
            matches!(e, ConfigError::TooFewSlabs { .. })
        });
        check(&|c| c.nk = 0, |e| {
            matches!(e, ConfigError::EmptyGrid { grid: "nk" })
        });
        check(&|c| c.ne = 1, |e| {
            matches!(e, ConfigError::EmptyGrid { grid: "ne" })
        });
        check(&|c| c.nw = 0, |e| {
            matches!(e, ConfigError::EmptyGrid { grid: "nw" })
        });
        check(&|c| c.nw = c.ne, |e| {
            matches!(e, ConfigError::StencilTooWide { .. })
        });
        check(&|c| c.e_max = c.e_min, |e| {
            matches!(e, ConfigError::EmptyEnergyWindow { .. })
        });
        check(&|c| c.mixing = 0.0, |e| {
            matches!(e, ConfigError::InvalidMixing { .. })
        });
        check(&|c| c.mixing = 1.5, |e| {
            matches!(e, ConfigError::InvalidMixing { .. })
        });
        check(&|c| c.max_iterations = 0, |e| {
            matches!(e, ConfigError::NoIterations)
        });
        check(&|c| c.tolerance = -1e-4, |e| {
            matches!(e, ConfigError::InvalidTolerance { .. })
        });
        check(&|c| c.tolerance = f64::NAN, |e| {
            matches!(e, ConfigError::InvalidTolerance { .. })
        });
        check(&|c| c.kt = 0.0, |e| {
            matches!(e, ConfigError::InvalidTemperature { .. })
        });
        check(&|c| c.coupling = -0.1, |e| {
            matches!(e, ConfigError::InvalidCoupling { .. })
        });
        check(&|c| c.eta = 0.0, |e| {
            matches!(e, ConfigError::InvalidBroadening { .. })
        });
        check(&|c| c.ramp = (0.7, 0.3), |e| {
            matches!(e, ConfigError::InvalidRamp { .. })
        });
        check(
            &|c| c.executor = ExecutorKind::Partitioned { ranks: 0 },
            |e| matches!(e, ConfigError::NoRanks),
        );
        check(
            &|c| c.executor = ExecutorKind::Distributed { ranks: 0 },
            |e| matches!(e, ConfigError::NoRanks),
        );
        // tiny() has nk = 2, ne = 24: 49 ranks admits no grid (49 = 7²,
        // gk ∈ {1}, ge = 49 > 24).
        check(
            &|c| c.executor = ExecutorKind::Distributed { ranks: 49 },
            |e| matches!(e, ConfigError::RanksDontFit { .. }),
        );
        check(&|c| c.warm_divergence_threshold = f64::NAN, |e| {
            matches!(e, ConfigError::InvalidDivergenceBound { .. })
        });
        check(&|c| c.warm_divergence_threshold = 0.0, |e| {
            matches!(e, ConfigError::InvalidDivergenceBound { .. })
        });
    }

    #[test]
    fn build_surfaces_errors_without_panicking() {
        match SimulationConfig::builder().ne(0).build() {
            Err(err) => assert!(matches!(err, ConfigError::EmptyGrid { grid: "ne" })),
            Ok(_) => panic!("ne = 0 must be rejected"),
        }
    }

    #[test]
    fn kernel_variant_constructs_matching_trait_objects() {
        assert_eq!(KernelVariant::Reference.to_kernel().name(), "reference");
        assert_eq!(KernelVariant::Transformed.to_kernel().name(), "transformed");
        assert_eq!(
            KernelVariant::Mixed(Normalization::PerTensor)
                .to_kernel()
                .name(),
            "mixed-f16"
        );
    }
}
