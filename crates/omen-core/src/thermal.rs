//! Temperature extraction and the electro-thermal report — the quantities
//! of Fig. 1(d) and Fig. 11.
//!
//! The atomically-resolved temperature is defined by Bose-matching: the
//! local phonon energy density `u_a = Σ_ω ω·n_a(ω)` (from `D^<`) is
//! compared against the equilibrium curve `u_eq(T) = Σ_ω ω·n_B(ω,T)·ρ_a(ω)`
//! built from the local phonon DOS, and `T_a` solves `u_eq(T_a) = u_a` by
//! bisection. In equilibrium this returns the contact temperature exactly;
//! under bias, Joule heating raises it in the channel.

use crate::driver::{Simulation, SimulationResult, SpectralData};
use omen_rgf::bose;

/// Boltzmann constant in eV/K.
pub const KB_EV_PER_K: f64 = 8.617333262e-5;

/// Equilibrium phonon energy density of one atom at temperature `kt`,
/// using its local DOS `ρ(ω_m)` and the frequency-integration weight.
pub fn equilibrium_energy(dos: &[f64], omegas: &[f64], kt: f64, freq_weight: f64) -> f64 {
    dos.iter()
        .zip(omegas)
        .map(|(&rho, &w)| w * bose(w, kt) * rho * freq_weight)
        .sum()
}

/// Solves `u_eq(kT) = u` for `kT` (eV) by bisection on `[kt_lo, kt_hi]`.
/// `u_eq` is monotone in `kT`, so the root is unique; out-of-range values
/// clamp to the bracket edges.
pub fn fit_temperature(
    u: f64,
    dos: &[f64],
    omegas: &[f64],
    freq_weight: f64,
    kt_lo: f64,
    kt_hi: f64,
) -> f64 {
    let f = |kt: f64| equilibrium_energy(dos, omegas, kt, freq_weight);
    if u <= f(kt_lo) {
        return kt_lo;
    }
    if u >= f(kt_hi) {
        return kt_hi;
    }
    let (mut lo, mut hi) = (kt_lo, kt_hi);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < u {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The assembled electro-thermal observables of Fig. 11.
#[derive(Clone, Debug)]
pub struct ElectroThermalReport {
    /// Interface x positions (nm).
    pub x: Vec<f64>,
    /// Electrical current per interface.
    pub current_profile: Vec<f64>,
    /// Electron energy current per interface (Fig. 11 left, dashed blue).
    pub electron_energy_current: Vec<f64>,
    /// Phonon energy current per interface (dash-dotted green).
    pub phonon_energy_current: Vec<f64>,
    /// Their sum (solid red — constant when energy is conserved).
    pub total_energy_current: Vec<f64>,
    /// Energy-resolved current spectrum `j(E, interface)` (middle panel).
    pub spectral_current: Vec<Vec<f64>>,
    /// Per-atom temperature (K) — the Fig. 1(d) map.
    pub temperature_per_atom: Vec<f64>,
    /// Per-slab average temperature (K) along x.
    pub temperature_profile: Vec<f64>,
    /// Contact temperature (K).
    pub contact_temperature: f64,
}

impl ElectroThermalReport {
    /// Peak lattice temperature (K).
    pub fn t_max(&self) -> f64 {
        self.temperature_per_atom
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Relative flatness of the total energy current — the paper's energy
    /// conservation check ("as their sum is constant … energy is
    /// conserved").
    pub fn energy_conservation_error(&self) -> f64 {
        let t = &self.total_energy_current;
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        if mean.abs() < 1e-300 {
            return 0.0;
        }
        t.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max) / mean.abs()
    }
}

/// Builds the electro-thermal report from a finished simulation.
pub fn electro_thermal_report(sim: &Simulation, result: &SimulationResult) -> ElectroThermalReport {
    let spec: &SpectralData = &result.spectral;
    let dev = &sim.device;
    let omegas = sim.fgrid.values();
    let fw = sim.fgrid.weight();
    let kt0 = sim.config().kt;

    // Per-atom temperatures by Bose matching.
    let na = dev.num_atoms();
    let mut t_atom = Vec::with_capacity(na);
    for a in 0..na {
        let dos: Vec<f64> = (0..omegas.len()).map(|m| spec.ph_dos[m][a]).collect();
        let kt = fit_temperature(
            spec.ph_energy_density[a],
            &dos,
            &omegas,
            fw,
            0.25 * kt0,
            8.0 * kt0,
        );
        t_atom.push(kt / KB_EV_PER_K);
    }
    // Slab averages along x.
    let nb = dev.bnum();
    let mut t_slab = vec![0.0; nb];
    let mut counts = vec![0usize; nb];
    for (a, atom) in dev.lattice.atoms.iter().enumerate() {
        t_slab[atom.slab] += t_atom[a];
        counts[atom.slab] += 1;
    }
    for (t, c) in t_slab.iter_mut().zip(&counts) {
        *t /= *c as f64;
    }

    let x: Vec<f64> = (0..nb - 1)
        .map(|n| 0.5 * (dev.lattice.slab_x(n) + dev.lattice.slab_x(n + 1)))
        .collect();
    let total: Vec<f64> = spec
        .el_energy_current
        .iter()
        .zip(&spec.ph_energy_current)
        .map(|(e, p)| e + p)
        .collect();

    ElectroThermalReport {
        x,
        current_profile: spec.el_current.clone(),
        electron_energy_current: spec.el_energy_current.clone(),
        phonon_energy_current: spec.ph_energy_current.clone(),
        total_energy_current: total,
        spectral_current: spec.el_current_spectrum.clone(),
        temperature_per_atom: t_atom,
        temperature_profile: t_slab,
        contact_temperature: kt0 / KB_EV_PER_K,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationConfig;

    #[test]
    fn bisection_recovers_bose_temperature() {
        // Flat DOS, one mode: u = ω·n(ω, kT*)·ρ·w must invert to kT*.
        let omegas = [0.05, 0.1];
        let dos = [1.0, 0.7];
        let w = 0.01;
        for &kt_true in &[0.01, 0.025, 0.06] {
            let u = equilibrium_energy(&dos, &omegas, kt_true, w);
            let kt = fit_temperature(u, &dos, &omegas, w, 1e-3, 0.3);
            assert!(
                (kt - kt_true).abs() / kt_true < 1e-6,
                "kT {kt} vs {kt_true}"
            );
        }
    }

    #[test]
    fn clamping_at_bracket_edges() {
        let omegas = [0.05];
        let dos = [1.0];
        assert_eq!(fit_temperature(-1.0, &dos, &omegas, 1.0, 0.01, 0.1), 0.01);
        assert_eq!(fit_temperature(1e9, &dos, &omegas, 1.0, 0.01, 0.1), 0.1);
    }

    #[test]
    fn equilibrium_device_sits_at_contact_temperature() {
        // No bias, no coupling: the phonon bath is in equilibrium with the
        // contacts, so every atom must read ~the contact temperature.
        let mut cfg = SimulationConfig::tiny();
        cfg.mu_drain = cfg.mu_source; // zero bias
        cfg.coupling = 0.0;
        cfg.max_iterations = 1;
        let mut sim = Simulation::new(cfg).expect("valid test config");
        let result = sim.run().expect("run succeeds");
        let report = electro_thermal_report(&sim, &result);
        let t0 = report.contact_temperature;
        for (a, &t) in report.temperature_per_atom.iter().enumerate() {
            assert!(
                (t - t0).abs() / t0 < 0.12,
                "atom {a}: T = {t:.1} K vs contact {t0:.1} K"
            );
        }
    }

    #[test]
    fn biased_device_heats_up() {
        // With bias and coupling, Joule heating must raise the lattice
        // temperature above the contacts somewhere in the device.
        let mut cfg = SimulationConfig::tiny();
        cfg.coupling = 0.01;
        cfg.mu_source = 0.4;
        cfg.max_iterations = 8;
        let mut sim = Simulation::new(cfg).expect("valid test config");
        let result = sim.run().expect("run succeeds");
        let report = electro_thermal_report(&sim, &result);
        assert!(
            report.t_max() > report.contact_temperature * 1.005,
            "self-heating absent: Tmax {:.2} K vs contact {:.2} K",
            report.t_max(),
            report.contact_temperature
        );
        // Shapes consistent.
        assert_eq!(report.x.len(), report.current_profile.len());
        assert_eq!(report.temperature_profile.len(), sim.device.bnum());
    }

    use crate::driver::Simulation;
}
