//! Overlapped sweep execution: the Table 6 streams model, run for real.
//!
//! A bias/temperature sweep runs many independent [`Simulation`]s, and
//! each Born iteration inside one alternates a GF phase (the parallel
//! RGF bulk) and an SSE phase (the self-energy reduction). Serially the
//! two phases of one point and the points of the sweep all queue behind
//! each other. The [`omen_sched::StreamExecutor`] pipeline runs the GF
//! phase of sweep point *k+1* concurrently with the SSE phase of point
//! *k* — the overlap the paper's Table 6 models with CUDA streams,
//! reproduced here as a two-stage thread pipeline over owned driver
//! instances.
//!
//! [`SweepPoint`] adapts a [`Simulation`] to the pipeline by mirroring
//! [`Simulation::run_with`]'s loop exactly — interruption checks at
//! iteration boundaries, the NaN/finite guard, the warm-divergence
//! watchdog, tolerance and `require_convergence` semantics — split at
//! the phase boundary via [`Simulation::finish_iteration`]. With the
//! per-point executor set to [`crate::SerialExecutor`], every point's
//! arithmetic is the exact serial instruction stream, so overlapped
//! results are **bit-identical** to a serial sweep.

use crate::driver::{
    DriverError, GfPhaseOutput, IterationRecord, Simulation, SimulationResult, SpectralData,
};
use omen_sched::{PipelinedPoint, StreamExecutor, StreamOutcome};

/// Verdict of one sweep point out of the overlapped pipeline.
#[derive(Debug)]
pub enum OverlapOutcome {
    /// The point ran to a usable result (converged or best-effort,
    /// exactly as [`Simulation::run`] would have returned it).
    Finished(SimulationResult),
    /// The point failed with the same typed error a serial
    /// [`Simulation::run`] would have produced.
    Failed(DriverError),
    /// A stage panicked; the pipeline isolated it and every other point
    /// completed normally.
    Panicked,
}

impl OverlapOutcome {
    /// The result, if the point finished.
    pub fn finished(&self) -> Option<&SimulationResult> {
        match self {
            OverlapOutcome::Finished(r) => Some(r),
            _ => None,
        }
    }
}

/// A [`Simulation`] adapted to the two-stage GF/SSE pipeline.
pub struct SweepPoint {
    sim: Simulation,
    /// GF output handed from the GF stage to the SSE stage.
    pending: Option<GfPhaseOutput>,
    records: Vec<IterationRecord>,
    spectral: Option<SpectralData>,
    /// Terminal verdict, set once the mirrored `run_with` loop decides.
    verdict: Option<Result<(), DriverError>>,
    converged: bool,
    inject_nan: bool,
}

impl SweepPoint {
    /// Wraps a simulation for pipelined execution.
    pub fn new(sim: Simulation) -> SweepPoint {
        let inject_nan = sim.nan_injection_armed();
        SweepPoint {
            sim,
            pending: None,
            records: Vec::new(),
            spectral: None,
            verdict: None,
            converged: false,
            inject_nan,
        }
    }

    /// The wrapped simulation (e.g. to harvest warm-start data).
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Finalizes the mirrored loop into the verdict `run_with` would
    /// have returned.
    pub fn into_outcome(self) -> OverlapOutcome {
        if let Some(Err(err)) = self.verdict {
            return OverlapOutcome::Failed(err);
        }
        if self.sim.config().require_convergence && !self.converged {
            if let Some(last) = self.records.last() {
                return OverlapOutcome::Failed(DriverError::Unconverged {
                    iterations: self.sim.iterations_done(),
                    rel_change: last.rel_change,
                });
            }
        }
        let spectral = match self.spectral.or_else(|| self.sim.last_spectral_clone()) {
            Some(s) => s,
            None => {
                return OverlapOutcome::Failed(DriverError::Unconverged {
                    iterations: 0,
                    rel_change: f64::INFINITY,
                })
            }
        };
        OverlapOutcome::Finished(SimulationResult {
            records: self.records,
            spectral,
        })
    }
}

impl PipelinedPoint for SweepPoint {
    fn gf_stage(&mut self) {
        if self.verdict.is_some() {
            return;
        }
        if self.sim.iterations_done() >= self.sim.config().max_iterations {
            self.verdict = Some(Ok(()));
            return;
        }
        if let Some(err) = self.sim.interrupted() {
            self.verdict = Some(Err(err));
            return;
        }
        self.pending = Some(self.sim.gf_phase());
    }

    fn sse_stage(&mut self) -> bool {
        let Some(gf) = self.pending.take() else {
            // The GF stage declined to run: the loop is over.
            return false;
        };
        let (mut rec, spec) = self.sim.finish_iteration(gf);
        if self.inject_nan && self.records.is_empty() {
            rec.current = f64::NAN;
            self.sim.poison_current();
        }
        if !rec.current.is_finite() {
            self.verdict = Some(Err(DriverError::NonFinite {
                iteration: rec.iteration,
            }));
            return false;
        }
        let done = rec.rel_change < self.sim.config().tolerance && rec.iteration > 0;
        let it = rec.iteration;
        let rel = rec.rel_change;
        self.records.push(rec);
        self.spectral = Some(spec);
        let cfg = self.sim.config();
        if self.sim.is_seeded()
            && cfg.warm_divergence_after > 0
            && self.records.len() >= cfg.warm_divergence_after
            && rel.is_finite()
            && rel > cfg.warm_divergence_threshold
        {
            self.verdict = Some(Err(DriverError::WarmDiverged {
                iteration: it,
                rel_change: rel,
            }));
            return false;
        }
        if done {
            self.converged = true;
            self.verdict = Some(Ok(()));
            return false;
        }
        if self.sim.iterations_done() >= cfg.max_iterations {
            self.verdict = Some(Ok(()));
            return false;
        }
        true
    }
}

// Whole simulations move between the pipeline's stage threads by value.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SweepPoint>();
};

/// A persistent overlapped-sweep engine: the pipeline's stage workers
/// and coordinator scratch survive across [`OverlappedSweep::run`]
/// calls, so a warm sweep's coordinating thread allocates nothing.
pub struct OverlappedSweep {
    exec: StreamExecutor<SweepPoint>,
    points: Vec<SweepPoint>,
    out: Vec<StreamOutcome<SweepPoint>>,
}

impl OverlappedSweep {
    /// An engine with a bounded in-flight window (clamped to ≥ 2): at
    /// most `window` simulations hold live tensors at once.
    pub fn new(window: usize) -> OverlappedSweep {
        OverlappedSweep {
            exec: StreamExecutor::new(window),
            points: Vec::new(),
            out: Vec::new(),
        }
    }

    /// The bounded in-flight window.
    pub fn window(&self) -> usize {
        self.exec.window()
    }

    /// Runs every simulation through the GF/SSE pipeline, returning
    /// verdicts in input order.
    pub fn run(&mut self, sims: Vec<Simulation>) -> Vec<OverlapOutcome> {
        let mut out = Vec::with_capacity(sims.len());
        self.run_into(sims, &mut out);
        out
    }

    /// Like [`OverlappedSweep::run`], but writes the verdicts into `out`
    /// (cleared first). With the engine warm and `out` reused from the
    /// previous sweep, the coordinating thread allocates nothing — the
    /// contract the allocation integration test pins.
    pub fn run_into(&mut self, sims: Vec<Simulation>, out: &mut Vec<OverlapOutcome>) {
        self.points.clear();
        self.points.extend(sims.into_iter().map(SweepPoint::new));
        self.out.clear();
        self.exec.run_into(&mut self.points, &mut self.out);
        out.clear();
        out.extend(self.out.drain(..).map(|o| {
            if o.panicked {
                OverlapOutcome::Panicked
            } else {
                o.point.into_outcome()
            }
        }));
    }
}

/// One-shot convenience over [`OverlappedSweep`]: runs `sims` through a
/// fresh pipeline with the given in-flight window.
pub fn run_overlapped(sims: Vec<Simulation>, window: usize) -> Vec<OverlapOutcome> {
    OverlappedSweep::new(window).run(sims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationConfig;
    use crate::executor::ExecutorKind;

    fn sweep_sims(n: usize) -> Vec<Simulation> {
        (0..n)
            .map(|i| {
                let mut cfg = SimulationConfig::tiny();
                cfg.executor = ExecutorKind::Serial;
                cfg.max_iterations = 4;
                cfg.mu_drain = 0.01 * i as f64;
                Simulation::new(cfg).expect("valid config")
            })
            .collect()
    }

    #[test]
    fn overlapped_sweep_is_bitwise_serial() {
        let serial: Vec<SimulationResult> = sweep_sims(3)
            .into_iter()
            .map(|mut s| s.run().expect("serial run"))
            .collect();
        let overlapped = run_overlapped(sweep_sims(3), 2);
        assert_eq!(overlapped.len(), serial.len());
        for (s, o) in serial.iter().zip(&overlapped) {
            let o = o.finished().expect("clean overlapped run");
            assert_eq!(s.records.len(), o.records.len());
            for (a, b) in s.records.iter().zip(&o.records) {
                assert_eq!(a.current.to_bits(), b.current.to_bits());
                assert_eq!(a.rel_change.to_bits(), b.rel_change.to_bits());
            }
            assert_eq!(s.current().to_bits(), o.current().to_bits());
        }
    }

    #[test]
    fn failing_point_is_isolated_with_typed_error() {
        // Poison one point's Σ^< through a corrupted warm start; its
        // neighbors must still finish.
        let mut sims = sweep_sims(3);
        let donor = {
            let mut d = Simulation::new(sims[0].config().clone()).expect("valid config");
            d.run().expect("donor run");
            let mut data = d.warm_start_data();
            data.sigma_l.as_mut_slice()[0] = omen_linalg::c64(f64::NAN, 0.0);
            data
        };
        sims[1].warm_start_from(&donor).expect("shapes match");
        let outcomes = run_overlapped(sims, 2);
        assert!(matches!(
            outcomes[1],
            OverlapOutcome::Failed(DriverError::NonFinite { .. })
        ));
        assert!(outcomes[0].finished().is_some());
        assert!(outcomes[2].finished().is_some());
    }

    #[test]
    fn warm_engine_reruns_sweeps() {
        let mut engine = OverlappedSweep::new(2);
        let first = engine.run(sweep_sims(2));
        assert!(first.iter().all(|o| o.finished().is_some()));
        let second = engine.run(sweep_sims(2));
        assert!(second.iter().all(|o| o.finished().is_some()));
        // Same inputs, same pipeline: identical results across reruns.
        let (a, b) = (first[0].finished().unwrap(), second[0].finished().unwrap());
        assert_eq!(a.current().to_bits(), b.current().to_bits());
    }

    #[test]
    fn cancelled_point_reports_cancelled() {
        let mut sims = sweep_sims(2);
        let token = crate::driver::CancelToken::new();
        token.cancel();
        sims[0].set_cancel_token(token);
        let outcomes = run_overlapped(sims, 2);
        assert!(matches!(
            outcomes[0],
            OverlapOutcome::Failed(DriverError::Cancelled { iteration: 0 })
        ));
        assert!(outcomes[1].finished().is_some());
    }
}
