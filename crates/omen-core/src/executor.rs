//! Pluggable execution engines for the GF phase's point sweeps.
//!
//! The paper's central observation (§4, Fig. 5) is that the GF phase is a
//! pure map over independent `(kz, E)` / `(qz, ω)` points; everything else
//! is reduction. A [`PointExecutor`] owns *how* that map runs:
//!
//! * [`SerialExecutor`] — one worker, global point order (the seed
//!   driver's behavior);
//! * [`RayonExecutor`] — rayon-style work-stealing over scoped worker
//!   threads; contributions are re-ordered to global point order before
//!   accumulation, so results are **bit-identical** to serial;
//! * [`PartitionedExecutor`] — splits the point set into contiguous
//!   per-rank partitions with `omen-comm`'s balanced-range machinery, runs
//!   each rank's partition on its own worker, and merges per-rank
//!   observables in rank order — the in-process analogue of the paper's
//!   rank decomposition (equal to serial up to floating-point
//!   reassociation in the merge tree).
//!
//! Workers are created per-thread from a factory closure: GF solvers carry
//! mutable caches, so each worker gets its own cheap solver instance
//! instead of sharing one behind a lock.
//!
//! **Workspace discipline**: each worker owns a per-thread
//! [`omen_linalg::Workspace`] scratch arena for the duration of a sweep —
//! the driver's factories lease one from the simulation's
//! [`omen_linalg::WorkspacePool`] and it returns to the pool when the
//! worker drops. Leases outlive individual points and sweeps outnumber
//! workspaces only during warmup, so across energy points *and* Born
//! iterations the hot path runs allocation-free on warm buffers.

use crate::observables::Observables;
use omen_comm::split_range;

/// One `(i, j)` grid point of a sweep: `(ik, ie)` for electrons,
/// `(iq, iw)` for phonons.
pub type GridPoint = (usize, usize);

/// An execution engine for embarrassingly-parallel point sweeps.
///
/// `make_worker` is called once per worker thread; the returned closure
/// solves single points. The executor feeds every point exactly once and
/// returns the accumulator after folding all contributions in.
pub trait PointExecutor {
    /// Short identifier for logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Runs the sweep, returning the filled accumulator.
    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync;
}

/// Single-worker executor: solves points in order on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl PointExecutor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, mut acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync,
    {
        let mut worker = make_worker();
        for &p in points {
            let c = worker(p);
            acc.accumulate(&c);
        }
        acc
    }
}

/// Thread-parallel executor with work stealing.
///
/// Points are claimed dynamically from a shared counter (uniform-cost
/// points balance statically, but boundary-condition convergence varies
/// per point, so stealing wins at the margins). Contributions are indexed
/// by point position and accumulated in global point order afterwards,
/// making the result bit-identical to [`SerialExecutor`] regardless of
/// the thread count.
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonExecutor {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl RayonExecutor {
    /// An executor over `threads` workers (0 = auto).
    pub fn new(threads: usize) -> Self {
        RayonExecutor { threads }
    }

    /// The effective worker count: the explicit setting, else rayon's
    /// ambient thread count (which honors `ThreadPool::install` bounds).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            rayon::current_num_threads()
        }
    }
}

impl PointExecutor for RayonExecutor {
    fn name(&self) -> &'static str {
        "rayon"
    }

    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, mut acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync,
    {
        let nthreads = self.effective_threads().min(points.len()).max(1);
        if nthreads <= 1 {
            return SerialExecutor.run(points, make_worker, acc);
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<O::Contribution>> = Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|_| {
                    let next = &next;
                    let make_worker = &make_worker;
                    s.spawn(move || {
                        let mut worker = make_worker();
                        let mut local: Vec<(usize, O::Contribution)> = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= points.len() {
                                break;
                            }
                            local.push((idx, worker(points[idx])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (idx, c) in h.join().expect("worker thread panicked") {
                    slots[idx] = Some(c);
                }
            }
        });
        // Deterministic fold in global point order.
        for c in slots.into_iter().flatten() {
            acc.accumulate(&c);
        }
        acc
    }
}

/// Rank-decomposed executor: the in-process analogue of distributing
/// points over MPI ranks.
///
/// The point set is split into `ranks` contiguous balanced partitions
/// (via [`omen_comm::split_range`], the same machinery the communication
/// plans use); each "rank" accumulates its partition into its own
/// [`Observables`], and the per-rank observables are merged in rank order
/// — exercising the same merge path a distributed reduction would.
///
/// Like a real rank decomposition, every rank owns a full-size
/// accumulator (memory scales with `ranks`); this engine is for
/// exercising the partition/merge path at laptop rank counts, not for
/// saving memory.
#[derive(Clone, Copy, Debug)]
pub struct PartitionedExecutor {
    /// Simulated rank count.
    pub ranks: usize,
}

impl PartitionedExecutor {
    /// An executor over `ranks` partitions. `ranks = 0` is clamped to one
    /// partition at run time (constructors never panic; the builder
    /// rejects `ranks = 0` with [`crate::builder::ConfigError::NoRanks`]).
    pub fn new(ranks: usize) -> Self {
        PartitionedExecutor { ranks }
    }
}

impl PointExecutor for PartitionedExecutor {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, mut acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync,
    {
        let ranks = self.ranks.min(points.len()).max(1);
        if ranks <= 1 {
            return SerialExecutor.run(points, make_worker, acc);
        }
        let mut partials: Vec<O> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..ranks)
                .map(|rank| {
                    let (lo, hi) = split_range(points.len(), ranks, rank);
                    let make_worker = &make_worker;
                    let local = acc.fresh();
                    s.spawn(move || {
                        let mut worker = make_worker();
                        let mut local = local;
                        for &p in &points[lo..hi] {
                            let c = worker(p);
                            local.accumulate(&c);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });
        // Merge in rank order (deterministic reduction tree).
        for partial in partials.drain(..) {
            acc.merge(partial);
        }
        acc
    }
}

/// Rank-decomposed executor for the *distributed* Born loop: each
/// rank-thread owns a contiguous point partition (the same
/// [`omen_comm::split_range`] decomposition the communication plans use
/// for their initial `G^≷` distribution) and solves it to completion.
///
/// Unlike [`PartitionedExecutor`], which merges whole per-rank
/// accumulators (reassociating the reduction), contributions here land in
/// per-point slots and fold in global point order — so the GF phase is
/// **bit-identical** to [`SerialExecutor`] at every rank count. That is
/// what lets `ExecutorKind::Distributed` pin the full Born loop bitwise
/// against serial while the SSE phase really exchanges data through
/// `omen-comm`'s plans (see `omen_comm::PlanKernel`).
#[derive(Clone, Copy, Debug)]
pub struct DistributedExecutor {
    /// Simulated rank count.
    pub ranks: usize,
}

impl DistributedExecutor {
    /// An executor over `ranks` rank-threads. `ranks = 0` is clamped to
    /// one at run time (the builder rejects it with
    /// [`crate::builder::ConfigError::NoRanks`]).
    pub fn new(ranks: usize) -> Self {
        DistributedExecutor { ranks }
    }
}

impl PointExecutor for DistributedExecutor {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, mut acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync,
    {
        let ranks = self.ranks.min(points.len()).max(1);
        if ranks <= 1 {
            return SerialExecutor.run(points, make_worker, acc);
        }
        let mut slots: Vec<Option<O::Contribution>> = Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || None);
        std::thread::scope(|s| {
            let mut rest: &mut [Option<O::Contribution>] = &mut slots;
            for rank in 0..ranks {
                let (lo, hi) = split_range(points.len(), ranks, rank);
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let make_worker = &make_worker;
                s.spawn(move || {
                    let mut worker = make_worker();
                    for (slot, &p) in chunk.iter_mut().zip(&points[lo..hi]) {
                        *slot = Some(worker(p));
                    }
                });
            }
        });
        // Deterministic fold in global point order.
        for c in slots.into_iter().flatten() {
            acc.accumulate(&c);
        }
        acc
    }
}

/// Task-DAG executor: the sweep lowered through `omen-sched`.
///
/// Where [`RayonExecutor`] claims points from an atomic counter, this
/// engine materializes the sweep as an `omen_sched::TaskDag` — the same
/// runtime that executes lowered SDFG schedules — and drains it on the
/// scheduler's panic-isolating worker pool. A GF sweep is a pure map,
/// so the DAG is edge-free here; the value is that the *driver's* point
/// sweeps and the *dataflow graph's* lowered schedules now run on one
/// scheduler, with `Counter::SchedTasks` accounting for both.
///
/// Contributions land in per-point slots and fold in global point order,
/// so results are **bit-identical** to [`SerialExecutor`] (the
/// `RayonExecutor` discipline). A panicking point solve propagates as a
/// panic after the sweep drains — point workers are deterministic solver
/// code; isolation with retry is the stream/service layer's job.
#[derive(Clone, Copy, Debug, Default)]
pub struct DagExecutor {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl DagExecutor {
    /// An executor over `threads` scheduler workers (0 = auto).
    pub fn new(threads: usize) -> Self {
        DagExecutor { threads }
    }

    /// The effective worker count (explicit setting, else all cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

impl PointExecutor for DagExecutor {
    fn name(&self) -> &'static str {
        "dag"
    }

    fn run<O, W, F>(&self, points: &[GridPoint], make_worker: F, mut acc: O) -> O
    where
        O: Observables,
        W: FnMut(GridPoint) -> O::Contribution + Send,
        F: Fn() -> W + Sync,
    {
        use std::sync::Mutex;
        let nthreads = self.effective_threads().min(points.len()).max(1);
        if nthreads <= 1 {
            return SerialExecutor.run(points, make_worker, acc);
        }
        let mut dag = omen_sched::TaskDag::new();
        for _ in points {
            dag.add_task("gf_point", &[]);
        }
        // Workers carry mutable solver caches, so the shared task closure
        // leases them from a pool (scheduler workers outnumber leases only
        // transiently; point solves dwarf the lock).
        let workers: Mutex<Vec<W>> = Mutex::new(Vec::new());
        let slots: Vec<Mutex<Option<O::Contribution>>> =
            points.iter().map(|_| Mutex::new(None)).collect();
        dag.run(nthreads, |t| {
            let mut worker = workers
                .lock()
                .expect("worker pool lock")
                .pop()
                .unwrap_or_else(&make_worker);
            let c = worker(points[t]);
            *slots[t].lock().expect("slot lock") = Some(c);
            workers.lock().expect("worker pool lock").push(worker);
        })
        .unwrap_or_else(|err| panic!("point solve panicked: {err}"));
        // Deterministic fold in global point order.
        for slot in slots {
            if let Some(c) = slot.into_inner().expect("slot lock") {
                acc.accumulate(&c);
            }
        }
        acc
    }
}

/// Executor selection for [`crate::builder::SimulationConfig`] — the
/// enum-shaped convenience over the trait (custom executors plug in via
/// [`crate::driver::Simulation::run_with`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// [`SerialExecutor`].
    Serial,
    /// [`RayonExecutor`] with the given thread count (0 = auto).
    Rayon {
        /// Worker threads (0 = all available cores).
        threads: usize,
    },
    /// [`PartitionedExecutor`] with the given rank count.
    Partitioned {
        /// Simulated rank count.
        ranks: usize,
    },
    /// [`DagExecutor`] with the given thread count (0 = auto).
    Dag {
        /// Scheduler worker threads (0 = all available cores).
        threads: usize,
    },
    /// [`DistributedExecutor`] with the given rank count: the full Born
    /// loop runs rank-decomposed, with the SSE phase exchanging data
    /// through a communication plan (`omen_comm::PlanKernel`).
    Distributed {
        /// Simulated rank count.
        ranks: usize,
    },
}

impl Default for ExecutorKind {
    fn default() -> Self {
        ExecutorKind::Rayon { threads: 0 }
    }
}

impl ExecutorKind {
    /// Short identifier for logs.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Serial => "serial",
            ExecutorKind::Rayon { .. } => "rayon",
            ExecutorKind::Partitioned { .. } => "partitioned",
            ExecutorKind::Dag { .. } => "dag",
            ExecutorKind::Distributed { .. } => "distributed",
        }
    }
}

/// The full `(0..n0) × (0..n1)` point grid in sweep order.
pub fn grid_points(n0: usize, n1: usize) -> Vec<GridPoint> {
    let mut out = Vec::with_capacity(n0 * n1);
    for i in 0..n0 {
        for j in 0..n1 {
            out.push((i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observables::Observables;

    /// A toy accumulator: ordered list of visited points + a weighted sum.
    struct Trace {
        visited: Vec<GridPoint>,
        sum: f64,
    }

    impl Observables for Trace {
        type Contribution = (GridPoint, f64);

        fn fresh(&self) -> Self {
            Trace {
                visited: Vec::new(),
                sum: 0.0,
            }
        }

        fn accumulate(&mut self, c: &Self::Contribution) {
            self.visited.push(c.0);
            self.sum += c.1;
        }

        fn merge(&mut self, other: Self) {
            self.visited.extend(other.visited);
            self.sum += other.sum;
        }
    }

    fn run_with<E: PointExecutor>(exec: &E, points: &[GridPoint]) -> Trace {
        exec.run(
            points,
            || |p: GridPoint| (p, (p.0 * 31 + p.1) as f64 * 0.125),
            Trace {
                visited: Vec::new(),
                sum: 0.0,
            },
        )
    }

    #[test]
    fn all_executors_visit_every_point_once() {
        let points = grid_points(3, 17);
        for visited in [
            run_with(&SerialExecutor, &points).visited,
            run_with(&RayonExecutor::new(4), &points).visited,
            run_with(&PartitionedExecutor::new(5), &points).visited,
            run_with(&DagExecutor::new(4), &points).visited,
            run_with(&DistributedExecutor::new(4), &points).visited,
        ] {
            let mut sorted = visited.clone();
            sorted.sort_unstable();
            let mut want = points.clone();
            want.sort_unstable();
            assert_eq!(sorted, want, "every point exactly once");
        }
    }

    #[test]
    fn rayon_order_is_bitwise_serial() {
        let points = grid_points(4, 9);
        let serial = run_with(&SerialExecutor, &points);
        let rayon = run_with(&RayonExecutor::new(3), &points);
        // Not just the same set: the same order, hence bit-equal sums.
        assert_eq!(serial.visited, rayon.visited);
        assert_eq!(serial.sum.to_bits(), rayon.sum.to_bits());
    }

    #[test]
    fn partitioned_preserves_partition_order() {
        let points = grid_points(2, 10);
        let part = run_with(&PartitionedExecutor::new(4), &points);
        // Contiguous partitions merged in rank order reproduce the global
        // order exactly.
        assert_eq!(part.visited, points);
        // Exact sum here (dyadic values), same as serial.
        let serial = run_with(&SerialExecutor, &points);
        assert_eq!(serial.sum, part.sum);
    }

    #[test]
    fn dag_order_is_bitwise_serial() {
        let points = grid_points(4, 9);
        let serial = run_with(&SerialExecutor, &points);
        let dag = run_with(&DagExecutor::new(3), &points);
        // Slot-ordered folding: same visit order, hence bit-equal sums.
        assert_eq!(serial.visited, dag.visited);
        assert_eq!(serial.sum.to_bits(), dag.sum.to_bits());
    }

    #[test]
    fn distributed_order_is_bitwise_serial() {
        let points = grid_points(4, 9);
        let serial = run_with(&SerialExecutor, &points);
        for ranks in [1, 2, 3, 4, 36] {
            let dist = run_with(&DistributedExecutor::new(ranks), &points);
            // Slot-ordered folding: same visit order, hence bit-equal sums.
            assert_eq!(serial.visited, dist.visited, "ranks = {ranks}");
            assert_eq!(serial.sum.to_bits(), dist.sum.to_bits());
        }
    }

    #[test]
    fn degenerate_sizes_handled() {
        let empty: Vec<GridPoint> = Vec::new();
        assert_eq!(run_with(&RayonExecutor::new(8), &empty).visited.len(), 0);
        assert_eq!(
            run_with(&DistributedExecutor::new(8), &empty).visited.len(),
            0
        );
        let one = grid_points(1, 1);
        assert_eq!(run_with(&PartitionedExecutor::new(7), &one).visited, one);
        assert_eq!(run_with(&DistributedExecutor::new(7), &one).visited, one);
    }
}
