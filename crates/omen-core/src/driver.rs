//! The self-consistent GF ↔ SSE driver (Fig. 2 / Fig. 4 of the paper).
//!
//! Each Born iteration solves every electron `(kz, E)` and phonon
//! `(qz, ω)` point with RGF under the current scattering self-energies,
//! evaluates the coupled self-energies with the configured [`SseKernel`],
//! mixes, and repeats until the electrical current converges (the paper:
//! 20–100 Born iterations).
//!
//! The driver is an execution engine, not a loop nest: point sweeps are
//! pure per-point solves (side-effect-free workers returning
//! contributions) folded into [`crate::observables::Observables`] accumulators by a pluggable
//! [`PointExecutor`] — see [`crate::executor`] for the serial,
//! thread-parallel, and rank-partitioned engines.

use crate::builder::{ConfigError, SimulationConfig};
use crate::executor::{
    grid_points, DagExecutor, DistributedExecutor, ExecutorKind, PartitionedExecutor,
    PointExecutor, RayonExecutor, SerialExecutor,
};
use crate::grids::{EnergyGrid, FrequencyGrid, MomentumGrid};
use crate::observables::{
    ElectronContribution, ElectronObservables, PhononContribution, PhononObservables,
};
use crate::state::{pi_blocks_for_point, sigma_blocks_for_point, zero_tensors};
use omen_device::DeviceStructure;
use omen_linalg::WorkspacePool;
use omen_rgf::{
    BoundaryCache, BoundaryCacheStats, CacheMode, ElectronParams, ElectronSolver, GfSolver,
    PhaseTimes, PhononParams, PhononSolver,
};
use omen_sse::{DTensor, GLayout, GTensor, SseKernel, SseProblem};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cooperative cancellation handle for a running Born loop.
///
/// Clones share one flag. The driver checks the token between Born
/// iterations, so [`CancelToken::cancel`] interrupts a *running*
/// [`Simulation::run`] at the next iteration boundary — the caller gets
/// [`DriverError::Cancelled`] instead of waiting out the iteration cap.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once any clone called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a [`Simulation::run`] ended without a usable result.
///
/// Every variant is a *recoverable* verdict for a supervisor: retry the
/// point (possibly cold), quarantine its warm-start donor, or drop it —
/// nothing here aborts the process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DriverError {
    /// The current observable became NaN/Inf — the solve is poisoned and
    /// its state must not be deposited into any warm-start cache.
    NonFinite {
        /// Born iteration that produced the non-finite observable.
        iteration: usize,
    },
    /// The iteration cap was reached before the tolerance was met.
    /// Only raised when [`SimulationConfig::require_convergence`] is set.
    Unconverged {
        /// Total Born iterations performed.
        iterations: usize,
        /// Final relative current change.
        rel_change: f64,
    },
    /// A warm-started run was still changing by more than the configured
    /// bound after the watchdog window — the donor state is pulling the
    /// fixed-point iteration away instead of toward convergence. Restart
    /// cold and quarantine the donor.
    WarmDiverged {
        /// Born iteration at which the watchdog fired.
        iteration: usize,
        /// Observed relative current change.
        rel_change: f64,
    },
    /// A [`CancelToken`] was triggered between Born iterations.
    Cancelled {
        /// Born iteration at which cancellation was observed.
        iteration: usize,
    },
    /// The per-run deadline passed between Born iterations.
    DeadlineExceeded {
        /// Born iteration at which the deadline was observed.
        iteration: usize,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NonFinite { iteration } => {
                write!(f, "non-finite observable at Born iteration {iteration}")
            }
            DriverError::Unconverged {
                iterations,
                rel_change,
            } => write!(
                f,
                "not converged after {iterations} Born iterations (rel change {rel_change:.3e})"
            ),
            DriverError::WarmDiverged {
                iteration,
                rel_change,
            } => write!(
                f,
                "warm-started run diverging at Born iteration {iteration} \
                 (rel change {rel_change:.3e})"
            ),
            DriverError::Cancelled { iteration } => {
                write!(f, "cancelled at Born iteration {iteration}")
            }
            DriverError::DeadlineExceeded { iteration } => {
                write!(f, "deadline exceeded at Born iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Accumulated per-iteration observables.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Iteration index (0 = ballistic).
    pub iteration: usize,
    /// Electrical current at the mid-device interface (e/ℏ·eV units).
    pub current: f64,
    /// Current per interface (conservation diagnostic).
    pub current_profile: Vec<f64>,
    /// Relative change of the current w.r.t. the previous iteration.
    pub rel_change: f64,
    /// GF-phase wall-clock breakdown.
    pub gf_times: PhaseTimes,
    /// SSE wall-clock (s).
    pub sse_seconds: f64,
    /// SSE flops this iteration.
    pub sse_flops: u64,
    /// Relative `Σ^<` change against the previous iteration's kernel
    /// output (`None` on the first application) — a convergence
    /// diagnostic read off the kernel's double buffer for free.
    pub sigma_rel_change: Option<f64>,
}

/// Energy/space-resolved outputs of the GF phase of the last iteration.
#[derive(Clone, Debug)]
pub struct SpectralData {
    /// Electron current spectrum `j(E, interface)` (momentum-averaged).
    pub el_current_spectrum: Vec<Vec<f64>>,
    /// Electron charge current per interface.
    pub el_current: Vec<f64>,
    /// Electron *energy* current per interface (weighted by `E`).
    pub el_energy_current: Vec<f64>,
    /// Phonon energy current per interface (weighted by `ω`).
    pub ph_energy_current: Vec<f64>,
    /// Per-atom phonon energy density (for the temperature map).
    pub ph_energy_density: Vec<f64>,
    /// Per-atom phonon density of states, resolved per frequency:
    /// `dos[m][a]`.
    pub ph_dos: Vec<Vec<f64>>,
    /// Per-atom electron occupation.
    pub el_density: Vec<f64>,
    /// Meir-Wingreen contact currents (left, right).
    pub contact_currents: (f64, f64),
}

/// Everything one GF phase produces: the four SSE input tensors, the
/// spectral observables, and the accumulated per-stage solver times.
/// Named replacement for the positional 6-tuple `gf_phase` used to
/// return; the same quantities also flow into the trace registry as a
/// `gf_phase` phase record when tracing is armed.
pub struct GfPhaseOutput {
    /// Electron lesser Green's function `G^<`.
    pub g_l: GTensor,
    /// Electron greater Green's function `G^>`.
    pub g_g: GTensor,
    /// Phonon lesser Green's function `D^<`.
    pub d_l: DTensor,
    /// Phonon greater Green's function `D^>`.
    pub d_g: DTensor,
    /// Spectral observables accumulated across all points.
    pub spectral: SpectralData,
    /// Specialization/boundary/RGF wall time summed over every point
    /// solve (CPU time, not wall time, under a parallel executor).
    pub times: PhaseTimes,
}

/// The simulation driver.
pub struct Simulation {
    /// Configuration (private: the builder validated it, and keeping it
    /// immutable is what makes that validation a guarantee).
    config: SimulationConfig,
    /// The synthetic device.
    pub device: DeviceStructure,
    /// Energy grid.
    pub egrid: EnergyGrid,
    /// Momentum grid.
    pub kgrid: MomentumGrid,
    /// Frequency grid.
    pub fgrid: FrequencyGrid,
    /// Per-atom electrostatic potential.
    pub potential: Vec<f64>,
    kernel: Box<dyn SseKernel>,
    /// Warm per-worker scratch arenas. Each GF worker leases one for its
    /// sweep and returns it on drop, so every later sweep — including the
    /// next Born iteration — reuses the buffers: the self-consistent loop
    /// allocates hot-path scratch only during warmup.
    ws_pool: WorkspacePool,
    sigma_l: GTensor,
    sigma_g: GTensor,
    pi_l: DTensor,
    pi_g: DTensor,
    /// Reusable layout-normalization buffers for the mixing step (the
    /// transformed/mixed kernels emit atom-major Σ; the driver state is
    /// pair-major). Empty until first needed; never reallocated after.
    conv_sl: GTensor,
    conv_sg: GTensor,
    /// Boundary-condition caches shared across workers and Born
    /// iterations (`None` under [`CacheMode::NoCache`]). The boundary
    /// self-energies never depend on the scattering self-energies, so
    /// these stay valid for the whole run — and they are the carrier of
    /// cross-sweep-point warm starts (see [`Simulation::warm_start_from`]).
    el_bc: Option<Arc<BoundaryCache>>,
    ph_bc: Option<Arc<BoundaryCache>>,
    /// True when state tensors were seeded from a neighboring sweep
    /// point: the first GF phase then folds the seeded Σ/Π in instead of
    /// starting ballistic.
    seeded: bool,
    /// Reverse-pair table of the device, computed once so per-iteration
    /// [`SseProblem`] construction is allocation-free.
    rev_pair: Vec<usize>,
    iteration: usize,
    last_current: Option<f64>,
    last_spectral: Option<SpectralData>,
    /// Cooperative cancellation, checked between Born iterations.
    cancel: Option<CancelToken>,
    /// Wall-clock deadline, checked between Born iterations.
    deadline: Option<Instant>,
    /// Supervised fault-injection key (set by the sweep service per
    /// point attempt). `None` — the default — keeps every injection
    /// site in this driver inert, so chaos runs never poison
    /// simulations whose callers are not prepared to catch failures.
    fault_key: Option<u64>,
}

/// Σ/Π state and boundary caches exported from a (converged) simulation,
/// ready to seed a neighboring sweep point (see
/// [`Simulation::warm_start_from`]).
#[derive(Clone)]
pub struct WarmStartData {
    /// Converged electron scattering self-energies (pair-major).
    pub sigma_l: GTensor,
    /// Greater component.
    pub sigma_g: GTensor,
    /// Converged phonon scattering self-energies (point-major).
    pub pi_l: DTensor,
    /// Greater component.
    pub pi_g: DTensor,
    /// Electron boundary cache (shared handle; cloned on import).
    pub el_bc: Option<Arc<BoundaryCache>>,
    /// Phonon boundary cache.
    pub ph_bc: Option<Arc<BoundaryCache>>,
}

impl WarmStartData {
    /// Approximate resident bytes (sweep-cache memory accounting).
    pub fn bytes(&self) -> usize {
        self.sigma_l.bytes()
            + self.sigma_g.bytes()
            + self.pi_l.bytes()
            + self.pi_g.bytes()
            + self.el_bc.as_ref().map_or(0, |c| c.bytes())
            + self.ph_bc.as_ref().map_or(0, |c| c.bytes())
    }
}

/// Why a [`Simulation::warm_start_from`] import was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmStartError {
    /// The donor's tensors were sized for different grids or a different
    /// device.
    ShapeMismatch(&'static str),
    /// The simulation already ran iterations; seeding would silently
    /// discard its own state.
    AlreadyRunning,
}

impl std::fmt::Display for WarmStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmStartError::ShapeMismatch(what) => {
                write!(
                    f,
                    "warm-start data incompatible with this simulation: {what}"
                )
            }
            WarmStartError::AlreadyRunning => {
                write!(f, "cannot warm-start a simulation that already iterated")
            }
        }
    }
}

impl std::error::Error for WarmStartError {}

impl Simulation {
    /// Builds the simulation (device assembly included), validating the
    /// configuration first — the only way to construct a driver, so no
    /// invalid configuration reaches solver code.
    pub fn new(config: SimulationConfig) -> Result<Simulation, ConfigError> {
        config.validate()?;
        let device = DeviceStructure::build(config.device.clone());
        let egrid = EnergyGrid::new(config.e_min, config.e_max, config.ne);
        let kgrid = MomentumGrid::new(config.nk);
        let fgrid = FrequencyGrid::new(egrid.de, config.nw);
        let vds = config.mu_source - config.mu_drain;
        let potential = device.linear_potential(vds, config.ramp.0, config.ramp.1);
        let (sigma_l, sigma_g, pi_l, pi_g) =
            zero_tensors(&device, config.nk, config.ne, config.nk, config.nw);
        // The distributed executor pairs with the plan kernel: the SSE
        // phase *is* the inter-rank exchange, so the configured kernel
        // variant is superseded by the configured communication plan.
        let kernel: Box<dyn SseKernel> = match config.executor {
            ExecutorKind::Distributed { ranks } => {
                Box::new(omen_comm::PlanKernel::new(config.comm_plan, ranks))
            }
            _ => config.kernel.to_kernel(),
        };
        let caching = config.cache_mode != CacheMode::NoCache;
        let el_bc = caching.then(|| Arc::new(BoundaryCache::new(config.nk * config.ne)));
        let ph_bc = caching.then(|| Arc::new(BoundaryCache::new(config.nk * config.nw)));
        let rev_pair = omen_sse::compute_rev_pair(&device);
        Ok(Simulation {
            config,
            device,
            egrid,
            kgrid,
            fgrid,
            potential,
            kernel,
            ws_pool: WorkspacePool::new(),
            sigma_l,
            sigma_g,
            pi_l,
            pi_g,
            conv_sl: GTensor::default(),
            conv_sg: GTensor::default(),
            el_bc,
            ph_bc,
            seeded: false,
            rev_pair,
            iteration: 0,
            last_current: None,
            last_spectral: None,
            cancel: None,
            deadline: None,
            fault_key: None,
        })
    }

    /// Attaches a cooperative [`CancelToken`]: [`Simulation::run`]
    /// checks it between Born iterations and returns
    /// [`DriverError::Cancelled`] once it fires.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Sets a wall-clock deadline: [`Simulation::run`] returns
    /// [`DriverError::DeadlineExceeded`] at the first iteration boundary
    /// past it.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Arms the supervised NaN-poisoning fault site for this run with a
    /// caller-chosen key (see `omen-fault`). Only supervisors that
    /// handle [`DriverError::NonFinite`] — i.e. the sweep service's
    /// retry loop — should set this.
    pub fn set_fault_key(&mut self, key: u64) {
        self.fault_key = Some(key);
    }

    /// The validated configuration (read-only: mutating grid sizes or
    /// executor settings after construction would desynchronize the
    /// grids and tensors sized from them).
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Typed interruption verdict (cancellation, deadline) at an
    /// iteration boundary, shared by [`Simulation::run_with`] and the
    /// stream pipeline.
    pub(crate) fn interrupted(&self) -> Option<DriverError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(DriverError::Cancelled {
                    iteration: self.iteration,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(DriverError::DeadlineExceeded {
                    iteration: self.iteration,
                });
            }
        }
        None
    }

    /// Clone of the most recent spectral data (stream finalization of a
    /// run that performed no iterations).
    pub(crate) fn last_spectral_clone(&self) -> Option<SpectralData> {
        self.last_spectral.clone()
    }

    /// Whether the supervised NaN fault site fires for this run (see
    /// [`Simulation::set_fault_key`]).
    pub(crate) fn nan_injection_armed(&self) -> bool {
        self.fault_key
            .map(|k| omen_fault::should_inject(omen_fault::FaultSite::NanPoison, k))
            .unwrap_or(false)
    }

    /// Poisons the convergence baseline (the armed NaN fault site firing
    /// on the first iteration of a supervised run).
    pub(crate) fn poison_current(&mut self) {
        self.last_current = Some(f64::NAN);
    }

    /// Replaces the SSE kernel with a custom [`SseKernel`] implementation
    /// (the enum on the config covers the built-in three).
    pub fn set_kernel(&mut self, kernel: Box<dyn SseKernel>) {
        self.kernel = kernel;
    }

    /// The active SSE kernel.
    pub fn kernel(&self) -> &dyn SseKernel {
        &*self.kernel
    }

    /// Born iterations completed so far (the driver owns the counter).
    pub fn iterations_done(&self) -> usize {
        self.iteration
    }

    /// Usage counters of the shared boundary caches `(electron, phonon)`,
    /// or `None` under [`CacheMode::NoCache`].
    pub fn boundary_stats(&self) -> Option<(BoundaryCacheStats, BoundaryCacheStats)> {
        match (&self.el_bc, &self.ph_bc) {
            (Some(e), Some(p)) => Some((e.stats(), p.stats())),
            _ => None,
        }
    }

    /// Exports this simulation's converged Σ/Π state and boundary caches
    /// as a warm start for a neighboring sweep point.
    pub fn warm_start_data(&self) -> WarmStartData {
        WarmStartData {
            sigma_l: self.sigma_l.clone(),
            sigma_g: self.sigma_g.clone(),
            pi_l: self.pi_l.clone(),
            pi_g: self.pi_g.clone(),
            el_bc: self.el_bc.clone(),
            ph_bc: self.ph_bc.clone(),
        }
    }

    /// Seeds this (fresh) simulation from a neighboring sweep point's
    /// converged state:
    ///
    /// * the donor's Σ^≷/Π^≷ become the initial scattering self-energies,
    ///   so the first GF phase starts dressed instead of ballistic and the
    ///   Born loop converges in fewer iterations;
    /// * the donor's boundary caches carry over — intact when
    ///   `boundary_changed` is `false` (temperature/coupling sweeps never
    ///   enter the ballistic operator `M`), demoted to surface-GF seeds
    ///   when `true` (bias sweeps shift the potential in the lead blocks;
    ///   seeds are refined to this point's own equations, so warm results
    ///   stay exact).
    ///
    /// Convergence is still judged by this simulation's own tolerance
    /// against its own current history: seeding changes the starting
    /// point, not the fixed point.
    pub fn warm_start_from(&mut self, data: &WarmStartData) -> Result<(), WarmStartError> {
        self.warm_start_with(data, true)
    }

    /// [`Simulation::warm_start_from`] with an explicit flag for whether
    /// the sweep axis changed the ballistic boundary operators (`true` is
    /// always safe; `false` skips even the seed refinement).
    pub fn warm_start_with(
        &mut self,
        data: &WarmStartData,
        boundary_changed: bool,
    ) -> Result<(), WarmStartError> {
        if self.iteration > 0 {
            return Err(WarmStartError::AlreadyRunning);
        }
        let g = &self.sigma_l;
        let d = &data.sigma_l;
        if (g.nk, g.ne, g.na, g.norb, g.layout) != (d.nk, d.ne, d.na, d.norb, d.layout) {
            return Err(WarmStartError::ShapeMismatch("electron Σ tensors"));
        }
        let p = &self.pi_l;
        let q = &data.pi_l;
        if (p.nq, p.nw, p.npairs, p.na, p.layout) != (q.nq, q.nw, q.npairs, q.na, q.layout) {
            return Err(WarmStartError::ShapeMismatch("phonon Π tensors"));
        }
        if let (Some(own), Some(donor)) = (&self.el_bc, &data.el_bc) {
            if own.len() != donor.len() {
                return Err(WarmStartError::ShapeMismatch("electron boundary cache"));
            }
        }
        if let (Some(own), Some(donor)) = (&self.ph_bc, &data.ph_bc) {
            if own.len() != donor.len() {
                return Err(WarmStartError::ShapeMismatch("phonon boundary cache"));
            }
        }
        self.sigma_l
            .as_mut_slice()
            .copy_from_slice(data.sigma_l.as_slice());
        self.sigma_g
            .as_mut_slice()
            .copy_from_slice(data.sigma_g.as_slice());
        self.pi_l
            .as_mut_slice()
            .copy_from_slice(data.pi_l.as_slice());
        self.pi_g
            .as_mut_slice()
            .copy_from_slice(data.pi_g.as_slice());
        if self.el_bc.is_some() {
            if let Some(donor) = &data.el_bc {
                // The electron ballistic operator contains the
                // electrostatic potential: a bias step invalidates the
                // cached self-energies but their surface GFs remain
                // excellent iteration seeds.
                self.el_bc = Some(Arc::new(if boundary_changed {
                    donor.seed_clone()
                } else {
                    donor.fresh_clone()
                }));
            }
        }
        if self.ph_bc.is_some() {
            if let Some(donor) = &data.ph_bc {
                // The dynamical matrix never sees bias, temperature, or
                // coupling: phonon boundaries carry over exactly.
                self.ph_bc = Some(Arc::new(donor.fresh_clone()));
            }
        }
        self.seeded = true;
        Ok(())
    }

    /// True when this simulation was seeded via
    /// [`Simulation::warm_start_from`].
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// The SSE problem bound to this simulation's grids and couplings.
    pub fn sse_problem(&self) -> SseProblem<'_> {
        let scale_sigma =
            self.config.coupling * self.config.coupling * self.fgrid.weight() * self.kgrid.weight();
        let scale_pi =
            self.config.coupling * self.config.coupling * self.egrid.weight() * self.kgrid.weight();
        SseProblem::with_rev_pair(
            &self.device,
            self.config.nk,
            self.config.ne,
            self.config.nk,
            self.config.nw,
            scale_sigma,
            scale_pi,
            &self.rev_pair,
        )
    }

    fn electron_params(&self) -> ElectronParams {
        ElectronParams {
            eta: self.config.eta,
            mu_source: self.config.mu_source,
            mu_drain: self.config.mu_drain,
            kt: self.config.kt,
            ..ElectronParams::default()
        }
    }

    fn phonon_params(&self) -> PhononParams {
        PhononParams {
            eta: self.config.eta_ph,
            kt: self.config.kt,
            ..PhononParams::default()
        }
    }

    /// Runs the GF phase with the configured executor: every `(kz, E)` and
    /// `(qz, ω)` point, returning the SSE input tensors plus the spectral
    /// observables.
    pub fn gf_phase(&self) -> GfPhaseOutput {
        match self.config.executor {
            ExecutorKind::Serial => self.gf_phase_with(&SerialExecutor),
            ExecutorKind::Rayon { threads } => self.gf_phase_with(&RayonExecutor::new(threads)),
            ExecutorKind::Partitioned { ranks } => {
                self.gf_phase_with(&PartitionedExecutor::new(ranks))
            }
            ExecutorKind::Dag { threads } => self.gf_phase_with(&DagExecutor::new(threads)),
            ExecutorKind::Distributed { ranks } => {
                self.gf_phase_with(&DistributedExecutor::new(ranks))
            }
        }
    }

    /// Runs the GF phase through an explicit [`PointExecutor`].
    pub fn gf_phase_with<E: PointExecutor>(&self, exec: &E) -> GfPhaseOutput {
        let _phase = omen_trace::PhaseGuard::enter("gf_phase");
        let dev = &self.device;
        let cfg = &self.config;
        // Borrow the fields the worker factories need as locals: the
        // closures must not capture `self` (the kernel field is only
        // `Send`, and the factories have to be `Sync`).
        let potential = &self.potential;
        let kvals = self.kgrid.values();
        let evals = self.egrid.values();
        let fvals = self.fgrid.values();
        let ws_pool = &self.ws_pool;
        // Seeded simulations start dressed: the imported Σ/Π enter the
        // very first GF phase instead of a ballistic pass.
        let have_sigma = self.iteration > 0 || self.seeded;
        let w_e = self.egrid.weight() * self.kgrid.weight();
        let w_ph = self.fgrid.weight() * self.kgrid.weight();

        // --- electrons: pure per-point solves, executor-accumulated ---
        let eacc = ElectronObservables::new(dev, cfg.nk, evals.clone(), self.kgrid.weight(), w_e);
        let eparams = self.electron_params();
        let (sigma_l, sigma_g) = (&self.sigma_l, &self.sigma_g);
        let el_bc = &self.el_bc;
        let make_eworker = || {
            let mut solver = ElectronSolver::new(
                dev,
                potential.clone(),
                eparams,
                cfg.cache_mode,
                kvals.clone(),
                evals.clone(),
            )
            .with_workspace_pool(ws_pool);
            if let Some(cache) = el_bc {
                solver = solver.with_shared_boundary(Arc::clone(cache));
            }
            move |(ik, ie): (usize, usize)| {
                let out = if have_sigma {
                    let (sr, sl, sg) = sigma_blocks_for_point(dev, sigma_l, sigma_g, ik, ie);
                    solver.solve_point(ik, ie, Some(&sr), Some(&sl), Some(&sg))
                } else {
                    solver.solve_point(ik, ie, None, None, None)
                };
                ElectronContribution::from_solution(dev, ik, ie, &out)
            }
        };
        let eobs = {
            let _span = omen_trace::span!("gf_electrons");
            exec.run(&grid_points(cfg.nk, cfg.ne), make_eworker, eacc)
        };

        // --- phonons ---
        let pacc = PhononObservables::new(dev, cfg.nk, fvals.clone(), self.kgrid.weight(), w_ph);
        let pparams = self.phonon_params();
        let (pi_l, pi_g) = (&self.pi_l, &self.pi_g);
        let ph_bc = &self.ph_bc;
        let make_pworker = || {
            let mut solver =
                PhononSolver::new(dev, pparams, cfg.cache_mode, kvals.clone(), fvals.clone())
                    .with_workspace_pool(ws_pool);
            if let Some(cache) = ph_bc {
                solver = solver.with_shared_boundary(Arc::clone(cache));
            }
            move |(iq, iw): (usize, usize)| {
                let out = if have_sigma {
                    let (pr, pl, pg) = pi_blocks_for_point(dev, pi_l, pi_g, iq, iw);
                    solver.solve_point(iq, iw, Some(&pr), Some(&pl), Some(&pg))
                } else {
                    solver.solve_point(iq, iw, None, None, None)
                };
                PhononContribution::from_solution(dev, iq, iw, &out)
            }
        };
        let pobs = {
            let _span = omen_trace::span!("gf_phonons");
            exec.run(&grid_points(cfg.nk, cfg.nw), make_pworker, pacc)
        };

        let mut times = eobs.times;
        times.accumulate(&pobs.times);
        let spectral = SpectralData {
            el_current_spectrum: eobs.el_current_spectrum,
            el_current: eobs.el_current,
            el_energy_current: eobs.el_energy_current,
            ph_energy_current: pobs.ph_energy_current,
            ph_energy_density: pobs.ph_energy_density,
            ph_dos: pobs.ph_dos,
            el_density: eobs.el_density,
            contact_currents: eobs.contacts,
        };
        GfPhaseOutput {
            g_l: eobs.g_l,
            g_g: eobs.g_g,
            d_l: pobs.d_l,
            d_g: pobs.d_g,
            spectral,
            times,
        }
    }

    /// Runs the configured SSE kernel on GF outputs. The output lives in
    /// the kernel's double buffer; it stays valid until the next call.
    pub fn sse_phase(
        &mut self,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &omen_sse::SseOutput {
        // Built inline from fields: a `self.sse_problem()` call would
        // borrow all of `self` and conflict with `&mut self.kernel`.
        let scale_sigma =
            self.config.coupling * self.config.coupling * self.fgrid.weight() * self.kgrid.weight();
        let scale_pi =
            self.config.coupling * self.config.coupling * self.egrid.weight() * self.kgrid.weight();
        let prob = SseProblem::with_rev_pair(
            &self.device,
            self.config.nk,
            self.config.ne,
            self.config.nk,
            self.config.nw,
            scale_sigma,
            scale_pi,
            &self.rev_pair,
        );
        self.kernel.run(&prob, g_l, g_g, d_l, d_g)
    }

    /// One Born iteration with the configured executor; returns the record
    /// and the spectral data. The driver owns the iteration counter and
    /// the convergence baseline.
    pub fn iterate(&mut self) -> (IterationRecord, SpectralData) {
        match self.config.executor {
            ExecutorKind::Serial => self.iterate_with(&SerialExecutor),
            ExecutorKind::Rayon { threads } => self.iterate_with(&RayonExecutor::new(threads)),
            ExecutorKind::Partitioned { ranks } => {
                self.iterate_with(&PartitionedExecutor::new(ranks))
            }
            ExecutorKind::Dag { threads } => self.iterate_with(&DagExecutor::new(threads)),
            ExecutorKind::Distributed { ranks } => {
                self.iterate_with(&DistributedExecutor::new(ranks))
            }
        }
    }

    /// One Born iteration through an explicit executor.
    pub fn iterate_with<E: PointExecutor>(&mut self, exec: &E) -> (IterationRecord, SpectralData) {
        let _span = omen_trace::span!("born_iteration");
        let gf = self.gf_phase_with(exec);
        self.finish_iteration(gf)
    }

    /// Completes a Born iteration whose GF phase already ran: the SSE
    /// kernel, self-energy mixing, and the convergence bookkeeping.
    ///
    /// This is [`Simulation::iterate_with`] split at the phase boundary,
    /// so the stream pipeline (see [`crate::stream`]) can run the GF
    /// phase of sweep point *k+1* while point *k* sits in this call.
    pub fn finish_iteration(&mut self, gf: GfPhaseOutput) -> (IterationRecord, SpectralData) {
        let GfPhaseOutput {
            g_l,
            g_g,
            d_l,
            d_g,
            spectral,
            times: gf_times,
        } = gf;

        let sse_trace = omen_trace::PhaseGuard::enter("sse_phase");
        let t0 = Instant::now();
        // Inlined `sse_phase`: the kernel output borrows `self.kernel`,
        // and mixing below needs the sibling fields at the same time.
        let scale_sigma =
            self.config.coupling * self.config.coupling * self.fgrid.weight() * self.kgrid.weight();
        let scale_pi =
            self.config.coupling * self.config.coupling * self.egrid.weight() * self.kgrid.weight();
        let prob = SseProblem::with_rev_pair(
            &self.device,
            self.config.nk,
            self.config.ne,
            self.config.nk,
            self.config.nw,
            scale_sigma,
            scale_pi,
            &self.rev_pair,
        );
        let sse = self.kernel.run(&prob, &g_l, &g_g, &d_l, &d_g);
        let sse_seconds = t0.elapsed().as_secs_f64();
        let sse_flops = sse.flops;
        drop(sse_trace);

        // Mix the self-energies (layout-normalize first, allocation-free).
        let mix = self.config.mixing;
        if sse.sigma_l.layout == GLayout::PairMajor {
            mix_g(&mut self.sigma_l, &sse.sigma_l, mix);
            mix_g(&mut self.sigma_g, &sse.sigma_g, mix);
        } else {
            sse.sigma_l
                .to_layout_into(GLayout::PairMajor, &mut self.conv_sl);
            sse.sigma_g
                .to_layout_into(GLayout::PairMajor, &mut self.conv_sg);
            mix_g(&mut self.sigma_l, &self.conv_sl, mix);
            mix_g(&mut self.sigma_g, &self.conv_sg, mix);
        }
        mix_d(&mut self.pi_l, &sse.pi_l, mix);
        mix_d(&mut self.pi_g, &sse.pi_g, mix);
        // Relative Σ^< change between consecutive kernel outputs — free
        // thanks to the kernel's double buffer.
        let sigma_rel_change = self.kernel.output_delta();

        let mid = spectral.el_current.len() / 2;
        let current = spectral.el_current[mid];
        let rel_change = match self.last_current {
            Some(prev) if prev.abs() > 1e-300 => ((current - prev) / prev).abs(),
            _ => f64::INFINITY,
        };
        omen_trace::add(omen_trace::Counter::BornIterations, 1);
        omen_trace::event2("convergence", self.iteration as f64, rel_change);
        let record = IterationRecord {
            iteration: self.iteration,
            current,
            current_profile: spectral.el_current.clone(),
            rel_change,
            gf_times,
            sse_seconds,
            sse_flops,
            sigma_rel_change,
        };
        self.iteration += 1;
        self.last_current = Some(current);
        // Cached so an exhausted `run` stays total from every entry point
        // (run, iterate, or iterate_with). The clone is microseconds
        // against the RGF sweep that produced it.
        self.last_spectral = Some(spectral.clone());
        (record, spectral)
    }

    /// Runs the full self-consistent loop with the configured executor.
    pub fn run(&mut self) -> Result<SimulationResult, DriverError> {
        match self.config.executor {
            ExecutorKind::Serial => self.run_with(&SerialExecutor),
            ExecutorKind::Rayon { threads } => self.run_with(&RayonExecutor::new(threads)),
            ExecutorKind::Partitioned { ranks } => self.run_with(&PartitionedExecutor::new(ranks)),
            ExecutorKind::Dag { threads } => self.run_with(&DagExecutor::new(threads)),
            ExecutorKind::Distributed { ranks } => self.run_with(&DistributedExecutor::new(ranks)),
        }
    }

    /// Runs the full self-consistent loop through an explicit executor.
    ///
    /// The driver owns the iteration counter, so `run` continues where a
    /// previous `run`/[`Simulation::iterate`] left off. Once the cap is
    /// reached, further calls perform no work and return the last
    /// iteration's spectral data with an empty record list.
    ///
    /// Failure paths, all typed (no panics on the run path):
    /// [`DriverError::NonFinite`] when the current observable leaves the
    /// reals, [`DriverError::Cancelled`] / [`DriverError::DeadlineExceeded`]
    /// at iteration boundaries, [`DriverError::WarmDiverged`] when the
    /// seeded-run watchdog fires, and [`DriverError::Unconverged`] when
    /// the cap is hit under `require_convergence`.
    pub fn run_with<E: PointExecutor>(
        &mut self,
        exec: &E,
    ) -> Result<SimulationResult, DriverError> {
        let mut records: Vec<IterationRecord> = Vec::new();
        let mut spectral = None;
        // Supervised NaN-poisoning fault site: one deterministic decision
        // per (point, attempt) key, armed only by `set_fault_key`.
        let inject_nan = self.nan_injection_armed();
        let mut converged = false;
        while self.iteration < self.config.max_iterations {
            if let Some(err) = self.interrupted() {
                return Err(err);
            }
            let (mut rec, spec) = self.iterate_with(exec);
            if inject_nan && records.is_empty() {
                rec.current = f64::NAN;
                self.last_current = Some(f64::NAN);
            }
            if !rec.current.is_finite() {
                return Err(DriverError::NonFinite {
                    iteration: rec.iteration,
                });
            }
            let done = rec.rel_change < self.config.tolerance && rec.iteration > 0;
            let it = rec.iteration;
            let rel = rec.rel_change;
            records.push(rec);
            spectral = Some(spec);
            if self.seeded
                && self.config.warm_divergence_after > 0
                && records.len() >= self.config.warm_divergence_after
                && rel.is_finite()
                && rel > self.config.warm_divergence_threshold
            {
                return Err(DriverError::WarmDiverged {
                    iteration: it,
                    rel_change: rel,
                });
            }
            if done {
                converged = true;
                break;
            }
        }
        if self.config.require_convergence && !converged {
            if let Some(last) = records.last() {
                return Err(DriverError::Unconverged {
                    iterations: self.iteration,
                    rel_change: last.rel_change,
                });
            }
        }
        // `max_iterations >= 1` is validated, so either this call or a
        // previous one has iterated; both leave `last_spectral` set. The
        // guard stays typed regardless — the run path does not panic.
        let spectral = match spectral.or_else(|| self.last_spectral.clone()) {
            Some(s) => s,
            None => {
                return Err(DriverError::Unconverged {
                    iterations: 0,
                    rel_change: f64::INFINITY,
                })
            }
        };
        Ok(SimulationResult { records, spectral })
    }
}

fn mix_g(state: &mut GTensor, new: &GTensor, mix: f64) {
    for (s, n) in state.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *s = s.scale(1.0 - mix) + n.scale(mix);
    }
}

fn mix_d(state: &mut DTensor, new: &DTensor, mix: f64) {
    for (s, n) in state.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *s = s.scale(1.0 - mix) + n.scale(mix);
    }
}

/// Final output of [`Simulation::run`].
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// One record per Born iteration.
    pub records: Vec<IterationRecord>,
    /// Spectral data of the final iteration.
    pub spectral: SpectralData,
}

impl SimulationResult {
    /// The converged electrical current. When this run performed no
    /// iterations (a `run` after the cap), the value is read from the
    /// carried-over spectral data so it stays consistent with
    /// [`SimulationResult::spectral`].
    pub fn current(&self) -> f64 {
        self.records.last().map(|r| r.current).unwrap_or_else(|| {
            let prof = &self.spectral.el_current;
            if prof.is_empty() {
                0.0
            } else {
                prof[prof.len() / 2]
            }
        })
    }

    /// Convergence history of the current (Fig. 7b's x-axis).
    pub fn current_history(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.current).collect()
    }

    /// `true` if the final relative change *of this run* met the
    /// tolerance (`false` when the run performed no iterations).
    pub fn converged(&self, tolerance: f64) -> bool {
        self.records
            .last()
            .map(|r| r.rel_change < tolerance)
            .unwrap_or(false)
    }

    /// Max relative spread of the current profile (conservation check).
    /// Zero when no iterations ran (e.g. a `run` after the cap).
    pub fn current_nonuniformity(&self) -> f64 {
        let Some(last) = self.records.last() else {
            return 0.0;
        };
        let prof = &last.current_profile;
        let mean = prof.iter().sum::<f64>() / prof.len() as f64;
        if mean.abs() < 1e-300 {
            return 0.0;
        }
        prof.iter().map(|j| (j - mean).abs()).fold(0.0, f64::max) / mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelVariant;
    use omen_linalg::Normalization;

    fn sim(cfg: SimulationConfig) -> Simulation {
        Simulation::new(cfg).expect("valid test config")
    }

    #[test]
    fn ballistic_iteration_conserves_current() {
        let mut cfg = SimulationConfig::tiny();
        cfg.coupling = 0.0; // ballistic: Σ stays zero
        cfg.max_iterations = 1;
        let result = sim(cfg).run().expect("run succeeds");
        assert!(result.current() > 0.0, "forward bias must drive current");
        assert!(
            result.current_nonuniformity() < 1e-3,
            "ballistic current must be conserved: {}",
            result.current_nonuniformity()
        );
        // Contact currents: left injects what right absorbs.
        let (il, ir) = result.spectral.contact_currents;
        assert!(il > 0.0);
        assert!(
            (il + ir).abs() < 1e-3 * il.abs(),
            "i_L = −i_R: {il} vs {ir}"
        );
    }

    #[test]
    fn scattering_changes_current_and_converges() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 14;
        let result = sim(cfg.clone()).run().expect("run succeeds");
        assert!(result.records.len() >= 2);
        // The self-consistent loop converges geometrically.
        let last = result.records.last().unwrap();
        assert!(
            last.rel_change < 1e-3,
            "Born loop drifting: rel change {}",
            last.rel_change
        );
        // Scattering current differs from ballistic.
        let mut cfg_b = cfg;
        cfg_b.coupling = 0.0;
        cfg_b.max_iterations = 1;
        let ballistic = sim(cfg_b).run().expect("run succeeds");
        // Scattering suppresses the ballistic current measurably.
        assert!(
            ballistic.current() - result.current() > 1e-3 * ballistic.current(),
            "SSE must suppress the current: {} vs ballistic {}",
            result.current(),
            ballistic.current()
        );
        // Current stays conserved within SCBA tolerance.
        assert!(
            result.current_nonuniformity() < 5e-3,
            "current profile spread {}",
            result.current_nonuniformity()
        );
    }

    #[test]
    fn kernel_variants_agree() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        let run = |kernel| {
            let mut c = cfg.clone();
            c.kernel = kernel;
            sim(c).run().expect("run succeeds").current()
        };
        let reference = run(KernelVariant::Reference);
        let transformed = run(KernelVariant::Transformed);
        let mixed = run(KernelVariant::Mixed(Normalization::PerTensor));
        assert!(
            ((transformed - reference) / reference).abs() < 1e-10,
            "transformed {transformed} vs reference {reference}"
        );
        assert!(
            ((mixed - reference) / reference).abs() < 1e-3,
            "mixed {mixed} vs reference {reference}"
        );
    }

    #[test]
    fn zero_bias_zero_current() {
        let mut cfg = SimulationConfig::tiny();
        cfg.mu_drain = cfg.mu_source;
        cfg.max_iterations = 2;
        let result = sim(cfg).run().expect("run succeeds");
        let scale = result
            .spectral
            .el_current_spectrum
            .iter()
            .flat_map(|v| v.iter())
            .map(|j| j.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        assert!(
            result.current().abs() < 1e-6 * scale.max(1.0),
            "zero bias current {}",
            result.current()
        );
    }

    #[test]
    fn phonon_energy_density_positive() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        let result = sim(cfg).run().expect("run succeeds");
        // Thermal occupation of phonon modes is non-negative everywhere.
        for (a, &u) in result.spectral.ph_energy_density.iter().enumerate() {
            assert!(u >= -1e-9, "atom {a}: phonon energy density {u}");
        }
        // DOS rows populated.
        assert!(result
            .spectral
            .ph_dos
            .iter()
            .all(|row| row.iter().any(|&d| d > 0.0)));
    }

    #[test]
    fn driver_owns_iteration_counter() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 3;
        let mut s = sim(cfg);
        assert_eq!(s.iterations_done(), 0);
        let (r0, _) = s.iterate();
        assert_eq!(r0.iteration, 0);
        assert!(r0.rel_change.is_infinite(), "no baseline on iteration 0");
        let (r1, _) = s.iterate();
        assert_eq!(r1.iteration, 1);
        assert!(r1.rel_change.is_finite());
        assert_eq!(s.iterations_done(), 2);
        // `run` continues from the counter — records pick up at 2.
        let result = s.run().expect("run succeeds");
        assert_eq!(result.records.first().unwrap().iteration, 2);
    }

    #[test]
    fn custom_kernel_plugs_in() {
        // A pass-through wrapper renaming the inner kernel.
        struct Tagged(omen_sse::TransformedKernel);
        impl omen_sse::SseKernel for Tagged {
            fn name(&self) -> &'static str {
                "tagged"
            }
            fn run(
                &mut self,
                prob: &omen_sse::SseProblem,
                g_l: &GTensor,
                g_g: &GTensor,
                d_l: &DTensor,
                d_g: &DTensor,
            ) -> &omen_sse::SseOutput {
                self.0.run(prob, g_l, g_g, d_l, d_g)
            }
            fn state(&self) -> &omen_sse::KernelState {
                self.0.state()
            }
            fn state_mut(&mut self) -> &mut omen_sse::KernelState {
                self.0.state_mut()
            }
        }
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        let baseline = sim(cfg.clone()).run().expect("run succeeds").current();
        let mut s = sim(cfg);
        s.set_kernel(Box::new(Tagged(omen_sse::TransformedKernel::new())));
        assert_eq!(s.kernel().name(), "tagged");
        let current = s.run().expect("run succeeds").current();
        assert_eq!(current, baseline, "pass-through kernel is transparent");
    }

    #[test]
    fn warm_start_matches_cold_with_fewer_iterations() {
        let cfg = SimulationConfig::tiny();
        let mut cold = sim(cfg.clone());
        let cold_result = cold.run().expect("run succeeds");
        let cold_iters = cold_result.records.len();
        assert!(cold_iters >= 3, "cold run must do real work");
        let data = cold.warm_start_data();
        assert!(data.bytes() > 0);

        let mut warm = sim(cfg);
        assert!(!warm.is_seeded());
        warm.warm_start_from(&data).expect("shapes match");
        assert!(warm.is_seeded());
        let warm_result = warm.run().expect("run succeeds");
        let warm_iters = warm_result.records.len();
        assert!(
            warm_iters < cold_iters,
            "warm start must save Born iterations: {warm_iters} vs {cold_iters}"
        );
        let rel = ((warm_result.current() - cold_result.current()) / cold_result.current()).abs();
        assert!(
            rel < 5.0 * cfg_tolerance(),
            "warm current must match cold: rel diff {rel}"
        );
        // The kernel double buffer reports Σ^< deltas from the second
        // kernel invocation on.
        if warm_result.records.len() >= 2 {
            assert!(warm_result.records[1].sigma_rel_change.is_some());
        }
    }

    fn cfg_tolerance() -> f64 {
        SimulationConfig::tiny().tolerance
    }

    #[test]
    fn cancelled_token_interrupts_run_before_work() {
        let mut s = sim(SimulationConfig::tiny());
        let token = CancelToken::new();
        s.set_cancel_token(token.clone());
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(s.run().err(), Some(DriverError::Cancelled { iteration: 0 }));
        assert_eq!(s.iterations_done(), 0, "no iteration may start");
    }

    #[test]
    fn expired_deadline_interrupts_run() {
        let mut s = sim(SimulationConfig::tiny());
        s.set_deadline(Instant::now());
        assert_eq!(
            s.run().err(),
            Some(DriverError::DeadlineExceeded { iteration: 0 })
        );
    }

    #[test]
    fn require_convergence_turns_cap_into_typed_error() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        cfg.tolerance = 1e-14; // unreachable in 2 iterations
        cfg.require_convergence = true;
        match sim(cfg).run() {
            Err(DriverError::Unconverged {
                iterations,
                rel_change,
            }) => {
                assert_eq!(iterations, 2);
                assert!(rel_change > 1e-14);
            }
            other => panic!("expected Unconverged, got {other:?}"),
        }
    }

    #[test]
    fn nan_donor_yields_nonfinite_error_not_panic() {
        let mut donor = sim(SimulationConfig::tiny());
        donor.run().expect("run succeeds");
        let mut data = donor.warm_start_data();
        // Corrupt the donor the way a bad deposit would: poison Σ^<.
        data.sigma_l.as_mut_slice()[0] = omen_linalg::c64(f64::NAN, 0.0);
        let mut warm = sim(SimulationConfig::tiny());
        warm.warm_start_from(&data).expect("shapes match");
        match warm.run() {
            Err(DriverError::NonFinite { .. }) => {}
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn warm_divergence_watchdog_fires_on_seeded_runs_only() {
        let mut donor = sim(SimulationConfig::tiny());
        donor.run().expect("run succeeds");
        let data = donor.warm_start_data();

        // An absurdly tight bound makes any still-converging seeded run
        // trip the watchdog — the mechanism under test, not the donor.
        let mut cfg = SimulationConfig::tiny();
        cfg.mu_drain += 0.05; // move the fixed point so iteration continues
        cfg.warm_divergence_after = 2;
        cfg.warm_divergence_threshold = 1e-12;
        let mut warm = sim(cfg.clone());
        warm.warm_start_from(&data).expect("shapes match");
        match warm.run() {
            Err(DriverError::WarmDiverged { iteration, .. }) => {
                assert!(iteration >= 1);
            }
            other => panic!("expected WarmDiverged, got {other:?}"),
        }

        // The same config unseeded never raises WarmDiverged.
        let mut cold = sim(cfg);
        assert!(cold.run().is_ok());
    }

    #[test]
    fn warm_start_rejects_mismatched_shapes_and_running_sims() {
        let mut donor = sim(SimulationConfig::tiny());
        donor.run().expect("run succeeds");
        let data = donor.warm_start_data();

        // A different energy grid cannot absorb the donor's tensors.
        let mut other_cfg = SimulationConfig::tiny();
        other_cfg.ne += 2;
        let mut other = sim(other_cfg);
        assert!(matches!(
            other.warm_start_from(&data),
            Err(WarmStartError::ShapeMismatch(_))
        ));

        // A simulation that already iterated refuses the seed.
        let mut running = sim(SimulationConfig::tiny());
        running.iterate();
        assert!(matches!(
            running.warm_start_from(&data),
            Err(WarmStartError::AlreadyRunning)
        ));
    }

    #[test]
    fn shared_boundary_cache_hits_after_first_iteration() {
        let cfg = SimulationConfig::tiny();
        let nbc_el = cfg.nk * cfg.ne;
        let nbc_ph = cfg.nk * cfg.nw;
        let mut s = sim(cfg);
        s.iterate();
        let (el0, ph0) = s.boundary_stats().expect("caching config");
        assert_eq!(el0.misses, nbc_el as u64);
        assert_eq!(ph0.misses, nbc_ph as u64);
        s.iterate();
        let (el1, ph1) = s.boundary_stats().expect("caching config");
        // Second Born iteration re-reads every boundary from the cache.
        assert_eq!(el1.hits, nbc_el as u64);
        assert_eq!(ph1.hits, nbc_ph as u64);
        assert_eq!(el1.misses, nbc_el as u64, "no recomputation");
    }

    #[test]
    fn warm_start_after_bias_step_refines_boundaries() {
        let mut donor = sim(SimulationConfig::tiny());
        donor.run().expect("run succeeds");
        let data = donor.warm_start_data();

        // Small bias step: same scenario shape, shifted drain potential.
        let mut cfg = SimulationConfig::tiny();
        cfg.mu_drain += 0.01;
        let mut warm = sim(cfg);
        warm.warm_start_with(&data, true).expect("shapes match");
        warm.iterate();
        let (el, ph) = warm.boundary_stats().expect("caching config");
        // Electron boundaries re-refine from the donor's surface GFs …
        assert!(
            el.refined + el.fallbacks > 0,
            "electron leads must consume the seeds"
        );
        // … while phonon boundaries carry over exactly (pure hits).
        assert_eq!(ph.misses, 0, "phonon boundaries never recompute");
        assert!(ph.hits > 0);
    }
}
