//! # omen-core
//!
//! The application layer of the reproduction: grids, the self-consistent
//! Born loop coupling the GF and SSE phases, and the electro-thermal
//! observables of Figs. 1(d) and 11.

pub mod grids;
pub mod simulation;
pub mod state;
pub mod thermal;

pub use omen_linalg::Normalization;
pub use grids::{EnergyGrid, FrequencyGrid, MomentumGrid};
pub use simulation::{
    IterationRecord, KernelVariant, Simulation, SimulationConfig, SimulationResult, SpectralData,
};
pub use thermal::{
    electro_thermal_report, equilibrium_energy, fit_temperature, ElectroThermalReport,
    KB_EV_PER_K,
};
pub use state::{
    extract_electron_blocks, extract_phonon_blocks, pi_blocks_for_point, sigma_blocks_for_point,
    zero_tensors,
};
