//! # omen-core
//!
//! The application layer of the reproduction: grids, the self-consistent
//! Born loop coupling the GF and SSE phases, and the electro-thermal
//! observables of Figs. 1(d) and 11.
//!
//! The driver is organized as an execution engine:
//!
//! * [`builder`] — validated configuration ([`SimulationBuilder`],
//!   [`ConfigError`]) with the [`SimulationConfig::tiny`] /
//!   [`SimulationConfig::demo`] presets;
//! * [`executor`] — pluggable [`PointExecutor`] engines for the
//!   embarrassingly-parallel point sweeps (serial, thread-parallel,
//!   rank-partitioned);
//! * [`observables`] — per-point contributions folded into mergeable
//!   [`Observables`] accumulators;
//! * [`driver`] — the [`Simulation`] Born loop dispatching through the
//!   [`omen_sse::SseKernel`] trait;
//! * [`stream`] — the overlapped sweep pipeline ([`run_overlapped`])
//!   running the GF phase of point *k+1* against the SSE phase of
//!   point *k* on `omen-sched`'s stream executor.

pub mod builder;
pub mod driver;
pub mod executor;
pub mod grids;
pub mod observables;
pub mod state;
pub mod stream;
pub mod thermal;

pub use omen_linalg::Normalization;
pub use omen_sse::{KernelState, MixedKernel, ReferenceKernel, SseKernel, TransformedKernel};

pub use builder::{ConfigError, KernelVariant, SimulationBuilder, SimulationConfig};
pub use driver::{
    CancelToken, DriverError, GfPhaseOutput, IterationRecord, Simulation, SimulationResult,
    SpectralData, WarmStartData, WarmStartError,
};
pub use executor::{
    grid_points, DagExecutor, DistributedExecutor, ExecutorKind, GridPoint, PartitionedExecutor,
    PointExecutor, RayonExecutor, SerialExecutor,
};
pub use grids::{EnergyGrid, FrequencyGrid, MomentumGrid};
pub use observables::{
    ElectronContribution, ElectronObservables, Observables, PhononContribution, PhononObservables,
};
pub use omen_comm::{CommPlan, PlanKernel};
pub use omen_rgf::BoundaryCacheStats;
pub use state::{
    extract_electron_blocks, extract_phonon_blocks, pi_blocks_for_point, sigma_blocks_for_point,
    zero_tensors,
};
pub use stream::{run_overlapped, OverlapOutcome, OverlappedSweep, SweepPoint};
pub use thermal::{
    electro_thermal_report, equilibrium_energy, fit_temperature, ElectroThermalReport, KB_EV_PER_K,
};
