//! Energy, momentum, and frequency grids.
//!
//! The phonon frequencies are commensurate with the energy grid
//! (`ℏω_m = (m+1)·dE`) so the `E ± ℏω` stencil of the SSE lands exactly on
//! energy grid points — the discretization behind the paper's
//! `E − Nω : E + Nω` stencil (Fig. 6).

/// Uniform electron energy grid.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyGrid {
    /// First energy (eV).
    pub e_min: f64,
    /// Grid spacing (eV).
    pub de: f64,
    /// Point count (`NE`).
    pub ne: usize,
}

impl EnergyGrid {
    /// Builds a grid spanning `[e_min, e_max]` with `ne` points.
    pub fn new(e_min: f64, e_max: f64, ne: usize) -> Self {
        assert!(ne >= 2, "need at least two energy points");
        assert!(e_max > e_min, "empty energy window");
        EnergyGrid {
            e_min,
            de: (e_max - e_min) / (ne - 1) as f64,
            ne,
        }
    }

    /// Energy of grid point `ie`.
    #[inline]
    pub fn value(&self, ie: usize) -> f64 {
        debug_assert!(ie < self.ne);
        self.e_min + self.de * ie as f64
    }

    /// All energies.
    pub fn values(&self) -> Vec<f64> {
        (0..self.ne).map(|ie| self.value(ie)).collect()
    }

    /// Integration weight of one point: `dE / 2π` (atomic-like units with
    /// `ℏ = 1`), times spin degeneracy 2.
    pub fn weight(&self) -> f64 {
        2.0 * self.de / (2.0 * std::f64::consts::PI)
    }
}

/// Periodic momentum grid over `[−π, π)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MomentumGrid {
    /// Point count (`Nkz`).
    pub nk: usize,
}

impl MomentumGrid {
    /// Builds an `nk`-point grid.
    pub fn new(nk: usize) -> Self {
        assert!(nk >= 1);
        MomentumGrid { nk }
    }

    /// The `kz` value of index `ik`: `2π·ik/nk − π`.
    #[inline]
    pub fn value(&self, ik: usize) -> f64 {
        debug_assert!(ik < self.nk);
        2.0 * std::f64::consts::PI * ik as f64 / self.nk as f64 - std::f64::consts::PI
    }

    /// All momenta.
    pub fn values(&self) -> Vec<f64> {
        (0..self.nk).map(|ik| self.value(ik)).collect()
    }

    /// Momentum-average weight `1/nk`.
    pub fn weight(&self) -> f64 {
        1.0 / self.nk as f64
    }
}

/// Phonon frequency grid commensurate with an energy grid.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequencyGrid {
    /// Energy spacing it derives from (eV).
    pub de: f64,
    /// Point count (`Nω`).
    pub nw: usize,
}

impl FrequencyGrid {
    /// Builds `nw` frequencies `ω_m = (m+1)·de`.
    pub fn new(de: f64, nw: usize) -> Self {
        assert!(nw >= 1);
        assert!(de > 0.0);
        FrequencyGrid { de, nw }
    }

    /// Frequency of index `m` (in energy units, `ℏ = 1`).
    #[inline]
    pub fn value(&self, m: usize) -> f64 {
        debug_assert!(m < self.nw);
        (m + 1) as f64 * self.de
    }

    /// All frequencies.
    pub fn values(&self) -> Vec<f64> {
        (0..self.nw).map(|m| self.value(m)).collect()
    }

    /// Integration weight `dω / 2π`.
    pub fn weight(&self) -> f64 {
        self.de / (2.0 * std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grid_spans_window() {
        let g = EnergyGrid::new(-1.0, 1.0, 5);
        assert_eq!(g.values(), vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert!((g.de - 0.5).abs() < 1e-15);
        assert!(g.weight() > 0.0);
    }

    #[test]
    fn momentum_grid_periodic_range() {
        let g = MomentumGrid::new(4);
        let v = g.values();
        assert!((v[0] + std::f64::consts::PI).abs() < 1e-15);
        assert!(v
            .iter()
            .all(|&k| (-std::f64::consts::PI..std::f64::consts::PI).contains(&k)));
        // Uniform spacing.
        for w in v.windows(2) {
            assert!((w[1] - w[0] - std::f64::consts::PI / 2.0).abs() < 1e-14);
        }
    }

    #[test]
    fn frequency_grid_commensurate() {
        let e = EnergyGrid::new(0.0, 1.0, 11);
        let f = FrequencyGrid::new(e.de, 3);
        assert_eq!(f.values(), vec![0.1, 0.2, 0.30000000000000004]);
        // ω_m is exactly (m+1) energy steps: the stencil lands on grid.
        for m in 0..3 {
            let steps = f.value(m) / e.de;
            assert!((steps - (m + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_energy_grid_panics() {
        let _ = EnergyGrid::new(0.0, 1.0, 1);
    }
}
