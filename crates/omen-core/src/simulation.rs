//! The self-consistent GF ↔ SSE loop (Fig. 2 / Fig. 4 of the paper).
//!
//! Each iteration solves every electron `(kz, E)` and phonon `(qz, ω)`
//! point with RGF under the current scattering self-energies, evaluates
//! the coupled self-energies with one of the three SSE kernels, mixes, and
//! repeats until the electrical current converges (the paper: 20–100
//! Born iterations).

use crate::grids::{EnergyGrid, FrequencyGrid, MomentumGrid};
use crate::state::{
    extract_electron_blocks, extract_phonon_blocks, pi_blocks_for_point, sigma_blocks_for_point,
    zero_tensors,
};
use omen_device::{DeviceConfig, DeviceStructure};
use omen_rgf::{
    contact_current, interface_current, CacheMode, ElectronParams, ElectronSolver, PhaseTimes,
    PhononParams, PhononSolver,
};
use omen_linalg::Normalization;
use omen_sse::{
    sse_mixed, sse_reference, sse_transformed, DTensor, GLayout, GTensor, MixedConfig, SseProblem,
};
use std::time::Instant;

/// Which SSE kernel the simulation runs (§5.3–5.4 / Table 10 / Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelVariant {
    /// OMEN-style reference loops.
    Reference,
    /// DaCe-transformed kernel.
    Transformed,
    /// Mixed-precision (binary16) kernel with the given normalization.
    Mixed(Normalization),
}

/// Full configuration of a simulation.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Device geometry/material.
    pub device: DeviceConfig,
    /// Momentum points (`Nkz = Nqz`).
    pub nk: usize,
    /// Energy points (`NE`).
    pub ne: usize,
    /// Phonon frequency points (`Nω`).
    pub nw: usize,
    /// Energy window (eV).
    pub e_min: f64,
    /// Upper edge of the energy window (eV).
    pub e_max: f64,
    /// Source chemical potential (eV).
    pub mu_source: f64,
    /// Drain chemical potential (eV); `Vds = mu_source − mu_drain`.
    pub mu_drain: f64,
    /// Contact temperature `k_B·T` (eV).
    pub kt: f64,
    /// Electron-phonon coupling strength (dimensionless prefactor).
    pub coupling: f64,
    /// Born iteration cap.
    pub max_iterations: usize,
    /// Relative current-change convergence threshold.
    pub tolerance: f64,
    /// Linear mixing factor on the self-energies (1 = no damping).
    pub mixing: f64,
    /// SSE kernel.
    pub kernel: KernelVariant,
    /// GF-phase caching policy (§7.1.2).
    pub cache_mode: CacheMode,
    /// Electron broadening (eV).
    pub eta: f64,
    /// Phonon broadening (energy units).
    pub eta_ph: f64,
    /// Potential ramp `(x_on, x_off)` as fractions of the device length.
    pub ramp: (f64, f64),
}

impl SimulationConfig {
    /// A stable laptop-scale configuration on the `tiny` device.
    pub fn tiny() -> SimulationConfig {
        SimulationConfig {
            device: DeviceConfig::tiny(),
            nk: 2,
            ne: 24,
            nw: 2,
            e_min: -1.2,
            e_max: 1.2,
            mu_source: 0.3,
            mu_drain: 0.0,
            kt: 0.025,
            coupling: 0.005,
            max_iterations: 12,
            tolerance: 1e-4,
            mixing: 0.6,
            kernel: KernelVariant::Transformed,
            cache_mode: CacheMode::CacheBcSpec,
            eta: 1e-5,
            eta_ph: 2e-5,
            ramp: (0.3, 0.7),
        }
    }

    /// The electro-thermal demonstrator (Fig. 11 scale-down).
    pub fn demo() -> SimulationConfig {
        SimulationConfig {
            device: DeviceConfig::demo(),
            nk: 3,
            ne: 48,
            nw: 3,
            ..SimulationConfig::tiny()
        }
    }
}

/// Accumulated per-iteration observables.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Iteration index (0 = ballistic).
    pub iteration: usize,
    /// Electrical current at the mid-device interface (e/ℏ·eV units).
    pub current: f64,
    /// Current per interface (conservation diagnostic).
    pub current_profile: Vec<f64>,
    /// Relative change of the current w.r.t. the previous iteration.
    pub rel_change: f64,
    /// GF-phase wall-clock breakdown.
    pub gf_times: PhaseTimes,
    /// SSE wall-clock (s).
    pub sse_seconds: f64,
    /// SSE flops this iteration.
    pub sse_flops: u64,
}

/// Energy/space-resolved outputs of the GF phase of the last iteration.
#[derive(Clone, Debug)]
pub struct SpectralData {
    /// Electron current spectrum `j(E, interface)` (momentum-averaged).
    pub el_current_spectrum: Vec<Vec<f64>>,
    /// Electron charge current per interface.
    pub el_current: Vec<f64>,
    /// Electron *energy* current per interface (weighted by `E`).
    pub el_energy_current: Vec<f64>,
    /// Phonon energy current per interface (weighted by `ω`).
    pub ph_energy_current: Vec<f64>,
    /// Per-atom phonon energy density (for the temperature map).
    pub ph_energy_density: Vec<f64>,
    /// Per-atom phonon density of states, resolved per frequency:
    /// `dos[m][a]`.
    pub ph_dos: Vec<Vec<f64>>,
    /// Per-atom electron occupation.
    pub el_density: Vec<f64>,
    /// Meir-Wingreen contact currents (left, right).
    pub contact_currents: (f64, f64),
}

/// The simulation driver.
pub struct Simulation {
    /// Configuration (read-only after construction).
    pub config: SimulationConfig,
    /// The synthetic device.
    pub device: DeviceStructure,
    /// Energy grid.
    pub egrid: EnergyGrid,
    /// Momentum grid.
    pub kgrid: MomentumGrid,
    /// Frequency grid.
    pub fgrid: FrequencyGrid,
    /// Per-atom electrostatic potential.
    pub potential: Vec<f64>,
    sigma_l: GTensor,
    sigma_g: GTensor,
    pi_l: DTensor,
    pi_g: DTensor,
    first_iteration_done: bool,
}

impl Simulation {
    /// Builds the simulation (device assembly included).
    pub fn new(config: SimulationConfig) -> Simulation {
        let device = DeviceStructure::build(config.device.clone());
        let egrid = EnergyGrid::new(config.e_min, config.e_max, config.ne);
        let kgrid = MomentumGrid::new(config.nk);
        let fgrid = FrequencyGrid::new(egrid.de, config.nw);
        let vds = config.mu_source - config.mu_drain;
        let potential = device.linear_potential(vds, config.ramp.0, config.ramp.1);
        let (sigma_l, sigma_g, pi_l, pi_g) =
            zero_tensors(&device, config.nk, config.ne, config.nk, config.nw);
        Simulation {
            config,
            device,
            egrid,
            kgrid,
            fgrid,
            potential,
            sigma_l,
            sigma_g,
            pi_l,
            pi_g,
            first_iteration_done: false,
        }
    }

    /// The SSE problem bound to this simulation's grids and couplings.
    pub fn sse_problem(&self) -> SseProblem<'_> {
        let scale_sigma =
            self.config.coupling * self.config.coupling * self.fgrid.weight() * self.kgrid.weight();
        let scale_pi =
            self.config.coupling * self.config.coupling * self.egrid.weight() * self.kgrid.weight();
        SseProblem::new(
            &self.device,
            self.config.nk,
            self.config.ne,
            self.config.nk,
            self.config.nw,
            scale_sigma,
            scale_pi,
        )
    }

    fn electron_params(&self) -> ElectronParams {
        ElectronParams {
            eta: self.config.eta,
            mu_source: self.config.mu_source,
            mu_drain: self.config.mu_drain,
            kt: self.config.kt,
            ..ElectronParams::default()
        }
    }

    fn phonon_params(&self) -> PhononParams {
        PhononParams {
            eta: self.config.eta_ph,
            kt: self.config.kt,
            ..PhononParams::default()
        }
    }

    /// Runs the GF phase: every `(kz, E)` and `(qz, ω)` point, returning
    /// the SSE input tensors plus the spectral observables.
    pub fn gf_phase(&mut self) -> (GTensor, GTensor, DTensor, DTensor, SpectralData, PhaseTimes) {
        let dev = &self.device;
        let cfg = &self.config;
        let nb = dev.bnum();
        let (mut g_l, mut g_g, mut d_l, mut d_g) =
            zero_tensors(dev, cfg.nk, cfg.ne, cfg.nk, cfg.nw);
        let mut times = PhaseTimes::default();

        let mut el_current_spectrum = vec![vec![0.0; nb - 1]; cfg.ne];
        let mut el_current = vec![0.0; nb - 1];
        let mut el_energy_current = vec![0.0; nb - 1];
        let mut ph_energy_current = vec![0.0; nb - 1];
        let mut ph_energy_density = vec![0.0; dev.num_atoms()];
        let mut ph_dos = vec![vec![0.0; dev.num_atoms()]; cfg.nw];
        let mut el_density = vec![0.0; dev.num_atoms()];
        let mut contact_l = 0.0;
        let mut contact_r = 0.0;

        let have_sigma = self.first_iteration_done;
        let w_e = self.egrid.weight() * self.kgrid.weight();
        let w_ph = self.fgrid.weight() * self.kgrid.weight();

        // --- electrons ---
        let mut esolver = ElectronSolver::new(
            dev,
            self.potential.clone(),
            self.electron_params(),
            cfg.cache_mode,
            self.kgrid.values(),
            self.egrid.values(),
        );
        for ik in 0..cfg.nk {
            for ie in 0..cfg.ne {
                let out = if have_sigma {
                    let (sr, sl, sg) =
                        sigma_blocks_for_point(dev, &self.sigma_l, &self.sigma_g, ik, ie);
                    esolver.solve(ik, ie, Some(&sr), Some(&sl), Some(&sg))
                } else {
                    esolver.solve(ik, ie, None, None, None)
                };
                times.accumulate(&out.times);
                extract_electron_blocks(dev, &out.sol, ik, ie, &mut g_l, &mut g_g);
                let e = self.egrid.value(ie);
                for n in 0..nb - 1 {
                    let j = interface_current(&out.m.upper[n], &out.sol.gl_lower[n]);
                    el_current_spectrum[ie][n] += j * self.kgrid.weight();
                    el_current[n] += j * w_e;
                    el_energy_current[n] += e * j * w_e;
                }
                for (a, atom) in dev.lattice.atoms.iter().enumerate() {
                    let norb = dev.material.norb;
                    let r0 = atom.slab_offset * norb;
                    let occ: f64 = (0..norb)
                        .map(|o| out.sol.gl_diag[atom.slab][(r0 + o, r0 + o)].im)
                        .sum();
                    el_density[a] += occ * w_e;
                }
                contact_l += contact_current(
                    &out.boundary_lg_left.0,
                    &out.boundary_lg_left.1,
                    &out.sol.gl_diag[0],
                    &out.sol.gg_diag[0],
                ) * w_e;
                contact_r += contact_current(
                    &out.boundary_lg_right.0,
                    &out.boundary_lg_right.1,
                    &out.sol.gl_diag[nb - 1],
                    &out.sol.gg_diag[nb - 1],
                ) * w_e;
            }
        }

        // --- phonons ---
        let mut psolver = PhononSolver::new(
            dev,
            self.phonon_params(),
            cfg.cache_mode,
            self.kgrid.values(),
            self.fgrid.values(),
        );
        for iq in 0..cfg.nk {
            for iw in 0..cfg.nw {
                let out = if have_sigma {
                    let (pr, pl, pg) = pi_blocks_for_point(dev, &self.pi_l, &self.pi_g, iq, iw);
                    psolver.solve(iq, iw, Some(&pr), Some(&pl), Some(&pg))
                } else {
                    psolver.solve(iq, iw, None, None, None)
                };
                times.accumulate(&out.times);
                extract_phonon_blocks(dev, &out.sol, iq, iw, &mut d_l, &mut d_g);
                let w = self.fgrid.value(iw);
                for n in 0..nb - 1 {
                    let j = interface_current(&out.m.upper[n], &out.sol.gl_lower[n]);
                    ph_energy_current[n] += w * j * w_ph;
                }
                for (a, atom) in dev.lattice.atoms.iter().enumerate() {
                    let r0 = atom.slab_offset * 3;
                    // Boson convention D^< = n·(D^R − D^A): the occupation
                    // is −Im diag(D^<) (opposite sign to electrons).
                    let occ: f64 = (0..3)
                        .map(|x| -out.sol.gl_diag[atom.slab][(r0 + x, r0 + x)].im)
                        .sum();
                    ph_energy_density[a] += w * occ * w_ph;
                    let spectral: f64 = (0..3)
                        .map(|x| {
                            let z = out.sol.gr_diag[atom.slab][(r0 + x, r0 + x)];
                            -2.0 * z.im
                        })
                        .sum();
                    ph_dos[iw][a] += spectral * self.kgrid.weight();
                }
            }
        }

        let spectral = SpectralData {
            el_current_spectrum,
            el_current,
            el_energy_current,
            ph_energy_current,
            ph_energy_density,
            ph_dos,
            el_density,
            contact_currents: (contact_l, contact_r),
        };
        (g_l, g_g, d_l, d_g, spectral, times)
    }

    /// Runs the configured SSE kernel on GF outputs.
    pub fn sse_phase(
        &self,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> omen_sse::SseOutput {
        let prob = self.sse_problem();
        match self.config.kernel {
            KernelVariant::Reference => sse_reference(&prob, g_l, g_g, d_l, d_g),
            KernelVariant::Transformed => {
                let gl = g_l.to_layout(GLayout::AtomMajor);
                let gg = g_g.to_layout(GLayout::AtomMajor);
                sse_transformed(&prob, &gl, &gg, d_l, d_g)
            }
            KernelVariant::Mixed(norm) => {
                let gl = g_l.to_layout(GLayout::AtomMajor);
                let gg = g_g.to_layout(GLayout::AtomMajor);
                sse_mixed(
                    &prob,
                    &gl,
                    &gg,
                    d_l,
                    d_g,
                    MixedConfig {
                        normalization: norm,
                    },
                )
            }
        }
    }

    /// One Born iteration; returns the record and the spectral data.
    pub fn iterate(&mut self, previous_current: Option<f64>) -> (IterationRecord, SpectralData) {
        let (g_l, g_g, d_l, d_g, spectral, gf_times) = self.gf_phase();

        let t0 = Instant::now();
        let sse = self.sse_phase(&g_l, &g_g, &d_l, &d_g);
        let sse_seconds = t0.elapsed().as_secs_f64();

        // Mix the self-energies (layout-normalize first).
        let mix = self.config.mixing;
        let new_sl = sse.sigma_l.to_layout(GLayout::PairMajor);
        let new_sg = sse.sigma_g.to_layout(GLayout::PairMajor);
        mix_g(&mut self.sigma_l, &new_sl, mix);
        mix_g(&mut self.sigma_g, &new_sg, mix);
        mix_d(&mut self.pi_l, &sse.pi_l, mix);
        mix_d(&mut self.pi_g, &sse.pi_g, mix);
        self.first_iteration_done = true;

        let mid = spectral.el_current.len() / 2;
        let current = spectral.el_current[mid];
        let rel_change = match previous_current {
            Some(prev) if prev.abs() > 1e-300 => ((current - prev) / prev).abs(),
            _ => f64::INFINITY,
        };
        let record = IterationRecord {
            iteration: 0,
            current,
            current_profile: spectral.el_current.clone(),
            rel_change,
            gf_times,
            sse_seconds,
            sse_flops: sse.flops,
        };
        (record, spectral)
    }

    /// Runs the full self-consistent loop.
    pub fn run(&mut self) -> SimulationResult {
        let mut records: Vec<IterationRecord> = Vec::new();
        let mut spectral = None;
        for it in 0..self.config.max_iterations {
            let prev = records.last().map(|r| r.current);
            let (mut rec, spec) = self.iterate(prev);
            rec.iteration = it;
            let converged = rec.rel_change < self.config.tolerance;
            records.push(rec);
            spectral = Some(spec);
            if converged && it > 0 {
                break;
            }
        }
        SimulationResult {
            records,
            spectral: spectral.expect("at least one iteration"),
        }
    }
}

fn mix_g(state: &mut GTensor, new: &GTensor, mix: f64) {
    for (s, n) in state.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *s = s.scale(1.0 - mix) + n.scale(mix);
    }
}

fn mix_d(state: &mut DTensor, new: &DTensor, mix: f64) {
    for (s, n) in state.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *s = s.scale(1.0 - mix) + n.scale(mix);
    }
}

/// Final output of [`Simulation::run`].
pub struct SimulationResult {
    /// One record per Born iteration.
    pub records: Vec<IterationRecord>,
    /// Spectral data of the final iteration.
    pub spectral: SpectralData,
}

impl SimulationResult {
    /// The converged electrical current.
    pub fn current(&self) -> f64 {
        self.records.last().map(|r| r.current).unwrap_or(0.0)
    }

    /// Convergence history of the current (Fig. 7b's x-axis).
    pub fn current_history(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.current).collect()
    }

    /// `true` if the final relative change met the tolerance.
    pub fn converged(&self, tolerance: f64) -> bool {
        self.records
            .last()
            .map(|r| r.rel_change < tolerance)
            .unwrap_or(false)
    }

    /// Max relative spread of the current profile (conservation check).
    pub fn current_nonuniformity(&self) -> f64 {
        let prof = &self.records.last().unwrap().current_profile;
        let mean = prof.iter().sum::<f64>() / prof.len() as f64;
        if mean.abs() < 1e-300 {
            return 0.0;
        }
        prof.iter()
            .map(|j| (j - mean).abs())
            .fold(0.0, f64::max)
            / mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballistic_iteration_conserves_current() {
        let mut cfg = SimulationConfig::tiny();
        cfg.coupling = 0.0; // ballistic: Σ stays zero
        cfg.max_iterations = 1;
        let mut sim = Simulation::new(cfg);
        let result = sim.run();
        assert!(result.current() > 0.0, "forward bias must drive current");
        assert!(
            result.current_nonuniformity() < 1e-3,
            "ballistic current must be conserved: {}",
            result.current_nonuniformity()
        );
        // Contact currents: left injects what right absorbs.
        let (il, ir) = result.spectral.contact_currents;
        assert!(il > 0.0);
        assert!((il + ir).abs() < 1e-3 * il.abs(), "i_L = −i_R: {il} vs {ir}");
    }

    #[test]
    fn scattering_changes_current_and_converges() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 14;
        let mut sim = Simulation::new(cfg.clone());
        let result = sim.run();
        assert!(result.records.len() >= 2);
        // The self-consistent loop converges geometrically.
        let last = result.records.last().unwrap();
        assert!(
            last.rel_change < 1e-3,
            "Born loop drifting: rel change {}",
            last.rel_change
        );
        // Scattering current differs from ballistic.
        let mut cfg_b = cfg;
        cfg_b.coupling = 0.0;
        cfg_b.max_iterations = 1;
        let ballistic = Simulation::new(cfg_b).run();
        // Scattering suppresses the ballistic current measurably.
        assert!(
            ballistic.current() - result.current() > 1e-3 * ballistic.current(),
            "SSE must suppress the current: {} vs ballistic {}",
            result.current(),
            ballistic.current()
        );
        // Current stays conserved within SCBA tolerance.
        assert!(
            result.current_nonuniformity() < 5e-3,
            "current profile spread {}",
            result.current_nonuniformity()
        );
    }

    #[test]
    fn kernel_variants_agree() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        let run = |kernel| {
            let mut c = cfg.clone();
            c.kernel = kernel;
            Simulation::new(c).run().current()
        };
        let reference = run(KernelVariant::Reference);
        let transformed = run(KernelVariant::Transformed);
        let mixed = run(KernelVariant::Mixed(Normalization::PerTensor));
        assert!(
            ((transformed - reference) / reference).abs() < 1e-10,
            "transformed {transformed} vs reference {reference}"
        );
        assert!(
            ((mixed - reference) / reference).abs() < 1e-3,
            "mixed {mixed} vs reference {reference}"
        );
    }

    #[test]
    fn zero_bias_zero_current() {
        let mut cfg = SimulationConfig::tiny();
        cfg.mu_drain = cfg.mu_source;
        cfg.max_iterations = 2;
        let mut sim = Simulation::new(cfg);
        let result = sim.run();
        let scale = result
            .spectral
            .el_current_spectrum
            .iter()
            .flat_map(|v| v.iter())
            .map(|j| j.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        assert!(
            result.current().abs() < 1e-6 * scale.max(1.0),
            "zero bias current {}",
            result.current()
        );
    }

    #[test]
    fn phonon_energy_density_positive() {
        let mut cfg = SimulationConfig::tiny();
        cfg.max_iterations = 2;
        let mut sim = Simulation::new(cfg);
        let result = sim.run();
        // Thermal occupation of phonon modes is non-negative everywhere.
        for (a, &u) in result.spectral.ph_energy_density.iter().enumerate() {
            assert!(u >= -1e-9, "atom {a}: phonon energy density {u}");
        }
        // DOS rows populated.
        assert!(result
            .spectral
            .ph_dos
            .iter()
            .all(|row| row.iter().any(|&d| d > 0.0)));
    }
}
