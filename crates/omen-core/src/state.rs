//! Extraction of the SSE input tensors from RGF slab solutions, and
//! scattering of self-energy tensors back into per-slab solver inputs.
//!
//! RGF produces Green's functions as slab-sized blocks; the SSE kernels
//! consume per-atom blocks (`Norb × Norb` for electrons, `3 × 3` per
//! neighbor pair for phonons). This module performs the (lossless for the
//! diagonal parts) conversions, using `G^<[n][n+1] = −(G^<[n+1][n])†` for
//! the inter-slab pair blocks.

use omen_device::DeviceStructure;
use omen_linalg::{c64, CMatrix, C64};
use omen_rgf::RgfSolution;
use omen_sse::{DLayout, DTensor, GLayout, GTensor};

/// Copies the per-atom diagonal blocks of one electron RGF solution into
/// `G^≷` tensors at `(ik, ie)`.
pub fn extract_electron_blocks(
    dev: &DeviceStructure,
    sol: &RgfSolution,
    ik: usize,
    ie: usize,
    g_l: &mut GTensor,
    g_g: &mut GTensor,
) {
    let norb = dev.material.norb;
    for (a, atom) in dev.lattice.atoms.iter().enumerate() {
        let r0 = atom.slab_offset * norb;
        copy_subblock(
            &sol.gl_diag[atom.slab],
            r0,
            r0,
            norb,
            g_l.block_mut(ik, ie, a),
        );
        copy_subblock(
            &sol.gg_diag[atom.slab],
            r0,
            r0,
            norb,
            g_g.block_mut(ik, ie, a),
        );
    }
}

/// Copies the phonon pair/diagonal blocks of one phonon RGF solution into
/// `D^≷` tensors at `(iq, iw)`.
///
/// * Same-slab pairs come from the slab diagonal blocks;
/// * adjacent-slab pairs from the first off-diagonal blocks (using the
///   anti-Hermiticity identity for the upper one);
/// * pairs through a periodic z-image with `a == b` reuse the atom
///   diagonal (the qz phase is already encoded in `Φ(qz)`).
pub fn extract_phonon_blocks(
    dev: &DeviceStructure,
    sol: &RgfSolution,
    iq: usize,
    iw: usize,
    d_l: &mut DTensor,
    d_g: &mut DTensor,
) {
    let n3d = 3;
    // Diagonal entries.
    for (a, atom) in dev.lattice.atoms.iter().enumerate() {
        let r0 = atom.slab_offset * n3d;
        let en = d_l.diag_entry(a);
        copy_subblock(
            &sol.gl_diag[atom.slab],
            r0,
            r0,
            n3d,
            d_l.block_mut(iq, iw, en),
        );
        copy_subblock(
            &sol.gg_diag[atom.slab],
            r0,
            r0,
            n3d,
            d_g.block_mut(iq, iw, en),
        );
    }
    // Pair entries.
    for (p, pair) in dev.neighbors.pairs.iter().enumerate() {
        let fa = dev.lattice.atoms[pair.from];
        let ta = dev.lattice.atoms[pair.to];
        let r0 = fa.slab_offset * n3d;
        let c0 = ta.slab_offset * n3d;
        let en = d_l.pair_entry(p);
        match ta.slab as i64 - fa.slab as i64 {
            0 => {
                copy_subblock(
                    &sol.gl_diag[fa.slab],
                    r0,
                    c0,
                    n3d,
                    d_l.block_mut(iq, iw, en),
                );
                copy_subblock(
                    &sol.gg_diag[fa.slab],
                    r0,
                    c0,
                    n3d,
                    d_g.block_mut(iq, iw, en),
                );
            }
            1 => {
                // D[s][s+1] = −(D[s+1][s])† for lesser/greater functions.
                copy_subblock_adjoint_neg(
                    &sol.gl_lower[fa.slab],
                    c0,
                    r0,
                    n3d,
                    d_l.block_mut(iq, iw, en),
                );
                copy_subblock_adjoint_neg(
                    &sol.gg_lower[fa.slab],
                    c0,
                    r0,
                    n3d,
                    d_g.block_mut(iq, iw, en),
                );
            }
            -1 => {
                copy_subblock(
                    &sol.gl_lower[ta.slab],
                    r0,
                    c0,
                    n3d,
                    d_l.block_mut(iq, iw, en),
                );
                copy_subblock(
                    &sol.gg_lower[ta.slab],
                    r0,
                    c0,
                    n3d,
                    d_g.block_mut(iq, iw, en),
                );
            }
            _ => unreachable!("neighbor list spans non-adjacent slabs"),
        }
    }
}

/// `dst = src[r0.., c0..]` (an `n × n` sub-block, column-major `dst`).
fn copy_subblock(src: &CMatrix, r0: usize, c0: usize, n: usize, dst: &mut [C64]) {
    for j in 0..n {
        for i in 0..n {
            dst[j * n + i] = src[(r0 + i, c0 + j)];
        }
    }
}

/// `dst = −(src[r0.., c0..])†`.
fn copy_subblock_adjoint_neg(src: &CMatrix, r0: usize, c0: usize, n: usize, dst: &mut [C64]) {
    for j in 0..n {
        for i in 0..n {
            dst[j * n + i] = -src[(r0 + j, c0 + i)].conj();
        }
    }
}

/// Converts per-atom `Σ^≷` blocks at `(ik, ie)` into per-slab
/// block-diagonal matrices for the RGF solver, plus the retarded part
/// `Σ^R = (Σ^> − Σ^<) / 2` (Markovian approximation — the principal-value
/// real part is omitted, as in OMEN-class solvers).
///
/// The SSE kernels return the real-scaled contraction of Eq. (2); the
/// physical self-energy carries the equation's explicit `i` prefactor,
/// applied here. The sign is fixed by causality: `i(Σ^> − Σ^<)` must be
/// positive (it is the scattering broadening `Γ_s`).
pub fn sigma_blocks_for_point(
    dev: &DeviceStructure,
    sigma_l: &GTensor,
    sigma_g: &GTensor,
    ik: usize,
    ie: usize,
) -> (Vec<CMatrix>, Vec<CMatrix>, Vec<CMatrix>) {
    let norb = dev.material.norb;
    let bs = dev.block_size_el();
    let nb = dev.bnum();
    let mut sl = vec![CMatrix::zeros(bs, bs); nb];
    let mut sg = vec![CMatrix::zeros(bs, bs); nb];
    for (a, atom) in dev.lattice.atoms.iter().enumerate() {
        let r0 = atom.slab_offset * norb;
        write_subblock_times_i(&mut sl[atom.slab], r0, norb, sigma_l.block(ik, ie, a));
        write_subblock_times_i(&mut sg[atom.slab], r0, norb, sigma_g.block(ik, ie, a));
    }
    // Project Σ^≷ onto their anti-Hermitian parts (exact in continuum;
    // restores the symmetry the finite stencil slightly breaks) and form
    // Σ^R.
    let mut sr = Vec::with_capacity(nb);
    for b in 0..nb {
        sl[b].anti_hermitianize();
        sg[b].anti_hermitianize();
        let mut r = &sg[b] - &sl[b];
        r.scale_inplace(c64(0.5, 0.0));
        sr.push(r);
    }
    (sr, sl, sg)
}

/// Converts `Π^≷` entries at `(iq, iw)` into per-slab inputs, keeping the
/// diagonal entries and the *intra-slab* pair entries (the RGF interface
/// takes block-diagonal scattering self-energies; inter-slab Π couplings
/// are computed and reported but not folded back — a documented
/// block-diagonal approximation).
pub fn pi_blocks_for_point(
    dev: &DeviceStructure,
    pi_l: &DTensor,
    pi_g: &DTensor,
    iq: usize,
    iw: usize,
) -> (Vec<CMatrix>, Vec<CMatrix>, Vec<CMatrix>) {
    let n3d = 3;
    let bs = dev.block_size_ph();
    let nb = dev.bnum();
    let mut pl = vec![CMatrix::zeros(bs, bs); nb];
    let mut pg = vec![CMatrix::zeros(bs, bs); nb];
    for (a, atom) in dev.lattice.atoms.iter().enumerate() {
        let r0 = atom.slab_offset * n3d;
        let en = pi_l.diag_entry(a);
        write_subblock_times_i(&mut pl[atom.slab], r0, n3d, pi_l.block(iq, iw, en));
        write_subblock_times_i(&mut pg[atom.slab], r0, n3d, pi_g.block(iq, iw, en));
    }
    for (p, pair) in dev.neighbors.pairs.iter().enumerate() {
        let fa = dev.lattice.atoms[pair.from];
        let ta = dev.lattice.atoms[pair.to];
        if fa.slab == ta.slab && pair.from != pair.to {
            let r0 = fa.slab_offset * n3d;
            let c0 = ta.slab_offset * n3d;
            let en = pi_l.pair_entry(p);
            add_subblock_at_times_i(&mut pl[fa.slab], r0, c0, n3d, pi_l.block(iq, iw, en));
            add_subblock_at_times_i(&mut pg[fa.slab], r0, c0, n3d, pi_g.block(iq, iw, en));
        }
    }
    let mut pr = Vec::with_capacity(nb);
    for b in 0..nb {
        pl[b].anti_hermitianize();
        pg[b].anti_hermitianize();
        let mut r = &pg[b] - &pl[b];
        r.scale_inplace(c64(0.5, 0.0));
        pr.push(r);
    }
    (pr, pl, pg)
}

/// Writes `i · src` into the diagonal sub-block at `r0` (the Eq. (2)/(3)
/// prefactor).
fn write_subblock_times_i(dst: &mut CMatrix, r0: usize, n: usize, src: &[C64]) {
    for j in 0..n {
        for i in 0..n {
            dst[(r0 + i, r0 + j)] = C64::I * src[j * n + i];
        }
    }
}

fn add_subblock_at_times_i(dst: &mut CMatrix, r0: usize, c0: usize, n: usize, src: &[C64]) {
    for j in 0..n {
        for i in 0..n {
            dst[(r0 + i, c0 + j)] += C64::I * src[j * n + i];
        }
    }
}

/// Allocates zeroed SSE input tensors for a device and grid sizes.
pub fn zero_tensors(
    dev: &DeviceStructure,
    nk: usize,
    ne: usize,
    nq: usize,
    nw: usize,
) -> (GTensor, GTensor, DTensor, DTensor) {
    let na = dev.num_atoms();
    let norb = dev.material.norb;
    let npairs = dev.neighbors.num_pairs();
    (
        GTensor::zeros(nk, ne, na, norb, GLayout::PairMajor),
        GTensor::zeros(nk, ne, na, norb, GLayout::PairMajor),
        DTensor::zeros(nq, nw, npairs, na, DLayout::PointMajor),
        DTensor::zeros(nq, nw, npairs, na, DLayout::PointMajor),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_device::DeviceConfig;
    use omen_rgf::{CacheMode, ElectronParams, ElectronSolver};

    #[test]
    fn electron_extraction_matches_slab_blocks() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let mut solver = ElectronSolver::new(
            &dev,
            vec![0.0; dev.num_atoms()],
            ElectronParams::default(),
            CacheMode::NoCache,
            vec![0.0],
            vec![0.1],
        );
        let out = solver.solve(0, 0, None, None, None);
        let (mut gl, mut gg, _, _) = zero_tensors(&dev, 1, 1, 1, 1);
        extract_electron_blocks(&dev, &out.sol, 0, 0, &mut gl, &mut gg);
        // Atom 0 is slab 0, offset 0: its block equals the top-left
        // sub-block of the slab solution.
        let norb = dev.material.norb;
        let blk = gl.block(0, 0, 0);
        for j in 0..norb {
            for i in 0..norb {
                assert_eq!(blk[j * norb + i], out.sol.gl_diag[0][(i, j)]);
            }
        }
        // Extracted diagonal blocks stay anti-Hermitian.
        for a in 0..dev.num_atoms() {
            let b = gl.block(0, 0, a);
            for i in 0..norb {
                for j in 0..norb {
                    let z = b[j * norb + i] + b[i * norb + j].conj();
                    assert!(z.abs() < 1e-9, "atom {a}: G< not anti-Hermitian");
                }
            }
        }
        let _ = gg;
    }

    #[test]
    fn sigma_round_trip_block_diagonal() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let (mut sl_t, mut sg_t, _, _) = zero_tensors(&dev, 1, 1, 1, 1);
        // Write an anti-Hermitian pattern per atom.
        let norb = dev.material.norb;
        for a in 0..dev.num_atoms() {
            for x in 0..norb {
                sl_t.block_mut(0, 0, a)[x * norb + x] = c64(0.0, -(a as f64 + 1.0));
                sg_t.block_mut(0, 0, a)[x * norb + x] = c64(0.0, a as f64 + 1.0);
            }
        }
        let (sr, sl, sg) = sigma_blocks_for_point(&dev, &sl_t, &sg_t, 0, 0);
        assert_eq!(sr.len(), dev.bnum());
        // The conversion applies the Eq. (2) prefactor: stored blocks are
        // multiplied by i, so the input i·(∓(a+1)) becomes ∓(a+1) real —
        // whose anti-Hermitian projection on the diagonal vanishes... use
        // a real-valued input instead to track the factor:
        // input diag ±(a+1)·i ⇒ ×i ⇒ ∓(a+1) (Hermitian) ⇒ projection 0.
        // Σ^R here is therefore zero on the diagonal:
        let atom = &dev.lattice.atoms[3];
        let r0 = atom.slab_offset * norb;
        let v = sr[atom.slab][(r0, r0)];
        assert!(v.abs() < 1e-12, "Σ^R diag {v}");
        assert!(sl[atom.slab].is_anti_hermitian(1e-12));
        assert!(sg[atom.slab].is_anti_hermitian(1e-12));
    }

    #[test]
    fn phonon_extraction_pairs_consistent() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        use omen_rgf::{PhononParams, PhononSolver};
        let mut solver = PhononSolver::new(
            &dev,
            PhononParams::default(),
            CacheMode::NoCache,
            vec![0.3],
            vec![0.02],
        );
        let out = solver.solve(0, 0, None, None, None);
        let (_, _, mut dl, mut dg) = zero_tensors(&dev, 1, 1, 1, 1);
        extract_phonon_blocks(&dev, &out.sol, 0, 0, &mut dl, &mut dg);
        // For every pair p = (a → b) and its reverse, the lesser blocks
        // satisfy D_ba = −(D_ab)† (anti-Hermiticity of the full D^<).
        for (p, pair) in dev.neighbors.pairs.iter().enumerate() {
            if pair.z_image != 0 {
                continue; // z-image entries reuse diagonals
            }
            let rev = dev
                .neighbors
                .pairs
                .iter()
                .position(|q| {
                    q.from == pair.to
                        && q.to == pair.from
                        && q.z_image == 0
                        && (q.delta[0] + pair.delta[0]).abs() < 1e-12
                        && (q.delta[1] + pair.delta[1]).abs() < 1e-12
                })
                .unwrap();
            let ab = dl.block(0, 0, dl.pair_entry(p));
            let ba = dl.block(0, 0, dl.pair_entry(rev));
            for i in 0..3 {
                for j in 0..3 {
                    let want = -ab[i * 3 + j].conj();
                    let got = ba[j * 3 + i];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "pair {p}: D_ba != −D_ab† ({got} vs {want})"
                    );
                }
            }
        }
        let _ = dg;
    }
}
