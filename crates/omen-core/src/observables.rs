//! Mergeable observable accumulators for the GF phase.
//!
//! The paper's GF phase is embarrassingly parallel over points; what makes
//! naive parallelization awkward is that every point solve feeds *many*
//! outputs (SSE input tensors, current spectra, densities, contact
//! currents). This module factors that into:
//!
//! * a per-point **contribution** — the pure output of one solve, with no
//!   integration weights applied;
//! * an [`Observables`] accumulator — owns the weighted sums and tensors,
//!   consumes contributions in a deterministic order, and **merges** with
//!   accumulators of other partitions (the in-process analogue of the
//!   per-rank reduction in the paper's distributed runs).
//!
//! Accumulation order is what fixes floating-point reproducibility:
//! executors feed contributions in global point order, so serial and
//! thread-parallel runs are bit-identical; partitioned runs merge one
//! contiguous partition at a time (a different — but still deterministic —
//! summation tree).

use omen_device::DeviceStructure;
use omen_linalg::C64;
use omen_rgf::{contact_current, interface_current, PhaseTimes, PointSolution};
use omen_sse::{DLayout, DTensor, GLayout, GTensor};

use crate::state::{extract_electron_blocks, extract_phonon_blocks};

/// A mergeable accumulator of per-point contributions.
///
/// Laws (relied on by the executors):
/// * `accumulate` must be independent of *when* it is called — only the
///   order of contributions matters;
/// * `merge` must combine disjoint point sets: `fresh` + accumulate over
///   partition A, then merge of (`fresh` + partition B) must equal
///   accumulating A then B up to floating-point reassociation.
pub trait Observables: Sized + Send {
    /// The per-point contribution type.
    type Contribution: Send;

    /// A zeroed accumulator of the same shape.
    fn fresh(&self) -> Self;

    /// Folds one point's contribution in.
    fn accumulate(&mut self, c: &Self::Contribution);

    /// Absorbs another partition's accumulator.
    fn merge(&mut self, other: Self);
}

/// Pure output of one electron `(kz, E)` point solve — no integration
/// weights applied.
pub struct ElectronContribution {
    /// Momentum index.
    pub ik: usize,
    /// Energy index.
    pub ie: usize,
    /// Extracted per-atom `G^<` blocks (atom-ordered, `Norb²` each).
    pub gl: Vec<C64>,
    /// Extracted per-atom `G^>` blocks.
    pub gg: Vec<C64>,
    /// Raw interface currents `j_n` (length `bnum − 1`).
    pub interface_j: Vec<f64>,
    /// Raw per-atom occupations.
    pub density: Vec<f64>,
    /// Raw Meir-Wingreen contact currents (left, right).
    pub contact: (f64, f64),
    /// Sub-phase timings of the solve.
    pub times: PhaseTimes,
}

impl ElectronContribution {
    /// Extracts the contribution of a solved electron point.
    pub fn from_solution(dev: &DeviceStructure, ik: usize, ie: usize, out: &PointSolution) -> Self {
        let nb = dev.bnum();
        let norb = dev.material.norb;
        let na = dev.num_atoms();

        // Per-atom G^≷ blocks via a single-point scratch tensor (PairMajor
        // with nk = ne = 1 stores blocks contiguously in atom order).
        let mut gl_t = GTensor::zeros(1, 1, na, norb, GLayout::PairMajor);
        let mut gg_t = GTensor::zeros(1, 1, na, norb, GLayout::PairMajor);
        extract_electron_blocks(dev, &out.sol, 0, 0, &mut gl_t, &mut gg_t);

        let interface_j = (0..nb - 1)
            .map(|n| interface_current(&out.m.upper[n], &out.sol.gl_lower[n]))
            .collect();
        let density = dev
            .lattice
            .atoms
            .iter()
            .map(|atom| {
                let r0 = atom.slab_offset * norb;
                (0..norb)
                    .map(|o| out.sol.gl_diag[atom.slab][(r0 + o, r0 + o)].im)
                    .sum()
            })
            .collect();
        let contact = (
            contact_current(
                &out.boundary_lg_left.0,
                &out.boundary_lg_left.1,
                &out.sol.gl_diag[0],
                &out.sol.gg_diag[0],
            ),
            contact_current(
                &out.boundary_lg_right.0,
                &out.boundary_lg_right.1,
                &out.sol.gl_diag[nb - 1],
                &out.sol.gg_diag[nb - 1],
            ),
        );
        ElectronContribution {
            ik,
            ie,
            gl: gl_t.into_vec(),
            gg: gg_t.into_vec(),
            interface_j,
            density,
            contact,
            times: out.times,
        }
    }
}

/// Accumulated electron-sweep outputs: the SSE input tensors plus every
/// electron observable of [`crate::driver::SpectralData`].
pub struct ElectronObservables {
    /// `G^<` SSE input tensor (PairMajor).
    pub g_l: GTensor,
    /// `G^>` SSE input tensor.
    pub g_g: GTensor,
    /// Momentum-averaged current spectrum `j(E, interface)`.
    pub el_current_spectrum: Vec<Vec<f64>>,
    /// Charge current per interface.
    pub el_current: Vec<f64>,
    /// Energy current per interface.
    pub el_energy_current: Vec<f64>,
    /// Per-atom occupation.
    pub el_density: Vec<f64>,
    /// Meir-Wingreen contact currents (left, right).
    pub contacts: (f64, f64),
    /// Accumulated sub-phase timings.
    pub times: PhaseTimes,
    /// Momentum weight (`kgrid.weight()`).
    w_k: f64,
    /// Full electron integration weight (`egrid × kgrid`).
    w_e: f64,
    /// Grid energies (for the energy current).
    energies: Vec<f64>,
}

impl ElectronObservables {
    /// A zeroed accumulator for `dev` and the given grids/weights.
    pub fn new(dev: &DeviceStructure, nk: usize, energies: Vec<f64>, w_k: f64, w_e: f64) -> Self {
        let nb = dev.bnum();
        let na = dev.num_atoms();
        let ne = energies.len();
        ElectronObservables {
            g_l: GTensor::zeros(nk, ne, na, dev.material.norb, GLayout::PairMajor),
            g_g: GTensor::zeros(nk, ne, na, dev.material.norb, GLayout::PairMajor),
            el_current_spectrum: vec![vec![0.0; nb - 1]; ne],
            el_current: vec![0.0; nb - 1],
            el_energy_current: vec![0.0; nb - 1],
            el_density: vec![0.0; na],
            contacts: (0.0, 0.0),
            times: PhaseTimes::default(),
            w_k,
            w_e,
            energies,
        }
    }
}

impl Observables for ElectronObservables {
    type Contribution = ElectronContribution;

    fn fresh(&self) -> Self {
        ElectronObservables {
            g_l: GTensor::zeros(
                self.g_l.nk,
                self.g_l.ne,
                self.g_l.na,
                self.g_l.norb,
                GLayout::PairMajor,
            ),
            g_g: GTensor::zeros(
                self.g_g.nk,
                self.g_g.ne,
                self.g_g.na,
                self.g_g.norb,
                GLayout::PairMajor,
            ),
            el_current_spectrum: vec![
                vec![0.0; self.el_current.len()];
                self.el_current_spectrum.len()
            ],
            el_current: vec![0.0; self.el_current.len()],
            el_energy_current: vec![0.0; self.el_energy_current.len()],
            el_density: vec![0.0; self.el_density.len()],
            contacts: (0.0, 0.0),
            times: PhaseTimes::default(),
            w_k: self.w_k,
            w_e: self.w_e,
            energies: self.energies.clone(),
        }
    }

    fn accumulate(&mut self, c: &Self::Contribution) {
        let bsz = self.g_l.bsz();
        for a in 0..self.g_l.na {
            self.g_l
                .block_mut(c.ik, c.ie, a)
                .copy_from_slice(&c.gl[a * bsz..(a + 1) * bsz]);
            self.g_g
                .block_mut(c.ik, c.ie, a)
                .copy_from_slice(&c.gg[a * bsz..(a + 1) * bsz]);
        }
        let e = self.energies[c.ie];
        for (n, &j) in c.interface_j.iter().enumerate() {
            self.el_current_spectrum[c.ie][n] += j * self.w_k;
            self.el_current[n] += j * self.w_e;
            self.el_energy_current[n] += e * j * self.w_e;
        }
        for (d, &occ) in self.el_density.iter_mut().zip(&c.density) {
            *d += occ * self.w_e;
        }
        self.contacts.0 += c.contact.0 * self.w_e;
        self.contacts.1 += c.contact.1 * self.w_e;
        self.times.accumulate(&c.times);
    }

    fn merge(&mut self, other: Self) {
        add_tensor_g(&mut self.g_l, &other.g_l);
        add_tensor_g(&mut self.g_g, &other.g_g);
        for (row, orow) in self
            .el_current_spectrum
            .iter_mut()
            .zip(&other.el_current_spectrum)
        {
            for (v, o) in row.iter_mut().zip(orow) {
                *v += o;
            }
        }
        add_vec(&mut self.el_current, &other.el_current);
        add_vec(&mut self.el_energy_current, &other.el_energy_current);
        add_vec(&mut self.el_density, &other.el_density);
        self.contacts.0 += other.contacts.0;
        self.contacts.1 += other.contacts.1;
        self.times.accumulate(&other.times);
    }
}

/// Pure output of one phonon `(qz, ω)` point solve.
pub struct PhononContribution {
    /// Momentum index.
    pub iq: usize,
    /// Frequency index.
    pub iw: usize,
    /// Extracted `D^<` entry blocks (entry-ordered, `3×3` each).
    pub dl: Vec<C64>,
    /// Extracted `D^>` entry blocks.
    pub dg: Vec<C64>,
    /// Raw interface energy-current integrands `j_n`.
    pub interface_j: Vec<f64>,
    /// Raw per-atom mode occupations.
    pub occupation: Vec<f64>,
    /// Raw per-atom spectral weights (DOS integrand).
    pub spectral: Vec<f64>,
    /// Sub-phase timings of the solve.
    pub times: PhaseTimes,
}

impl PhononContribution {
    /// Extracts the contribution of a solved phonon point.
    pub fn from_solution(dev: &DeviceStructure, iq: usize, iw: usize, out: &PointSolution) -> Self {
        let nb = dev.bnum();
        let na = dev.num_atoms();
        let npairs = dev.neighbors.num_pairs();

        let mut dl_t = DTensor::zeros(1, 1, npairs, na, DLayout::PointMajor);
        let mut dg_t = DTensor::zeros(1, 1, npairs, na, DLayout::PointMajor);
        extract_phonon_blocks(dev, &out.sol, 0, 0, &mut dl_t, &mut dg_t);

        let interface_j = (0..nb - 1)
            .map(|n| interface_current(&out.m.upper[n], &out.sol.gl_lower[n]))
            .collect();
        let mut occupation = Vec::with_capacity(na);
        let mut spectral = Vec::with_capacity(na);
        for atom in dev.lattice.atoms.iter() {
            let r0 = atom.slab_offset * 3;
            // Boson convention D^< = n·(D^R − D^A): the occupation is
            // −Im diag(D^<) (opposite sign to electrons).
            occupation.push(
                (0..3)
                    .map(|x| -out.sol.gl_diag[atom.slab][(r0 + x, r0 + x)].im)
                    .sum(),
            );
            spectral.push(
                (0..3)
                    .map(|x| -2.0 * out.sol.gr_diag[atom.slab][(r0 + x, r0 + x)].im)
                    .sum(),
            );
        }
        PhononContribution {
            iq,
            iw,
            dl: dl_t.into_vec(),
            dg: dg_t.into_vec(),
            interface_j,
            occupation,
            spectral,
            times: out.times,
        }
    }
}

/// Accumulated phonon-sweep outputs.
pub struct PhononObservables {
    /// `D^<` SSE input tensor (PointMajor).
    pub d_l: DTensor,
    /// `D^>` SSE input tensor.
    pub d_g: DTensor,
    /// Phonon energy current per interface.
    pub ph_energy_current: Vec<f64>,
    /// Per-atom phonon energy density.
    pub ph_energy_density: Vec<f64>,
    /// Per-atom, per-frequency phonon DOS (`dos[m][a]`).
    pub ph_dos: Vec<Vec<f64>>,
    /// Accumulated sub-phase timings.
    pub times: PhaseTimes,
    /// Momentum weight.
    w_k: f64,
    /// Full phonon integration weight (`fgrid × kgrid`).
    w_ph: f64,
    /// Grid frequencies.
    omegas: Vec<f64>,
}

impl PhononObservables {
    /// A zeroed accumulator for `dev` and the given grids/weights.
    pub fn new(dev: &DeviceStructure, nq: usize, omegas: Vec<f64>, w_k: f64, w_ph: f64) -> Self {
        let nb = dev.bnum();
        let na = dev.num_atoms();
        let nw = omegas.len();
        PhononObservables {
            d_l: DTensor::zeros(nq, nw, dev.neighbors.num_pairs(), na, DLayout::PointMajor),
            d_g: DTensor::zeros(nq, nw, dev.neighbors.num_pairs(), na, DLayout::PointMajor),
            ph_energy_current: vec![0.0; nb - 1],
            ph_energy_density: vec![0.0; na],
            ph_dos: vec![vec![0.0; na]; nw],
            times: PhaseTimes::default(),
            w_k,
            w_ph,
            omegas,
        }
    }
}

impl Observables for PhononObservables {
    type Contribution = PhononContribution;

    fn fresh(&self) -> Self {
        PhononObservables {
            d_l: DTensor::zeros(
                self.d_l.nq,
                self.d_l.nw,
                self.d_l.npairs,
                self.d_l.na,
                DLayout::PointMajor,
            ),
            d_g: DTensor::zeros(
                self.d_g.nq,
                self.d_g.nw,
                self.d_g.npairs,
                self.d_g.na,
                DLayout::PointMajor,
            ),
            ph_energy_current: vec![0.0; self.ph_energy_current.len()],
            ph_energy_density: vec![0.0; self.ph_energy_density.len()],
            ph_dos: vec![vec![0.0; self.ph_energy_density.len()]; self.ph_dos.len()],
            times: PhaseTimes::default(),
            w_k: self.w_k,
            w_ph: self.w_ph,
            omegas: self.omegas.clone(),
        }
    }

    fn accumulate(&mut self, c: &Self::Contribution) {
        let nentries = self.d_l.nentries();
        for en in 0..nentries {
            self.d_l
                .block_mut(c.iq, c.iw, en)
                .copy_from_slice(&c.dl[en * omen_sse::D_BSZ..(en + 1) * omen_sse::D_BSZ]);
            self.d_g
                .block_mut(c.iq, c.iw, en)
                .copy_from_slice(&c.dg[en * omen_sse::D_BSZ..(en + 1) * omen_sse::D_BSZ]);
        }
        let w = self.omegas[c.iw];
        for (n, &j) in c.interface_j.iter().enumerate() {
            self.ph_energy_current[n] += w * j * self.w_ph;
        }
        for (a, (&occ, &spec)) in c.occupation.iter().zip(&c.spectral).enumerate() {
            self.ph_energy_density[a] += w * occ * self.w_ph;
            self.ph_dos[c.iw][a] += spec * self.w_k;
        }
        self.times.accumulate(&c.times);
    }

    fn merge(&mut self, other: Self) {
        add_tensor_d(&mut self.d_l, &other.d_l);
        add_tensor_d(&mut self.d_g, &other.d_g);
        add_vec(&mut self.ph_energy_current, &other.ph_energy_current);
        add_vec(&mut self.ph_energy_density, &other.ph_energy_density);
        for (row, orow) in self.ph_dos.iter_mut().zip(&other.ph_dos) {
            for (v, o) in row.iter_mut().zip(orow) {
                *v += o;
            }
        }
        self.times.accumulate(&other.times);
    }
}

fn add_vec(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn add_tensor_g(dst: &mut GTensor, src: &GTensor) {
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += *s;
    }
}

fn add_tensor_d(dst: &mut DTensor, src: &DTensor) {
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += *s;
    }
}
