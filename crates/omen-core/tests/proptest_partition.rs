//! Property-based partition-split coverage: for *any* grid shape and
//! rank count, the rank-decomposed executors must reproduce the serial
//! fold — bitwise for [`DistributedExecutor`] (slot-ordered folding),
//! and as the same contribution *set* for [`PartitionedExecutor`]
//! (whose rank-order merge may reassociate sums).

use omen_core::{
    grid_points, DistributedExecutor, GridPoint, Observables, PartitionedExecutor, PointExecutor,
    SerialExecutor,
};
use proptest::prelude::*;

/// A toy observable with reassociation-sensitive arithmetic: an ordered
/// visit log plus a running sum of irrational-ish weights (so any change
/// in fold order shows up in the low mantissa bits).
struct Probe {
    visited: Vec<GridPoint>,
    sum: f64,
}

impl Probe {
    fn empty() -> Probe {
        Probe {
            visited: Vec::new(),
            sum: 0.0,
        }
    }
}

impl Observables for Probe {
    type Contribution = (GridPoint, f64);

    fn fresh(&self) -> Probe {
        Probe::empty()
    }

    fn accumulate(&mut self, c: &Self::Contribution) {
        self.visited.push(c.0);
        self.sum += c.1;
    }

    fn merge(&mut self, other: Probe) {
        self.visited.extend(other.visited);
        self.sum += other.sum;
    }
}

fn weight(p: GridPoint) -> f64 {
    ((p.0 * 131 + p.1 * 7 + 3) as f64).sqrt() * 0.037
}

fn run<E: PointExecutor>(exec: &E, points: &[GridPoint]) -> Probe {
    exec.run(points, || |p: GridPoint| (p, weight(p)), Probe::empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every partition split of every grid folds bitwise like serial.
    #[test]
    fn distributed_split_is_bitwise_serial(
        n0 in 1usize..6,
        n1 in 1usize..48,
        ranks in 1usize..16,
    ) {
        let points = grid_points(n0, n1);
        let serial = run(&SerialExecutor, &points);
        let dist = run(&DistributedExecutor::new(ranks), &points);
        prop_assert_eq!(&serial.visited, &dist.visited, "global point order preserved");
        prop_assert_eq!(serial.sum.to_bits(), dist.sum.to_bits());
    }

    // Partitioned merging visits the same set exactly once and agrees
    // with serial up to the reassociation of the per-rank merge tree.
    #[test]
    fn partitioned_split_observables_match(
        n0 in 1usize..6,
        n1 in 1usize..48,
        ranks in 1usize..16,
    ) {
        let points = grid_points(n0, n1);
        let serial = run(&SerialExecutor, &points);
        let part = run(&PartitionedExecutor::new(ranks), &points);
        // Contiguous partitions merged in rank order reproduce the
        // global visit order exactly.
        prop_assert_eq!(&serial.visited, &part.visited);
        let scale = serial.sum.abs().max(1e-300);
        prop_assert!(
            ((serial.sum - part.sum) / scale).abs() < 1e-12,
            "serial {} vs partitioned {}", serial.sum, part.sum
        );
    }
}
