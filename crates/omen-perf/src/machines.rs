//! Hardware descriptions of the paper's two platforms (§6.2).

/// GPU characteristics relevant to the roofline and rate models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gpu {
    /// Marketing name.
    pub name: &'static str,
    /// Peak double-precision flop/s.
    pub peak_dp: f64,
    /// Peak half-precision (Tensor Core) flop/s.
    pub peak_hp: f64,
    /// HBM memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// L2 cache bandwidth (bytes/s).
    pub l2_bw: f64,
}

/// NVIDIA Tesla P100 (Piz Daint).
pub const P100: Gpu = Gpu {
    name: "P100",
    peak_dp: 4.7e12,
    peak_hp: 18.8e12, // no Tensor Cores; FP16 2× FP32 rate
    mem_bw: 732.0e9,
    l2_bw: 2.0e12,
};

/// NVIDIA Tesla V100 (Summit).
pub const V100: Gpu = Gpu {
    name: "V100",
    peak_dp: 7.0e12,
    peak_hp: 120.0e12, // Tensor Cores
    mem_bw: 900.0e9,
    l2_bw: 2.7e12,
};

/// A whole machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Name.
    pub name: &'static str,
    /// Compute nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// The GPU model.
    pub gpu: Gpu,
    /// CPU peak double-precision flop/s per node.
    pub cpu_peak_dp: f64,
    /// Injection bandwidth per node (bytes/s).
    pub injection_bw: f64,
    /// HPL (effective maximum) performance of the full system (flop/s).
    pub hpl: f64,
}

impl MachineSpec {
    /// OLCF Summit (Top500 #1, June 2019).
    pub fn summit() -> MachineSpec {
        MachineSpec {
            name: "Summit",
            nodes: 4_608,
            gpus_per_node: 6,
            gpu: V100,
            cpu_peak_dp: 515.76e9,
            injection_bw: 23.0e9,
            hpl: 148.6e15,
        }
    }

    /// CSCS Piz Daint (Top500 #6, June 2019).
    pub fn piz_daint() -> MachineSpec {
        MachineSpec {
            name: "Piz Daint",
            nodes: 5_704,
            gpus_per_node: 1,
            gpu: P100,
            cpu_peak_dp: 499.2e9,
            injection_bw: 10.2e9,
            hpl: 21.2e15,
        }
    }

    /// Peak double-precision flop/s of one node (CPU + GPUs).
    pub fn node_peak_dp(&self) -> f64 {
        self.cpu_peak_dp + self.gpus_per_node as f64 * self.gpu.peak_dp
    }

    /// Peak double-precision flop/s of `nodes` nodes.
    pub fn system_peak_dp(&self, nodes: usize) -> f64 {
        nodes as f64 * self.node_peak_dp()
    }

    /// Nodes hosting a GPU count.
    pub fn nodes_for_gpus(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.gpus_per_node)
    }

    /// GPU/CPU per-node performance ratio (the paper quotes 9.4× for Piz
    /// Daint and 81.43× for Summit).
    pub fn gpu_cpu_ratio(&self) -> f64 {
        self.gpus_per_node as f64 * self.gpu.peak_dp / self.cpu_peak_dp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_matches_paper_quotes() {
        let m = MachineSpec::summit();
        // "six NVIDIA Tesla V100 (42 double-precision Tflop/s in total)"
        let gpu_total = m.gpus_per_node as f64 * m.gpu.peak_dp;
        assert!((gpu_total - 42.0e12).abs() / 42.0e12 < 1e-6);
        // "significantly (81.43×) weaker" CPUs.
        assert!((m.gpu_cpu_ratio() - 81.43).abs() < 0.2);
        // Full machine peak ≈ 196–201 Pflop/s (the paper's 42.55% quote
        // implies 200.8; 4,608 × (42 + 0.516) Tflop/s gives 195.9).
        let peak = m.system_peak_dp(4_608);
        let frac = 85.45e15 / peak;
        assert!((0.42..0.44).contains(&frac), "fraction {frac:.3}");
    }

    #[test]
    fn piz_daint_matches_paper_quotes() {
        let m = MachineSpec::piz_daint();
        // "reasonable balance (GPU/CPU ratio of 9.4×)".
        assert!((m.gpu_cpu_ratio() - 9.41) < 0.1);
        // Node peak: 499.2 Gflop/s CPU + 4.7 Tflop/s GPU.
        assert!((m.node_peak_dp() - 5.1992e12).abs() < 1e9);
    }

    #[test]
    fn gpu_counting() {
        let m = MachineSpec::summit();
        assert_eq!(m.nodes_for_gpus(27_360), 4_560);
        assert_eq!(m.nodes_for_gpus(1_368), 228);
        let d = MachineSpec::piz_daint();
        assert_eq!(d.nodes_for_gpus(5_400), 5_400);
    }
}
