//! Time-to-solution and scalability models: Figs. 8–9, Tables 11–12.
//!
//! The model combines
//! * the flop model (`flops`),
//! * the volume model (`commvolume`) with the injection-bandwidth network
//!   model, and
//! * calibrated effective per-GPU phase rates.
//!
//! **Calibration policy** (recorded in `EXPERIMENTS.md`): the per-phase
//! rates of the DaCe variant are anchored on Table 11's full-scale
//! breakdown (GF 145 Pflop/s on 27,360 GPUs, SSE 51.94, BC 40.40); the
//! OMEN variant rates on Table 10 (Piz Daint single-node) and Table 12
//! (Summit per-atom run). Everything else — scaling curves, crossovers,
//! speedup ratios — is *derived*, and comparing those derived shapes to
//! the paper is the point of the reproduction.

use crate::commvolume::{dace_volume_with, omen_volume};
use crate::flops::{bc_flops_total, rgf_flops_total, sse_flops_dace, sse_flops_omen};
use crate::machines::MachineSpec;
use crate::params::SimParams;

/// Which code variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The original OMEN schedule and decomposition.
    Omen,
    /// The data-centric (DaCe) variant.
    Dace,
}

/// Caching strategy of the GF phase (§7.1.2 / Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Caching {
    /// Recompute specialization + boundary conditions every iteration.
    NoCache,
    /// Cache boundary conditions only.
    CacheBc,
    /// Cache boundary conditions and specialized data.
    CacheBcSpec,
}

/// Effective sustained flop/s per GPU for each phase.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    /// Boundary conditions.
    pub bc: f64,
    /// RGF (GF phase).
    pub gf: f64,
    /// SSE, double precision.
    pub sse: f64,
    /// SSE, mixed precision.
    pub sse_mixed: f64,
}

/// All-to-all bandwidth utilization (the paper measures 42–85%).
pub const EFF_ALLTOALL: f64 = 0.47;
/// Fine-grained point-to-point utilization of the OMEN scheme
/// (calibrated so the Piz Daint communication improvement reproduces the
/// paper's 417×: volume ratio ≈ 89× × utilization ratio ≈ 4.7×).
pub const EFF_P2P: f64 = 0.10;
/// Specialization cost as a fraction of the BC cost (re-assembly of
/// `H(kz)`/`S(kz)`; memory-bound, no Table 11 row — rough constant).
pub const SPEC_BC_FRACTION: f64 = 0.25;

/// Calibrated per-GPU phase rates.
pub fn rates(machine: &MachineSpec, variant: Variant) -> Rates {
    match (machine.name, variant) {
        // Anchored on Table 11 (27,360 GPUs): 40.40 / 145.01 / 51.94 /
        // 60.21 Pflop/s system-wide.
        ("Summit", Variant::Dace) => Rates {
            bc: 1.48e12,
            gf: 5.30e12,
            sse: 1.90e12,
            sse_mixed: 2.20e12,
        },
        // OMEN on POWER9 leans on libraries that are not optimized there
        // (§7.2); SSE rate anchored between the Fig. 8b strong-scaling
        // plot and Table 12's per-atom run.
        ("Summit", Variant::Omen) => Rates {
            bc: 1.10e12,
            gf: 1.40e12,
            sse: 2.0e10,
            sse_mixed: 2.0e10,
        },
        // Anchored on Table 10 (per Piz Daint node = per P100):
        // GF 174 Tflop / 111.25 s, SSE 31.8 Tflop / 29.93 s.
        ("Piz Daint", Variant::Dace) => Rates {
            bc: 1.10e12,
            gf: 1.56e12,
            sse: 1.06e12,
            sse_mixed: 1.06e12, // no Tensor Cores on P100
        },
        // Table 10: GF 174 Tflop / 144.14 s, SSE 63.6 Tflop / 965.45 s.
        ("Piz Daint", Variant::Omen) => Rates {
            bc: 0.90e12,
            gf: 1.21e12,
            sse: 6.59e10,
            sse_mixed: 6.59e10,
        },
        _ => panic!("no calibration for {} / {variant:?}", machine.name),
    }
}

/// Modeled phase times of one GF+SSE iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterationModel {
    /// Boundary conditions (zero when cached).
    pub bc: f64,
    /// Specialization (zero when cached).
    pub spec: f64,
    /// GF (RGF) phase.
    pub gf: f64,
    /// SSE phase.
    pub sse: f64,
    /// SSE-phase communication.
    pub comm: f64,
}

impl IterationModel {
    /// Total per-iteration wall clock.
    pub fn total(&self) -> f64 {
        self.bc + self.spec + self.gf + self.sse + self.comm
    }
}

/// SSE communication time of one iteration: volume over the aggregate
/// injection bandwidth of the participating nodes, at the scheme's
/// effective utilization.
pub fn comm_time(machine: &MachineSpec, p: &SimParams, variant: Variant, gpus: usize) -> f64 {
    let nodes = machine.nodes_for_gpus(gpus) as f64;
    let agg_bw = nodes * machine.injection_bw;
    match variant {
        Variant::Omen => omen_volume(p, gpus) / (agg_bw * EFF_P2P),
        // The paper's large-scale runs used Ta = P, TE = 1 (§6.1.2).
        Variant::Dace => dace_volume_with(p, gpus, 1) / (agg_bw * EFF_ALLTOALL),
    }
}

/// Models one iteration on `gpus` GPUs.
pub fn iteration_time(
    machine: &MachineSpec,
    p: &SimParams,
    variant: Variant,
    gpus: usize,
    caching: Caching,
    mixed: bool,
) -> IterationModel {
    let r = rates(machine, variant);
    let g = gpus as f64;
    let bc_full = bc_flops_total(p) / (g * r.bc);
    let (bc, spec) = match caching {
        Caching::NoCache => (bc_full, SPEC_BC_FRACTION * bc_full),
        Caching::CacheBc => (0.0, SPEC_BC_FRACTION * bc_full),
        Caching::CacheBcSpec => (0.0, 0.0),
    };
    let gf = rgf_flops_total(p) / (g * r.gf);
    let sse_flops = match variant {
        Variant::Omen => sse_flops_omen(p),
        Variant::Dace => sse_flops_dace(p),
    };
    let sse_rate = if mixed { r.sse_mixed } else { r.sse };
    let sse = sse_flops / (g * sse_rate);
    let comm = comm_time(machine, p, variant, gpus);
    IterationModel {
        bc,
        spec,
        gf,
        sse,
        comm,
    }
}

/// Flops *credited* to one iteration under a caching mode (Fig. 9 plots
/// Pflop/s including recomputed boundary work).
pub fn iteration_flops(p: &SimParams, variant: Variant, caching: Caching) -> f64 {
    let sse = match variant {
        Variant::Omen => sse_flops_omen(p),
        Variant::Dace => sse_flops_dace(p),
    };
    let base = rgf_flops_total(p) + sse;
    match caching {
        Caching::NoCache => base + bc_flops_total(p),
        // Specialization is data movement, not flops.
        Caching::CacheBc | Caching::CacheBcSpec => base,
    }
}

/// One point of the Fig. 9 strong-scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Point {
    /// GPU count.
    pub gpus: usize,
    /// Sustained Pflop/s in double precision for each caching mode.
    pub pflops_nocache: f64,
    /// Cache-BC mode.
    pub pflops_cache_bc: f64,
    /// Cache-BC+Spec mode.
    pub pflops_cache_all: f64,
    /// Mixed precision, best caching.
    pub pflops_mixed: f64,
    /// Fraction of HPL at this node count (double, best caching).
    pub hpl_fraction: f64,
}

/// Models Fig. 9: the Large structure (Nkz = 21) on Summit.
pub fn fig9(gpus_list: &[usize]) -> Vec<Fig9Point> {
    let machine = MachineSpec::summit();
    let p = SimParams::large(21);
    gpus_list
        .iter()
        .map(|&gpus| {
            let perf = |caching: Caching, mixed: bool| {
                let t = iteration_time(&machine, &p, Variant::Dace, gpus, caching, mixed);
                iteration_flops(&p, Variant::Dace, caching) / t.total()
            };
            let best = perf(Caching::CacheBcSpec, false);
            let hpl_at_scale =
                machine.hpl * machine.nodes_for_gpus(gpus) as f64 / machine.nodes as f64;
            Fig9Point {
                gpus,
                pflops_nocache: perf(Caching::NoCache, false) / 1e15,
                pflops_cache_bc: perf(Caching::CacheBc, false) / 1e15,
                pflops_cache_all: best / 1e15,
                pflops_mixed: perf(Caching::CacheBcSpec, true) / 1e15,
                hpl_fraction: best / hpl_at_scale,
            }
        })
        .collect()
}

/// One Fig. 8 scaling point (per-iteration seconds).
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// GPU count (Piz Daint: nodes).
    pub gpus: usize,
    /// Momentum resolution of this point (varies along weak scaling).
    pub nk: usize,
    /// OMEN computation time.
    pub omen_comp: f64,
    /// OMEN communication time.
    pub omen_comm: f64,
    /// DaCe computation time.
    pub dace_comp: f64,
    /// DaCe communication time.
    pub dace_comm: f64,
}

impl Fig8Point {
    /// Total-runtime speedup of DaCe over OMEN.
    pub fn speedup(&self) -> f64 {
        (self.omen_comp + self.omen_comm) / (self.dace_comp + self.dace_comm)
    }

    /// Communication-time improvement.
    pub fn comm_improvement(&self) -> f64 {
        self.omen_comm / self.dace_comm
    }
}

/// Fig. 8 strong scaling: Small structure, fixed `Nkz = 7`.
pub fn fig8_strong(machine: &MachineSpec, gpus_list: &[usize]) -> Vec<Fig8Point> {
    let p = SimParams::small(7);
    gpus_list
        .iter()
        .map(|&gpus| point(machine, &p, gpus, 7))
        .collect()
}

/// Fig. 8 weak scaling: Small structure, `Nkz` grows with the machine.
pub fn fig8_weak(machine: &MachineSpec, points: &[(usize, usize)]) -> Vec<Fig8Point> {
    points
        .iter()
        .map(|&(nk, gpus)| point(machine, &SimParams::small(nk), gpus, nk))
        .collect()
}

fn point(machine: &MachineSpec, p: &SimParams, gpus: usize, nk: usize) -> Fig8Point {
    let omen = iteration_time(machine, p, Variant::Omen, gpus, Caching::NoCache, false);
    let dace = iteration_time(machine, p, Variant::Dace, gpus, Caching::NoCache, false);
    Fig8Point {
        gpus,
        nk,
        omen_comp: omen.bc + omen.spec + omen.gf + omen.sse,
        omen_comm: omen.comm,
        dace_comp: dace.bc + dace.spec + dace.gf + dace.sse,
        dace_comm: dace.comm,
    }
}

/// Table 11: modeled full-scale breakdown (27,360 GPUs, Large structure),
/// with one-time costs amortized over `iterations` as the paper does.
#[derive(Clone, Copy, Debug)]
pub struct Table11Model {
    /// Data ingestion (one-time, s).
    pub ingestion: f64,
    /// Boundary conditions (one-time with caching, s).
    pub bc: f64,
    /// GF phase (per iteration, s).
    pub gf: f64,
    /// SSE phase double precision (s).
    pub sse_double: f64,
    /// SSE phase mixed precision (s).
    pub sse_mixed: f64,
    /// Communication (s).
    pub comm: f64,
    /// Per-iteration total, double precision (GF + SSE + comm).
    pub total_double: f64,
    /// Per-iteration total including amortized one-time costs.
    pub total_with_io: f64,
    /// Sustained Pflop/s (double).
    pub pflops_double: f64,
    /// Sustained Pflop/s (mixed).
    pub pflops_mixed: f64,
}

/// Builds the Table 11 model.
pub fn table11(gpus: usize, iterations: usize) -> Table11Model {
    let machine = MachineSpec::summit();
    let p = SimParams::large(21);
    let r = rates(&machine, Variant::Dace);
    let g = gpus as f64;
    let bc = bc_flops_total(&p) / (g * r.bc);
    let gf = rgf_flops_total(&p) / (g * r.gf);
    let sse_double = sse_flops_dace(&p) / (g * r.sse);
    let sse_mixed = sse_flops_dace(&p) / (g * r.sse_mixed);
    let comm = comm_time(&machine, &p, Variant::Dace, gpus);
    // Ingestion: staged chunked broadcast (§7.1.1, 31.1 s measured).
    let ingestion = 31.1;
    let total_double = gf + sse_double + comm;
    let amortized = (ingestion + bc) / iterations as f64;
    let flops = rgf_flops_total(&p) + sse_flops_dace(&p);
    Table11Model {
        ingestion,
        bc,
        gf,
        sse_double,
        sse_mixed,
        comm,
        total_double,
        total_with_io: total_double + amortized,
        pflops_double: flops / total_double / 1e15,
        pflops_mixed: flops / (gf + sse_mixed + comm) / 1e15,
    }
}

/// Table 12: per-atom time comparison at 6,840 GPUs.
#[derive(Clone, Copy, Debug)]
pub struct Table12Model {
    /// OMEN atoms (1,064).
    pub omen_na: usize,
    /// DaCe atoms (10,240).
    pub dace_na: usize,
    /// OMEN per-iteration time (s).
    pub omen_time: f64,
    /// DaCe per-iteration time (s).
    pub dace_time: f64,
}

impl Table12Model {
    /// Seconds per atom, OMEN.
    pub fn omen_time_per_atom(&self) -> f64 {
        self.omen_time / self.omen_na as f64
    }

    /// Seconds per atom, DaCe.
    pub fn dace_time_per_atom(&self) -> f64 {
        self.dace_time / self.dace_na as f64
    }

    /// The per-atom speedup (paper: 140.9×).
    pub fn speedup(&self) -> f64 {
        self.omen_time_per_atom() / self.dace_time_per_atom()
    }
}

/// Builds the Table 12 model (both runs: Nkz = 21, NE = 1,220, 6,840
/// GPUs; OMEN limited to 1,064 atoms by memory).
pub fn table12() -> Table12Model {
    let machine = MachineSpec::summit();
    let gpus = 6_840;
    let mut p_omen = SimParams::large(21);
    p_omen.na = 1_064;
    let p_dace = SimParams::large(21);
    let t_omen = iteration_time(
        &machine,
        &p_omen,
        Variant::Omen,
        gpus,
        Caching::NoCache,
        false,
    );
    let t_dace = iteration_time(
        &machine,
        &p_dace,
        Variant::Dace,
        gpus,
        Caching::CacheBcSpec,
        false,
    );
    Table12Model {
        omen_na: p_omen.na,
        dace_na: p_dace.na,
        omen_time: t_omen.total(),
        dace_time: t_dace.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table11_reproduces_paper_breakdown() {
        // Paper: GF 41.36 s, SSE 41.91 s (double) / 36.16 s (mixed),
        // comm 11.50 s, total 94.77 s, 86.26 Pflop/s; with I/O 96.00 s.
        let m = table11(27_360, 50);
        assert!((m.gf - 41.36).abs() / 41.36 < 0.05, "GF {:.2}", m.gf);
        assert!(
            (m.sse_double - 41.91).abs() / 41.91 < 0.05,
            "SSE {:.2}",
            m.sse_double
        );
        assert!(
            (m.sse_mixed - 36.16).abs() / 36.16 < 0.06,
            "SSE-16 {:.2}",
            m.sse_mixed
        );
        // Communication is modeled, not anchored: same order of
        // magnitude as the measured 11.50 s.
        assert!(
            m.comm > 2.0 && m.comm < 23.0,
            "comm {:.2} s (paper 11.50)",
            m.comm
        );
        assert!(
            (m.total_double - 94.77).abs() / 94.77 < 0.10,
            "total {:.2}",
            m.total_double
        );
        assert!(
            (m.pflops_double - 86.26).abs() / 86.26 < 0.10,
            "perf {:.2} Pflop/s",
            m.pflops_double
        );
        // BC one-time cost ~30.51 s.
        assert!((m.bc - 30.51).abs() / 30.51 < 0.05, "BC {:.2}", m.bc);
        // Amortization matches: total_with_io − total ≈ (31.1+30.5)/50.
        let amort = m.total_with_io - m.total_double;
        assert!((amort - 1.23).abs() < 0.15, "amortized {amort:.2}");
    }

    #[test]
    fn table12_reproduces_per_atom_speedup() {
        let m = table12();
        // Paper: 4,695.70 s vs 333.36 s; speedup 140.9×. The OMEN rate is
        // calibrated to land in the right decade; require the headline
        // two-orders-of-magnitude shape.
        assert!(
            (m.dace_time - 333.36).abs() / 333.36 < 0.15,
            "DaCe time {:.0}",
            m.dace_time
        );
        assert!(
            m.omen_time > 2_000.0 && m.omen_time < 8_000.0,
            "OMEN time {:.0} (paper 4,695.70)",
            m.omen_time
        );
        let s = m.speedup();
        assert!(
            (70.0..250.0).contains(&s),
            "per-atom speedup {s:.0}× (paper 140.9×)"
        );
    }

    #[test]
    fn fig9_shape() {
        let pts = fig9(&[3_420, 6_840, 13_680, 27_360]);
        // Monotone increase in sustained Pflop/s.
        for w in pts.windows(2) {
            assert!(w[1].pflops_cache_all > w[0].pflops_cache_all);
        }
        // Full-scale point ≈ 86 Pflop/s, ~58% of HPL.
        let last = pts.last().unwrap();
        assert!(
            (last.pflops_cache_all - 86.26).abs() / 86.26 < 0.10,
            "{:.1} Pflop/s",
            last.pflops_cache_all
        );
        assert!(
            (last.hpl_fraction - 0.58).abs() < 0.06,
            "{:.2}",
            last.hpl_fraction
        );
        // Mixed precision is faster; NoCache is slower than cached modes
        // in time but gets extra flops credited — its Pflop/s stays below.
        assert!(last.pflops_mixed > last.pflops_cache_all);
        assert!(last.pflops_nocache < last.pflops_cache_all);
        assert!(last.pflops_cache_bc <= last.pflops_cache_all);
        // Paper's baseline point: 11.53 Pflop/s at 3,420 GPUs (63% HPL);
        // the model should land within ~20%.
        assert!(
            (pts[0].pflops_cache_all - 11.53).abs() / 11.53 < 0.25,
            "{:.1} Pflop/s at 3,420 GPUs",
            pts[0].pflops_cache_all
        );
    }

    #[test]
    fn fig8_summit_speedups() {
        let m = MachineSpec::summit();
        let pts = fig8_strong(&m, &[114, 342, 684, 1_368]);
        for p in &pts {
            // Paper: total runtime improves by up to 24.5× on Summit. A
            // single scale-independent SSE rate cannot capture OMEN's
            // scale-dependent inefficiency, so we accept the right decade.
            let s = p.speedup();
            assert!(
                (10.0..130.0).contains(&s),
                "speedup {s:.0}× at {} GPUs",
                p.gpus
            );
            // Communication improves by up to ~80× in the paper's
            // measurements; the pure volume-over-bandwidth model has no
            // constant per-message overheads, so at small process counts
            // the modeled ratio overshoots (the DaCe volume collapses to
            // the Nb halo while the OMEN volume stays fixed).
            let c = p.comm_improvement();
            assert!(
                (20.0..1100.0).contains(&c),
                "comm ratio {c:.0}× at {} GPUs",
                p.gpus
            );
        }
    }

    #[test]
    fn fig8_piz_daint_comm_improvement() {
        let m = MachineSpec::piz_daint();
        let pts = fig8_weak(&m, &[(3, 384), (5, 640), (7, 896), (9, 1_152), (11, 1_408)]);
        // Paper: communication time improves by up to 417.2×.
        let best = pts.iter().map(|p| p.comm_improvement()).fold(0.0, f64::max);
        assert!(
            (250.0..600.0).contains(&best),
            "best comm improvement {best:.0}× (paper 417.2×)"
        );
        // Total speedup up to 16.3×.
        let best_s = pts.iter().map(|p| p.speedup()).fold(0.0, f64::max);
        assert!(
            (8.0..35.0).contains(&best_s),
            "best total speedup {best_s:.0}× (paper 16.3×)"
        );
    }

    #[test]
    fn strong_scaling_efficiency_declines() {
        // Fixed problem, growing machine: efficiency must fall as
        // communication and fixed costs grow relative to compute.
        let m = MachineSpec::summit();
        let p = SimParams::large(21);
        let t1 = iteration_time(&m, &p, Variant::Dace, 3_420, Caching::CacheBcSpec, false);
        let t8 = iteration_time(&m, &p, Variant::Dace, 27_360, Caching::CacheBcSpec, false);
        let speedup = t1.total() / t8.total();
        assert!(
            speedup > 4.0 && speedup < 8.0,
            "8× GPUs -> {speedup:.1}× speedup"
        );
    }
}
