//! # omen-perf
//!
//! Analytic performance, communication, and scalability models of the
//! paper's evaluation section: parameter sets (§6), machine descriptions
//! (§6.2), the flop model (§6.1.1, Table 3), the communication-volume
//! model (§6.1.2, Tables 4–5), the roofline (Fig. 10), the calibrated
//! time-to-solution model behind Figs. 8–9 and Tables 11–12, and the
//! model-vs-measured attribution joining these predictions against live
//! `omen-trace` counters.

pub mod attribution;
pub mod commvolume;
pub mod flops;
pub mod machines;
pub mod params;
pub mod roofline;
pub mod scaling;
pub mod streams;

pub use attribution::{
    attribute, AttributionModel, AttributionReport, StageRow, StreamAttribution,
};
pub use commvolume::{
    dace_best_tiling, dace_volume, dace_volume_with, omen_invocations, omen_volume, table4, table5,
    VolumeRow, TIB,
};
pub use flops::{
    bc_flops_total, large_iteration_flops, rgf_flops_total, sse_flops_dace, sse_flops_omen, table3,
    Table3Row,
};
pub use machines::{Gpu, MachineSpec, P100, V100};
pub use params::{table2_requirements, Requirement, SimParams};
pub use roofline::{attainable, gemm_intensity, is_compute_bound, paper_kernels, RooflineKernel};
pub use streams::{measured_overlap_fraction, StreamModel};

pub use scaling::{
    comm_time, fig8_strong, fig8_weak, fig9, iteration_flops, iteration_time, rates, table11,
    table12, Caching, Fig8Point, Fig9Point, IterationModel, Rates, Table11Model, Table12Model,
    Variant, EFF_ALLTOALL, EFF_P2P, SPEC_BC_FRACTION,
};
