//! The Table 6 streams model: GF/SSE phase overlap across sweep points.
//!
//! The paper's Table 6 predicts what CUDA streams buy when the Green's
//! function phase of one task runs concurrently with the scattering
//! self-energy phase of the previous one. This module states that model
//! for the two-stage thread pipeline `omen-core::stream` actually runs:
//! `T` tasks whose GF stage costs `g` seconds and SSE stage `s` seconds
//! take `T·(g+s)` serially, but only `T·max(g,s) + min(g,s)` pipelined —
//! the smaller stage hides behind the larger one on every task but the
//! first (or last), saving `(T−1)·min(g,s)`.
//!
//! [`measured_overlap_fraction`] inverts the model against reality: from
//! the busy seconds each phase actually recorded (`omen-trace` phase
//! windows) and the measured wall time of the overlapped sweep, it
//! recovers what fraction of the smaller stage was truly hidden.

use omen_trace::TraceSnapshot;

/// The two-stage pipeline model: `tasks` units of work, each with a GF
/// stage of `gf_s` seconds and an SSE stage of `sse_s` seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamModel {
    /// Pipelined tasks (sweep points × Born iterations, or any unit
    /// whose two stages alternate).
    pub tasks: usize,
    /// Seconds one GF stage costs.
    pub gf_s: f64,
    /// Seconds one SSE stage costs.
    pub sse_s: f64,
}

impl StreamModel {
    /// Builds the model from a traced **serial** run: per-task stage
    /// costs are the `gf_phase` / `sse_phase` busy sums divided by the
    /// task count.
    pub fn from_trace(snap: &TraceSnapshot, tasks: usize) -> StreamModel {
        let per = |ns: u64| {
            if tasks == 0 {
                0.0
            } else {
                ns as f64 * 1e-9 / tasks as f64
            }
        };
        StreamModel {
            tasks,
            gf_s: per(snap.phase_ns("gf_phase")),
            sse_s: per(snap.phase_ns("sse_phase")),
        }
    }

    /// Wall seconds of the serial schedule: `T·(g+s)`.
    pub fn serial_wall(&self) -> f64 {
        self.tasks as f64 * (self.gf_s + self.sse_s)
    }

    /// Wall seconds of the two-stage pipeline: `T·max(g,s) + min(g,s)`
    /// — the larger stage is the critical path, plus one exposed copy of
    /// the smaller stage to fill/drain the pipe.
    pub fn pipelined_wall(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.tasks as f64 * self.gf_s.max(self.sse_s) + self.gf_s.min(self.sse_s)
    }

    /// Modeled serial/pipelined speedup (1.0 for zero or one task).
    pub fn speedup(&self) -> f64 {
        let p = self.pipelined_wall();
        if p > 0.0 {
            self.serial_wall() / p
        } else {
            1.0
        }
    }

    /// Seconds the pipeline hides: `(T−1)·min(g,s)`.
    pub fn saved_s(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        (self.tasks as f64 - 1.0) * self.gf_s.min(self.sse_s)
    }

    /// Modeled fraction of the smaller stage's total busy time that is
    /// hidden: `(T−1)/T`. This is what [`measured_overlap_fraction`]
    /// should recover from a perfectly pipelined run.
    pub fn overlap_fraction(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            (self.tasks as f64 - 1.0) / self.tasks as f64
        }
    }
}

/// Measured overlap fraction of a pipelined run: how much of the smaller
/// stage's busy time was hidden behind the larger stage.
///
/// With `gf_s`/`sse_s` the *busy* seconds each phase recorded and
/// `wall_s` the measured wall time, the hidden time is
/// `gf_s + sse_s − wall_s` (busy work that did not extend the wall), as
/// a fraction of `min(gf_s, sse_s)` (the most that *could* hide). The
/// result is clamped to `[0, 1]`: timer noise can push the raw ratio
/// slightly outside, and a serial run (`wall ≥ gf + sse`) reads as 0.
pub fn measured_overlap_fraction(gf_s: f64, sse_s: f64, wall_s: f64) -> f64 {
    if !gf_s.is_finite() || !sse_s.is_finite() || !wall_s.is_finite() {
        return 0.0;
    }
    let min = gf_s.min(sse_s);
    if min <= 0.0 {
        return 0.0;
    }
    ((gf_s + sse_s - wall_s) / min).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_trace::{PhaseRecord, NCOUNTERS};

    fn model(tasks: usize, gf_s: f64, sse_s: f64) -> StreamModel {
        StreamModel { tasks, gf_s, sse_s }
    }

    #[test]
    fn walls_and_speedup_follow_the_pipeline_algebra() {
        let m = model(4, 3.0, 1.0);
        assert!((m.serial_wall() - 16.0).abs() < 1e-12);
        // 4·max + min = 4·3 + 1 = 13.
        assert!((m.pipelined_wall() - 13.0).abs() < 1e-12);
        assert!((m.speedup() - 16.0 / 13.0).abs() < 1e-12);
        // Saved = (T−1)·min = 3·1; serial − pipelined agrees.
        assert!((m.saved_s() - 3.0).abs() < 1e-12);
        assert!((m.serial_wall() - m.pipelined_wall() - m.saved_s()).abs() < 1e-12);
    }

    #[test]
    fn balanced_stages_approach_2x() {
        let m = model(100, 1.0, 1.0);
        assert!(m.speedup() > 1.9 && m.speedup() < 2.0);
        assert!((m.overlap_fraction() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn degenerate_task_counts_are_tame() {
        assert_eq!(model(0, 1.0, 1.0).pipelined_wall(), 0.0);
        assert_eq!(model(0, 1.0, 1.0).speedup(), 1.0);
        assert_eq!(model(0, 1.0, 1.0).overlap_fraction(), 0.0);
        // One task has nothing to overlap with: pipeline == serial.
        let one = model(1, 2.0, 1.0);
        assert!((one.pipelined_wall() - one.serial_wall()).abs() < 1e-12);
        assert_eq!(one.saved_s(), 0.0);
        assert_eq!(one.overlap_fraction(), 0.0);
    }

    #[test]
    fn measured_fraction_recovers_the_model_on_ideal_timings() {
        let m = model(8, 2.0, 1.0);
        // Busy sums of a pipelined run are unchanged — only the wall
        // shrinks. The recovered fraction must match (T−1)/T.
        let f = measured_overlap_fraction(
            m.tasks as f64 * m.gf_s,
            m.tasks as f64 * m.sse_s,
            m.pipelined_wall(),
        );
        assert!((f - m.overlap_fraction()).abs() < 1e-12, "f = {f}");
    }

    #[test]
    fn measured_fraction_clamps_and_rejects_degenerate_inputs() {
        // Serial wall (no overlap) → 0.
        assert_eq!(measured_overlap_fraction(4.0, 2.0, 6.0), 0.0);
        // Wall below max busy (impossible, timer noise) → clamped to 1.
        assert_eq!(measured_overlap_fraction(4.0, 2.0, 3.0), 1.0);
        // Zero or NaN inputs never produce NaN.
        assert_eq!(measured_overlap_fraction(0.0, 2.0, 1.0), 0.0);
        assert_eq!(measured_overlap_fraction(f64::NAN, 2.0, 1.0), 0.0);
        assert_eq!(measured_overlap_fraction(4.0, 2.0, f64::NAN), 0.0);
    }

    #[test]
    fn from_trace_divides_phase_busy_time_over_tasks() {
        let phase = |name: &'static str, dur_ns: u64| PhaseRecord {
            name,
            tid: 1,
            start_ns: 0,
            dur_ns,
            deltas: [0u64; NCOUNTERS],
        };
        let snap = TraceSnapshot {
            phases: vec![
                phase("gf_phase", 3_000_000_000),
                phase("gf_phase", 1_000_000_000),
                phase("sse_phase", 2_000_000_000),
            ],
            ..TraceSnapshot::default()
        };
        let m = StreamModel::from_trace(&snap, 2);
        assert!((m.gf_s - 2.0).abs() < 1e-9);
        assert!((m.sse_s - 1.0).abs() < 1e-9);
        assert_eq!(StreamModel::from_trace(&snap, 0).gf_s, 0.0);
    }
}
