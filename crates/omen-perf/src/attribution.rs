//! Model-vs-measured performance attribution.
//!
//! Joins a live [`TraceSnapshot`] — phase-scoped counter deltas recorded
//! by the instrumented kernels — against this crate's analytic
//! predictions: the flop model of §6.1.1 per stage and the
//! communication-volume model of §6.1.2 per exchange scheme. The result
//! is a per-stage table of measured vs predicted work, the
//! measured/predicted ratio, and the achieved rate over the phase's wall
//! time — the ground truth the paper's Tables 3–5 and the roofline
//! (Fig. 10) model analytically.

use crate::commvolume::{dace_volume_with, omen_volume};
use crate::flops::{rgf_flops_total, sse_flops_omen};
use crate::params::SimParams;
use crate::streams::StreamModel;
use omen_trace::{Counter, TraceSnapshot};

/// What the analytic models should be evaluated at when attributing a
/// trace: the simulation's parameter set, how many Born iterations the
/// trace covers, and which communication legs (if any) ran.
#[derive(Clone, Copy, Debug)]
pub struct AttributionModel {
    /// Parameter set of the traced simulation.
    pub params: SimParams,
    /// Born iterations the trace window covers.
    pub iterations: u64,
    /// Rank count of the OMEN-scheme exchange leg (phase
    /// `comm_omen_plan`), when one ran.
    pub omen_ranks: Option<usize>,
    /// `(Ta, TE)` tiling of the DaCe-scheme leg (phase
    /// `comm_dace_plan`), when one ran.
    pub dace_tiling: Option<(usize, usize)>,
    /// How many times each enabled comm leg executed inside its phase
    /// windows: 1 for a single-shot exchange on converged tensors, the
    /// Born iteration count when the plan kernel runs every iteration
    /// (`ExecutorKind::Distributed`).
    pub comm_execs: u64,
    /// GF/SSE stream-overlap leg: the Table 6 pipeline model plus the
    /// measured wall seconds of the overlapped sweep, when one ran.
    pub stream: Option<StreamAttribution>,
}

/// Inputs of the stream-overlap row: the analytic pipeline model and
/// the wall time the overlapped sweep actually took. The measured
/// hidden time comes from the trace (`gf_phase + sse_phase` busy sums
/// minus this wall); the prediction is the model's `serial − pipelined`
/// saving.
#[derive(Clone, Copy, Debug)]
pub struct StreamAttribution {
    /// The Table 6 pipeline model evaluated for this sweep.
    pub model: StreamModel,
    /// Measured wall seconds of the overlapped sweep.
    pub wall_s: f64,
}

/// One attributed stage: measured work from the trace against the
/// model's prediction, plus the stage's wall time.
#[derive(Clone, Copy, Debug)]
pub struct StageRow {
    /// Stage name (`gf`, `sse`, `comm(omen)`, `comm(dace)`).
    pub stage: &'static str,
    /// Work measured by the instrumented kernels (flop or bytes).
    pub measured: f64,
    /// Work the analytic model predicts (same unit).
    pub predicted: f64,
    /// Unit of `measured`/`predicted`: `"flop"`, `"bytes"`, or `"s"`
    /// (the stream-overlap row, where the work *is* hidden seconds).
    pub unit: &'static str,
    /// Wall seconds the stage's phase records cover.
    pub wall_s: f64,
}

impl StageRow {
    /// Measured over predicted — 1.0 when the model is exact, NaN when
    /// the model predicts zero work.
    pub fn ratio(&self) -> f64 {
        self.measured / self.predicted
    }

    /// Achieved rate: measured work per wall second (flop/s or B/s);
    /// zero when the phase recorded no wall time.
    pub fn achieved_rate(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.measured / self.wall_s
        } else {
            0.0
        }
    }
}

/// The per-stage attribution table.
#[derive(Clone, Debug)]
pub struct AttributionReport {
    /// One row per attributed stage, in pipeline order.
    pub rows: Vec<StageRow>,
}

/// Builds the attribution table from a trace snapshot and the model
/// inputs. GF measures `GemmFlops + SbsmmFlops` inside the `gf_phase`
/// windows against the RGF flop model; SSE measures `SseFlops` inside
/// `sse_phase` against the OMEN-schedule SSE model; each communication
/// leg measures `BytesCommunicated` inside its plan phase against the
/// volume model for that scheme.
pub fn attribute(snap: &TraceSnapshot, model: &AttributionModel) -> AttributionReport {
    let iters = model.iterations as f64;
    let flop_delta = |phase: &str| {
        (snap.phase_delta(phase, Counter::GemmFlops) + snap.phase_delta(phase, Counter::SbsmmFlops))
            as f64
    };
    let secs = |phase: &str| snap.phase_ns(phase) as f64 * 1e-9;

    let mut rows = vec![
        StageRow {
            stage: "gf",
            measured: flop_delta("gf_phase"),
            predicted: rgf_flops_total(&model.params) * iters,
            unit: "flop",
            wall_s: secs("gf_phase"),
        },
        StageRow {
            stage: "sse",
            measured: snap.phase_delta("sse_phase", Counter::SseFlops) as f64,
            predicted: sse_flops_omen(&model.params) * iters,
            unit: "flop",
            wall_s: secs("sse_phase"),
        },
    ];
    let execs = model.comm_execs as f64;
    if let Some(ranks) = model.omen_ranks {
        rows.push(StageRow {
            stage: "comm(omen)",
            measured: snap.phase_delta("comm_omen_plan", Counter::BytesCommunicated) as f64,
            predicted: omen_volume(&model.params, ranks) * execs,
            unit: "bytes",
            wall_s: secs("comm_omen_plan"),
        });
    }
    if let Some((ta, te)) = model.dace_tiling {
        rows.push(StageRow {
            stage: "comm(dace)",
            measured: snap.phase_delta("comm_dace_plan", Counter::BytesCommunicated) as f64,
            predicted: dace_volume_with(&model.params, ta, te) * execs,
            unit: "bytes",
            wall_s: secs("comm_dace_plan"),
        });
    }
    if let Some(stream) = model.stream {
        // Hidden seconds: phase busy time that did not extend the wall.
        let busy = secs("gf_phase") + secs("sse_phase");
        rows.push(StageRow {
            stage: "overlap",
            measured: (busy - stream.wall_s).max(0.0),
            predicted: stream.model.saved_s(),
            unit: "s",
            wall_s: stream.wall_s,
        });
    }
    AttributionReport { rows }
}

/// Engineering-notation helper: `1.23e9 flop` style, stable for text
/// reports without pulling in a formatting dependency.
fn eng(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else {
        format!("{v:.3e}")
    }
}

impl AttributionReport {
    /// Renders the table as aligned text: one row per stage with
    /// measured, predicted, measured/predicted, and the achieved rate
    /// (GFLOP/s for flop stages, MB/s for byte stages, percent of the
    /// sweep wall hidden for the overlap stage).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>9} {:>14}\n",
            "stage", "measured", "predicted", "ratio", "rate"
        ));
        for row in &self.rows {
            let rate = match row.unit {
                "flop" => format!("{:.2} GFLOP/s", row.achieved_rate() / 1e9),
                "s" => format!("{:.1}% hidden", 100.0 * row.achieved_rate()),
                _ => format!("{:.2} MB/s", row.achieved_rate() / 1e6),
            };
            out.push_str(&format!(
                "{:<12} {:>12} {:>12} {:>9.3} {:>14}\n",
                row.stage,
                eng(row.measured),
                eng(row.predicted),
                row.ratio(),
                rate
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_trace::{PhaseRecord, NCOUNTERS};

    fn phase(name: &'static str, dur_ns: u64, deltas: &[(Counter, u64)]) -> PhaseRecord {
        let mut d = [0u64; NCOUNTERS];
        for &(c, v) in deltas {
            d[c.index()] = v;
        }
        PhaseRecord {
            name,
            tid: 1,
            start_ns: 0,
            dur_ns,
            deltas: d,
        }
    }

    #[test]
    fn attribution_joins_phases_against_the_models() {
        let params = SimParams::small(3);
        let model = AttributionModel {
            params,
            iterations: 2,
            omen_ranks: Some(4),
            dace_tiling: Some((2, 2)),
            comm_execs: 1,
            stream: None,
        };
        // A synthetic trace that measured exactly half the predicted GF
        // flops, the exact SSE flops, and the exact OMEN volume.
        let gf_pred = rgf_flops_total(&params) * 2.0;
        let sse_pred = sse_flops_omen(&params) * 2.0;
        let omen_pred = omen_volume(&params, 4);
        let snap = TraceSnapshot {
            phases: vec![
                phase(
                    "gf_phase",
                    2_000_000_000,
                    &[
                        (Counter::GemmFlops, (gf_pred / 4.0) as u64),
                        (Counter::SbsmmFlops, (gf_pred / 4.0) as u64),
                    ],
                ),
                phase(
                    "sse_phase",
                    1_000_000_000,
                    &[(Counter::SseFlops, sse_pred as u64)],
                ),
                phase(
                    "comm_omen_plan",
                    500_000_000,
                    &[(Counter::BytesCommunicated, omen_pred as u64)],
                ),
                phase("comm_dace_plan", 500_000_000, &[]),
            ],
            ..TraceSnapshot::default()
        };

        let report = attribute(&snap, &model);
        assert_eq!(report.rows.len(), 4);
        let by_name = |n: &str| *report.rows.iter().find(|r| r.stage == n).unwrap();

        let gf = by_name("gf");
        assert!((gf.ratio() - 0.5).abs() < 1e-6, "gf ratio {}", gf.ratio());
        // 2 s of wall → rate = measured / 2.
        assert!((gf.achieved_rate() - gf.measured / 2.0).abs() < 1.0);

        let sse = by_name("sse");
        assert!((sse.ratio() - 1.0).abs() < 1e-6);

        let omen = by_name("comm(omen)");
        assert!((omen.ratio() - 1.0).abs() < 1e-6);
        assert_eq!(omen.unit, "bytes");

        // The DaCe leg measured nothing: ratio 0, rate 0 by definition.
        let dace = by_name("comm(dace)");
        assert_eq!(dace.measured, 0.0);
        assert_eq!(dace.ratio(), 0.0);

        let text = report.render();
        assert!(text.contains("gf"));
        assert!(text.contains("GFLOP/s"));
        assert!(text.contains("MB/s"));
        assert!(text.lines().count() == 5, "header + 4 rows:\n{text}");
    }

    #[test]
    fn comm_rows_appear_only_when_a_leg_ran() {
        let model = AttributionModel {
            params: SimParams::small(3),
            iterations: 1,
            omen_ranks: None,
            dace_tiling: None,
            comm_execs: 1,
            stream: None,
        };
        let report = attribute(&TraceSnapshot::default(), &model);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.unit == "flop"));
        // No wall time recorded → rates are zero, not NaN or infinite.
        assert!(report.rows.iter().all(|r| r.achieved_rate() == 0.0));
    }

    #[test]
    fn overlap_row_joins_hidden_seconds_against_the_stream_model() {
        // 4 tasks, gf 2 s, sse 1 s: serial 12 s, pipelined 9 s, 3 s saved.
        let stream = StreamModel {
            tasks: 4,
            gf_s: 2.0,
            sse_s: 1.0,
        };
        let model = AttributionModel {
            params: SimParams::small(3),
            iterations: 4,
            omen_ranks: None,
            dace_tiling: None,
            comm_execs: 1,
            stream: Some(StreamAttribution {
                model: stream,
                wall_s: 9.0,
            }),
        };
        // A trace whose busy sums are exactly the serial schedule.
        let snap = TraceSnapshot {
            phases: vec![
                phase("gf_phase", 8_000_000_000, &[]),
                phase("sse_phase", 4_000_000_000, &[]),
            ],
            ..TraceSnapshot::default()
        };
        let report = attribute(&snap, &model);
        let overlap = *report.rows.iter().find(|r| r.stage == "overlap").unwrap();
        assert_eq!(overlap.unit, "s");
        // Hidden = 12 busy − 9 wall = 3 s, exactly the model's saving.
        assert!((overlap.measured - 3.0).abs() < 1e-9);
        assert!((overlap.predicted - 3.0).abs() < 1e-9);
        assert!((overlap.ratio() - 1.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("overlap"), "{text}");
        assert!(text.contains("% hidden"), "{text}");

        // A serial wall hides nothing — measured clamps to zero.
        let serial = AttributionModel {
            stream: Some(StreamAttribution {
                model: stream,
                wall_s: 12.5,
            }),
            ..model
        };
        let row = *attribute(&snap, &serial)
            .rows
            .iter()
            .find(|r| r.stage == "overlap")
            .unwrap();
        assert_eq!(row.measured, 0.0);
    }
}
