//! The communication-volume model of §6.1.2, reproducing Tables 4–5.
//!
//! OMEN scheme (per iteration):
//! * all `G^≷` replicated `2·Nqz·Nω` times point-to-point:
//!   `2·Nqz·Nω · Nkz·NE · (2·Na·Norb²·16)` bytes;
//! * `D^≷` broadcast to all `P` ranks and `Π^≷` reduced back:
//!   `2 · Nqz·Nω · P · (2·Na·(Nb+1)·N3D²·16)` bytes.
//!
//! DaCe scheme: four all-to-alls; per process
//!
//! * `64·Nkz·(NE/TE + 2Nω)·(Na/Ta + Nb)·Norb²` bytes for `G^≷`+`Σ^≷`,
//! * `64·Nqz·Nω·(Na/Ta + Nb)·(Nb+1)·N3D²` bytes for `D^≷`+`Π^≷`,
//!
//! with `P = Ta·TE` (the halo over-approximation `c ≈ Nb` is the paper's).

use crate::params::SimParams;

/// Bytes of one `G^≷(kz, E)` slice, both components.
pub fn g_slice_bytes(p: &SimParams) -> f64 {
    2.0 * p.na as f64 * (p.norb * p.norb) as f64 * 16.0
}

/// Bytes of one `D^≷(qz, ω)` slice, both components.
pub fn d_slice_bytes(p: &SimParams) -> f64 {
    2.0 * p.na as f64 * (p.nb + 1) as f64 * (p.n3d * p.n3d) as f64 * 16.0
}

/// Total OMEN-scheme SSE traffic per iteration (bytes) on `nprocs` ranks.
pub fn omen_volume(p: &SimParams, nprocs: usize) -> f64 {
    let rounds = (p.nq * p.nw) as f64;
    let g = 2.0 * rounds * (p.nk * p.ne) as f64 * g_slice_bytes(p);
    let d_and_pi = 2.0 * rounds * nprocs as f64 * d_slice_bytes(p);
    g + d_and_pi
}

/// OMEN-scheme MPI invocations per iteration (the paper's
/// `9·Nω·Nqz·NE/tE` order; we count the collective structure of Fig. 5).
pub fn omen_invocations(p: &SimParams, ne_per_tile: usize) -> f64 {
    9.0 * (p.nw * p.nq) as f64 * (p.ne as f64 / ne_per_tile as f64)
}

/// Per-process DaCe all-to-all contribution for `G^≷ + Σ^≷` (bytes).
pub fn dace_g_bytes_per_proc(p: &SimParams, ta: usize, te: usize) -> f64 {
    64.0 * p.nk as f64
        * (p.ne as f64 / te as f64 + 2.0 * p.nw as f64)
        * (p.na as f64 / ta as f64 + p.nb as f64)
        * (p.norb * p.norb) as f64
}

/// Per-process DaCe all-to-all contribution for `D^≷ + Π^≷` (bytes).
pub fn dace_d_bytes_per_proc(p: &SimParams, ta: usize) -> f64 {
    64.0 * (p.nq * p.nw) as f64
        * (p.na as f64 / ta as f64 + p.nb as f64)
        * ((p.nb + 1) * p.n3d * p.n3d) as f64
}

/// Total DaCe-scheme traffic for an explicit `(Ta, TE)` factorization.
pub fn dace_volume_with(p: &SimParams, ta: usize, te: usize) -> f64 {
    let procs = (ta * te) as f64;
    procs * (dace_g_bytes_per_proc(p, ta, te) + dace_d_bytes_per_proc(p, ta))
}

/// The best `(Ta, TE)` factorization of `nprocs` (minimum volume), as the
/// performance engineer would choose.
pub fn dace_best_tiling(p: &SimParams, nprocs: usize) -> (usize, usize) {
    let mut best = (nprocs, 1);
    let mut best_vol = f64::INFINITY;
    for ta in 1..=nprocs {
        if !nprocs.is_multiple_of(ta) {
            continue;
        }
        let te = nprocs / ta;
        if ta > p.na || te > p.ne {
            continue;
        }
        let v = dace_volume_with(p, ta, te);
        if v < best_vol {
            best_vol = v;
            best = (ta, te);
        }
    }
    best
}

/// Total DaCe-scheme traffic with the optimal factorization.
pub fn dace_volume(p: &SimParams, nprocs: usize) -> f64 {
    let (ta, te) = dace_best_tiling(p, nprocs);
    dace_volume_with(p, ta, te)
}

/// One row of Table 4/5.
#[derive(Clone, Copy, Debug)]
pub struct VolumeRow {
    /// Momentum points.
    pub nk: usize,
    /// Process count.
    pub nprocs: usize,
    /// OMEN volume (bytes).
    pub omen: f64,
    /// DaCe volume (bytes).
    pub dace: f64,
}

impl VolumeRow {
    /// Reduction factor (the bracketed numbers of Tables 4–5).
    pub fn reduction(&self) -> f64 {
        self.omen / self.dace
    }
}

/// Table 4: weak scaling of the Small structure,
/// `(Nkz, P) ∈ {(3,768), (5,1280), (7,1792), (9,2304), (11,2816)}`.
pub fn table4() -> Vec<VolumeRow> {
    [
        (3usize, 768usize),
        (5, 1280),
        (7, 1792),
        (9, 2304),
        (11, 2816),
    ]
    .iter()
    .map(|&(nk, procs)| {
        let p = SimParams::small(nk);
        VolumeRow {
            nk,
            nprocs: procs,
            omen: omen_volume(&p, procs),
            dace: dace_volume(&p, procs),
        }
    })
    .collect()
}

/// Table 5: strong scaling of the Small structure at `Nkz = 7`.
pub fn table5() -> Vec<VolumeRow> {
    [224usize, 448, 896, 1792, 2688]
        .iter()
        .map(|&procs| {
            let p = SimParams::small(7);
            VolumeRow {
                nk: 7,
                nprocs: procs,
                omen: omen_volume(&p, procs),
                dace: dace_volume(&p, procs),
            }
        })
        .collect()
}

/// Tebibytes.
pub const TIB: f64 = 1024.0 * 1024.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE4_PAPER: [(usize, f64, f64); 5] = [
        (768, 32.11, 0.54),
        (1280, 89.18, 1.22),
        (1792, 174.80, 2.17),
        (2304, 288.95, 3.38),
        (2816, 431.65, 4.86),
    ];

    #[test]
    fn reproduces_table4_omen_column() {
        for (row, &(procs, omen_tib, _)) in table4().iter().zip(TABLE4_PAPER.iter()) {
            assert_eq!(row.nprocs, procs);
            let got = row.omen / TIB;
            let rel = (got - omen_tib).abs() / omen_tib;
            assert!(
                rel < 0.03,
                "P={procs}: OMEN model {got:.2} TiB vs paper {omen_tib} ({rel:.3})"
            );
        }
    }

    #[test]
    fn reproduces_table4_dace_column_shape() {
        // The DaCe column depends on the authors' (Ta, TE) choice; our
        // optimizer lands within ~20% of the published numbers and must
        // preserve the two-orders-of-magnitude reduction.
        for (row, &(procs, _, dace_tib)) in table4().iter().zip(TABLE4_PAPER.iter()) {
            let got = row.dace / TIB;
            let rel = (got - dace_tib).abs() / dace_tib;
            assert!(
                rel < 0.25,
                "P={procs}: DaCe model {got:.2} TiB vs paper {dace_tib} ({rel:.3})"
            );
            assert!(
                row.reduction() > 45.0,
                "reduction {:.0}× must stay around two orders of magnitude",
                row.reduction()
            );
        }
    }

    const TABLE5_PAPER: [(usize, f64, f64); 5] = [
        (224, 108.24, 0.95),
        (448, 117.75, 1.13),
        (896, 136.76, 1.48),
        (1792, 174.80, 2.17),
        (2688, 212.84, 2.87),
    ];

    #[test]
    fn reproduces_table5() {
        for (row, &(procs, omen_tib, dace_tib)) in table5().iter().zip(TABLE5_PAPER.iter()) {
            assert_eq!(row.nprocs, procs);
            let rel_o = (row.omen / TIB - omen_tib).abs() / omen_tib;
            assert!(
                rel_o < 0.03,
                "P={procs}: OMEN {:.2} vs {omen_tib}",
                row.omen / TIB
            );
            // Our optimizer may find a better (Ta, TE) than the paper
            // used; the model must stay within [-50%, +25%] of the
            // published DaCe value and never exceed it grossly.
            let got = row.dace / TIB;
            assert!(
                got > 0.5 * dace_tib && got < 1.25 * dace_tib,
                "P={procs}: DaCe {got:.2} vs {dace_tib}"
            );
        }
    }

    #[test]
    fn narrative_large_scale_numbers() {
        // §6.1.2: "Large" with NE = 1,000: 2.58 PiB total for G^≷ and
        // ~276 GiB for D^≷ per electron process over the rounds.
        let mut p = SimParams::large(21);
        p.ne = 1_000;
        let rounds = (p.nq * p.nw) as f64;
        let g_total = 2.0 * rounds * (p.nk * p.ne) as f64 * g_slice_bytes(&p);
        let pib = TIB * 1024.0;
        assert!(
            (g_total / pib - 2.58).abs() / 2.58 < 0.02,
            "G volume {:.2} PiB vs 2.58",
            g_total / pib
        );
        // "receiving and sending 276 GiB": each process both receives the
        // broadcast D^≷ and sends its Π^≷ partials — 2× the one-way rounds.
        let d_per_proc = 2.0 * rounds * d_slice_bytes(&p);
        let gib = 1024.0 * 1024.0 * 1024.0;
        assert!(
            (d_per_proc / gib - 276.0).abs() / 276.0 < 0.05,
            "D per process {:.0} GiB vs 276",
            d_per_proc / gib
        );
    }

    #[test]
    fn crossover_near_440k_processes() {
        // §6.1.2: "the total cost for G^≷ becomes equal for the two
        // communication schemes when the number of processes is greater
        // than 440,000."
        let mut p = SimParams::large(21);
        p.ne = 1_000;
        let rounds = (p.nq * p.nw) as f64;
        let g_omen = 2.0 * rounds * (p.nk * p.ne) as f64 * g_slice_bytes(&p);
        // DaCe G cost with Ta = P, TE = 1.
        let g_dace = |procs: f64| {
            procs
                * 64.0
                * p.nk as f64
                * (p.ne as f64 + 2.0 * p.nw as f64)
                * (p.na as f64 / procs + p.nb as f64)
                * (p.norb * p.norb) as f64
        };
        // Find where they cross.
        let mut crossover = 0f64;
        let mut procs = 1000.0;
        while procs < 2e6 {
            if g_dace(procs) >= g_omen {
                crossover = procs;
                break;
            }
            procs *= 1.02;
        }
        assert!(
            (crossover - 440_000.0).abs() / 440_000.0 < 0.15,
            "crossover at {crossover:.0} processes (paper: ~440,000)"
        );
    }

    #[test]
    fn optimizer_picks_valid_factorization() {
        let p = SimParams::small(7);
        for procs in [224, 768, 1792] {
            let (ta, te) = dace_best_tiling(&p, procs);
            assert_eq!(ta * te, procs);
            // Never worse than the pure-atom-tiling corner (Ta = P, TE = 1).
            assert!(dace_volume_with(&p, ta, te) <= dace_volume_with(&p, procs, 1));
        }
    }
}
