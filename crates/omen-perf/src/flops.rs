//! The computational-load model of §6.1.1, reproducing Table 3 and the
//! flop column of Table 11.

use crate::params::SimParams;

/// RGF flops per electron energy-momentum point:
/// `8·(26·bnum − 25)·(Na·Norb/bnum)³` (dense term; the sparse term is an
/// upper-bound `O(·)` the paper does not include in Table 3).
pub fn rgf_flops_per_point(p: &SimParams) -> f64 {
    8.0 * (26.0 * p.bnum as f64 - 25.0) * p.block_size().powi(3)
}

/// RGF flops per phonon point (block size `Na·N3D/bnum`).
pub fn rgf_flops_per_phonon_point(p: &SimParams) -> f64 {
    let bs = p.na as f64 * p.n3d as f64 / p.bnum as f64;
    8.0 * (26.0 * p.bnum as f64 - 25.0) * bs.powi(3)
}

/// Total RGF flops per iteration (electron + phonon points).
pub fn rgf_flops_total(p: &SimParams) -> f64 {
    rgf_flops_per_point(p) * p.electron_points() as f64
        + rgf_flops_per_phonon_point(p) * p.phonon_points() as f64
}

/// Boundary-condition flops per iteration: `bc_block_ops` effective
/// `bs³`-sized block operations per electron point (decimation depth —
/// calibrated per structure, see `SimParams::bc_block_ops`).
pub fn bc_flops_total(p: &SimParams) -> f64 {
    p.bc_block_ops * 8.0 * p.block_size().powi(3) * p.electron_points() as f64
}

/// SSE flops per iteration, OMEN schedule:
/// `64·Na·Nb·N3D·Nkz·Nqz·NE·Nω·Norb³`.
pub fn sse_flops_omen(p: &SimParams) -> f64 {
    64.0 * p.na as f64
        * p.nb as f64
        * p.n3d as f64
        * p.nk as f64
        * p.nq as f64
        * p.ne as f64
        * p.nw as f64
        * (p.norb as f64).powi(3)
}

/// SSE flops per iteration, DaCe schedule (regrouping reduction
/// `2NqzNω/(NqzNω+1)`).
pub fn sse_flops_dace(p: &SimParams) -> f64 {
    let qw = (p.nq * p.nw) as f64;
    sse_flops_omen(p) * (qw + 1.0) / (2.0 * qw)
}

/// One row set of Table 3 at a given `Nkz` (values in flop).
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Momentum points.
    pub nk: usize,
    /// Boundary conditions.
    pub bc: f64,
    /// RGF.
    pub rgf: f64,
    /// SSE, OMEN schedule.
    pub sse_omen: f64,
    /// SSE, DaCe schedule.
    pub sse_dace: f64,
}

/// Computes Table 3 for the Small structure over the paper's `Nkz` sweep.
pub fn table3(nk_values: &[usize]) -> Vec<Table3Row> {
    nk_values
        .iter()
        .map(|&nk| {
            let p = SimParams::small(nk);
            Table3Row {
                nk,
                bc: bc_flops_total(&p),
                rgf: rgf_flops_total(&p),
                sse_omen: sse_flops_omen(&p),
                sse_dace: sse_flops_dace(&p),
            }
        })
        .collect()
}

/// Full-iteration flops of the Large structure by caching mode
/// (Table 11 / Fig. 9): with all caches, only GF + SSE execute
/// (8.17 Eflop); without caches, boundary conditions are recomputed
/// (9.41 Eflop).
pub fn large_iteration_flops(p: &SimParams, cache_bc_and_spec: bool) -> f64 {
    let base = rgf_flops_total(p) + sse_flops_dace(p);
    if cache_bc_and_spec {
        base
    } else {
        base + bc_flops_total(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE3_PAPER: [(usize, f64, f64, f64, f64); 5] = [
        (3, 8.45, 52.95, 24.41, 12.38),
        (5, 14.12, 88.25, 67.80, 34.19),
        (7, 19.77, 123.55, 132.89, 66.85),
        (9, 25.42, 158.85, 219.67, 110.36),
        (11, 31.06, 194.15, 328.15, 164.71),
    ];

    #[test]
    fn reproduces_table3() {
        let rows = table3(&[3, 5, 7, 9, 11]);
        for (row, &(nk, bc, rgf, so, sd)) in rows.iter().zip(TABLE3_PAPER.iter()) {
            assert_eq!(row.nk, nk);
            let check = |got: f64, want_pflop: f64, what: &str, tol: f64| {
                let rel = (got / 1e15 - want_pflop).abs() / want_pflop;
                assert!(
                    rel < tol,
                    "Nkz={nk} {what}: model {:.2} Pflop vs paper {want_pflop} ({rel:.3})",
                    got / 1e15
                );
            };
            check(row.bc, bc, "BC", 0.02);
            check(row.rgf, rgf, "RGF", 0.03);
            check(row.sse_omen, so, "SSE(OMEN)", 0.01);
            check(row.sse_dace, sd, "SSE(DaCe)", 0.02);
        }
    }

    #[test]
    fn reproduces_table11_flops() {
        // Table 11: GF 6.00 Eflop, SSE 2.18 Eflop, BC 1.23 Eflop;
        // totals 8.17 (cached) / 9.41 (uncached... the paper quotes the
        // 8.17–9.41 range in §7.3).
        let p = SimParams::large(21);
        let gf = rgf_flops_total(&p) / 1e18;
        assert!((gf - 6.00).abs() / 6.00 < 0.02, "GF {gf:.2} Eflop");
        let sse = sse_flops_dace(&p) / 1e18;
        assert!((sse - 2.18).abs() / 2.18 < 0.02, "SSE {sse:.2} Eflop");
        let bc = bc_flops_total(&p) / 1e18;
        assert!((bc - 1.23).abs() / 1.23 < 0.02, "BC {bc:.2} Eflop");
        let cached = large_iteration_flops(&p, true) / 1e18;
        assert!((cached - 8.17).abs() / 8.17 < 0.02, "cached {cached:.2}");
        let uncached = large_iteration_flops(&p, false) / 1e18;
        assert!(
            (uncached - 9.41).abs() / 9.41 < 0.02,
            "uncached {uncached:.2}"
        );
    }

    #[test]
    fn rgf_dominated_by_dense_term() {
        // Phonon RGF is negligible next to the electron part (Norb=12 vs
        // N3D=3: a (12/3)³ = 64× block-size advantage).
        let p = SimParams::small(7);
        let el = rgf_flops_per_point(&p) * p.electron_points() as f64;
        let ph = rgf_flops_per_phonon_point(&p) * p.phonon_points() as f64;
        assert!(ph < 0.01 * el);
    }
}
