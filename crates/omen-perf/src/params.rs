//! Simulation parameter sets of the paper's evaluation (§6).

/// Full parameter set of one simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimParams {
    /// Total atoms (`Na`).
    pub na: usize,
    /// Neighbors per atom (`Nb`).
    pub nb: usize,
    /// Orbitals per atom (`Norb`).
    pub norb: usize,
    /// Crystal-vibration degrees of freedom (`N3D`).
    pub n3d: usize,
    /// Electron momentum points (`Nkz`).
    pub nk: usize,
    /// Phonon momentum points (`Nqz`).
    pub nq: usize,
    /// Energy points (`NE`).
    pub ne: usize,
    /// Phonon frequency points (`Nω`).
    pub nw: usize,
    /// RGF diagonal blocks (`bnum`); the flop-model value calibrated
    /// against Table 3 / Table 11 is 40 for both structures.
    pub bnum: usize,
    /// Boundary-condition cost constant: effective number of `bs³`
    /// block operations per point (decimation depth; calibrated against
    /// the paper's Table 3 / Table 11 boundary rows).
    pub bc_block_ops: f64,
}

impl SimParams {
    /// The paper's "Small" Si FinFET (W = 2.1 nm, L = 35 nm) at momentum
    /// resolution `nk`.
    pub fn small(nk: usize) -> SimParams {
        SimParams {
            na: 4_864,
            nb: 34,
            norb: 12,
            n3d: 3,
            nk,
            nq: nk,
            ne: 706,
            nw: 70,
            bnum: 40,
            bc_block_ops: 160.5,
        }
    }

    /// The paper's "Large" structure (W = 4.8 nm, L = 35 nm) at momentum
    /// resolution `nk` (21 for the full-scale runs).
    pub fn large(nk: usize) -> SimParams {
        SimParams {
            na: 10_240,
            nb: 34,
            norb: 12,
            n3d: 3,
            nk,
            nq: nk,
            ne: 1_220,
            nw: 70,
            bnum: 40,
            bc_block_ops: 207.0,
        }
    }

    /// RGF block size `Na · Norb / bnum` (may be fractional for the
    /// calibrated model).
    pub fn block_size(&self) -> f64 {
        self.na as f64 * self.norb as f64 / self.bnum as f64
    }

    /// Electron energy-momentum points per iteration.
    pub fn electron_points(&self) -> usize {
        self.nk * self.ne
    }

    /// Phonon frequency-momentum points per iteration.
    pub fn phonon_points(&self) -> usize {
        self.nq * self.nw
    }
}

/// One row of Table 2 (requirements for accurate dissipative DFT+NEGF).
#[derive(Clone, Copy, Debug)]
pub struct Requirement {
    /// Variable name.
    pub variable: &'static str,
    /// Description.
    pub description: &'static str,
    /// Required value.
    pub value: &'static str,
}

/// Table 2 of the paper.
pub fn table2_requirements() -> Vec<Requirement> {
    vec![
        Requirement {
            variable: "Nkz/Nqz",
            description: "Number of electron/phonon momentum points",
            value: ">=21",
        },
        Requirement {
            variable: "NE",
            description: "Number of energy points",
            value: ">=1,000",
        },
        Requirement {
            variable: "Nw",
            description: "Number of phonon frequencies",
            value: ">=50",
        },
        Requirement {
            variable: "Na",
            description: "Total number of atoms per device structure",
            value: ">=10,000",
        },
        Requirement {
            variable: "Nb",
            description: "Neighbors considered for each atom",
            value: ">=30",
        },
        Requirement {
            variable: "Norb",
            description: "Number of orbitals per atom",
            value: ">=10",
        },
        Requirement {
            variable: "N3D",
            description: "Degrees of freedom for crystal vibrations",
            value: "3",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_structure_parameters() {
        let p = SimParams::small(7);
        assert_eq!(p.na, 4864);
        assert_eq!(p.nq, 7);
        assert_eq!(p.electron_points(), 7 * 706);
        assert_eq!(p.phonon_points(), 7 * 70);
        // Large meets the Table 2 requirements; Small deliberately not
        // (the paper chose it so the original OMEN can still run it).
        let l = SimParams::large(21);
        assert!(l.na >= 10_000);
        assert!(l.ne >= 1_000);
        assert!(l.nk >= 21);
        assert!(p.ne < 1_000);
    }

    #[test]
    fn block_size_scaling() {
        let p = SimParams::large(21);
        assert!((p.block_size() - 3072.0).abs() < 1e-9);
        assert_eq!(table2_requirements().len(), 7);
    }
}
