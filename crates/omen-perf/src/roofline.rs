//! The Roofline model of Fig. 10: RGF is compute-bound; SSE-64 is
//! memory-bound (small batched GEMMs resident in L2); SSE-16 halves the
//! element size but stays bandwidth-limited.

use crate::machines::Gpu;

/// A kernel plotted on the roofline.
#[derive(Clone, Copy, Debug)]
pub struct RooflineKernel {
    /// Label.
    pub name: &'static str,
    /// Operational intensity (flop/byte).
    pub intensity: f64,
    /// Uses Tensor-Core (half-precision) ceiling.
    pub half_precision: bool,
}

/// Attainable performance of a kernel under the classic roofline:
/// `min(compute ceiling, OI × bandwidth)`.
pub fn attainable(gpu: &Gpu, k: &RooflineKernel, use_l2: bool) -> f64 {
    let ceiling = if k.half_precision {
        gpu.peak_hp
    } else {
        gpu.peak_dp
    };
    let bw = if use_l2 { gpu.l2_bw } else { gpu.mem_bw };
    ceiling.min(k.intensity * bw)
}

/// `true` if the kernel hits the compute ceiling (vertical part of the
/// roof) rather than the bandwidth slope.
pub fn is_compute_bound(gpu: &Gpu, k: &RooflineKernel, use_l2: bool) -> bool {
    let bw = if use_l2 { gpu.l2_bw } else { gpu.mem_bw };
    let ceiling = if k.half_precision {
        gpu.peak_hp
    } else {
        gpu.peak_dp
    };
    k.intensity * bw >= ceiling
}

/// Operational intensity of a dense complex GEMM of size `n`:
/// `8n³` flops over `3·16·n²` bytes (read A, B; write C) → `n/6`.
pub fn gemm_intensity(n: usize, bytes_per_element: usize) -> f64 {
    8.0 * (n as f64).powi(3) / (3.0 * bytes_per_element as f64 * (n as f64).powi(2))
}

/// The paper's three kernels, parameterized by the RGF block size and the
/// SSE small-matrix size (`Norb`).
pub fn paper_kernels(rgf_block: usize, norb: usize) -> [RooflineKernel; 3] {
    [
        RooflineKernel {
            name: "RGF",
            intensity: gemm_intensity(rgf_block, 16),
            half_precision: false,
        },
        RooflineKernel {
            name: "SSE-64",
            intensity: gemm_intensity(norb, 16),
            half_precision: false,
        },
        RooflineKernel {
            // Split-complex f16: 4 bytes per complex element.
            name: "SSE-16",
            intensity: gemm_intensity(norb, 4),
            half_precision: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::V100;

    #[test]
    fn rgf_compute_bound_sse_memory_bound() {
        // Fig. 10: RGF sits on the DP compute ceiling; SSE-64 is limited
        // by the L2 bandwidth slope; SSE-16 gains but stays on the slope
        // relative to the Tensor-Core ceiling.
        let ks = paper_kernels(3072, 12);
        assert!(is_compute_bound(&V100, &ks[0], true), "RGF");
        assert!(!is_compute_bound(&V100, &ks[1], true), "SSE-64");
        assert!(!is_compute_bound(&V100, &ks[2], true), "SSE-16");
    }

    #[test]
    fn sse16_attains_more_than_sse64() {
        let ks = paper_kernels(3072, 12);
        let p64 = attainable(&V100, &ks[1], true);
        let p16 = attainable(&V100, &ks[2], true);
        assert!(
            p16 > 2.0 * p64,
            "element shrink must raise attainable: {p16:e} vs {p64:e}"
        );
    }

    #[test]
    fn intensities_match_hand_calculation() {
        // 12×12 double-complex GEMM: OI = 12/6 = 2 flop/byte.
        assert!((gemm_intensity(12, 16) - 2.0).abs() < 1e-12);
        // Same in split-complex f16: 4× higher.
        assert!((gemm_intensity(12, 4) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn attainable_respects_ceiling() {
        let k = RooflineKernel {
            name: "huge-OI",
            intensity: 1e6,
            half_precision: false,
        };
        assert_eq!(attainable(&V100, &k, false), V100.peak_dp);
    }
}
