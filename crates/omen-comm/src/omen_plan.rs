//! The OMEN SSE communication scheme (§6.1.2, Fig. 5 left).
//!
//! `Nqz · Nω` rounds; in each round `(qz, ω)`:
//!
//! 1. the phonon owner **broadcasts** `D^≷(qz, ω)` to all ranks;
//! 2. every rank **sends/receives point-to-point** the `G^≷(kz−qz, E∓ω)`
//!    and `G^≷(kz+qz, E+ω)` rows its local pairs require;
//! 3. partial `Π^≷(qz, ω)` contributions are **reduced** to the owner.
//!
//! Every `G` row is replicated `O(Nqz·Nω)` times over the iteration — the
//! multiplicative communication volume the data-centric variant removes.

use crate::mpi_sim::{run_world, Comm};
use crate::plan_common::{assemble, initial_d, initial_g, CombinedG, PlanResult, RankSse};
use crate::sse_state::{LocalD, LocalG};
use crate::topology::OmenGrid;
use crate::volume::VolumeLedger;
use omen_linalg::C64;
use omen_sse::{pi_round_update, sigma_round_update, DTensor, GTensor, SseProblem};
use std::collections::{BTreeMap, BTreeSet};

/// The `(k', e')` rows rank `r` must fetch in round `(q, m)`, excluding
/// rows it already owns. Deterministic: senders evaluate it for their
/// peers.
fn needed_points(
    prob: &SseProblem,
    grid: &OmenGrid,
    rank: usize,
    q: usize,
    m: usize,
) -> BTreeSet<(usize, usize)> {
    let steps = m + 1;
    let mut need = BTreeSet::new();
    for (k, e) in grid.owned_pairs(rank) {
        let kk = prob.k_minus_q(k, q);
        let kq = prob.k_plus_q(k, q);
        if e >= steps {
            need.insert((kk, e - steps));
        }
        if e + steps < prob.ne {
            need.insert((kk, e + steps));
            need.insert((kq, e + steps));
        }
    }
    need.retain(|&(k, e)| grid.owner_pair(k, e) != rank);
    need
}

/// Executes the OMEN-decomposed SSE on `grid.nranks()` simulated ranks and
/// returns the assembled self-energies plus the byte ledger.
pub fn run_omen_plan(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    grid: &OmenGrid,
) -> (PlanResult, VolumeLedger) {
    let _phase = omen_trace::PhaseGuard::enter("comm_omen_plan");
    let nranks = grid.nranks();
    let ledger = VolumeLedger::new(nranks);
    let bsz = prob.norb() * prob.norb();
    let na = prob.na();
    let nentries = prob.npairs() + na;
    let all_pairs: Vec<usize> = (0..prob.npairs()).collect();

    let outputs = run_world(nranks, ledger.clone(), |comm: Comm| {
        let me = comm.rank();
        let (gl_own, gg_own) = initial_g(prob, grid, me, g_l, g_g);
        let (dl_own, dg_own) = initial_d(prob, grid, me, d_l, d_g);
        let owned = grid.owned_pairs(me);

        // Σ accumulators for owned pairs.
        let mut sig: BTreeMap<(usize, usize), (Vec<C64>, Vec<C64>)> = owned
            .iter()
            .map(|&p| (p, (vec![C64::ZERO; na * bsz], vec![C64::ZERO; na * bsz])))
            .collect();
        // Π results for owned phonon points.
        let mut pi_out: crate::plan_common::RankRows = Vec::new();

        for q in 0..prob.nq {
            for m in 0..prob.nw {
                let round = (q * prob.nw + m) as u64;
                let base_tag = round * 8;
                let root = grid.owner_phonon(q, m, prob.nw);

                // --- 1. broadcast D^≷(q, m) ---
                let mut row_l = if me == root {
                    (0..nentries)
                        .flat_map(|en| dl_own.get_block(q, m, en).to_vec())
                        .collect()
                } else {
                    Vec::new()
                };
                let mut row_g = if me == root {
                    (0..nentries)
                        .flat_map(|en| dg_own.get_block(q, m, en).to_vec())
                        .collect()
                } else {
                    Vec::new()
                };
                comm.bcast(root, base_tag, &mut row_l);
                comm.bcast(root, base_tag + 1, &mut row_g);
                let mut round_dl = LocalD::new(nentries);
                let mut round_dg = LocalD::new(nentries);
                round_dl.insert_row(q, m, row_l);
                round_dg.insert_row(q, m, row_g);

                // --- 2. point-to-point G^≷ exchange ---
                // Send phase: what do the peers need from me?
                for r in 0..comm.size() {
                    if r == me {
                        continue;
                    }
                    let to_send: Vec<(usize, usize)> = needed_points(prob, grid, r, q, m)
                        .into_iter()
                        .filter(|&(k, e)| grid.owner_pair(k, e) == me)
                        .collect();
                    if to_send.is_empty() {
                        continue;
                    }
                    let mut buf = Vec::with_capacity(to_send.len() * 2 * na * bsz);
                    for &(k, e) in &to_send {
                        for a in 0..na {
                            buf.extend_from_slice(gl_own.get_block(k, e, a));
                        }
                        for a in 0..na {
                            buf.extend_from_slice(gg_own.get_block(k, e, a));
                        }
                    }
                    comm.send(r, base_tag + 2, buf);
                }
                // Receive phase.
                let myneed = needed_points(prob, grid, me, q, m);
                let mut extra_l = LocalG::new(na, bsz);
                let mut extra_g = LocalG::new(na, bsz);
                let mut by_owner: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
                for &(k, e) in &myneed {
                    by_owner
                        .entry(grid.owner_pair(k, e))
                        .or_default()
                        .push((k, e));
                }
                for (s, points) in &by_owner {
                    let buf = comm.recv(*s, base_tag + 2);
                    assert_eq!(buf.len(), points.len() * 2 * na * bsz, "G message size");
                    for (x, &(k, e)) in points.iter().enumerate() {
                        let off = x * 2 * na * bsz;
                        extra_l.insert_row(k, e, buf[off..off + na * bsz].to_vec());
                        extra_g.insert_row(k, e, buf[off + na * bsz..off + 2 * na * bsz].to_vec());
                    }
                }
                let view_l = CombinedG {
                    own: &gl_own,
                    extra: &extra_l,
                };
                let view_g = CombinedG {
                    own: &gg_own,
                    extra: &extra_g,
                };

                // --- 3. compute Σ and partial Π ---
                let mut pi_partial_l = vec![C64::ZERO; nentries * 9];
                let mut pi_partial_g = vec![C64::ZERO; nentries * 9];
                for &(k, e) in &owned {
                    let (acc_l, acc_g) = sig.get_mut(&(k, e)).unwrap();
                    sigma_round_update(
                        prob, q, m, k, e, &view_l, &view_g, &round_dl, &round_dg, acc_l, acc_g,
                    );
                    for (p, c_l, c_g) in
                        pi_round_update(prob, q, m, k, e, &view_l, &view_g, &all_pairs)
                    {
                        let a = prob.device.neighbors.pairs[p].from;
                        let de = prob.npairs() + a;
                        for x in 0..9 {
                            pi_partial_l[p * 9 + x] += c_l[x];
                            pi_partial_l[de * 9 + x] += c_l[x];
                            pi_partial_g[p * 9 + x] += c_g[x];
                            pi_partial_g[de * 9 + x] += c_g[x];
                        }
                    }
                }

                // --- 4. reduce Π^≷(q, m) to the owner ---
                comm.reduce_sum(root, base_tag + 3, &mut pi_partial_l);
                comm.reduce_sum(root, base_tag + 4, &mut pi_partial_g);
                if me == root {
                    pi_out.push(((q, m), pi_partial_l, pi_partial_g));
                }
            }
        }

        RankSse {
            sigma: sig
                .into_iter()
                .map(|((k, e), (l, g))| ((k, e), l, g))
                .collect(),
            pi: pi_out,
        }
    });

    (assemble(prob, outputs), ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::OpKind;
    use omen_sse::testutil::{random_inputs, tiny_device, tiny_problem};
    use omen_sse::{sse_reference, GLayout};

    #[test]
    fn omen_plan_matches_reference() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 17);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
        let (result, ledger) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);

        let ds = result.sigma_l.max_deviation(&reference.sigma_l)
            / reference.sigma_l.max_abs().max(1e-300);
        assert!(ds < 1e-10, "Σ< deviation {ds}");
        let dsg = result.sigma_g.max_deviation(&reference.sigma_g)
            / reference.sigma_g.max_abs().max(1e-300);
        assert!(dsg < 1e-10, "Σ> deviation {dsg}");
        let dp = result.pi_l.max_deviation(&reference.pi_l) / reference.pi_l.max_abs().max(1e-300);
        assert!(dp < 1e-10, "Π< deviation {dp}");
        let dpg = result.pi_g.max_deviation(&reference.pi_g) / reference.pi_g.max_abs().max(1e-300);
        assert!(dpg < 1e-10, "Π> deviation {dpg}");

        // Collective structure: 2 broadcasts + 2 reductions per round.
        let rounds = (prob.nq * prob.nw) as u64;
        assert_eq!(ledger.calls(OpKind::Bcast), 2 * rounds);
        assert_eq!(ledger.calls(OpKind::Reduce), 2 * rounds);
        assert!(
            ledger.bytes(OpKind::PointToPoint) > 0,
            "G replication traffic"
        );
    }

    #[test]
    fn single_rank_plan_matches_reference_with_zero_traffic() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 4);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let grid = OmenGrid::new(1, 1, prob.nk, prob.ne);
        let (result, ledger) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);
        let ds = result.sigma_l.max_deviation(&reference.sigma_l)
            / reference.sigma_l.max_abs().max(1e-300);
        assert!(ds < 1e-10);
        assert_eq!(ledger.total_bytes(), 0, "single rank: all traffic local");
        let _ = GLayout::PairMajor;
    }

    #[test]
    fn volume_grows_with_rounds() {
        // More (q, m) rounds replicate G more: volume scales ~ Nq·Nω.
        let dev = tiny_device();
        let prob_small = omen_sse::SseProblem::new(&dev, 2, 6, 2, 1, 1.0, 1.0);
        let prob_large = omen_sse::SseProblem::new(&dev, 2, 6, 2, 2, 1.0, 1.0);
        let (gl, gg, dl1, dg1) = random_inputs(&prob_small, 2);
        let (_, _, dl2, dg2) = random_inputs(&prob_large, 2);
        let grid = OmenGrid::new(2, 2, 2, 6);
        let (_, ledger1) = run_omen_plan(&prob_small, &gl, &gg, &dl1, &dg1, &grid);
        let (_, ledger2) = run_omen_plan(&prob_large, &gl, &gg, &dl2, &dg2, &grid);
        assert!(
            ledger2.bytes(OpKind::PointToPoint) > ledger1.bytes(OpKind::PointToPoint),
            "doubling Nω must increase P2P volume: {} vs {}",
            ledger2.bytes(OpKind::PointToPoint),
            ledger1.bytes(OpKind::PointToPoint)
        );
    }
}
