//! # omen-comm
//!
//! The distribution layer of the reproduction: a simulated MPI runtime
//! (rank threads + channels) with byte-exact volume accounting, the two
//! SSE communication schemes of the paper (OMEN's round-based replication
//! vs the data-centric four-Alltoallv redistribution), an analytic network
//! time model, and the data-ingestion staging path.
//!
//! ## Layering
//!
//! The crate is three layers, paper section in parentheses:
//!
//! | layer | modules | role |
//! |---|---|---|
//! | mechanics | [`transport`] | raw [`Envelope`] delivery between ranks — the deployment seam |
//! | semantics | [`mpi_sim`], [`volume`] | MPI-shaped collectives with tag matching and byte-exact ledgers (§6.1) |
//! | schemes | [`omen_plan`] (Fig. 5 left), [`dace_plan`] (§5.2, Fig. 5 right), [`plan_kernel`], [`topology`] | the two SSE exchange schedules, executable inside the Born loop |
//!
//! Around those sit [`staging`] (§7.1.1 chunked-broadcast ingestion, plus
//! a checksummed retransmitting frame protocol), [`netmodel`] (analytic
//! network timing), and [`sse_state`]/[`plan_common`] (per-rank tensor
//! state and result assembly).
//!
//! The measured side of Tables 4/5 comes out of the [`VolumeLedger`]
//! every operation records into; the analytic side lives in `omen-perf`,
//! and `bench/table45_comm --execute` joins the two on a live Born loop.
//!
//! ## A two-rank world by hand
//!
//! [`run_world`] spawns rank threads over a [`channel_world`] and is what
//! the plans use; the pieces compose individually too — any
//! [`Transport`] endpoint wraps into a [`Comm`]:
//!
//! ```
//! use omen_comm::{channel_world, Comm, OpKind, VolumeLedger};
//! use omen_linalg::c64;
//!
//! let ledger = VolumeLedger::new(2);
//! let mut world = channel_world(2); // one ChannelTransport per rank
//! let c1 = Comm::from_transport(Box::new(world.pop().unwrap()), ledger.clone());
//! let c0 = Comm::from_transport(Box::new(world.pop().unwrap()), ledger.clone());
//! std::thread::scope(|s| {
//!     s.spawn(move || c0.send(1, /*tag*/ 7, vec![c64(1.0, -1.0); 4]));
//!     s.spawn(move || assert_eq!(c1.recv(0, 7), vec![c64(1.0, -1.0); 4]));
//! });
//! // 4 complex numbers × 16 bytes, accounted byte-exactly.
//! assert_eq!(ledger.bytes(OpKind::PointToPoint), 64);
//! ```
//!
//! Swapping [`ChannelTransport`] for a socket- or shared-memory-backed
//! implementation changes nothing above the [`Transport`] trait: the
//! plans, the driver's `ExecutorKind::Distributed`, and the ledgers are
//! deployment-agnostic.

pub mod dace_plan;
pub mod mpi_sim;
pub mod netmodel;
pub mod omen_plan;
pub mod plan_common;
pub mod plan_kernel;
pub mod sse_state;
pub mod staging;
pub mod topology;
pub mod transport;
pub mod volume;

pub use dace_plan::{run_dace_plan, tile_atoms_with_halo, tile_d_entries, tile_pi_entries};
pub use mpi_sim::{payload_bytes, run_world, Comm};
pub use netmodel::Network;
pub use omen_plan::run_omen_plan;
pub use plan_common::{CombinedG, PlanResult, RankSse};
pub use plan_kernel::{CommPlan, PlanKernel};
pub use sse_state::{LocalD, LocalG};
pub use staging::{
    decode_frame, encode_frame, pack_bytes, recv_framed, send_framed, stage_material, unpack_bytes,
    FrameError, StagingModel,
};
pub use topology::{grid_for_ranks, split_range, tiling_for_ranks, DaceTiling, OmenGrid};
pub use transport::{channel_world, ChannelTransport, Envelope, Transport};
pub use volume::{OpKind, VolumeLedger};
