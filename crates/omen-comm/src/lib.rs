//! # omen-comm
//!
//! The distribution layer of the reproduction: a simulated MPI runtime
//! (rank threads + channels) with byte-exact volume accounting, the two
//! SSE communication schemes of the paper (OMEN's round-based replication
//! vs the data-centric four-Alltoallv redistribution), an analytic network
//! time model, and the data-ingestion staging path.

pub mod dace_plan;
pub mod mpi_sim;
pub mod netmodel;
pub mod omen_plan;
pub mod plan_common;
pub mod sse_state;
pub mod staging;
pub mod topology;
pub mod volume;

pub use dace_plan::{run_dace_plan, tile_atoms_with_halo, tile_d_entries, tile_pi_entries};
pub use mpi_sim::{payload_bytes, run_world, Comm};
pub use netmodel::Network;
pub use omen_plan::run_omen_plan;
pub use plan_common::{CombinedG, PlanResult, RankSse};
pub use sse_state::{LocalD, LocalG};
pub use staging::{
    decode_frame, encode_frame, pack_bytes, stage_material, unpack_bytes, FrameError, StagingModel,
};
pub use topology::{split_range, DaceTiling, OmenGrid};
pub use volume::{OpKind, VolumeLedger};
