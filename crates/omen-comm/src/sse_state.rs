//! Per-rank block stores for the distributed SSE plans.
//!
//! A rank never holds the full 5-D/6-D tensors; it holds the blocks its
//! decomposition assigns it (plus halos), keyed by grid point. The stores
//! implement the `omen-sse` access traits so the point kernels run
//! unchanged on distributed data.

use omen_linalg::C64;
use omen_sse::{DBlocks, GBlocks};
use std::collections::HashMap;

/// Per-rank storage of `G` (or `Σ`) atom blocks for a set of `(k, e)`
/// points. Each stored point carries the full `na · bsz` atom-block row;
/// unpopulated atom blocks are zero (and must never be read — the plans
/// only access atoms covered by the decomposition's halo).
pub struct LocalG {
    /// Atoms.
    pub na: usize,
    /// Elements per atom block (`Norb²`).
    pub bsz: usize,
    map: HashMap<(usize, usize), Vec<C64>>,
}

impl LocalG {
    /// Empty store.
    pub fn new(na: usize, bsz: usize) -> Self {
        LocalG {
            na,
            bsz,
            map: HashMap::new(),
        }
    }

    /// `true` if point `(k, e)` is resident.
    pub fn has(&self, k: usize, e: usize) -> bool {
        self.map.contains_key(&(k, e))
    }

    /// Inserts (or replaces) the full atom-block row of `(k, e)`.
    pub fn insert_row(&mut self, k: usize, e: usize, row: Vec<C64>) {
        assert_eq!(row.len(), self.na * self.bsz, "row length");
        self.map.insert((k, e), row);
    }

    /// Writes one atom block into `(k, e)`, creating the row if needed.
    pub fn insert_block(&mut self, k: usize, e: usize, a: usize, block: &[C64]) {
        assert_eq!(block.len(), self.bsz, "block length");
        let row = self
            .map
            .entry((k, e))
            .or_insert_with(|| vec![C64::ZERO; self.na * self.bsz]);
        row[a * self.bsz..(a + 1) * self.bsz].copy_from_slice(block);
    }

    /// The atom block `a` of point `(k, e)`.
    pub fn get_block(&self, k: usize, e: usize, a: usize) -> &[C64] {
        let row = self
            .map
            .get(&(k, e))
            .unwrap_or_else(|| panic!("G block ({k},{e}) not resident on this rank"));
        &row[a * self.bsz..(a + 1) * self.bsz]
    }

    /// Number of resident points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no point is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resident points in unspecified order.
    pub fn points(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.map.keys().copied()
    }
}

impl GBlocks for LocalG {
    fn gblock(&self, k: usize, e: usize, a: usize) -> &[C64] {
        self.get_block(k, e, a)
    }
}

/// Per-rank storage of `D` (or `Π`) entry blocks for a set of `(q, m)`
/// points; each point carries `nentries · 9` elements.
pub struct LocalD {
    /// Total entries (pairs + diagonals).
    pub nentries: usize,
    map: HashMap<(usize, usize), Vec<C64>>,
}

impl LocalD {
    /// Empty store.
    pub fn new(nentries: usize) -> Self {
        LocalD {
            nentries,
            map: HashMap::new(),
        }
    }

    /// `true` if point `(q, m)` is resident.
    pub fn has(&self, q: usize, m: usize) -> bool {
        self.map.contains_key(&(q, m))
    }

    /// Inserts (or replaces) the full entry row of `(q, m)`.
    pub fn insert_row(&mut self, q: usize, m: usize, row: Vec<C64>) {
        assert_eq!(row.len(), self.nentries * 9, "row length");
        self.map.insert((q, m), row);
    }

    /// Writes one entry block, creating the row if needed.
    pub fn insert_block(&mut self, q: usize, m: usize, entry: usize, block: &[C64]) {
        assert_eq!(block.len(), 9, "block length");
        let n = self.nentries;
        let row = self
            .map
            .entry((q, m))
            .or_insert_with(|| vec![C64::ZERO; n * 9]);
        row[entry * 9..entry * 9 + 9].copy_from_slice(block);
    }

    /// Adds one entry block (for reductions at the destination).
    pub fn add_block(&mut self, q: usize, m: usize, entry: usize, block: &[C64]) {
        assert_eq!(block.len(), 9, "block length");
        let n = self.nentries;
        let row = self
            .map
            .entry((q, m))
            .or_insert_with(|| vec![C64::ZERO; n * 9]);
        for (dst, src) in row[entry * 9..entry * 9 + 9].iter_mut().zip(block) {
            *dst += *src;
        }
    }

    /// The entry block of `(q, m)`.
    pub fn get_block(&self, q: usize, m: usize, entry: usize) -> &[C64] {
        let row = self
            .map
            .get(&(q, m))
            .unwrap_or_else(|| panic!("D block ({q},{m}) not resident on this rank"));
        &row[entry * 9..entry * 9 + 9]
    }

    /// Number of resident points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no point is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl DBlocks for LocalD {
    fn dblock(&self, q: usize, w: usize, entry: usize) -> &[C64] {
        self.get_block(q, w, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    #[test]
    fn local_g_round_trip() {
        let mut g = LocalG::new(4, 4);
        assert!(g.is_empty());
        g.insert_block(1, 2, 3, &[c64(1.0, 0.0); 4]);
        assert!(g.has(1, 2));
        assert_eq!(g.get_block(1, 2, 3)[0], c64(1.0, 0.0));
        // Unwritten atoms default to zero.
        assert_eq!(g.get_block(1, 2, 0)[0], C64::ZERO);
        assert_eq!(g.len(), 1);
        assert_eq!(g.gblock(1, 2, 3)[1], c64(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn missing_g_point_panics() {
        let g = LocalG::new(2, 4);
        let _ = g.get_block(0, 0, 0);
    }

    #[test]
    fn local_d_add_accumulates() {
        let mut d = LocalD::new(5);
        d.add_block(0, 1, 2, &[c64(1.0, 1.0); 9]);
        d.add_block(0, 1, 2, &[c64(2.0, -1.0); 9]);
        assert_eq!(d.get_block(0, 1, 2)[4], c64(3.0, 0.0));
        assert_eq!(d.dblock(0, 1, 2)[0], c64(3.0, 0.0));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 1);
    }
}
