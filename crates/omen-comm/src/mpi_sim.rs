//! In-process simulated MPI: rank threads exchanging complex payloads
//! through a pluggable [`Transport`], with every byte accounted in a
//! [`VolumeLedger`].
//!
//! The point is *not* to model network timing (that is `netmodel`) but to
//! execute the paper's two SSE communication schemes for real — same data,
//! same collectives, exact measured volumes — at laptop rank counts. This
//! is the executable counterpart of §6.1 (arXiv 1912.10024): the
//! collectives here (`bcast`, `reduce_sum`, `alltoallv`, `barrier`) are
//! the exact operations the Table 4/5 volume models count, and
//! [`run_world`] is the stand-in for the 10 000-node Piz Daint allocation.
//!
//! Delivery mechanics live behind the [`Transport`] trait
//! ([`ChannelTransport`](crate::transport::ChannelTransport) today);
//! `Comm` adds the MPI-shaped semantics on top: tag matching with an
//! out-of-order pending buffer, linear-fan collectives, and ledger
//! accounting where self-traffic is free.

use crate::transport::{Envelope, Transport};
use crate::volume::{OpKind, VolumeLedger};
use omen_linalg::C64;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Bytes of a complex payload.
#[inline]
pub fn payload_bytes(len: usize) -> u64 {
    (len * 16) as u64
}

/// A rank's communicator handle.
pub struct Comm {
    transport: Box<dyn Transport>,
    /// Out-of-order messages awaiting a matching `recv`.
    pending: RefCell<VecDeque<Envelope>>,
    ledger: VolumeLedger,
}

impl Comm {
    /// Wraps a transport endpoint in a communicator that records every
    /// off-rank byte in `ledger`.
    pub fn from_transport(transport: Box<dyn Transport>, ledger: VolumeLedger) -> Comm {
        Comm {
            transport,
            pending: RefCell::new(VecDeque::new()),
            ledger,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &VolumeLedger {
        &self.ledger
    }

    /// Sends `payload` to `dest` with `tag`, recording the bytes.
    pub fn send(&self, dest: usize, tag: u64, payload: Vec<C64>) {
        self.send_kind(dest, tag, payload, OpKind::PointToPoint, true)
    }

    fn send_kind(&self, dest: usize, tag: u64, payload: Vec<C64>, kind: OpKind, new_call: bool) {
        if dest != self.rank() {
            self.ledger
                .record(kind, self.rank(), payload_bytes(payload.len()), new_call);
        }
        self.transport.send(dest, tag, payload);
    }

    /// Receives the message with `(src, tag)`, buffering mismatches.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<C64> {
        // Check the pending buffer first.
        {
            let mut pend = self.pending.borrow_mut();
            if let Some(pos) = pend.iter().position(|m| m.src == src && m.tag == tag) {
                return pend.remove(pos).unwrap().payload;
            }
        }
        loop {
            let msg = self.transport.recv_any();
            if msg.src == src && msg.tag == tag {
                return msg.payload;
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Barrier: gather-to-0 then release (payload-free).
    pub fn barrier(&self, tag: u64) {
        self.ledger
            .record(OpKind::Barrier, self.rank(), 0, self.rank() == 0);
        if self.rank() == 0 {
            for r in 1..self.size() {
                let _ = self.recv(r, tag);
            }
            for r in 1..self.size() {
                self.send_kind(r, tag, Vec::new(), OpKind::Barrier, false);
            }
        } else {
            self.send_kind(0, tag, Vec::new(), OpKind::Barrier, false);
            let _ = self.recv(0, tag);
        }
    }

    /// Broadcast from `root`: linear fan-out (volume `(P−1)·n`, the model
    /// §6.1.2 uses for the D^≷ distribution).
    pub fn bcast(&self, root: usize, tag: u64, data: &mut Vec<C64>) {
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send_kind(
                        r,
                        tag,
                        data.clone(),
                        OpKind::Bcast,
                        r == (root + 1) % self.size(),
                    );
                }
            }
        } else {
            *data = self.recv(root, tag);
        }
    }

    /// Sum-reduction to `root` (each non-root sends its buffer: volume
    /// `(P−1)·n`).
    pub fn reduce_sum(&self, root: usize, tag: u64, data: &mut [C64]) {
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    let part = self.recv(r, tag);
                    assert_eq!(part.len(), data.len(), "reduce length mismatch");
                    for (d, p) in data.iter_mut().zip(part) {
                        *d += p;
                    }
                }
            }
        } else {
            self.send_kind(
                root,
                tag,
                data.to_vec(),
                OpKind::Reduce,
                self.rank() == (root + 1) % self.size(),
            );
        }
    }

    /// Personalized all-to-all: rank `r` receives `sendbufs[r]` from every
    /// rank. One logical `MPI_Alltoallv` invocation (counted at rank 0).
    pub fn alltoallv(&self, tag: u64, sendbufs: Vec<Vec<C64>>) -> Vec<Vec<C64>> {
        assert_eq!(sendbufs.len(), self.size(), "need one buffer per rank");
        let mut out: Vec<Vec<C64>> = (0..self.size()).map(|_| Vec::new()).collect();
        for (r, buf) in sendbufs.into_iter().enumerate() {
            if r == self.rank() {
                out[r] = buf;
            } else {
                self.send_kind(
                    r,
                    tag,
                    buf,
                    OpKind::Alltoall,
                    self.rank() == 0 && r == (self.rank() + 1) % self.size(),
                );
            }
        }
        for (r, slot) in out.iter_mut().enumerate() {
            if r != self.rank() {
                *slot = self.recv(r, tag);
            }
        }
        out
    }
}

/// Runs `f` on `nranks` simulated ranks (one OS thread each) and returns
/// the per-rank results in rank order. Each rank gets a
/// [`ChannelTransport`](crate::transport::ChannelTransport) endpoint of a
/// fully-connected in-process world wrapped in a [`Comm`] sharing
/// `ledger`.
pub fn run_world<R, F>(nranks: usize, ledger: VolumeLedger, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    assert!(nranks >= 1);
    let world = crate::transport::channel_world(nranks);
    let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = world
            .into_iter()
            .map(|transport| {
                let ledger = ledger.clone();
                let f = &f;
                s.spawn(move || f(Comm::from_transport(Box::new(transport), ledger)))
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    #[test]
    fn send_recv_round_trip() {
        let ledger = VolumeLedger::new(2);
        let results = run_world(2, ledger.clone(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![c64(1.0, 2.0); 10]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, vec![c64(3.0, 4.0); 5]);
                got
            }
        });
        assert_eq!(results[1].len(), 10);
        assert_eq!(results[0].len(), 5);
        assert_eq!(results[1][0], c64(1.0, 2.0));
        // 10 + 5 complex numbers = 240 bytes.
        assert_eq!(ledger.bytes(OpKind::PointToPoint), 240);
        assert_eq!(ledger.calls(OpKind::PointToPoint), 2);
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let ledger = VolumeLedger::new(2);
        let results = run_world(2, ledger, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![c64(1.0, 0.0)]);
                comm.send(1, 2, vec![c64(2.0, 0.0)]);
                0.0
            } else {
                // Receive in reverse order.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                a[0].re * 10.0 + b[0].re
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn bcast_delivers_and_counts() {
        let p = 5;
        let ledger = VolumeLedger::new(p);
        let results = run_world(p, ledger.clone(), |comm| {
            let mut data = if comm.rank() == 2 {
                vec![c64(9.0, -1.0); 8]
            } else {
                Vec::new()
            };
            comm.bcast(2, 42, &mut data);
            data[3]
        });
        for r in results {
            assert_eq!(r, c64(9.0, -1.0));
        }
        // Linear broadcast: (P−1) · 8 complex = 4 · 128 bytes.
        assert_eq!(ledger.bytes(OpKind::Bcast), 4 * 128);
        assert_eq!(ledger.calls(OpKind::Bcast), 1);
    }

    #[test]
    fn reduce_sums() {
        let p = 4;
        let ledger = VolumeLedger::new(p);
        let results = run_world(p, ledger.clone(), |comm| {
            let mut data = vec![c64(comm.rank() as f64, 1.0); 3];
            comm.reduce_sum(0, 5, &mut data);
            data[0]
        });
        // 0+1+2+3 = 6 real, 4 imaginary.
        assert_eq!(results[0], c64(6.0, 4.0));
        assert_eq!(ledger.calls(OpKind::Reduce), 1);
        assert_eq!(ledger.bytes(OpKind::Reduce), 3 * 3 * 16);
    }

    #[test]
    fn alltoallv_exchanges() {
        let p = 4;
        let ledger = VolumeLedger::new(p);
        let results = run_world(p, ledger.clone(), |comm| {
            let bufs: Vec<Vec<C64>> = (0..p)
                .map(|dest| vec![c64(comm.rank() as f64, dest as f64); comm.rank() + 1])
                .collect();
            let got = comm.alltoallv(11, bufs);
            // got[src] came from src, with my rank as dest coordinate.
            (0..p)
                .map(|src| {
                    assert_eq!(got[src].len(), src + 1);
                    assert_eq!(got[src][0], c64(src as f64, comm.rank() as f64));
                    got[src].len()
                })
                .sum::<usize>()
        });
        assert_eq!(results, vec![10, 10, 10, 10]);
        assert_eq!(ledger.calls(OpKind::Alltoall), 1);
        // Each rank sends (rank+1) elements to 3 others: Σ 3·(r+1)·16.
        let expect: u64 = (0..4).map(|r| 3 * (r as u64 + 1) * 16).sum();
        assert_eq!(ledger.bytes(OpKind::Alltoall), expect);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 6;
        let ledger = VolumeLedger::new(p);
        run_world(p, ledger, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier(99);
            // After the barrier, every rank must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn single_rank_world() {
        let ledger = VolumeLedger::new(1);
        let results = run_world(1, ledger.clone(), |comm| {
            let mut d = vec![c64(1.0, 1.0)];
            comm.bcast(0, 1, &mut d);
            comm.reduce_sum(0, 2, &mut d);
            let out = comm.alltoallv(3, vec![d.clone()]);
            out[0][0]
        });
        assert_eq!(results[0], c64(1.0, 1.0));
        assert_eq!(ledger.total_bytes(), 0, "self-traffic is free");
    }

    /// A custom transport plugs straight into `Comm`: collectives and
    /// ledger accounting are transport-agnostic.
    #[test]
    fn custom_transport_behind_comm() {
        use crate::transport::channel_world;
        let p = 3;
        let ledger = VolumeLedger::new(p);
        let comms: Vec<Comm> = channel_world(p)
            .into_iter()
            .map(|t| Comm::from_transport(Box::new(t), ledger.clone()))
            .collect();
        std::thread::scope(|s| {
            for comm in comms {
                s.spawn(move || {
                    let mut data = vec![c64(comm.rank() as f64, 0.0); 2];
                    comm.reduce_sum(0, 4, &mut data);
                    if comm.rank() == 0 {
                        assert_eq!(data[0], c64(3.0, 0.0));
                    }
                });
            }
        });
        assert_eq!(ledger.calls(OpKind::Reduce), 1);
        assert_eq!(ledger.bytes(OpKind::Reduce), 2 * 2 * 16);
    }
}
