//! The data-centric (DaCe) SSE communication scheme (§5.2, Fig. 5 right).
//!
//! The SSE map is re-tiled by atom position × energy window. Exactly
//! **four** `Alltoallv` collectives move the data, once per tensor:
//!
//! 1. `G^≷` from the GF-phase `(kz, E)` owners to atom×energy tiles
//!    (each tile receives its atoms + neighbor halo, its energies ± `Nω`
//!    halo, all momenta);
//! 2. `D^≷` from phonon owners to tiles (local pairs, reverse pairs, and
//!    the touched diagonals);
//! 3. `Σ^≷` from tiles back to `(kz, E)` owners;
//! 4. `Π^≷` partials from tiles to phonon owners (summed at destination).
//!
//! No `G` row is ever replicated per `(qz, ω)` round — the asymptotic
//! volume reduction of Tables 4–5.

use crate::mpi_sim::{run_world, Comm};
use crate::plan_common::{assemble, initial_d, initial_g, PlanResult, RankSse};
use crate::sse_state::{LocalD, LocalG};
use crate::topology::{DaceTiling, OmenGrid};
use crate::volume::VolumeLedger;
use omen_linalg::C64;
use omen_sse::{pi_round_update, sigma_round_update_atoms, DTensor, GTensor, SseProblem};
use std::collections::BTreeSet;

/// Sorted atoms of tile `ia` plus the neighbor halo (the `c ≤ Nb` extra
/// atoms of §6.1.2).
pub fn tile_atoms_with_halo(prob: &SseProblem, tiling: &DaceTiling, ia: usize) -> Vec<usize> {
    let (lo, hi) = tiling.atom_range(ia);
    let mut set: BTreeSet<usize> = (lo..hi).collect();
    for a in lo..hi {
        for (_, b) in prob.pairs_of(a) {
            set.insert(b);
        }
    }
    set.into_iter().collect()
}

/// Sorted `D`-tensor entries tile `ia` needs: its atoms' pairs, their
/// reverse pairs, and the diagonals of local + halo atoms.
pub fn tile_d_entries(prob: &SseProblem, tiling: &DaceTiling, ia: usize) -> Vec<usize> {
    let (lo, hi) = tiling.atom_range(ia);
    let np = prob.npairs();
    let mut set = BTreeSet::new();
    for a in lo..hi {
        set.insert(np + a);
        for (p, b) in prob.pairs_of(a) {
            set.insert(p);
            set.insert(prob.rev_pair[p]);
            set.insert(np + b);
        }
    }
    set.into_iter().collect()
}

/// Sorted entries tile `ia` *produces* for `Π^≷`: its atoms' pairs and
/// diagonals.
pub fn tile_pi_entries(prob: &SseProblem, tiling: &DaceTiling, ia: usize) -> Vec<usize> {
    let (lo, hi) = tiling.atom_range(ia);
    let np = prob.npairs();
    let mut set = BTreeSet::new();
    for a in lo..hi {
        set.insert(np + a);
        for (p, _) in prob.pairs_of(a) {
            set.insert(p);
        }
    }
    set.into_iter().collect()
}

/// Executes the data-centric SSE on `tiling.nranks()` simulated ranks.
/// `grid` describes where the GF phase left `G^≷`/`D^≷` (pair owners);
/// it must have the same rank count as the tiling.
pub fn run_dace_plan(
    prob: &SseProblem,
    g_l: &GTensor,
    g_g: &GTensor,
    d_l: &DTensor,
    d_g: &DTensor,
    grid: &OmenGrid,
    tiling: &DaceTiling,
) -> (PlanResult, VolumeLedger) {
    assert_eq!(
        grid.nranks(),
        tiling.nranks(),
        "source and tile decompositions must share the world"
    );
    let _phase = omen_trace::PhaseGuard::enter("comm_dace_plan");
    let nranks = tiling.nranks();
    let ledger = VolumeLedger::new(nranks);
    let bsz = prob.norb() * prob.norb();
    let na = prob.na();
    let nentries = prob.npairs() + na;

    let outputs = run_world(nranks, ledger.clone(), |comm: Comm| {
        let me = comm.rank();
        let (gl_own, gg_own) = initial_g(prob, grid, me, g_l, g_g);
        let (dl_own, dg_own) = initial_d(prob, grid, me, d_l, d_g);
        let (my_ia, my_ie) = tiling.tile_of(me);
        let my_atom_list: Vec<usize> = {
            let (lo, hi) = tiling.atom_range(my_ia);
            (lo..hi).collect()
        };
        let my_atoms_halo = tile_atoms_with_halo(prob, tiling, my_ia);
        let (e_lo, e_hi) = tiling.energy_range(my_ie);
        let (h_lo, h_hi) = tiling.energy_range_halo(my_ie, prob.nw);

        // ---- Alltoall #1: G^≷ to tiles ----
        let my_owned = grid.owned_pairs(me);
        let sendbufs: Vec<Vec<C64>> = (0..nranks)
            .map(|t| {
                let (ta_t, te_t) = tiling.tile_of(t);
                let (tl, th) = tiling.energy_range_halo(te_t, prob.nw);
                let atoms = tile_atoms_with_halo(prob, tiling, ta_t);
                let mut buf = Vec::new();
                for &(k, e) in &my_owned {
                    if e >= tl && e < th {
                        for &a in &atoms {
                            buf.extend_from_slice(gl_own.get_block(k, e, a));
                        }
                        for &a in &atoms {
                            buf.extend_from_slice(gg_own.get_block(k, e, a));
                        }
                    }
                }
                buf
            })
            .collect();
        let got = comm.alltoallv(1, sendbufs);
        let mut tile_gl = LocalG::new(na, bsz);
        let mut tile_gg = LocalG::new(na, bsz);
        for (s, buf) in got.iter().enumerate() {
            let mut off = 0;
            for (k, e) in grid.owned_pairs(s) {
                if e >= h_lo && e < h_hi {
                    for &a in &my_atoms_halo {
                        tile_gl.insert_block(k, e, a, &buf[off..off + bsz]);
                        off += bsz;
                    }
                    for &a in &my_atoms_halo {
                        tile_gg.insert_block(k, e, a, &buf[off..off + bsz]);
                        off += bsz;
                    }
                }
            }
            assert_eq!(off, buf.len(), "G unpack mismatch from rank {s}");
        }

        // ---- Alltoall #2: D^≷ to tiles ----
        let my_phonon_points: Vec<(usize, usize)> = (0..prob.nq)
            .flat_map(|q| (0..prob.nw).map(move |m| (q, m)))
            .filter(|&(q, m)| grid.owner_phonon(q, m, prob.nw) == me)
            .collect();
        let sendbufs: Vec<Vec<C64>> = (0..nranks)
            .map(|t| {
                let (ta_t, _) = tiling.tile_of(t);
                let entries = tile_d_entries(prob, tiling, ta_t);
                let mut buf = Vec::new();
                for &(q, m) in &my_phonon_points {
                    for &en in &entries {
                        buf.extend_from_slice(dl_own.get_block(q, m, en));
                    }
                    for &en in &entries {
                        buf.extend_from_slice(dg_own.get_block(q, m, en));
                    }
                }
                buf
            })
            .collect();
        let got = comm.alltoallv(2, sendbufs);
        let my_d_entries = tile_d_entries(prob, tiling, my_ia);
        let mut tile_dl = LocalD::new(nentries);
        let mut tile_dg = LocalD::new(nentries);
        for (s, buf) in got.iter().enumerate() {
            let mut off = 0;
            for q in 0..prob.nq {
                for m in 0..prob.nw {
                    if grid.owner_phonon(q, m, prob.nw) == s {
                        for &en in &my_d_entries {
                            tile_dl.insert_block(q, m, en, &buf[off..off + 9]);
                            off += 9;
                        }
                        for &en in &my_d_entries {
                            tile_dg.insert_block(q, m, en, &buf[off..off + 9]);
                            off += 9;
                        }
                    }
                }
            }
            assert_eq!(off, buf.len(), "D unpack mismatch from rank {s}");
        }

        // ---- local compute: Σ^≷ for (my atoms × my energies × all k) ----
        let nloc = my_atom_list.len();
        let mut sig_l = vec![C64::ZERO; prob.nk * (e_hi - e_lo) * nloc * bsz];
        let mut sig_g = vec![C64::ZERO; prob.nk * (e_hi - e_lo) * nloc * bsz];
        let my_pairs: Vec<usize> = my_atom_list
            .iter()
            .flat_map(|&a| prob.pairs_of(a).map(|(p, _)| p))
            .collect();
        let mut pi_partial_l = vec![C64::ZERO; nentries * 9];
        let mut pi_partial_g = vec![C64::ZERO; nentries * 9];
        // Π is accumulated per (q, m) into separate rows.
        let mut pi_rows: std::collections::BTreeMap<(usize, usize), (Vec<C64>, Vec<C64>)> =
            std::collections::BTreeMap::new();

        for q in 0..prob.nq {
            for m in 0..prob.nw {
                pi_partial_l.fill(C64::ZERO);
                pi_partial_g.fill(C64::ZERO);
                for k in 0..prob.nk {
                    for e in e_lo..e_hi {
                        let off = ((k * (e_hi - e_lo)) + (e - e_lo)) * nloc * bsz;
                        sigma_round_update_atoms(
                            prob,
                            q,
                            m,
                            k,
                            e,
                            &tile_gl,
                            &tile_gg,
                            &tile_dl,
                            &tile_dg,
                            &my_atom_list,
                            &mut sig_l[off..off + nloc * bsz],
                            &mut sig_g[off..off + nloc * bsz],
                        );
                        for (p, c_l, c_g) in
                            pi_round_update(prob, q, m, k, e, &tile_gl, &tile_gg, &my_pairs)
                        {
                            let a = prob.device.neighbors.pairs[p].from;
                            let de = prob.npairs() + a;
                            for x in 0..9 {
                                pi_partial_l[p * 9 + x] += c_l[x];
                                pi_partial_l[de * 9 + x] += c_l[x];
                                pi_partial_g[p * 9 + x] += c_g[x];
                                pi_partial_g[de * 9 + x] += c_g[x];
                            }
                        }
                    }
                }
                pi_rows.insert((q, m), (pi_partial_l.clone(), pi_partial_g.clone()));
            }
        }

        // ---- Alltoall #3: Σ^≷ back to pair owners ----
        let sendbufs: Vec<Vec<C64>> = (0..nranks)
            .map(|t| {
                let mut buf = Vec::new();
                for (k, e) in grid.owned_pairs(t) {
                    if e >= e_lo && e < e_hi {
                        let off = ((k * (e_hi - e_lo)) + (e - e_lo)) * nloc * bsz;
                        buf.extend_from_slice(&sig_l[off..off + nloc * bsz]);
                        buf.extend_from_slice(&sig_g[off..off + nloc * bsz]);
                    }
                }
                buf
            })
            .collect();
        let got = comm.alltoallv(3, sendbufs);
        let mut sigma_out: std::collections::BTreeMap<(usize, usize), (Vec<C64>, Vec<C64>)> =
            my_owned
                .iter()
                .map(|&p| (p, (vec![C64::ZERO; na * bsz], vec![C64::ZERO; na * bsz])))
                .collect();
        for (s, buf) in got.iter().enumerate() {
            let (ta_s, te_s) = tiling.tile_of(s);
            let (sl, sh) = tiling.energy_range(te_s);
            let (alo, ahi) = tiling.atom_range(ta_s);
            let nsrc = ahi - alo;
            let mut off = 0;
            for &(k, e) in &my_owned {
                if e >= sl && e < sh {
                    let (row_l, row_g) = sigma_out.get_mut(&(k, e)).unwrap();
                    for (x, a) in (alo..ahi).enumerate() {
                        row_l[a * bsz..(a + 1) * bsz]
                            .copy_from_slice(&buf[off + x * bsz..off + (x + 1) * bsz]);
                    }
                    off += nsrc * bsz;
                    for (x, a) in (alo..ahi).enumerate() {
                        row_g[a * bsz..(a + 1) * bsz]
                            .copy_from_slice(&buf[off + x * bsz..off + (x + 1) * bsz]);
                    }
                    off += nsrc * bsz;
                }
            }
            assert_eq!(off, buf.len(), "Σ unpack mismatch from rank {s}");
        }

        // ---- Alltoall #4: Π^≷ partials to phonon owners ----
        let my_pi_entries = tile_pi_entries(prob, tiling, my_ia);
        let sendbufs: Vec<Vec<C64>> = (0..nranks)
            .map(|t| {
                let mut buf = Vec::new();
                for q in 0..prob.nq {
                    for m in 0..prob.nw {
                        if grid.owner_phonon(q, m, prob.nw) == t {
                            let (row_l, row_g) = &pi_rows[&(q, m)];
                            for &en in &my_pi_entries {
                                buf.extend_from_slice(&row_l[en * 9..en * 9 + 9]);
                            }
                            for &en in &my_pi_entries {
                                buf.extend_from_slice(&row_g[en * 9..en * 9 + 9]);
                            }
                        }
                    }
                }
                buf
            })
            .collect();
        let got = comm.alltoallv(4, sendbufs);
        let mut pi_dest = LocalD::new(nentries);
        let mut pi_dest_g = LocalD::new(nentries);
        for (s, buf) in got.iter().enumerate() {
            let (ta_s, _) = tiling.tile_of(s);
            let entries = tile_pi_entries(prob, tiling, ta_s);
            let mut off = 0;
            for &(q, m) in &my_phonon_points {
                for &en in &entries {
                    pi_dest.add_block(q, m, en, &buf[off..off + 9]);
                    off += 9;
                }
                for &en in &entries {
                    pi_dest_g.add_block(q, m, en, &buf[off..off + 9]);
                    off += 9;
                }
            }
            assert_eq!(off, buf.len(), "Π unpack mismatch from rank {s}");
        }
        let pi_out: crate::plan_common::RankRows = my_phonon_points
            .iter()
            .map(|&(q, m)| {
                let row_l: Vec<C64> = (0..nentries)
                    .flat_map(|en| pi_dest.get_block(q, m, en).to_vec())
                    .collect();
                let row_g: Vec<C64> = (0..nentries)
                    .flat_map(|en| pi_dest_g.get_block(q, m, en).to_vec())
                    .collect();
                ((q, m), row_l, row_g)
            })
            .collect();

        RankSse {
            sigma: sigma_out
                .into_iter()
                .map(|((k, e), (l, g))| ((k, e), l, g))
                .collect(),
            pi: pi_out,
        }
    });

    (assemble(prob, outputs), ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omen_plan::run_omen_plan;
    use crate::volume::OpKind;
    use omen_sse::sse_reference;
    use omen_sse::testutil::{random_inputs, tiny_device};

    #[test]
    fn dace_plan_matches_reference() {
        let dev = tiny_device();
        let prob = SseProblem::new(&dev, 2, 6, 2, 2, 1.0, 1.0);
        let (gl, gg, dl, dg) = random_inputs(&prob, 55);
        let reference = sse_reference(&prob, &gl, &gg, &dl, &dg);
        let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
        let tiling = DaceTiling::new(3, 2, prob.na(), prob.ne);
        let (result, ledger) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);

        let ds = result.sigma_l.max_deviation(&reference.sigma_l)
            / reference.sigma_l.max_abs().max(1e-300);
        assert!(ds < 1e-10, "Σ< deviation {ds}");
        let dsg = result.sigma_g.max_deviation(&reference.sigma_g)
            / reference.sigma_g.max_abs().max(1e-300);
        assert!(dsg < 1e-10, "Σ> deviation {dsg}");
        let dp = result.pi_l.max_deviation(&reference.pi_l) / reference.pi_l.max_abs().max(1e-300);
        assert!(dp < 1e-10, "Π< deviation {dp}");
        let dpg = result.pi_g.max_deviation(&reference.pi_g) / reference.pi_g.max_abs().max(1e-300);
        assert!(dpg < 1e-10, "Π> deviation {dpg}");

        // Exactly four Alltoallv collectives, nothing else.
        assert_eq!(ledger.calls(OpKind::Alltoall), 4);
        assert_eq!(ledger.calls(OpKind::Bcast), 0);
        assert_eq!(ledger.calls(OpKind::Reduce), 0);
        assert_eq!(ledger.calls(OpKind::PointToPoint), 0);
    }

    #[test]
    fn dace_volume_beats_omen() {
        // With enough (q, m) rounds the OMEN replication dwarfs the
        // one-time DaCe redistribution.
        let dev = tiny_device();
        let prob = SseProblem::new(&dev, 2, 10, 2, 3, 1.0, 1.0);
        let (gl, gg, dl, dg) = random_inputs(&prob, 21);
        let grid = OmenGrid::new(2, 3, prob.nk, prob.ne);
        let tiling = DaceTiling::new(3, 2, prob.na(), prob.ne);
        let (res_o, ledger_o) = run_omen_plan(&prob, &gl, &gg, &dl, &dg, &grid);
        let (res_d, ledger_d) = run_dace_plan(&prob, &gl, &gg, &dl, &dg, &grid, &tiling);
        // Same answer…
        let dev_sig =
            res_d.sigma_l.max_deviation(&res_o.sigma_l) / res_o.sigma_l.max_abs().max(1e-300);
        assert!(dev_sig < 1e-10);
        // …at a fraction of the traffic.
        let vo = ledger_o.total_bytes();
        let vd = ledger_d.total_bytes();
        assert!(
            vd * 2 < vo,
            "DaCe volume {vd} should be well below OMEN volume {vo}"
        );
        // And with constant invocation count (4) vs O(Nq·Nω·…).
        assert!(ledger_o.total_calls() > ledger_d.total_calls() * 5);
    }

    #[test]
    fn entry_sets_are_consistent() {
        let dev = tiny_device();
        let prob = SseProblem::new(&dev, 2, 6, 2, 2, 1.0, 1.0);
        let tiling = DaceTiling::new(4, 1, prob.na(), prob.ne);
        for ia in 0..4 {
            let atoms = tile_atoms_with_halo(&prob, &tiling, ia);
            let (lo, hi) = tiling.atom_range(ia);
            // Halo includes the tile itself.
            for a in lo..hi {
                assert!(atoms.contains(&a));
            }
            // Sorted and unique.
            for w in atoms.windows(2) {
                assert!(w[0] < w[1]);
            }
            // D entries cover every pair of every tile atom and its rev.
            let entries = tile_d_entries(&prob, &tiling, ia);
            for a in lo..hi {
                for (p, b) in prob.pairs_of(a) {
                    assert!(entries.contains(&p));
                    assert!(entries.contains(&prob.rev_pair[p]));
                    assert!(entries.contains(&(prob.npairs() + b)));
                }
            }
            // Π entries are a subset of D entries (pairs + own diags).
            let pi_entries = tile_pi_entries(&prob, &tiling, ia);
            for en in &pi_entries {
                assert!(entries.contains(en));
            }
        }
    }
}
