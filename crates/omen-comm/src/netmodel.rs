//! Analytic network time model (§7.1.8).
//!
//! The paper derives lower bounds for collective completion by aggregating
//! the bytes every *node* must inject (several ranks share a NIC) and
//! dividing by the injection bandwidth (23 GB/s on Summit). We reproduce
//! that model, plus simple latency terms, to convert measured/modeled
//! volumes into the times plotted in Figs. 8–9.

/// Interconnect description of one machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Network {
    /// Per-message latency (s).
    pub latency: f64,
    /// Injection bandwidth per node (bytes/s).
    pub injection_bw: f64,
    /// Ranks sharing one node's NIC.
    pub ranks_per_node: usize,
}

impl Network {
    /// OLCF Summit: 23 GB/s injection (dual EDR), 6 ranks/node in the
    /// paper's configuration.
    pub fn summit() -> Network {
        Network {
            latency: 1.0e-6,
            injection_bw: 23.0e9,
            ranks_per_node: 6,
        }
    }

    /// CSCS Piz Daint: Cray Aries, ~10 GB/s injection, 2 ranks/node.
    pub fn piz_daint() -> Network {
        Network {
            latency: 1.2e-6,
            injection_bw: 10.2e9,
            ranks_per_node: 2,
        }
    }

    /// Number of nodes hosting `nranks` ranks.
    pub fn nodes(&self, nranks: usize) -> usize {
        nranks.div_ceil(self.ranks_per_node)
    }

    /// Completion-time lower bound of a personalized all-to-all given the
    /// bytes each rank injects: aggregate per node, take the bottleneck
    /// node, divide by the injection bandwidth.
    pub fn alltoall_time(&self, per_rank_bytes: &[u64]) -> f64 {
        if per_rank_bytes.is_empty() {
            return 0.0;
        }
        let mut node_bytes = vec![0u64; self.nodes(per_rank_bytes.len())];
        for (r, &b) in per_rank_bytes.iter().enumerate() {
            node_bytes[r / self.ranks_per_node] += b;
        }
        let max = *node_bytes.iter().max().unwrap() as f64;
        max / self.injection_bw + self.latency
    }

    /// All-to-all time when every rank injects the same `bytes_per_rank`.
    pub fn alltoall_time_uniform(&self, bytes_per_rank: u64, nranks: usize) -> f64 {
        let node_bytes = bytes_per_rank as f64 * self.ranks_per_node.min(nranks) as f64;
        node_bytes / self.injection_bw + self.latency
    }

    /// Pipelined broadcast of `bytes` to `nranks` ranks: the payload
    /// streams through a binomial tree; completion ≈ transmission of the
    /// payload once plus `log2(P)` latency hops.
    pub fn bcast_time(&self, bytes: u64, nranks: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let stages = (nranks as f64).log2().ceil();
        bytes as f64 / self.injection_bw + stages * self.latency
    }

    /// Reduction time (same cost structure as broadcast for a binomial
    /// tree of partial sums).
    pub fn reduce_time(&self, bytes: u64, nranks: usize) -> f64 {
        self.bcast_time(bytes, nranks)
    }

    /// Effective time of a modeled volume at a given bandwidth-utilization
    /// efficiency (the paper measures 84.57% for `D/Π` and 42.32% for
    /// `G/Σ` all-to-alls on Summit).
    pub fn with_efficiency(time: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        time / efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_spec_matches_paper() {
        let n = Network::summit();
        assert_eq!(n.injection_bw, 23.0e9);
        assert_eq!(n.ranks_per_node, 6);
        // 4,560 nodes × 6 ranks.
        assert_eq!(n.nodes(27_360), 4_560);
    }

    #[test]
    fn alltoall_bottleneck_node() {
        let n = Network {
            latency: 0.0,
            injection_bw: 1e9,
            ranks_per_node: 2,
        };
        // Ranks 0,1 on node 0 inject 1 GB total; ranks 2,3 inject 3 GB.
        let t = n.alltoall_time(&[500_000_000, 500_000_000, 1_500_000_000, 1_500_000_000]);
        assert!((t - 3.0).abs() < 1e-9, "bottleneck node time {t}");
    }

    #[test]
    fn paper_full_scale_prediction() {
        // §7.1.8: 1.85 s to communicate each of D^≷/Π^≷ at full scale.
        // Volume: 276 GiB of D per component distributed over all
        // processes plus 28.26 MiB per-process overhead; the dominant term
        // is per-node injection of its share.
        let n = Network::summit();
        let p = 27_360usize;
        // Each process contributes ~(276 GiB / P + 28.26 MiB) ≈ 38.6 MiB;
        // 6 ranks per node -> ~232 MiB per node at 23 GB/s ≈ 10 ms...
        // The paper's 1.85 s bound instead counts the *gathered* per-node
        // exchange of the full replicated tensor pair; reproduce the
        // arithmetic they quote: 1.85 s at 100% utilization corresponds to
        // 42.55 GB per node.
        let bytes_per_node = 1.85 * n.injection_bw;
        assert!((bytes_per_node / 1e9 - 42.55).abs() < 0.1);
        let _ = p;
    }

    #[test]
    fn bcast_scales_logarithmically_in_latency() {
        let n = Network {
            latency: 1e-3,
            injection_bw: 1e12,
            ranks_per_node: 1,
        };
        let t16 = n.bcast_time(1000, 16);
        let t256 = n.bcast_time(1000, 256);
        assert!((t256 - t16 - 4e-3).abs() < 1e-9, "log2 latency growth");
        assert_eq!(n.bcast_time(1000, 1), 0.0);
    }

    #[test]
    fn efficiency_scales_time() {
        let t = Network::with_efficiency(1.0, 0.5);
        assert!((t - 2.0).abs() < 1e-12);
    }
}
