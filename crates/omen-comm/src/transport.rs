//! The [`Transport`] seam: raw message delivery beneath
//! [`Comm`](crate::mpi_sim::Comm).
//!
//! [`Comm`](crate::mpi_sim::Comm) implements the *semantics* of the
//! paper's communication layer — tag matching, collectives, byte-exact
//! [`VolumeLedger`](crate::volume::VolumeLedger) accounting — while this
//! module owns the *mechanics* of moving an [`Envelope`] from one rank to
//! another. Today the only implementation is [`ChannelTransport`]
//! (crossbeam channels between in-process rank threads, exactly what the
//! SC'19 artifact's laptop-scale harness needs); the trait is the seam
//! where sockets or shared-memory rings plug in without touching the
//! plans or the driver.
//!
//! A transport is deliberately dumb: unordered with respect to tags,
//! reliable, and free of any accounting. Everything the paper measures
//! (Tables 4/5 volumes, §6.1 collectives) lives one layer up in `Comm`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use omen_linalg::C64;

/// One in-flight message: source rank, user tag, and the complex payload.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Caller-chosen tag (matched by [`Comm::recv`](crate::Comm::recv)).
    pub tag: u64,
    /// The data. Complex f64 pairs, 16 bytes each on the wire
    /// ([`payload_bytes`](crate::payload_bytes)).
    pub payload: Vec<C64>,
}

/// Raw point-to-point delivery between ranks of one world.
///
/// Implementations must deliver every sent envelope exactly once and
/// preserve per-(src → dest) ordering, but need not order across sources
/// or tags — [`Comm`](crate::Comm) buffers out-of-order envelopes in its
/// pending queue. `send` must not block on the receiver (the simulated
/// collectives post all sends before receiving); `recv_any` blocks until
/// an envelope arrives.
pub trait Transport: Send {
    /// This endpoint's rank id.
    fn rank(&self) -> usize;

    /// World size (number of ranks).
    fn size(&self) -> usize;

    /// Delivers `payload` to `dest` (sending to `self.rank()` is legal
    /// and loops back).
    fn send(&self, dest: usize, tag: u64, payload: Vec<C64>);

    /// Blocks until the next envelope addressed to this rank arrives.
    fn recv_any(&self) -> Envelope;
}

/// In-process transport: one unbounded crossbeam channel per rank.
///
/// Built in sets via [`channel_world`]; each instance holds every rank's
/// sender plus its own receiver, so a world is just `nranks` of these
/// moved onto `nranks` threads.
pub struct ChannelTransport {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, dest: usize, tag: u64, payload: Vec<C64>) {
        self.senders[dest]
            .send(Envelope {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver alive");
    }

    fn recv_any(&self) -> Envelope {
        self.receiver.recv().expect("sender alive")
    }
}

/// Builds a fully-connected in-process world of `nranks` endpoints,
/// returned in rank order.
pub fn channel_world(nranks: usize) -> Vec<ChannelTransport> {
    assert!(nranks >= 1, "a world needs at least one rank");
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ChannelTransport {
            rank,
            size: nranks,
            senders: senders.clone(),
            receiver,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_linalg::c64;

    #[test]
    fn channel_world_routes_by_rank() {
        let world = channel_world(3);
        assert_eq!(world.len(), 3);
        for (r, t) in world.iter().enumerate() {
            assert_eq!(t.rank(), r);
            assert_eq!(t.size(), 3);
        }
        std::thread::scope(|s| {
            for t in world {
                s.spawn(move || {
                    let next = (t.rank() + 1) % t.size();
                    t.send(next, 40 + t.rank() as u64, vec![c64(t.rank() as f64, 0.0)]);
                    let env = t.recv_any();
                    let prev = (t.rank() + t.size() - 1) % t.size();
                    assert_eq!(env.src, prev);
                    assert_eq!(env.tag, 40 + prev as u64);
                    assert_eq!(env.payload, vec![c64(prev as f64, 0.0)]);
                });
            }
        });
    }

    #[test]
    fn self_send_loops_back() {
        let mut world = channel_world(1);
        let t = world.remove(0);
        t.send(0, 9, vec![c64(2.5, -1.0); 4]);
        let env = t.recv_any();
        assert_eq!((env.src, env.tag, env.payload.len()), (0, 9, 4));
    }

    #[test]
    fn per_pair_ordering_is_preserved() {
        let mut world = channel_world(2);
        let b = world.pop().unwrap();
        let a = world.pop().unwrap();
        for i in 0..10 {
            a.send(1, i, vec![c64(i as f64, 0.0)]);
        }
        for i in 0..10 {
            let env = b.recv_any();
            assert_eq!(env.tag, i, "FIFO per (src, dest) pair");
        }
    }
}
