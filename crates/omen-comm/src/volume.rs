//! Byte-exact communication accounting.
//!
//! Every simulated-MPI operation records the bytes each rank injects into
//! the network, broken down by collective kind. The ledger is what the
//! communication-volume experiments (Tables 4–5) read out; it is the
//! measured counterpart of the analytic model in `omen-perf`.

use parking_lot::Mutex;
use std::sync::Arc;

/// Kind of communication operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// One-to-all broadcast.
    Bcast,
    /// All-to-one reduction.
    Reduce,
    /// Point-to-point message.
    PointToPoint,
    /// Personalized all-to-all (`MPI_Alltoallv`).
    Alltoall,
    /// Barrier (no payload).
    Barrier,
}

const NKINDS: usize = 5;

impl OpKind {
    fn index(self) -> usize {
        match self {
            OpKind::Bcast => 0,
            OpKind::Reduce => 1,
            OpKind::PointToPoint => 2,
            OpKind::Alltoall => 3,
            OpKind::Barrier => 4,
        }
    }

    /// All kinds, for iteration.
    pub const ALL: [OpKind; NKINDS] = [
        OpKind::Bcast,
        OpKind::Reduce,
        OpKind::PointToPoint,
        OpKind::Alltoall,
        OpKind::Barrier,
    ];
}

#[derive(Default)]
struct Inner {
    bytes: [u64; NKINDS],
    calls: [u64; NKINDS],
    per_rank_sent: Vec<u64>,
}

/// Thread-safe communication ledger shared by all ranks of a world.
#[derive(Clone)]
pub struct VolumeLedger {
    inner: Arc<Mutex<Inner>>,
}

impl VolumeLedger {
    /// Creates a ledger for `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        VolumeLedger {
            inner: Arc::new(Mutex::new(Inner {
                per_rank_sent: vec![0; nranks],
                ..Default::default()
            })),
        }
    }

    /// Records `bytes` injected by `rank` under `kind`. `new_call` marks
    /// the start of a logical operation (an `MPI_*` invocation).
    pub fn record(&self, kind: OpKind, rank: usize, bytes: u64, new_call: bool) {
        omen_trace::add2(
            omen_trace::Counter::BytesCommunicated,
            bytes,
            omen_trace::Counter::CommCalls,
            u64::from(new_call),
        );
        let mut g = self.inner.lock();
        g.bytes[kind.index()] += bytes;
        if new_call {
            g.calls[kind.index()] += 1;
        }
        if rank < g.per_rank_sent.len() {
            g.per_rank_sent[rank] += bytes;
        }
    }

    /// Total bytes over all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().bytes.iter().sum()
    }

    /// Bytes of one kind.
    pub fn bytes(&self, kind: OpKind) -> u64 {
        self.inner.lock().bytes[kind.index()]
    }

    /// Logical operation count of one kind.
    pub fn calls(&self, kind: OpKind) -> u64 {
        self.inner.lock().calls[kind.index()]
    }

    /// Total logical operations (≈ MPI invocation count).
    pub fn total_calls(&self) -> u64 {
        self.inner.lock().calls.iter().sum()
    }

    /// Per-rank injected bytes (copy).
    pub fn per_rank_sent(&self) -> Vec<u64> {
        self.inner.lock().per_rank_sent.clone()
    }

    /// Largest per-rank injected volume.
    pub fn max_rank_bytes(&self) -> u64 {
        self.inner
            .lock()
            .per_rank_sent
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Resets all counters.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        let n = g.per_rank_sent.len();
        *g = Inner {
            per_rank_sent: vec![0; n],
            ..Default::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let l = VolumeLedger::new(4);
        l.record(OpKind::Bcast, 0, 100, true);
        l.record(OpKind::Bcast, 0, 100, false);
        l.record(OpKind::Alltoall, 2, 50, true);
        assert_eq!(l.total_bytes(), 250);
        assert_eq!(l.bytes(OpKind::Bcast), 200);
        assert_eq!(l.calls(OpKind::Bcast), 1);
        assert_eq!(l.calls(OpKind::Alltoall), 1);
        assert_eq!(l.total_calls(), 2);
        assert_eq!(l.per_rank_sent(), vec![200, 0, 50, 0]);
        assert_eq!(l.max_rank_bytes(), 200);
    }

    #[test]
    fn reset_clears() {
        let l = VolumeLedger::new(2);
        l.record(OpKind::Reduce, 1, 10, true);
        l.reset();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.total_calls(), 0);
        assert_eq!(l.per_rank_sent(), vec![0, 0]);
    }

    #[test]
    fn concurrent_recording() {
        let l = VolumeLedger::new(8);
        std::thread::scope(|s| {
            for r in 0..8 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.record(OpKind::PointToPoint, r, 3, true);
                    }
                });
            }
        });
        assert_eq!(l.total_bytes(), 8 * 3000);
        assert_eq!(l.calls(OpKind::PointToPoint), 8000);
    }
}
