//! Domain decompositions of the SSE phase (Fig. 5).
//!
//! * [`OmenGrid`] — the physics-natural decomposition: a
//!   `kz × E/tE` process grid owning energy-momentum pairs; phonon points
//!   round-robin across ranks.
//! * [`DaceTiling`] — the data-centric decomposition: `Ta` atom tiles ×
//!   `TE` energy tiles, obtained in the paper by re-tiling the SSE map by
//!   atom position.

/// The OMEN energy-momentum pair decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmenGrid {
    /// Momentum groups (`Nkz` in the paper's full-scale runs).
    pub gk: usize,
    /// Energy tiles per momentum group (`NE / tE`).
    pub ge: usize,
    /// Electron momentum points.
    pub nk: usize,
    /// Electron energy points.
    pub ne: usize,
}

impl OmenGrid {
    /// Creates a `gk × ge` grid for an `nk × ne` point set.
    pub fn new(gk: usize, ge: usize, nk: usize, ne: usize) -> Self {
        assert!(gk >= 1 && ge >= 1);
        assert!(gk <= nk, "more momentum groups than momentum points");
        assert!(ge <= ne, "more energy tiles than energy points");
        OmenGrid { gk, ge, nk, ne }
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.gk * self.ge
    }

    /// Energy-tile width (last tile may be short).
    pub fn tile_e(&self) -> usize {
        self.ne.div_ceil(self.ge)
    }

    /// Owner rank of electron pair `(k, e)`.
    pub fn owner_pair(&self, k: usize, e: usize) -> usize {
        let kg = k % self.gk;
        let et = (e / self.tile_e()).min(self.ge - 1);
        kg * self.ge + et
    }

    /// Owner rank of phonon point `(q, m)` (round-robin).
    pub fn owner_phonon(&self, q: usize, m: usize, nw: usize) -> usize {
        (q * nw + m) % self.nranks()
    }

    /// All electron pairs owned by `rank`, in deterministic order.
    pub fn owned_pairs(&self, rank: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for k in 0..self.nk {
            for e in 0..self.ne {
                if self.owner_pair(k, e) == rank {
                    out.push((k, e));
                }
            }
        }
        out
    }
}

/// The DaCe atom × energy tiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DaceTiling {
    /// Atom tiles.
    pub ta: usize,
    /// Energy tiles.
    pub te: usize,
    /// Atoms.
    pub na: usize,
    /// Energy points.
    pub ne: usize,
}

impl DaceTiling {
    /// Creates a `ta × te` tiling of `na` atoms × `ne` energies.
    pub fn new(ta: usize, te: usize, na: usize, ne: usize) -> Self {
        assert!(ta >= 1 && te >= 1);
        assert!(ta <= na, "more atom tiles than atoms");
        assert!(te <= ne, "more energy tiles than energies");
        DaceTiling { ta, te, na, ne }
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.ta * self.te
    }

    /// Rank of tile `(ia, ie)`.
    pub fn rank_of(&self, ia: usize, ie: usize) -> usize {
        ia * self.te + ie
    }

    /// Tile coordinates of `rank`.
    pub fn tile_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.te, rank % self.te)
    }

    /// Atom range `[lo, hi)` of atom-tile `ia` (balanced split).
    pub fn atom_range(&self, ia: usize) -> (usize, usize) {
        split_range(self.na, self.ta, ia)
    }

    /// Energy range `[lo, hi)` of energy-tile `ie`.
    pub fn energy_range(&self, ie: usize) -> (usize, usize) {
        split_range(self.ne, self.te, ie)
    }

    /// Energy range of tile `ie` extended by the stencil halo `nw` on both
    /// sides (clamped to the grid).
    pub fn energy_range_halo(&self, ie: usize, nw: usize) -> (usize, usize) {
        let (lo, hi) = self.energy_range(ie);
        (lo.saturating_sub(nw), (hi + nw).min(self.ne))
    }

    /// Owner tile of atom `a`.
    pub fn atom_tile(&self, a: usize) -> usize {
        for ia in 0..self.ta {
            let (lo, hi) = self.atom_range(ia);
            if a >= lo && a < hi {
                return ia;
            }
        }
        unreachable!("atom {a} out of range");
    }

    /// Owner tile of energy `e`.
    pub fn energy_tile(&self, e: usize) -> usize {
        for ie in 0..self.te {
            let (lo, hi) = self.energy_range(ie);
            if e >= lo && e < hi {
                return ie;
            }
        }
        unreachable!("energy {e} out of range");
    }
}

/// Deterministically factors `ranks` into a `gk × ge` [`OmenGrid`] over
/// an `nk × ne` point set, preferring the most momentum groups (the
/// paper assigns whole `kz` points to process groups first and splits
/// energy within each group). `None` when no factorization fits — e.g.
/// a prime `ranks` larger than both `nk` and `ne`.
pub fn grid_for_ranks(nk: usize, ne: usize, ranks: usize) -> Option<OmenGrid> {
    if ranks == 0 {
        return None;
    }
    for gk in (1..=nk.min(ranks)).rev() {
        if ranks.is_multiple_of(gk) && ranks / gk <= ne {
            return Some(OmenGrid::new(gk, ranks / gk, nk, ne));
        }
    }
    None
}

/// Deterministically factors `ranks` into a `ta × te` [`DaceTiling`] of
/// `na` atoms × `ne` energies, preferring the most atom tiles (the
/// data-centric scheme tiles by atom position first; Fig. 5 right).
/// `None` when no factorization fits.
pub fn tiling_for_ranks(na: usize, ne: usize, ranks: usize) -> Option<DaceTiling> {
    if ranks == 0 {
        return None;
    }
    for ta in (1..=na.min(ranks)).rev() {
        if ranks.is_multiple_of(ta) && ranks / ta <= ne {
            return Some(DaceTiling::new(ta, ranks / ta, na, ne));
        }
    }
    None
}

/// Balanced split of `n` items into `parts`; part `i`'s `[lo, hi)`.
pub fn split_range(n: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let lo = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (lo, lo + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omen_grid_partitions_all_pairs() {
        let g = OmenGrid::new(3, 4, 3, 10);
        assert_eq!(g.nranks(), 12);
        let mut seen = [false; 3 * 10];
        for r in 0..g.nranks() {
            for (k, e) in g.owned_pairs(r) {
                assert!(!seen[k * 10 + e], "pair ({k},{e}) owned twice");
                seen[k * 10 + e] = true;
                assert_eq!(g.owner_pair(k, e), r);
            }
        }
        assert!(seen.iter().all(|&s| s), "every pair owned");
    }

    #[test]
    fn omen_phonon_round_robin_covers_ranks() {
        let g = OmenGrid::new(2, 2, 2, 8);
        let mut counts = vec![0usize; 4];
        for q in 0..2 {
            for m in 0..4 {
                counts[g.owner_phonon(q, m, 4)] += 1;
            }
        }
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn split_range_covers_without_overlap() {
        for (n, parts) in [(10, 3), (7, 7), (16, 4), (5, 2)] {
            let mut covered = 0;
            for i in 0..parts {
                let (lo, hi) = split_range(n, parts, i);
                assert_eq!(lo, covered, "contiguous");
                covered = hi;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn dace_tiling_maps() {
        let t = DaceTiling::new(3, 2, 16, 6);
        assert_eq!(t.nranks(), 6);
        for a in 0..16 {
            let ia = t.atom_tile(a);
            let (lo, hi) = t.atom_range(ia);
            assert!(a >= lo && a < hi);
        }
        for e in 0..6 {
            let ie = t.energy_tile(e);
            let (lo, hi) = t.energy_range(ie);
            assert!(e >= lo && e < hi);
        }
        let (r, c) = t.tile_of(t.rank_of(2, 1));
        assert_eq!((r, c), (2, 1));
    }

    #[test]
    fn grid_for_ranks_prefers_momentum_groups() {
        // tiny(): nk = 2, ne = 24.
        assert_eq!(grid_for_ranks(2, 24, 1), Some(OmenGrid::new(1, 1, 2, 24)));
        assert_eq!(grid_for_ranks(2, 24, 2), Some(OmenGrid::new(2, 1, 2, 24)));
        assert_eq!(grid_for_ranks(2, 24, 4), Some(OmenGrid::new(2, 2, 2, 24)));
        // More ranks than points in any factorization: no grid.
        assert_eq!(grid_for_ranks(2, 3, 7), None);
        assert_eq!(grid_for_ranks(2, 24, 0), None);
        // Every returned grid has exactly `ranks` ranks.
        for ranks in 1..=8 {
            if let Some(g) = grid_for_ranks(3, 10, ranks) {
                assert_eq!(g.nranks(), ranks);
            }
        }
    }

    #[test]
    fn tiling_for_ranks_prefers_atom_tiles() {
        assert_eq!(
            tiling_for_ranks(16, 24, 4),
            Some(DaceTiling::new(4, 1, 16, 24))
        );
        assert_eq!(
            tiling_for_ranks(3, 24, 4),
            Some(DaceTiling::new(2, 2, 3, 24))
        );
        assert_eq!(tiling_for_ranks(1, 2, 5), None);
        assert_eq!(tiling_for_ranks(16, 24, 0), None);
        for ranks in 1..=12 {
            if let Some(t) = tiling_for_ranks(6, 8, ranks) {
                assert_eq!(t.nranks(), ranks);
            }
        }
    }

    #[test]
    fn halo_clamps_at_edges() {
        let t = DaceTiling::new(1, 3, 4, 9);
        assert_eq!(t.energy_range(0), (0, 3));
        assert_eq!(t.energy_range_halo(0, 2), (0, 5));
        assert_eq!(t.energy_range_halo(2, 2), (4, 9));
    }
}
