//! Data ingestion: naive parallel-filesystem reads vs chunked broadcast
//! staging (§7.1.1).
//!
//! The simulator's input (CP2K material data, GiBs across multiple files)
//! is needed by every rank. Reading it from the parallel filesystem on
//! every rank contends for PFS bandwidth — over 30 minutes at near-full
//! Piz Daint scale. Staging reads the data once and broadcasts it in
//! chunks, cutting start-up to under a minute.
//!
//! Two artifacts here: an analytic time model calibrated on the paper's
//! observations, and an *executable* chunked broadcast that ships real
//! serialized material bytes through the simulated MPI.

use crate::mpi_sim::Comm;
use crate::netmodel::Network;
use omen_linalg::{c64, C64};

/// Parallel-filesystem + network staging model.
#[derive(Clone, Copy, Debug)]
pub struct StagingModel {
    /// Aggregate PFS read bandwidth under contention (bytes/s).
    pub pfs_bandwidth: f64,
    /// Interconnect for the broadcast phase.
    pub network: Network,
}

impl StagingModel {
    /// Piz Daint-like parameters, calibrated so the naive path reproduces
    /// the paper's 1,112 s at 2,589 nodes for a ~5 GiB material set.
    pub fn piz_daint() -> StagingModel {
        StagingModel {
            pfs_bandwidth: 12.5e9,
            network: Network::piz_daint(),
        }
    }

    /// Summit-like parameters.
    pub fn summit() -> StagingModel {
        StagingModel {
            pfs_bandwidth: 25.0e9,
            network: Network::summit(),
        }
    }

    /// Naive ingestion: every node reads the full file set; PFS bandwidth
    /// is shared, so time scales linearly with node count.
    pub fn naive_load_time(&self, file_bytes: u64, nranks: usize) -> f64 {
        let nodes = self.network.nodes(nranks) as f64;
        nodes * file_bytes as f64 / self.pfs_bandwidth
    }

    /// Staged ingestion: one read plus a pipelined chunked broadcast,
    /// with a per-chunk software overhead (the dominant cost the paper
    /// observed — 31.1 s at 4,560 nodes).
    pub fn staged_load_time(&self, file_bytes: u64, nranks: usize, chunk_bytes: u64) -> f64 {
        let read = file_bytes as f64 / self.pfs_bandwidth;
        let chunks = file_bytes.div_ceil(chunk_bytes.max(1));
        // Each chunk traverses a binomial tree; pipelining overlaps all but
        // log2(P) stages. Per-chunk software overhead ~1 ms (observed).
        let bcast = self.network.bcast_time(file_bytes, nranks);
        let overhead = chunks as f64 * 1.0e-3;
        read + bcast + overhead
    }
}

/// Packs raw bytes into `C64` payload elements (16 bytes each) for
/// transport through the simulated MPI. Bit-preserving.
pub fn pack_bytes(data: &[u8]) -> Vec<C64> {
    data.chunks(16)
        .map(|chunk| {
            let mut buf = [0u8; 16];
            buf[..chunk.len()].copy_from_slice(chunk);
            c64(
                f64::from_le_bytes(buf[0..8].try_into().unwrap()),
                f64::from_le_bytes(buf[8..16].try_into().unwrap()),
            )
        })
        .collect()
}

/// Inverse of [`pack_bytes`]; `len` trims the final padding.
pub fn unpack_bytes(payload: &[C64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() * 16);
    for z in payload {
        out.extend_from_slice(&z.re.to_le_bytes());
        out.extend_from_slice(&z.im.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Frame decoding failure, distinguishing *how* a frame is bad so the
/// journal/transport layers can react differently (a truncated tail is
/// an interrupted write and expected on crash recovery; a corrupt
/// checksum is data damage worth reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The frame ends before the header or the payload the header
    /// promises — an interrupted or partial write.
    Truncated,
    /// The frame carries *more* elements than the header's length field
    /// accounts for — framing desynchronization.
    LengthMismatch,
    /// Header and body lengths agree but the checksum does not — bytes
    /// were damaged in flight or at rest.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated before its declared length"),
            FrameError::LengthMismatch => {
                write!(f, "frame length disagrees with its header")
            }
            FrameError::Corrupt => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over the frame's semantic content: kind, declared length, and
/// payload bytes. Covers the header fields, so a bit-flip that changes
/// the decoded kind or length is caught even when the element counts
/// still line up.
fn frame_checksum(kind: u32, len: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in kind.to_le_bytes() {
        eat(b);
    }
    for b in len.to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Encodes a tagged byte message as a self-describing `C64` frame for
/// transport through the simulated MPI (or any `C64` channel): a
/// `(kind, len)` header element, a checksum element, then the packed
/// payload. The 64-bit FNV-1a checksum is split into two u32 halves,
/// each stored exactly as an f64, so the frame stays bit-preserving
/// through any `C64` channel.
///
/// This is the wire format of `omen-serve`'s job/result messages and
/// checkpoint journal — the same bit-preserving packing the staged
/// material broadcast uses.
pub fn encode_frame(kind: u32, payload: &[u8]) -> Vec<C64> {
    let sum = frame_checksum(kind, payload.len() as u64, payload);
    let mut frame = Vec::with_capacity(2 + payload.len().div_ceil(16));
    frame.push(c64(kind as f64, payload.len() as f64));
    frame.push(c64((sum >> 32) as u32 as f64, sum as u32 as f64));
    frame.extend_from_slice(&pack_bytes(payload));
    frame
}

/// Decodes a frame produced by [`encode_frame`], returning the message
/// kind and payload bytes, or a [`FrameError`] naming what is wrong:
/// [`FrameError::Truncated`] when elements are missing,
/// [`FrameError::LengthMismatch`] when there are too many, and
/// [`FrameError::Corrupt`] when the checksum disagrees with the content.
pub fn decode_frame(frame: &[C64]) -> Result<(u32, Vec<u8>), FrameError> {
    if frame.len() < 2 {
        return Err(FrameError::Truncated);
    }
    let header = frame[0];
    let kind = header.re as u32;
    let len = header.im as usize;
    let expected = 2 + len.div_ceil(16);
    if frame.len() < expected {
        return Err(FrameError::Truncated);
    }
    if frame.len() > expected {
        return Err(FrameError::LengthMismatch);
    }
    let stored = ((frame[1].re as u32 as u64) << 32) | frame[1].im as u32 as u64;
    let payload = unpack_bytes(&frame[2..], len);
    if frame_checksum(kind, len as u64, &payload) != stored {
        return Err(FrameError::Corrupt);
    }
    Ok((kind, payload))
}

/// Reliable framed point-to-point send: encodes `(kind, payload)` as a
/// checksummed frame ([`encode_frame`]), ships it to `dest` on `tag`, and
/// waits for the receiver's verdict on `tag + 1` — retransmitting until
/// the frame arrives intact. The retry loop is what makes transport-level
/// corruption (e.g. an injected `FrameCorrupt` fault) *recoverable*
/// instead of fatal: damage is detected by the checksum on the far side
/// and the frame is simply sent again.
///
/// Panics after 100 rejected attempts — at that point the damage is
/// deterministic, not transient, and retrying cannot help.
pub fn send_framed(comm: &Comm, dest: usize, tag: u64, kind: u32, payload: &[u8]) {
    for _ in 0..100 {
        comm.send(dest, tag, encode_frame(kind, payload));
        let ack = comm.recv(dest, tag + 1);
        if ack.first().is_some_and(|a| a.re == 1.0) {
            return;
        }
    }
    panic!("frame to rank {dest} rejected 100 times; corruption is not transient");
}

/// Receiving side of [`send_framed`]: decodes frames from `src` on `tag`,
/// acking each on `tag + 1` (`1.0` = intact, `0.0` = resend), until one
/// survives the checksum. Returns the message kind and payload bytes.
pub fn recv_framed(comm: &Comm, src: usize, tag: u64) -> (u32, Vec<u8>) {
    loop {
        let frame = comm.recv(src, tag);
        match decode_frame(&frame) {
            Ok((kind, payload)) => {
                comm.send(src, tag + 1, vec![c64(1.0, 0.0)]);
                return (kind, payload);
            }
            Err(_) => comm.send(src, tag + 1, vec![c64(0.0, 0.0)]),
        }
    }
}

/// Executable staging: `root` holds the serialized material file; all
/// ranks return the full byte vector after a chunked broadcast.
pub fn stage_material(
    comm: &Comm,
    root: usize,
    data: Option<&[u8]>,
    chunk_elems: usize,
) -> Vec<u8> {
    assert!(chunk_elems > 0);
    // First broadcast the length.
    let mut header = if comm.rank() == root {
        vec![c64(data.unwrap().len() as f64, 0.0)]
    } else {
        Vec::new()
    };
    comm.bcast(root, 90_000, &mut header);
    let total_len = header[0].re as usize;
    let payload = if comm.rank() == root {
        pack_bytes(data.unwrap())
    } else {
        Vec::new()
    };
    let nelems = total_len.div_ceil(16);
    let nchunks = nelems.div_ceil(chunk_elems);
    let mut received: Vec<C64> = Vec::with_capacity(nelems);
    for c in 0..nchunks {
        let lo = c * chunk_elems;
        let hi = ((c + 1) * chunk_elems).min(nelems);
        let mut chunk = if comm.rank() == root {
            payload[lo..hi].to_vec()
        } else {
            Vec::new()
        };
        comm.bcast(root, 90_001 + c as u64, &mut chunk);
        received.extend_from_slice(&chunk);
    }
    unpack_bytes(&received, total_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_sim::run_world;
    use crate::volume::{OpKind, VolumeLedger};
    use omen_device::{serialize_structure, DeviceConfig, DeviceStructure};

    #[test]
    fn pack_round_trip() {
        let data: Vec<u8> = (0..1000).map(|i| (i * 37 % 251) as u8).collect();
        let packed = pack_bytes(&data);
        let back = unpack_bytes(&packed, data.len());
        assert_eq!(back, data);
        // Non-multiple-of-16 lengths round-trip too.
        let data2 = &data[..999];
        assert_eq!(unpack_bytes(&pack_bytes(data2), 999), data2);
    }

    #[test]
    fn frame_round_trip() {
        let payload: Vec<u8> = (0..333).map(|i| (i * 31 % 253) as u8).collect();
        let frame = encode_frame(7, &payload);
        let (kind, back) = decode_frame(&frame).expect("valid frame");
        assert_eq!(kind, 7);
        assert_eq!(back, payload);
        // Empty payloads are header + checksum only.
        assert_eq!(decode_frame(&encode_frame(2, &[])), Ok((2, Vec::new())));
        // Truncated or empty frames are rejected, not mis-read.
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(FrameError::Truncated)
        );
        assert_eq!(decode_frame(&[]), Err(FrameError::Truncated));
        // Extra trailing elements are a length mismatch.
        let mut long = frame.clone();
        long.push(c64(0.0, 0.0));
        assert_eq!(decode_frame(&long), Err(FrameError::LengthMismatch));
    }

    #[test]
    fn frame_checksum_catches_payload_damage() {
        let payload: Vec<u8> = (0..96).map(|i| i as u8).collect();
        let mut frame = encode_frame(9, &payload);
        // Flip one payload byte (element 2 is the first payload element).
        let mut bytes = frame[2].re.to_le_bytes();
        bytes[3] ^= 0x10;
        frame[2].re = f64::from_le_bytes(bytes);
        assert_eq!(decode_frame(&frame), Err(FrameError::Corrupt));
        // Damaging the stored checksum itself is also caught.
        let mut frame2 = encode_frame(9, &payload);
        frame2[1].im += 1.0;
        assert_eq!(decode_frame(&frame2), Err(FrameError::Corrupt));
        // Damaging the kind is caught because the checksum covers it.
        let mut frame3 = encode_frame(9, &payload);
        frame3[0].re += 1.0;
        assert_eq!(decode_frame(&frame3), Err(FrameError::Corrupt));
    }

    #[test]
    fn framed_send_recv_round_trip() {
        let payload: Vec<u8> = (0..500).map(|i| (i * 13 % 251) as u8).collect();
        let ledger = VolumeLedger::new(2);
        let results = run_world(2, ledger, |comm| {
            if comm.rank() == 0 {
                send_framed(&comm, 1, 70, 3, &payload);
                Vec::new()
            } else {
                let (kind, got) = recv_framed(&comm, 0, 70);
                assert_eq!(kind, 3);
                got
            }
        });
        assert_eq!(results[1], payload);
    }

    #[test]
    fn staged_broadcast_delivers_real_material() {
        let dev = DeviceStructure::build(DeviceConfig::tiny());
        let bytes = serialize_structure(&dev).to_vec();
        let p = 5;
        let ledger = VolumeLedger::new(p);
        let results = run_world(p, ledger.clone(), |comm| {
            let data = if comm.rank() == 1 {
                Some(&bytes[..])
            } else {
                None
            };
            stage_material(&comm, 1, data, 64)
        });
        for r in &results {
            assert_eq!(r, &bytes, "all ranks must receive the exact file");
            // And it must parse back into the device.
            let back = omen_device::deserialize_structure(r).expect("valid material file");
            assert_eq!(back.num_atoms(), dev.num_atoms());
        }
        assert!(ledger.bytes(OpKind::Bcast) > 0);
    }

    #[test]
    fn naive_time_reproduces_paper_observation() {
        // Paper: 1,112 s at 2,589 Piz Daint nodes, >30 min near full scale
        // (5,300 nodes).
        let model = StagingModel::piz_daint();
        let file = 5 * (1u64 << 30); // 5 GiB
        let ranks_2589 = 2589 * model.network.ranks_per_node;
        let t = model.naive_load_time(file, ranks_2589);
        assert!(
            (t - 1112.0).abs() / 1112.0 < 0.05,
            "naive load at 2,589 nodes: {t:.0} s (paper: 1,112 s)"
        );
        let ranks_5300 = 5300 * model.network.ranks_per_node;
        let t_full = model.naive_load_time(file, ranks_5300);
        assert!(
            t_full > 30.0 * 60.0,
            "full-scale naive load {t_full:.0} s > 30 min"
        );
    }

    #[test]
    fn staged_time_under_a_minute() {
        let model = StagingModel::piz_daint();
        let file = 5 * (1u64 << 30);
        let ranks = 5300 * model.network.ranks_per_node;
        let t = model.staged_load_time(file, ranks, 256 << 20);
        assert!(t < 60.0, "staged load {t:.1} s must be under a minute");
        // Speedup vs naive: two orders of magnitude.
        let naive = model.naive_load_time(file, ranks);
        assert!(naive / t > 50.0, "staging speedup {:.0}×", naive / t);
    }
}
