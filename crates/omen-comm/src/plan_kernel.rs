//! [`PlanKernel`]: the SSE phase as a *distributed exchange*.
//!
//! The standard kernels (`omen-sse`) evaluate `Σ^≷`/`Π^≷` in one address
//! space. This kernel instead runs the paper's rank decomposition for
//! real on every Born iteration: it implements [`SseKernel`] by invoking
//! [`run_omen_plan`] or [`run_dace_plan`] — rank threads, `Comm`
//! exchange, byte-exact [`VolumeLedger`] accounting and all — and
//! deposits the assembled [`PlanResult`](crate::plan_common::PlanResult)
//! into the kernel double buffer
//! the driver already knows how to consume.
//!
//! Both plans are deterministic functions of their inputs (per-rank
//! partial sums are combined in fixed rank order), so a Born loop running
//! this kernel is bitwise-reproducible across runs and thread
//! interleavings, and agrees with the reference kernel to the usual
//! cross-schedule reassociation tolerance (~1e-10; pinned by the plan
//! tests).
//!
//! The per-iteration ledgers are retained (see
//! [`PlanKernel::ledger_sink`]) so benches and tests can compare the
//! measured Table 4/5 volumes of a *live* simulation against the
//! `omen-perf` analytic model.

use crate::dace_plan::run_dace_plan;
use crate::omen_plan::run_omen_plan;
use crate::topology::{grid_for_ranks, tiling_for_ranks};
use crate::volume::VolumeLedger;
use omen_sse::tensors::{DTensor, GTensor};
use omen_sse::{KernelState, SseKernel, SseOutput, SseProblem};
use std::sync::{Arc, Mutex};

/// Which of the paper's two SSE communication schemes to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPlan {
    /// OMEN's round-based replication (bcast D rows, P2P G, reduce Π).
    Omen,
    /// The data-centric four-`Alltoallv` redistribution.
    Dace,
}

impl CommPlan {
    /// Short identifier for logs and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            CommPlan::Omen => "omen",
            CommPlan::Dace => "dace",
        }
    }
}

/// An [`SseKernel`] that computes the self-energies by executing a
/// communication plan across in-process ranks.
pub struct PlanKernel {
    plan: CommPlan,
    ranks: usize,
    state: KernelState,
    ledgers: Arc<Mutex<Vec<VolumeLedger>>>,
}

impl PlanKernel {
    /// A plan kernel distributing the exchange over `ranks` ranks.
    pub fn new(plan: CommPlan, ranks: usize) -> Self {
        assert!(ranks >= 1, "plan kernel needs at least one rank");
        PlanKernel {
            plan,
            ranks,
            state: KernelState::new(),
            ledgers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The plan this kernel executes.
    pub fn plan(&self) -> CommPlan {
        self.plan
    }

    /// The rank count of the simulated world.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Handle to the per-iteration ledger history: every `run` pushes the
    /// iteration's [`VolumeLedger`]. Clone this *before* boxing the
    /// kernel into a driver to observe measured volumes from outside.
    pub fn ledger_sink(&self) -> Arc<Mutex<Vec<VolumeLedger>>> {
        Arc::clone(&self.ledgers)
    }

    /// The most recent iteration's ledger, if any run has completed.
    pub fn last_ledger(&self) -> Option<VolumeLedger> {
        self.ledgers.lock().unwrap().last().cloned()
    }
}

impl SseKernel for PlanKernel {
    fn name(&self) -> &'static str {
        match self.plan {
            CommPlan::Omen => "plan-omen",
            CommPlan::Dace => "plan-dace",
        }
    }

    fn run(
        &mut self,
        prob: &SseProblem,
        g_l: &GTensor,
        g_g: &GTensor,
        d_l: &DTensor,
        d_g: &DTensor,
    ) -> &SseOutput {
        let _span = omen_trace::span!("sse_kernel");
        let grid = grid_for_ranks(g_l.nk, g_l.ne, self.ranks).unwrap_or_else(|| {
            panic!(
                "no {}-rank process grid fits nk = {}, ne = {}",
                self.ranks, g_l.nk, g_l.ne
            )
        });
        let (result, ledger) = match self.plan {
            CommPlan::Omen => run_omen_plan(prob, g_l, g_g, d_l, d_g, &grid),
            CommPlan::Dace => {
                let tiling = tiling_for_ranks(g_l.na, g_l.ne, self.ranks).unwrap_or_else(|| {
                    panic!(
                        "no {}-rank atom tiling fits na = {}, ne = {}",
                        self.ranks, g_l.na, g_l.ne
                    )
                });
                run_dace_plan(prob, g_l, g_g, d_l, d_g, &grid, &tiling)
            }
        };
        self.ledgers.lock().unwrap().push(ledger);
        let out = self.state.advance_output();
        out.sigma_l = result.sigma_l;
        out.sigma_g = result.sigma_g;
        out.pi_l = result.pi_l;
        out.pi_g = result.pi_g;
        // The plans do not meter their arithmetic; only the exchange is
        // accounted (in the ledger and the trace byte counters).
        out.flops = 0;
        self.state.output()
    }

    fn state(&self) -> &KernelState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_sse::reference::sse_reference;
    use omen_sse::testutil::{random_inputs, tiny_device, tiny_problem};

    #[test]
    fn plan_kernels_match_reference() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 11);
        let direct = sse_reference(&prob, &gl, &gg, &dl, &dg);
        for plan in [CommPlan::Omen, CommPlan::Dace] {
            let mut k = PlanKernel::new(plan, 2);
            let out = k.run(&prob, &gl, &gg, &dl, &dg);
            let scale = direct.sigma_l.max_abs().max(1e-300);
            assert!(
                out.sigma_l.max_deviation(&direct.sigma_l) / scale < 1e-10,
                "{} deviates from reference",
                plan.name()
            );
            assert!(k.last_ledger().is_some(), "iteration ledger retained");
        }
    }

    #[test]
    fn plan_kernel_is_deterministic_across_runs() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 29);
        for plan in [CommPlan::Omen, CommPlan::Dace] {
            let mut a = PlanKernel::new(plan, 4);
            let mut b = PlanKernel::new(plan, 4);
            let oa = a.run(&prob, &gl, &gg, &dl, &dg).clone();
            let ob = b.run(&prob, &gl, &gg, &dl, &dg);
            assert_eq!(
                oa.sigma_l.max_deviation(&ob.sigma_l),
                0.0,
                "{} must be bitwise-reproducible",
                plan.name()
            );
            assert_eq!(oa.pi_l.max_deviation(&ob.pi_l), 0.0);
        }
    }

    #[test]
    fn ledger_history_grows_per_iteration() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 3);
        let mut k = PlanKernel::new(CommPlan::Omen, 2);
        let sink = k.ledger_sink();
        k.run(&prob, &gl, &gg, &dl, &dg);
        k.run(&prob, &gl, &gg, &dl, &dg);
        assert_eq!(sink.lock().unwrap().len(), 2);
        assert!(k.output_delta().is_some(), "double buffer tracks history");
        assert_eq!(k.output_delta(), Some(0.0), "same inputs, zero delta");
    }

    #[test]
    fn single_rank_plan_moves_no_bytes() {
        let dev = tiny_device();
        let prob = tiny_problem(&dev);
        let (gl, gg, dl, dg) = random_inputs(&prob, 5);
        let mut k = PlanKernel::new(CommPlan::Omen, 1);
        k.run(&prob, &gl, &gg, &dl, &dg);
        assert_eq!(k.last_ledger().unwrap().total_bytes(), 0);
    }
}
