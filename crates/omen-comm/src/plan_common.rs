//! Shared scaffolding of the distributed SSE plans: initial data
//! distributions, rank outputs, and result assembly.

use crate::sse_state::{LocalD, LocalG};
use crate::topology::OmenGrid;
use omen_linalg::C64;
use omen_sse::{DLayout, DTensor, GBlocks, GLayout, GTensor, SseProblem};

/// Per-point lesser/greater row pair keyed by its grid point: one rank's
/// share of a tensor, as `((i, j), row_l, row_g)` triples.
pub type RankRows = Vec<((usize, usize), Vec<C64>, Vec<C64>)>;

/// Per-rank SSE results handed back by a plan's rank closure.
pub struct RankSse {
    /// Owned `Σ^≷(k, e)` rows (full `na · bsz`, unscaled).
    pub sigma: RankRows,
    /// Owned `Π^≷(q, m)` rows (full `nentries · 9`, unscaled).
    pub pi: RankRows,
}

/// Assembled plan output (scaled; comparable to
/// [`omen_sse::reference::sse_reference`]).
pub struct PlanResult {
    /// `Σ^<` in `PairMajor` layout.
    pub sigma_l: GTensor,
    /// `Σ^>`.
    pub sigma_g: GTensor,
    /// `Π^<` in `PointMajor` layout.
    pub pi_l: DTensor,
    /// `Π^>`.
    pub pi_g: DTensor,
}

/// Extracts the initial per-rank `G^≷` distribution: the `(k, e)` rows the
/// GF phase left on this rank (no communication — this is the plan's
/// starting state).
pub fn initial_g(
    prob: &SseProblem,
    grid: &OmenGrid,
    rank: usize,
    g_l: &GTensor,
    g_g: &GTensor,
) -> (LocalG, LocalG) {
    let bsz = prob.norb() * prob.norb();
    let na = prob.na();
    let mut ll = LocalG::new(na, bsz);
    let mut lg = LocalG::new(na, bsz);
    for (k, e) in grid.owned_pairs(rank) {
        let mut row_l = Vec::with_capacity(na * bsz);
        let mut row_g = Vec::with_capacity(na * bsz);
        for a in 0..na {
            row_l.extend_from_slice(g_l.block(k, e, a));
            row_g.extend_from_slice(g_g.block(k, e, a));
        }
        ll.insert_row(k, e, row_l);
        lg.insert_row(k, e, row_g);
    }
    (ll, lg)
}

/// Extracts the initial per-rank `D^≷` distribution (phonon-point owners).
pub fn initial_d(
    prob: &SseProblem,
    grid: &OmenGrid,
    rank: usize,
    d_l: &DTensor,
    d_g: &DTensor,
) -> (LocalD, LocalD) {
    let nentries = prob.npairs() + prob.na();
    let mut ll = LocalD::new(nentries);
    let mut lg = LocalD::new(nentries);
    for q in 0..prob.nq {
        for m in 0..prob.nw {
            if grid.owner_phonon(q, m, prob.nw) == rank {
                let mut row_l = Vec::with_capacity(nentries * 9);
                let mut row_g = Vec::with_capacity(nentries * 9);
                for en in 0..nentries {
                    row_l.extend_from_slice(d_l.block(q, m, en));
                    row_g.extend_from_slice(d_g.block(q, m, en));
                }
                ll.insert_row(q, m, row_l);
                lg.insert_row(q, m, row_g);
            }
        }
    }
    (ll, lg)
}

/// Assembles rank outputs into full tensors, applying the problem scales.
pub fn assemble(prob: &SseProblem, rank_outputs: Vec<RankSse>) -> PlanResult {
    let norb = prob.norb();
    let bsz = norb * norb;
    let na = prob.na();
    let mut sigma_l = GTensor::zeros(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
    let mut sigma_g = GTensor::zeros(prob.nk, prob.ne, na, norb, GLayout::PairMajor);
    let mut pi_l = DTensor::zeros(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
    let mut pi_g = DTensor::zeros(prob.nq, prob.nw, prob.npairs(), na, DLayout::PointMajor);
    for out in rank_outputs {
        for ((k, e), row_l, row_g) in out.sigma {
            for a in 0..na {
                for (x, v) in sigma_l.block_mut(k, e, a).iter_mut().enumerate() {
                    *v += row_l[a * bsz + x].scale(prob.scale_sigma);
                }
                for (x, v) in sigma_g.block_mut(k, e, a).iter_mut().enumerate() {
                    *v += row_g[a * bsz + x].scale(prob.scale_sigma);
                }
            }
        }
        let nentries = prob.npairs() + na;
        for ((q, m), row_l, row_g) in out.pi {
            for en in 0..nentries {
                for x in 0..9 {
                    pi_l.block_mut(q, m, en)[x] += row_l[en * 9 + x].scale(prob.scale_pi);
                    pi_g.block_mut(q, m, en)[x] += row_g[en * 9 + x].scale(prob.scale_pi);
                }
            }
        }
    }
    PlanResult {
        sigma_l,
        sigma_g,
        pi_l,
        pi_g,
    }
}

/// A read-through view over two `LocalG` stores: the rank's resident data
/// plus the blocks received this round.
pub struct CombinedG<'a> {
    /// Resident store.
    pub own: &'a LocalG,
    /// Received-this-round store.
    pub extra: &'a LocalG,
}

impl GBlocks for CombinedG<'_> {
    fn gblock(&self, k: usize, e: usize, a: usize) -> &[C64] {
        if self.own.has(k, e) {
            self.own.get_block(k, e, a)
        } else {
            self.extra.get_block(k, e, a)
        }
    }
}
