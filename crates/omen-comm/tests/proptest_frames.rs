//! Property-based tests for the checksummed `C64` frame codec: random
//! payloads must round-trip, and random truncation or bit-flips must
//! never decode into a *wrong* message — every outcome is either a typed
//! [`FrameError`] or the exact original frame content.

use omen_comm::{decode_frame, encode_frame, FrameError};
use omen_linalg::C64;
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    (0usize..400)
        .prop_flat_map(|len| proptest::collection::vec((0u64..256).prop_map(|b| b as u8), len))
}

/// Flips bit `bit` of byte `byte` inside frame element `elem`,
/// round-tripping through the element's little-endian byte image (the
/// representation any byte transport would damage).
fn flip_bit(frame: &mut [C64], elem: usize, byte: usize, bit: u32) {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&frame[elem].re.to_le_bytes());
    bytes[8..].copy_from_slice(&frame[elem].im.to_le_bytes());
    bytes[byte] ^= 1 << bit;
    frame[elem].re = f64::from_le_bytes(bytes[..8].try_into().unwrap());
    frame[elem].im = f64::from_le_bytes(bytes[8..].try_into().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip(kind in 0u64..1000, payload in arb_payload()) {
        let frame = encode_frame(kind as u32, &payload);
        prop_assert_eq!(decode_frame(&frame), Ok((kind as u32, payload)));
    }

    #[test]
    fn truncation_is_always_typed(payload in arb_payload(), cut in 0usize..1000) {
        // Every proper prefix decodes to Truncated — never a wrong Ok,
        // never a panic. This is the crash-recovery contract: a journal
        // whose tail write was interrupted yields a clean typed error.
        let frame = encode_frame(3, &payload);
        let cut = cut % frame.len();
        prop_assert_eq!(decode_frame(&frame[..cut]), Err(FrameError::Truncated));
    }

    #[test]
    fn bit_flips_never_forge_a_message(
        payload in arb_payload(),
        elem_pick in 0usize..10_000,
        byte in 0usize..16,
        bit_pick in 0usize..8,
    ) {
        let original = payload.clone();
        let mut frame = encode_frame(11, &payload);
        let elem = elem_pick % frame.len();
        flip_bit(&mut frame, elem, byte, bit_pick as u32);
        // A flip that survives decoding must be semantically inert
        // (e.g. a mantissa bit below the integer resolution of a
        // header field): the decoded message must equal the original.
        // Otherwise the damage is caught with a typed error.
        if let Ok((kind, back)) = decode_frame(&frame) {
            prop_assert_eq!(kind, 11u32);
            prop_assert_eq!(back, original);
        }
    }

    #[test]
    fn payload_flips_are_always_caught(
        payload_pick in 1usize..400,
        elem_pick in 0usize..10_000,
        byte in 0usize..16,
        bit_pick in 0usize..8,
    ) {
        // Stricter than above: a flip landing inside the *meaningful*
        // payload bytes (below `len`) must be detected, because FNV-1a
        // propagates any single-byte difference to the final hash.
        let payload: Vec<u8> = (0..payload_pick).map(|i| (i * 131 % 251) as u8).collect();
        let mut frame = encode_frame(5, &payload);
        let payload_elems = frame.len() - 2;
        let elem = 2 + elem_pick % payload_elems;
        prop_assume!((elem - 2) * 16 + byte < payload.len());
        flip_bit(&mut frame, elem, byte, bit_pick as u32);
        prop_assert_eq!(decode_frame(&frame), Err(FrameError::Corrupt));
    }
}
