//! Chaos through the transport seam: a [`Transport`] wrapper injecting
//! deterministic frame corruption must be *survivable* — the framed
//! protocol's checksum catches every damaged frame and the retry loop
//! delivers the exact original bytes.
//!
//! Corruption here is driven by a *local* seeded [`FaultPlan`] (not the
//! process-global env plan), so this test is deterministic under the CI
//! chaos leg (`OMEN_FAULT_SEED=7`) and the global plan can never damage
//! the unframed plan traffic, whose volume assertions are byte-exact.

use omen_comm::{channel_world, recv_framed, send_framed, Comm, Envelope, Transport, VolumeLedger};
use omen_fault::{corrupt_bytes, FaultPlan, FaultSite};
use omen_linalg::C64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transport that deterministically flips one bit of outgoing data
/// frames. Acks (single-element payloads) pass untouched: the framed
/// protocol checksums data, not the 16-byte ack — sequencing lost acks
/// is a real-network concern out of scope for the in-process world.
struct CorruptingTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    sent: AtomicU64,
    corrupted: Arc<AtomicU64>,
}

impl<T: Transport> Transport for CorruptingTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, dest: usize, tag: u64, mut payload: Vec<C64>) {
        let key = self.sent.fetch_add(1, Ordering::Relaxed);
        if payload.len() >= 2 && self.plan.should_inject(FaultSite::FrameCorrupt, key) {
            // Damage one element through its byte image, the way a
            // byte-oriented wire would.
            let victim = (key as usize) % payload.len();
            let z = &mut payload[victim];
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&z.re.to_le_bytes());
            bytes[8..].copy_from_slice(&z.im.to_le_bytes());
            corrupt_bytes(&mut bytes, key);
            z.re = f64::from_le_bytes(bytes[..8].try_into().unwrap());
            z.im = f64::from_le_bytes(bytes[8..].try_into().unwrap());
            self.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.send(dest, tag, payload);
    }

    fn recv_any(&self) -> Envelope {
        self.inner.recv_any()
    }
}

#[test]
fn framed_protocol_survives_seeded_frame_corruption() {
    let nmsgs = 40u64;
    let payloads: Vec<Vec<u8>> = (0..nmsgs)
        .map(|i| {
            (0..64 + i as usize)
                .map(|b| (b * 17 + i as usize) as u8)
                .collect()
        })
        .collect();
    let corrupted = Arc::new(AtomicU64::new(0));
    let ledger = VolumeLedger::new(2);
    let mut world = channel_world(2);
    let receiver = world.pop().unwrap();
    let sender = CorruptingTransport {
        inner: world.pop().unwrap(),
        plan: FaultPlan::seeded(7, 0.4),
        sent: AtomicU64::new(0),
        corrupted: Arc::clone(&corrupted),
    };
    let send_comm = Comm::from_transport(Box::new(sender), ledger.clone());
    let recv_comm = Comm::from_transport(Box::new(receiver), ledger);
    let received = std::thread::scope(|s| {
        let payloads = &payloads;
        let tx = s.spawn(move || {
            for (i, p) in payloads.iter().enumerate() {
                send_framed(&send_comm, 1, 100 + 2 * i as u64, i as u32, p);
            }
        });
        let rx = s.spawn(move || {
            (0..nmsgs as usize)
                .map(|i| recv_framed(&recv_comm, 0, 100 + 2 * i as u64))
                .collect::<Vec<_>>()
        });
        tx.join().expect("sender survives corruption");
        rx.join().expect("receiver survives corruption")
    });
    // Every message arrived intact despite in-flight damage.
    for (i, (kind, bytes)) in received.iter().enumerate() {
        assert_eq!(*kind, i as u32, "message kind preserved");
        assert_eq!(bytes, &payloads[i], "payload {i} delivered bit-exact");
    }
    // The seeded plan really fired — this test exercised retransmission.
    assert!(
        corrupted.load(Ordering::Relaxed) > 0,
        "seed 7 at rate 0.4 must corrupt at least one of {nmsgs} frames"
    );
}

#[test]
fn clean_transport_needs_no_retries() {
    let ledger = VolumeLedger::new(2);
    let results = omen_comm::run_world(2, ledger.clone(), |comm| {
        if comm.rank() == 0 {
            send_framed(&comm, 1, 50, 9, b"exact bytes across the seam");
            Vec::new()
        } else {
            recv_framed(&comm, 0, 50).1
        }
    });
    assert_eq!(results[1], b"exact bytes across the seam");
    // One frame + one ack: exactly two point-to-point calls.
    assert_eq!(
        ledger.calls(omen_comm::OpKind::PointToPoint),
        2,
        "no retransmissions on a clean transport"
    );
}
