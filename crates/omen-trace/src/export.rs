//! Trace exporters: chrome://tracing JSON (Perfetto-loadable) and a flat
//! metrics text dump, plus a validator for the chrome-trace output so CI
//! can assert an exported file is well-formed without external JSON
//! dependencies.

use crate::{Counter, TraceSnapshot, NCOUNTERS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a snapshot as chrome://tracing "JSON Object Format":
/// `{"traceEvents": [...]}` with `ph:"X"` complete events for spans and
/// phases (timestamps/durations in microseconds), `ph:"i"` instants for
/// events, and `ph:"C"` counter samples for the final counter values.
/// Load the output in `about:tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n ");
    };

    for s in &snap.spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}}}}}",
            json_string(s.name),
            s.tid,
            us(s.start_ns),
            us(s.dur_ns),
            s.depth
        );
    }
    for p in &snap.phases {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
            json_string(p.name),
            p.tid,
            us(p.start_ns),
            us(p.dur_ns)
        );
        let mut first_arg = true;
        for c in Counter::ALL {
            let v = p.deltas[c.index()];
            if v != 0 {
                if !first_arg {
                    out.push(',');
                }
                first_arg = false;
                let _ = write!(out, "\"{}\":{}", c.name(), v);
            }
        }
        out.push_str("}}");
    }
    for e in &snap.events {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{\"a\":{},\"b\":{}}}}}",
            json_string(e.name),
            e.tid,
            us(e.ts_ns),
            json_f64(e.a),
            json_f64(e.b)
        );
    }
    let end_ts = snap
        .spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .chain(snap.phases.iter().map(|p| p.start_ns + p.dur_ns))
        .chain(snap.events.iter().map(|e| e.ts_ns))
        .max()
        .unwrap_or(0);
    for c in Counter::ALL {
        let v = snap.counters[c.index()];
        if v != 0 {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                c.name(),
                us(end_ts),
                v
            );
        }
    }
    out.push_str("\n]}");
    out
}

/// Renders a snapshot as a flat, line-oriented metrics dump: every
/// counter, then spans/phases/events aggregated by name. Stable ordering
/// (counters by index, names lexicographically) so dumps diff cleanly.
pub fn metrics_text(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("# omen-trace metrics\n");
    for c in Counter::ALL {
        let _ = writeln!(out, "counter {} {}", c.name(), snap.counters[c.index()]);
    }

    let mut spans: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
    for s in &snap.spans {
        let e = spans.entry(s.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
    }
    for (name, (count, total)) in spans {
        let _ = writeln!(out, "span {name} count {count} total_ns {total}");
    }

    let mut phases: BTreeMap<&str, (usize, u64, [u64; NCOUNTERS])> = BTreeMap::new();
    for p in &snap.phases {
        let e = phases.entry(p.name).or_insert((0, 0, [0; NCOUNTERS]));
        e.0 += 1;
        e.1 += p.dur_ns;
        for i in 0..NCOUNTERS {
            e.2[i] += p.deltas[i];
        }
    }
    for (name, (count, total, deltas)) in phases {
        let _ = write!(out, "phase {name} count {count} total_ns {total}");
        for c in Counter::ALL {
            if deltas[c.index()] != 0 {
                let _ = write!(out, " {} {}", c.name(), deltas[c.index()]);
            }
        }
        out.push('\n');
    }

    let mut events: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &snap.events {
        *events.entry(e.name).or_insert(0) += 1;
    }
    for (name, count) in events {
        let _ = writeln!(out, "event {name} count {count}");
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral f64 without a dot; keep it valid JSON
        // either way (it already is) but normalize -0.
        if s == "-0" {
            "0".to_string()
        } else {
            s
        }
    } else {
        // JSON has no NaN/Inf; null keeps the document well-formed.
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One `ph:"X"` duration event extracted by [`validate_chrome_trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanWindow {
    /// Event name.
    pub name: String,
    /// Thread id (`tid`), 0 when absent.
    pub tid: f64,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// Summary a successful [`validate_chrome_trace`] returns.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Occurrences of each `ph:"X"` (span/phase) name, sorted by name.
    pub span_names: Vec<(String, usize)>,
    /// Every duration event's time window, in document order.
    pub windows: Vec<SpanWindow>,
}

impl ChromeTraceStats {
    /// Occurrences of duration events named `name`.
    pub fn spans_named(&self, name: &str) -> usize {
        self.span_names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Maximum wall-clock overlap (µs) between any duration event named
    /// `a` and any named `b` on *different* threads — the stream
    /// executor's gf/sse concurrency, measured straight off the
    /// exported artifact.
    pub fn overlap_us(&self, a: &str, b: &str) -> f64 {
        let mut best: f64 = 0.0;
        for wa in self.windows.iter().filter(|w| w.name == a) {
            for wb in self.windows.iter().filter(|w| w.name == b) {
                if wa.tid == wb.tid {
                    continue;
                }
                let lo = wa.ts_us.max(wb.ts_us);
                let hi = (wa.ts_us + wa.dur_us).min(wb.ts_us + wb.dur_us);
                best = best.max(hi - lo);
            }
        }
        best
    }
}

/// Validates a chrome-trace document produced by [`chrome_trace_json`]
/// (or any conforming tool): the text must parse as JSON, carry a
/// `traceEvents` array, and every entry must be an object with a string
/// `name` and `ph`. Returns per-name counts of duration events so
/// callers can assert specific stages were traced.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(text)?;
    let json::Value::Object(fields) = &doc else {
        return Err("top level is not an object".into());
    };
    let Some(events) = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
    else {
        return Err("missing traceEvents".into());
    };
    let json::Value::Array(items) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut windows = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let json::Value::Object(fields) = item else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(json::Value::String(name)) = get("name") else {
            return Err(format!("traceEvents[{i}] has no string name"));
        };
        let Some(json::Value::String(ph)) = get("ph") else {
            return Err(format!("traceEvents[{i}] has no string ph"));
        };
        if ph == "X" {
            *counts.entry(name.clone()).or_insert(0) += 1;
            let num = |key: &str| match get(key) {
                Some(json::Value::Number(v)) => *v,
                _ => 0.0,
            };
            windows.push(SpanWindow {
                name: name.clone(),
                tid: num("tid"),
                ts_us: num("ts"),
                dur_us: num("dur"),
            });
        }
    }
    Ok(ChromeTraceStats {
        events: items.len(),
        span_names: counts.into_iter().collect(),
        windows,
    })
}

/// Minimal recursive-descent JSON parser — just enough to validate
/// exported traces without external dependencies. Not a general-purpose
/// implementation: numbers are parsed as `f64` and surrogate escapes are
/// accepted without pairing checks.
mod json {
    pub enum Value {
        Null,
        // The validator only inspects strings/arrays/objects, but the
        // parsed payloads keep the parser a faithful JSON reader.
        #[allow(dead_code)]
        Bool(bool),
        #[allow(dead_code)]
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true").map(|_| Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false").map(|_| Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null").map(|_| Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            _ => Err(format!("unexpected byte at {}", *pos)),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid utf-8".to_string());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            if *pos + 4 >= b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                _ => {
                    out.push(b[*pos]);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventRecord, PhaseRecord, SpanRecord};

    fn sample_snapshot() -> TraceSnapshot {
        let mut counters = [0u64; NCOUNTERS];
        counters[Counter::GemmFlops.index()] = 4096;
        counters[Counter::BornIterations.index()] = 6;
        let mut deltas = [0u64; NCOUNTERS];
        deltas[Counter::GemmFlops.index()] = 4096;
        TraceSnapshot {
            spans: vec![
                SpanRecord {
                    name: "gf_electrons",
                    tid: 1,
                    depth: 1,
                    start_ns: 1_000,
                    dur_ns: 5_000,
                },
                SpanRecord {
                    name: "born_iteration",
                    tid: 1,
                    depth: 0,
                    start_ns: 500,
                    dur_ns: 9_000,
                },
            ],
            events: vec![EventRecord {
                name: "convergence",
                tid: 1,
                ts_ns: 9_400,
                a: 1.0,
                b: 2.5e-7,
            }],
            phases: vec![PhaseRecord {
                name: "gf_phase",
                tid: 1,
                start_ns: 900,
                dur_ns: 6_000,
                deltas,
            }],
            counters,
        }
    }

    #[test]
    fn chrome_export_validates_and_counts_spans() {
        let text = chrome_trace_json(&sample_snapshot());
        let stats = validate_chrome_trace(&text).expect("exporter output must validate");
        // 2 spans + 1 phase + 1 instant + 2 non-zero counters.
        assert_eq!(stats.events, 6);
        assert_eq!(stats.spans_named("gf_electrons"), 1);
        assert_eq!(stats.spans_named("gf_phase"), 1);
        assert_eq!(stats.spans_named("born_iteration"), 1);
        assert_eq!(stats.spans_named("absent"), 0);
    }

    #[test]
    fn windows_and_overlap_come_from_the_artifact() {
        // Two phases on different threads overlapping for 3ms, plus a
        // same-thread pair that must not count.
        let text = r#"{"traceEvents":[
         {"name":"gf_phase","ph":"X","pid":1,"tid":2,"ts":0.0,"dur":5000.0},
         {"name":"sse_phase","ph":"X","pid":1,"tid":3,"ts":2000.0,"dur":4000.0},
         {"name":"sse_phase","ph":"X","pid":1,"tid":2,"ts":0.0,"dur":5000.0}
        ]}"#;
        let stats = validate_chrome_trace(text).expect("well-formed");
        assert_eq!(stats.windows.len(), 3);
        assert_eq!(stats.overlap_us("gf_phase", "sse_phase"), 3000.0);
        assert_eq!(stats.overlap_us("gf_phase", "absent"), 0.0);
    }

    #[test]
    fn chrome_export_of_empty_snapshot_validates() {
        let text = chrome_trace_json(&TraceSnapshot::default());
        let stats = validate_chrome_trace(&text).expect("empty trace is still well-formed");
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn metrics_text_lists_counters_and_aggregates() {
        let text = metrics_text(&sample_snapshot());
        assert!(text.contains("counter gemm_flops 4096"));
        assert!(text.contains("counter born_iterations 6"));
        assert!(text.contains("span gf_electrons count 1 total_ns 5000"));
        assert!(text.contains("phase gf_phase count 1 total_ns 6000 gemm_flops 4096"));
        assert!(text.contains("event convergence count 1"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace("[1,2,3]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(3.0), "3");
    }
}
