//! # omen-trace
//!
//! Zero-dependency structured tracing for the whole stack: RAII timing
//! spans, typed performance counters, per-iteration event records, and a
//! process-global registry that is a true no-op when disarmed.
//!
//! The paper's central argument (arXiv 1912.10024) is data-centric: you
//! optimize an extreme-scale solver by knowing where FLOPs, bytes, and
//! communication volume actually go, per dataflow stage. `omen-perf`
//! encodes the *predicted* budgets; this crate records what *happened*,
//! so [`omen_perf::attribution`](../omen_perf/attribution) can join the
//! two. The same discipline as `omen-fault` applies: the hooks are
//! compiled into every build but cost ~one relaxed atomic load until the
//! registry is armed, so instrumentation can live inside `gemm` without
//! taxing the warm path (a `perf_check` floor gates the disarmed
//! overhead at <2% of a warm sweep point).
//!
//! ## Arming
//!
//! | mechanism         | effect                                          |
//! |-------------------|-------------------------------------------------|
//! | `OMEN_TRACE=1`    | arms the registry at first use                  |
//! | [`arm`]           | arms programmatically (benches, tests)          |
//! | [`disarm`]        | disarms programmatically                        |
//! | [`rearm_from_env`]| restores whatever `OMEN_TRACE` dictates         |
//!
//! ## Recording
//!
//! * [`span!`] opens an RAII span; the guard's drop records name, thread,
//!   nesting depth, start, and duration. Guards drop during unwinding, so
//!   spans stay balanced across `catch_unwind` retry boundaries.
//! * [`add`] bumps a typed [`Counter`] (process-global atomics).
//! * [`event`] / [`event2`] record instantaneous samples (e.g. the
//!   convergence residual of one Born iteration).
//! * [`PhaseGuard`] snapshots all counters on entry and records the
//!   per-counter delta plus wall time on drop — the measured side of the
//!   per-stage attribution report.
//!
//! [`snapshot`] clones everything recorded so far; the `export` module
//! renders it as chrome://tracing JSON (loadable in Perfetto) or a flat
//! metrics text dump.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

mod export;

pub use export::{chrome_trace_json, metrics_text, validate_chrome_trace, ChromeTraceStats};

/// A typed performance counter.
///
/// Counters are process-global relaxed atomics; [`add`] is a no-op while
/// the registry is disarmed. The set covers the quantities the paper's
/// performance model predicts (FLOPs per stage, bytes packed and
/// communicated) plus the sweep-service accounting that [`PhaseGuard`]
/// and `omen-serve` attribute per job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Dense complex GEMM invocations (every `omen-linalg` entry point
    /// funnels through one counted call).
    GemmCalls,
    /// Complex FLOPs executed by dense GEMM (`8·m·n·k` per call).
    GemmFlops,
    /// Batched split-complex SBSMM invocations.
    SbsmmCalls,
    /// Complex FLOPs executed by SBSMM (`8·m·n·k·batch` per call).
    SbsmmFlops,
    /// FLOPs reported by the scattering self-energy kernels.
    SseFlops,
    /// Bytes staged into packed split-complex panels by the SBSMM paths.
    BytesPacked,
    /// Bytes moved through the simulated MPI layer (ledger-mirrored).
    BytesCommunicated,
    /// Collective/point-to-point calls issued on the simulated MPI layer.
    CommCalls,
    /// Self-consistent Born iterations completed.
    BornIterations,
    /// Sweep points solved to convergence.
    PointsSolved,
    /// Sweep points that converged from a warm start.
    WarmPoints,
    /// Born iterations saved by warm starts versus the cold baseline.
    IterationsSaved,
    /// Warm-start cache hits.
    CacheHits,
    /// Warm-start cache misses.
    CacheMisses,
    /// Point attempts retried after a failure.
    Retries,
    /// Warm attempts that fell back to a cold solve.
    ColdFallbacks,
    /// Warm-start donors quarantined after a failed warm solve.
    Quarantined,
    /// Points restored from a checkpoint journal instead of recomputed.
    ResumedPoints,
    /// Tasks executed by the `omen-sched` DAG runtime.
    SchedTasks,
    /// DAG/stream tasks isolated after a panic (the run continues).
    SchedPanics,
}

/// Number of [`Counter`] variants (the registry's array width).
pub const NCOUNTERS: usize = 20;

impl Counter {
    /// Every counter, in [`Counter::index`] order.
    pub const ALL: [Counter; NCOUNTERS] = [
        Counter::GemmCalls,
        Counter::GemmFlops,
        Counter::SbsmmCalls,
        Counter::SbsmmFlops,
        Counter::SseFlops,
        Counter::BytesPacked,
        Counter::BytesCommunicated,
        Counter::CommCalls,
        Counter::BornIterations,
        Counter::PointsSolved,
        Counter::WarmPoints,
        Counter::IterationsSaved,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::Retries,
        Counter::ColdFallbacks,
        Counter::Quarantined,
        Counter::ResumedPoints,
        Counter::SchedTasks,
        Counter::SchedPanics,
    ];

    /// Stable snake_case name (used by the exporters and wire format).
    pub fn name(self) -> &'static str {
        match self {
            Counter::GemmCalls => "gemm_calls",
            Counter::GemmFlops => "gemm_flops",
            Counter::SbsmmCalls => "sbsmm_calls",
            Counter::SbsmmFlops => "sbsmm_flops",
            Counter::SseFlops => "sse_flops",
            Counter::BytesPacked => "bytes_packed",
            Counter::BytesCommunicated => "bytes_communicated",
            Counter::CommCalls => "comm_calls",
            Counter::BornIterations => "born_iterations",
            Counter::PointsSolved => "points_solved",
            Counter::WarmPoints => "warm_points",
            Counter::IterationsSaved => "iterations_saved",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::Retries => "retries",
            Counter::ColdFallbacks => "cold_fallbacks",
            Counter::Quarantined => "quarantined",
            Counter::ResumedPoints => "resumed_points",
            Counter::SchedTasks => "sched_tasks",
            Counter::SchedPanics => "sched_panics",
        }
    }

    /// Stable dense index into counter arrays; doubles as the wire tag
    /// for registry snapshots, so existing variants must never be
    /// renumbered (append-only).
    pub fn index(self) -> usize {
        match self {
            Counter::GemmCalls => 0,
            Counter::GemmFlops => 1,
            Counter::SbsmmCalls => 2,
            Counter::SbsmmFlops => 3,
            Counter::SseFlops => 4,
            Counter::BytesPacked => 5,
            Counter::BytesCommunicated => 6,
            Counter::CommCalls => 7,
            Counter::BornIterations => 8,
            Counter::PointsSolved => 9,
            Counter::WarmPoints => 10,
            Counter::IterationsSaved => 11,
            Counter::CacheHits => 12,
            Counter::CacheMisses => 13,
            Counter::Retries => 14,
            Counter::ColdFallbacks => 15,
            Counter::Quarantined => 16,
            Counter::ResumedPoints => 17,
            Counter::SchedTasks => 18,
            Counter::SchedPanics => 19,
        }
    }

    /// Inverse of [`Counter::index`]; `None` for indices this build does
    /// not know (a newer peer's wire snapshot is decoded by skipping
    /// them).
    pub fn from_index(i: usize) -> Option<Counter> {
        Counter::ALL.get(i).copied()
    }
}

// --- arming ------------------------------------------------------------

/// 0 = uninitialized, 1 = disarmed, 2 = armed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// True when the registry records anything. The hot path is a single
/// relaxed atomic load; the environment (`OMEN_TRACE`) is consulted once
/// on first call.
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("OMEN_TRACE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    ARMED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Arms the registry process-wide, regardless of `OMEN_TRACE`.
pub fn arm() {
    ARMED.store(2, Ordering::Relaxed);
}

/// Disarms the registry process-wide. Already-open spans still record on
/// drop; new ones become no-ops.
pub fn disarm() {
    ARMED.store(1, Ordering::Relaxed);
}

/// Restores the armed state `OMEN_TRACE` dictates (test/bench cleanup
/// after an explicit [`arm`]/[`disarm`]).
pub fn rearm_from_env() {
    ARMED.store(0, Ordering::Relaxed);
}

// --- counters ----------------------------------------------------------

static COUNTERS: [AtomicU64; NCOUNTERS] = [const { AtomicU64::new(0) }; NCOUNTERS];

/// Adds `v` to `counter` when armed; a single relaxed load otherwise.
#[inline]
pub fn add(counter: Counter, v: u64) {
    if armed() {
        COUNTERS[counter.index()].fetch_add(v, Ordering::Relaxed);
    }
}

/// Adds to two counters behind one armed check (the call+flops pair the
/// kernel entry points record).
#[inline]
pub fn add2(c1: Counter, v1: u64, c2: Counter, v2: u64) {
    if armed() {
        COUNTERS[c1.index()].fetch_add(v1, Ordering::Relaxed);
        COUNTERS[c2.index()].fetch_add(v2, Ordering::Relaxed);
    }
}

/// Current value of one registry counter.
pub fn counter(c: Counter) -> u64 {
    COUNTERS[c.index()].load(Ordering::Relaxed)
}

/// Snapshot of all registry counters, indexed by [`Counter::index`].
pub fn counters() -> [u64; NCOUNTERS] {
    let mut out = [0u64; NCOUNTERS];
    for (slot, atomic) in out.iter_mut().zip(COUNTERS.iter()) {
        *slot = atomic.load(Ordering::Relaxed);
    }
    out
}

/// A plain, local set of counter values: per-job accounting in
/// `omen-serve` and the payload of wire-format registry snapshots.
///
/// [`CounterSet::record`] is the bridge to the global registry: it bumps
/// the local set *and* forwards to the process-global counters when the
/// registry is armed, making per-job metrics a view over the registry
/// rather than a parallel bookkeeping scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; NCOUNTERS],
}

impl CounterSet {
    /// An all-zero set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Current local value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c.index()]
    }

    /// Overwrites the local value of `c` (wire decoding; does not touch
    /// the global registry).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c.index()] = v;
    }

    /// Adds to the local value only (aggregation, decoding).
    pub fn add(&mut self, c: Counter, v: u64) {
        self.values[c.index()] = self.values[c.index()].saturating_add(v);
    }

    /// Adds to the local value *and* the global registry (when armed):
    /// the instrumented increment used on live paths.
    pub fn record(&mut self, c: Counter, v: u64) {
        self.add(c, v);
        add(c, v);
    }

    /// The non-zero `(counter, value)` entries, in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(move |&c| (c, self.get(c)))
            .filter(|&(_, v)| v != 0)
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

// --- clock and thread identity -----------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use of the clock).
/// Monotonic; shared by spans, phases, and events.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// The calling thread's current span nesting depth. Returns to its
/// pre-entry value after every guard drop — including drops during
/// unwinding, which is what keeps span trees balanced across
/// `catch_unwind` retry boundaries.
pub fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

// --- record store ------------------------------------------------------

/// One completed timing span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (the literal passed to [`span!`]).
    pub name: &'static str,
    /// Trace-local thread id (assigned in first-use order, starting at 1).
    pub tid: u64,
    /// Nesting depth at entry on the recording thread (0 = outermost).
    pub depth: u32,
    /// Start time, [`now_ns`] clock.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

/// One instantaneous sample (e.g. a per-iteration convergence residual).
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Trace-local thread id.
    pub tid: u64,
    /// Sample time, [`now_ns`] clock.
    pub ts_ns: u64,
    /// First numeric argument (meaning is event-specific).
    pub a: f64,
    /// Second numeric argument (0.0 when unused).
    pub b: f64,
}

/// One completed phase: wall time plus the delta of every registry
/// counter across the phase window. Exact per-stage attribution for a
/// single simulation at a time (counters are process-global, so the
/// deltas include work rayon workers did on the phase's behalf).
#[derive(Clone, Debug)]
pub struct PhaseRecord {
    /// Phase name.
    pub name: &'static str,
    /// Trace-local thread id of the phase owner.
    pub tid: u64,
    /// Start time, [`now_ns`] clock.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Per-counter increments observed during the phase, indexed by
    /// [`Counter::index`].
    pub deltas: [u64; NCOUNTERS],
}

#[derive(Default)]
struct Store {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    phases: Vec<PhaseRecord>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

fn lock_store() -> MutexGuard<'static, Store> {
    // Survive poisoning: a panicking span guard must still record, and
    // chaos tests unwind through armed spans on purpose.
    store().lock().unwrap_or_else(|e| e.into_inner())
}

// --- spans -------------------------------------------------------------

/// RAII timing span; construct via [`span!`] (or [`SpanGuard::enter`]).
/// Disarmed guards are inert. The drop — which runs during unwinding too
/// — restores the thread's depth and records the span.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    tid: u64,
    depth: u32,
    start_ns: u64,
}

impl SpanGuard {
    /// Opens a span named `name` when the registry is armed; returns an
    /// inert guard otherwise.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !armed() {
            return SpanGuard { live: None };
        }
        let tid = tid();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            live: Some(LiveSpan {
                name,
                tid,
                depth,
                start_ns: now_ns(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = now_ns();
            lock_store().spans.push(SpanRecord {
                name: live.name,
                tid: live.tid,
                depth: live.depth,
                start_ns: live.start_ns,
                dur_ns: end.saturating_sub(live.start_ns),
            });
        }
    }
}

/// Opens an RAII timing span: `let _g = omen_trace::span!("gf_phase");`.
/// Expands to an expression returning a [`SpanGuard`]; the span closes
/// when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

// --- events ------------------------------------------------------------

/// Records an instantaneous sample with one numeric argument.
#[inline]
pub fn event(name: &'static str, a: f64) {
    event2(name, a, 0.0);
}

/// Records an instantaneous sample with two numeric arguments (e.g.
/// iteration index and residual).
#[inline]
pub fn event2(name: &'static str, a: f64, b: f64) {
    if !armed() {
        return;
    }
    let rec = EventRecord {
        name,
        tid: tid(),
        ts_ns: now_ns(),
        a,
        b,
    };
    lock_store().events.push(rec);
}

// --- phases ------------------------------------------------------------

/// RAII phase scope: snapshots every registry counter on entry and
/// records the per-counter delta plus wall time on drop. This is the
/// measured side of per-stage attribution — wrap the GF solve, the SSE
/// kernel, or a communication plan in a phase and the record says how
/// many FLOPs/bytes that stage consumed.
#[must_use = "a phase measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct PhaseGuard {
    live: Option<LivePhase>,
}

struct LivePhase {
    name: &'static str,
    tid: u64,
    start_ns: u64,
    base: [u64; NCOUNTERS],
}

impl PhaseGuard {
    /// Opens a phase named `name` when the registry is armed; inert
    /// otherwise.
    #[inline]
    pub fn enter(name: &'static str) -> PhaseGuard {
        if !armed() {
            return PhaseGuard { live: None };
        }
        PhaseGuard {
            live: Some(LivePhase {
                name,
                tid: tid(),
                start_ns: now_ns(),
                base: counters(),
            }),
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end = now_ns();
            let now = counters();
            let mut deltas = [0u64; NCOUNTERS];
            for i in 0..NCOUNTERS {
                deltas[i] = now[i].saturating_sub(live.base[i]);
            }
            lock_store().phases.push(PhaseRecord {
                name: live.name,
                tid: live.tid,
                start_ns: live.start_ns,
                dur_ns: end.saturating_sub(live.start_ns),
                deltas,
            });
        }
    }
}

// --- snapshot ----------------------------------------------------------

/// Everything the registry has recorded: completed spans, events, phase
/// records, and the current counter values. Clonable, inspectable, and
/// the input to both exporters.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Instantaneous events, in record order.
    pub events: Vec<EventRecord>,
    /// Completed phase records, in completion order.
    pub phases: Vec<PhaseRecord>,
    /// Registry counter values at snapshot time, by [`Counter::index`].
    pub counters: [u64; NCOUNTERS],
}

impl TraceSnapshot {
    /// Value of one counter at snapshot time.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Sums `c`'s deltas over every phase record named `name`.
    pub fn phase_delta(&self, name: &str, c: Counter) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.deltas[c.index()])
            .sum()
    }

    /// Total wall nanoseconds of every phase record named `name`.
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.dur_ns)
            .sum()
    }
}

/// Clones everything recorded so far.
pub fn snapshot() -> TraceSnapshot {
    let store = lock_store();
    TraceSnapshot {
        spans: store.spans.clone(),
        events: store.events.clone(),
        phases: store.phases.clone(),
        counters: counters(),
    }
}

/// Clears all recorded spans/events/phases and zeroes every counter.
/// Affects the whole process; callers sharing a binary must coordinate
/// (tests serialize on a lock, like the chaos fault-plan tests).
pub fn reset() {
    let mut store = lock_store();
    store.spans.clear();
    store.events.clear();
    store.phases.clear();
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming and the record store are process-global; every test that
    /// touches them holds this lock (same pattern as the chaos tests'
    /// fault-plan lock).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

    fn armed_registry() -> Armed {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        reset();
        Armed(guard)
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            reset();
            rearm_from_env();
        }
    }

    #[test]
    fn counters_accumulate_only_when_armed() {
        let _armed = armed_registry();
        add(Counter::GemmFlops, 10);
        add2(Counter::GemmCalls, 1, Counter::GemmFlops, 5);
        assert_eq!(counter(Counter::GemmFlops), 15);
        assert_eq!(counter(Counter::GemmCalls), 1);

        disarm();
        add(Counter::GemmFlops, 100);
        assert_eq!(
            counter(Counter::GemmFlops),
            15,
            "disarmed add must not count"
        );
        arm();
    }

    #[test]
    fn spans_record_name_depth_and_duration() {
        let _armed = armed_registry();
        {
            let _outer = span!("outer");
            let _inner = span!("inner");
        }
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner drops first.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].depth, 1);
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].depth, 0);
        assert!(snap.spans[1].dur_ns >= snap.spans[0].dur_ns);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        reset();
        {
            let _s = span!("ghost");
            event("ghost", 1.0);
            let _p = PhaseGuard::enter("ghost");
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.phases.is_empty());
        rearm_from_env();
        drop(guard);
    }

    #[test]
    fn unwinding_restores_depth_and_records_spans() {
        let _armed = armed_registry();
        let before = current_depth();
        let result = std::panic::catch_unwind(|| {
            let _outer = span!("unwind_outer");
            let _inner = span!("unwind_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(current_depth(), before, "unwind must pop every span");
        let snap = snapshot();
        assert!(snap.spans.iter().any(|s| s.name == "unwind_outer"));
        assert!(snap.spans.iter().any(|s| s.name == "unwind_inner"));
    }

    #[test]
    fn phase_records_counter_deltas() {
        let _armed = armed_registry();
        add(Counter::GemmFlops, 7); // outside the phase
        {
            let _p = PhaseGuard::enter("work");
            add(Counter::GemmFlops, 35);
            add(Counter::BytesPacked, 64);
        }
        let snap = snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phase_delta("work", Counter::GemmFlops), 35);
        assert_eq!(snap.phase_delta("work", Counter::BytesPacked), 64);
        assert_eq!(snap.phase_delta("work", Counter::SseFlops), 0);
        assert_eq!(snap.counter(Counter::GemmFlops), 42);
    }

    #[test]
    fn events_carry_two_arguments() {
        let _armed = armed_registry();
        event2("residual", 3.0, 1.5e-6);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "residual");
        assert_eq!(snap.events[0].a, 3.0);
        assert_eq!(snap.events[0].b, 1.5e-6);
    }

    #[test]
    fn counter_index_roundtrips() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}: ALL order must match index()", c.name());
            assert_eq!(Counter::from_index(i), Some(*c));
        }
        assert_eq!(Counter::from_index(NCOUNTERS), None);
        // Names are unique (exporters key on them).
        for a in Counter::ALL {
            assert_eq!(
                Counter::ALL.iter().filter(|b| b.name() == a.name()).count(),
                1
            );
        }
    }

    #[test]
    fn counter_set_records_locally_and_globally() {
        let _armed = armed_registry();
        let mut set = CounterSet::new();
        assert!(set.is_empty());
        set.record(Counter::Retries, 2);
        set.add(Counter::CacheHits, 3); // local only
        assert_eq!(set.get(Counter::Retries), 2);
        assert_eq!(set.get(Counter::CacheHits), 3);
        assert_eq!(counter(Counter::Retries), 2);
        assert_eq!(counter(Counter::CacheHits), 0, "add() must stay local");
        let entries: Vec<_> = set.entries().collect();
        assert_eq!(
            entries,
            vec![(Counter::CacheHits, 3), (Counter::Retries, 2)]
        );
        set.set(Counter::Retries, 9);
        assert_eq!(set.get(Counter::Retries), 9);
        assert_eq!(counter(Counter::Retries), 2, "set() must stay local");
    }
}
