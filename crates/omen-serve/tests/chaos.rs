//! Chaos acceptance tests: seeded fault injection against real sweeps.
//!
//! The contract under test: with worker panics, NaN poisoning, donor
//! corruption, and storage faults injected at a *fixed seed*, a sweep
//! job still completes, its observables match the fault-free run within
//! the solver tolerance, and every recovery decision is visible in
//! [`JobMetrics`]. The fault plan is process-global, so each test holds
//! a lock while its plan is armed and restores the environment plan
//! (what a chaos CI leg sets via `OMEN_FAULT_SEED`) on exit — including
//! on panic.

use omen_fault::{FaultPlan, FaultSite};
use omen_serve::{JobResult, ServerConfig, SweepServer, SweepSpec};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Installs `plan` process-wide until dropped, then restores whatever
/// the environment dictates.
struct ArmedPlan(#[allow(dead_code)] MutexGuard<'static, ()>);

fn arm(plan: FaultPlan) -> ArmedPlan {
    let guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    omen_fault::install(plan);
    ArmedPlan(guard)
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        omen_fault::install(FaultPlan::from_env());
    }
}

fn run_sweep(spec: &SweepSpec, max_attempts: u32, dir: Option<PathBuf>) -> JobResult {
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        max_attempts,
        checkpoint_dir: dir,
        ..ServerConfig::default()
    });
    server
        .submit(spec.clone())
        .expect("valid sweep")
        .wait()
        .expect("sweep reaches Completed despite injected faults")
}

#[test]
fn chaotic_sweep_matches_fault_free_observables() {
    let spec = SweepSpec::finfet_bias(8);
    let tolerance = spec.base.tolerance;

    // Fault-free reference.
    let clean = {
        let _armed = arm(FaultPlan::disabled());
        run_sweep(&spec, 4, None)
    };
    assert_eq!(clean.points.len(), 8);
    assert_eq!(clean.metrics.retries, 0);

    // The same sweep under a seeded storm of every fault kind.
    let chaotic = {
        let _armed = arm(FaultPlan::seeded(7, 0.0)
            .with_rate(FaultSite::WorkerPanic, 0.15)
            .with_rate(FaultSite::NanPoison, 0.15)
            .with_rate(FaultSite::DonorCorrupt, 0.15)
            .with_rate(FaultSite::FrameCorrupt, 0.25));
        run_sweep(&spec, 6, None)
    };

    assert_eq!(chaotic.points.len(), 8);
    // Seed 7 at these rates must actually exercise the machinery —
    // otherwise this test silently degenerates into the clean run.
    assert!(
        chaotic.metrics.retries > 0,
        "seed 7 injected no faults: {:?}",
        chaotic.metrics
    );
    // Every point still converged to the same fixed point: retried and
    // cold-fallback solves answer the same self-consistent equation.
    for (c, f) in chaotic.points.iter().zip(&clean.points) {
        assert_eq!(c.value.to_bits(), f.value.to_bits());
        let rel = ((c.current - f.current) / f.current).abs();
        assert!(
            rel < 10.0 * tolerance,
            "chaotic current {} vs clean {} at {} (rel {rel})",
            c.current,
            f.current,
            c.value
        );
    }
}

#[test]
fn corrupted_donors_are_quarantined_and_sweep_recovers() {
    // Every warm attempt receives a poisoned donor (rate 1.0 fires
    // regardless of seed): the solve must fail typed, the donor must be
    // quarantined, and the cold retry must still converge.
    let spec = SweepSpec::finfet_bias_quick();
    let result = {
        let _armed = arm(FaultPlan::seeded(3, 0.0).with_rate(FaultSite::DonorCorrupt, 1.0));
        run_sweep(&spec, 4, None)
    };
    assert_eq!(result.points.len(), 4);
    assert!(result.points.iter().all(|p| p.current > 0.0));
    // No point ends up warm: every donor it was offered was corrupt.
    assert!(result.points.iter().all(|p| !p.warm));
    let m = result.metrics;
    assert!(m.quarantined >= 1, "corrupt donors must be quarantined");
    assert!(m.cold_fallbacks >= 1);
    assert!(m.retries >= 1);
}

#[test]
fn checkpoint_resume_survives_storage_faults() {
    // Half of all journal appends are bit-flipped. A resumed job must
    // treat damaged records as missing — recompute those points — and
    // still produce the full, correct sweep.
    let dir = std::env::temp_dir().join(format!("omen-serve-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::finfet_bias_quick();

    let _armed = arm(FaultPlan::seeded(11, 0.0).with_rate(FaultSite::FrameCorrupt, 0.5));
    let first = run_sweep(&spec, 4, Some(dir.clone()));
    let second = run_sweep(&spec, 4, Some(dir.clone()));

    assert_eq!(second.points.len(), 4);
    assert!(second.metrics.resumed_points <= 4);
    for (a, b) in second.points.iter().zip(&first.points) {
        let rel = ((a.current - b.current) / b.current).abs();
        assert!(
            rel < 10.0 * spec.base.tolerance,
            "resumed/recomputed current {} vs first run {} (rel {rel})",
            a.current,
            b.current
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
