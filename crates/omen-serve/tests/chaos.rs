//! Chaos acceptance tests: seeded fault injection against real sweeps.
//!
//! The contract under test: with worker panics, NaN poisoning, donor
//! corruption, and storage faults injected at a *fixed seed*, a sweep
//! job still completes, its observables match the fault-free run within
//! the solver tolerance, and every recovery decision is visible in
//! [`JobMetrics`]. The fault plan is process-global, so each test holds
//! a lock while its plan is armed and restores the environment plan
//! (what a chaos CI leg sets via `OMEN_FAULT_SEED`) on exit — including
//! on panic.

use omen_fault::{FaultPlan, FaultSite};
use omen_serve::{JobResult, ServerConfig, SweepServer, SweepSpec};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Installs `plan` process-wide until dropped, then restores whatever
/// the environment dictates.
struct ArmedPlan(#[allow(dead_code)] MutexGuard<'static, ()>);

fn arm(plan: FaultPlan) -> ArmedPlan {
    let guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    omen_fault::install(plan);
    ArmedPlan(guard)
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        omen_fault::install(FaultPlan::from_env());
    }
}

fn run_sweep(spec: &SweepSpec, max_attempts: u32, dir: Option<PathBuf>) -> JobResult {
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        max_attempts,
        checkpoint_dir: dir,
        ..ServerConfig::default()
    });
    server
        .submit(spec.clone())
        .expect("valid sweep")
        .wait()
        .expect("sweep reaches Completed despite injected faults")
}

#[test]
fn chaotic_sweep_matches_fault_free_observables() {
    let spec = SweepSpec::finfet_bias(8);
    let tolerance = spec.base.tolerance;

    // Fault-free reference.
    let clean = {
        let _armed = arm(FaultPlan::disabled());
        run_sweep(&spec, 4, None)
    };
    assert_eq!(clean.points.len(), 8);
    assert_eq!(clean.metrics.retries, 0);

    // The same sweep under a seeded storm of every fault kind.
    let chaotic = {
        let _armed = arm(FaultPlan::seeded(7, 0.0)
            .with_rate(FaultSite::WorkerPanic, 0.15)
            .with_rate(FaultSite::NanPoison, 0.15)
            .with_rate(FaultSite::DonorCorrupt, 0.15)
            .with_rate(FaultSite::FrameCorrupt, 0.25));
        run_sweep(&spec, 6, None)
    };

    assert_eq!(chaotic.points.len(), 8);
    // Seed 7 at these rates must actually exercise the machinery —
    // otherwise this test silently degenerates into the clean run.
    assert!(
        chaotic.metrics.retries > 0,
        "seed 7 injected no faults: {:?}",
        chaotic.metrics
    );
    // Every point still converged to the same fixed point: retried and
    // cold-fallback solves answer the same self-consistent equation.
    for (c, f) in chaotic.points.iter().zip(&clean.points) {
        assert_eq!(c.value.to_bits(), f.value.to_bits());
        let rel = ((c.current - f.current) / f.current).abs();
        assert!(
            rel < 10.0 * tolerance,
            "chaotic current {} vs clean {} at {} (rel {rel})",
            c.current,
            f.current,
            c.value
        );
    }
}

#[test]
fn corrupted_donors_are_quarantined_and_sweep_recovers() {
    // Every warm attempt receives a poisoned donor (rate 1.0 fires
    // regardless of seed): the solve must fail typed, the donor must be
    // quarantined, and the cold retry must still converge.
    let spec = SweepSpec::finfet_bias_quick();
    let result = {
        let _armed = arm(FaultPlan::seeded(3, 0.0).with_rate(FaultSite::DonorCorrupt, 1.0));
        run_sweep(&spec, 4, None)
    };
    assert_eq!(result.points.len(), 4);
    assert!(result.points.iter().all(|p| p.current > 0.0));
    // No point ends up warm: every donor it was offered was corrupt.
    assert!(result.points.iter().all(|p| !p.warm));
    let m = result.metrics;
    assert!(m.quarantined >= 1, "corrupt donors must be quarantined");
    assert!(m.cold_fallbacks >= 1);
    assert!(m.retries >= 1);
}

#[test]
fn spans_stay_balanced_across_panic_retries() {
    use omen_trace as trace;

    // The trace registry is process-global like the fault plan, so the
    // same lock serializes this test against the other chaos runs; the
    // guard re-arms from the environment even when an assertion panics.
    let _armed = arm(FaultPlan::seeded(7, 0.0).with_rate(FaultSite::WorkerPanic, 0.4));
    struct ArmedTrace;
    impl Drop for ArmedTrace {
        fn drop(&mut self) {
            trace::reset();
            trace::rearm_from_env();
        }
    }
    trace::reset();
    trace::arm();
    let _traced = ArmedTrace;

    let spec = SweepSpec::finfet_bias_quick();
    let result = run_sweep(&spec, 6, None);
    let snap = trace::snapshot();

    assert!(
        result.metrics.retries > 0,
        "seed 7 must panic at least once: {:?}",
        result.metrics
    );
    let spans = |name: &str| {
        snap.spans
            .iter()
            .filter(move |s| s.name == name)
            .collect::<Vec<_>>()
    };
    assert_eq!(spans("sweep_job").len(), 1);
    assert_eq!(spans("sweep_point").len(), result.points.len());
    // One attempt span per attempt: a panicking attempt still records
    // its span when the guard drops during unwinding.
    assert_eq!(
        spans("point_attempt").len(),
        result.points.len() + result.metrics.retries as usize,
        "every attempt, including panicked ones, must close its span"
    );

    // Unwinding through armed spans must not corrupt the span tree: on
    // any one thread, two recorded spans are either disjoint in time or
    // one contains the other — a partial overlap would mean a panic
    // skipped a guard and left the stack unbalanced.
    for (i, a) in snap.spans.iter().enumerate() {
        for b in &snap.spans[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
            let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
            let partial = (a0 < b0 && b0 < a1 && a1 < b1) || (b0 < a0 && a0 < b1 && b1 < a1);
            assert!(
                !partial,
                "spans {:?} and {:?} partially overlap on tid {}",
                a, b, a.tid
            );
        }
    }
    // Every attempt sits strictly deeper than its enclosing point span.
    let min_attempt_depth = spans("point_attempt")
        .iter()
        .map(|s| s.depth)
        .min()
        .unwrap();
    let max_point_depth = spans("sweep_point").iter().map(|s| s.depth).max().unwrap();
    assert!(min_attempt_depth > max_point_depth);
    // This thread never entered a span, and the workers all exited
    // theirs — depth here must be back at zero.
    assert_eq!(trace::current_depth(), 0);
}

#[test]
fn checkpoint_resume_survives_storage_faults() {
    // Half of all journal appends are bit-flipped. A resumed job must
    // treat damaged records as missing — recompute those points — and
    // still produce the full, correct sweep.
    let dir = std::env::temp_dir().join(format!("omen-serve-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::finfet_bias_quick();

    let _armed = arm(FaultPlan::seeded(11, 0.0).with_rate(FaultSite::FrameCorrupt, 0.5));
    let first = run_sweep(&spec, 4, Some(dir.clone()));
    let second = run_sweep(&spec, 4, Some(dir.clone()));

    assert_eq!(second.points.len(), 4);
    assert!(second.metrics.resumed_points <= 4);
    for (a, b) in second.points.iter().zip(&first.points) {
        let rel = ((a.current - b.current) / b.current).abs();
        assert!(
            rel < 10.0 * spec.base.tolerance,
            "resumed/recomputed current {} vs first run {} (rel {rel})",
            a.current,
            b.current
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
