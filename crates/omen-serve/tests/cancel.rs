//! Cancellation race tests: the token must land whether the job is
//! queued, mid-Born-loop, or anywhere in the submit→queue window, and
//! `wait()` must always return — these tests hanging *is* the failure.

use omen_serve::{JobError, JobState, ServerConfig, SweepServer, SweepSpec};
use std::time::{Duration, Instant};

fn one_worker() -> SweepServer {
    SweepServer::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
}

#[test]
fn cancel_lands_mid_born_loop() {
    let server = one_worker();
    // Long enough that completion cannot race the cancellation below.
    let handle = server.submit(SweepSpec::finfet_bias(32)).expect("valid");

    // Wait for the worker to pick the job up, then cancel while the
    // first point is inside its Born loop.
    let t0 = Instant::now();
    while !matches!(handle.state(), JobState::Running { .. }) {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "worker never started the job"
        );
        std::thread::yield_now();
    }
    handle.cancel();

    match handle.wait() {
        Err(JobError::Cancelled(partial)) => {
            // The in-flight point aborts between Born iterations, so the
            // sweep stops far short of its 32 points.
            assert!(
                partial.points.len() < 32,
                "cancellation had no effect: {} points",
                partial.points.len()
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(handle.state(), JobState::Cancelled);
}

#[test]
fn cancel_races_the_submit_to_queue_window() {
    let server = one_worker();
    // Keep the single worker busy so later submissions sit in the queue.
    let busy = server
        .submit(SweepSpec::finfet_bias_quick())
        .expect("valid");

    // Fire cancels from another thread the instant each submit returns:
    // the cancel can hit before the worker dequeues the id (queued
    // cancel), or just as it does (the run_job entry re-check).
    for _ in 0..8 {
        let handle = server.submit(SweepSpec::finfet_bias(3)).expect("valid");
        let canceller = std::thread::spawn(move || {
            handle.cancel();
            handle
        });
        let handle = canceller.join().expect("canceller thread");
        match handle.wait() {
            // Usually cancelled before (or just after) dequeue …
            Err(JobError::Cancelled(partial)) => {
                assert!(partial.points.len() <= 3);
                assert_eq!(handle.state(), JobState::Cancelled);
            }
            // … but losing the race entirely and completing is legal.
            Ok(result) => assert_eq!(result.points.len(), 3),
            Err(other) => panic!("expected Cancelled or Ok, got {other:?}"),
        }
    }
    // The busy job is unaffected by the surrounding churn.
    assert_eq!(busy.wait().expect("completes").points.len(), 4);
}

#[test]
fn double_cancel_and_cancel_after_completion_are_benign() {
    let server = one_worker();
    let handle = server.submit(SweepSpec::finfet_bias(2)).expect("valid");
    let result = handle.wait().expect("completes");
    assert_eq!(result.points.len(), 2);
    // Cancelling a finished job must not clobber its terminal state.
    handle.cancel();
    handle.cancel();
    assert_eq!(handle.state(), JobState::Completed);
    assert_eq!(handle.wait().expect("still completed").points.len(), 2);
}
