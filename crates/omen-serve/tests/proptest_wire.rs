//! Property-based tests for the sweep-service wire codec: random job
//! results — points plus a tagged counter-snapshot metrics section —
//! must round-trip bit-exactly through the `C64` frame transport, and
//! random truncation must never decode into a wrong result.

use omen_serve::{decode_result, encode_result, JobMetrics, JobResult, PointObservables};
use omen_trace::Counter;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = PointObservables> {
    (
        (-2.0f64..2.0, -1.0f64..1.0, 0u64..50),
        (0u64..2, 0u64..2, -2.0f64..2.0),
    )
        .prop_map(|((value, current, iterations), (warm, has_donor, donor))| {
            PointObservables {
                value,
                current: current * 1e-6,
                iterations: iterations as u32,
                warm: warm == 1,
                donor: (has_donor == 1).then_some(donor),
            }
        })
}

fn arb_metrics() -> impl Strategy<Value = JobMetrics> {
    (
        (0u64..100, 0u64..100, 0u64..1000, 0u64..100),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..50, 0u64..20),
        (0u64..20, 0u64..100, 0.0f64..1e4),
    )
        .prop_map(|(a, b, c)| JobMetrics {
            points: a.0 as u32,
            warm_points: a.1 as u32,
            born_iterations: a.2 as u32,
            iterations_saved: a.3 as u32,
            cache_hits: b.0,
            cache_misses: b.1,
            retries: b.2 as u32,
            cold_fallbacks: b.3 as u32,
            quarantined: c.0 as u32,
            resumed_points: c.1 as u32,
            seconds: c.2,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn job_results_round_trip(
        points in proptest::collection::vec(arb_point(), 8),
        npoints in 0usize..9,
        metrics in arb_metrics(),
    ) {
        let result = JobResult {
            points: points[..npoints].to_vec(),
            metrics,
        };
        let frame = encode_result(&result);
        let back = decode_result(&frame).expect("encoded frames decode");
        // The types carry floats and skip `PartialEq`; the Debug image
        // is bit-faithful (distinct bit patterns never collide), so a
        // string compare pins the exact round trip.
        prop_assert_eq!(format!("{result:?}"), format!("{back:?}"));
    }

    #[test]
    fn metrics_survive_the_counter_snapshot(metrics in arb_metrics()) {
        // The wire image is the registry snapshot: every nonzero metric
        // must come back through its counter tag.
        let set = metrics.to_counters();
        let back = JobMetrics::from_counters(&set, metrics.seconds);
        prop_assert_eq!(format!("{metrics:?}"), format!("{back:?}"));
        prop_assert_eq!(set.get(Counter::CacheHits), metrics.cache_hits);
    }

    #[test]
    fn truncated_results_never_decode(metrics in arb_metrics(), cut in 0usize..10_000) {
        let result = JobResult { points: Vec::new(), metrics };
        let frame = encode_result(&result);
        let cut = cut % frame.len();
        prop_assert!(decode_result(&frame[..cut]).is_none());
    }
}
