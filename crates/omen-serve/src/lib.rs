//! # omen-serve
//!
//! An async NEGF sweep service with cross-point warm-start caching.
//!
//! Device characterization rarely runs one bias point: it runs I–V
//! curves, temperature ladders, and coupling scans — dozens of
//! self-consistent Born solves over configurations that differ in a
//! single scalar. This crate turns the workspace's [`omen_core`] driver
//! into a job server that exploits exactly that structure:
//!
//! * **jobs** — a [`SweepSpec`] names a base scenario, a [`SweepAxis`]
//!   (bias / temperature / coupling) and an ordered value list;
//!   [`SweepClient::submit`] validates it and returns a [`JobHandle`]
//!   with polling ([`JobHandle::state`]), cancellation
//!   ([`JobHandle::cancel`]) and blocking await
//!   ([`JobHandle::await_observables`]);
//! * **runtime** — a hand-rolled thread pool over the vendored
//!   `crossbeam` channel and `parking_lot` mutex/condvar shims; a worker
//!   owns a job end-to-end so points run sequentially *within* a job
//!   (each warm-starts from its neighbor) while distinct jobs run
//!   concurrently;
//! * **warm starts** — every completed point deposits its converged
//!   Σ^≷/Π^≷ and boundary caches ([`omen_core::WarmStartData`]) into a
//!   shared LRU [`SweepCache`] under a byte budget; the next point seeds
//!   from the nearest completed neighbor, cutting Born iterations while
//!   converging to the same fixed point (same per-point tolerance);
//! * **wire** — job requests and results serialize to `C64` frames
//!   ([`wire`]) reusing the staged-broadcast packing of [`omen_comm`];
//! * **fault tolerance** — each point attempt is panic-isolated and
//!   retried with capped exponential backoff; a failed warm start
//!   quarantines its cache donor and restarts cold; completed points are
//!   journaled to disk ([`CheckpointJournal`]) so an interrupted job
//!   resumes instead of recomputing (see the [`server`] module docs for
//!   the failure model and [`omen_fault`] for deterministic chaos
//!   injection).
//!
//! ## Example
//!
//! ```
//! use omen_serve::{ServerConfig, SweepServer, SweepSpec};
//!
//! let server = SweepServer::start(ServerConfig::default());
//! let job = server
//!     .submit(SweepSpec::finfet_bias_quick())
//!     .expect("valid sweep");
//! let points = job.await_observables().expect("sweep completes");
//! assert_eq!(points.len(), 4);
//! // Fault-free, every later point warm-starts from its neighbor; under
//! // an armed chaos plan a retried point may legitimately run cold.
//! assert!(points[1].warm || omen_fault::active());
//! ```
//!
//! ## Cache tuning
//!
//! [`CacheConfig::max_bytes`] bounds resident warm-start state (each
//! entry's cost is [`omen_core::WarmStartData::bytes`]); eviction is
//! least-recently-used, and the newest entry always survives so a sweep
//! can chain through its own deposits even under a tiny budget.
//! [`CacheConfig::max_entries`] caps entry count independently.

pub mod cache;
pub mod checkpoint;
pub mod job;
pub mod server;
pub mod sweep;
pub mod wire;

pub use cache::{CacheConfig, CacheStats, SweepCache};
pub use checkpoint::CheckpointJournal;
pub use job::{JobMetrics, JobResult, JobState, PointObservables};
pub use server::{JobError, JobHandle, ServerConfig, SubmitError, SweepClient, SweepServer};
pub use sweep::{linspace, SweepAxis, SweepSpec};
pub use wire::{
    decode_job, decode_point, decode_result, encode_job, encode_point, encode_result, JobRequest,
};
