//! The cross-point warm-start cache.
//!
//! Every completed sweep point deposits its converged state
//! ([`omen_core::WarmStartData`]: Σ^≷/Π^≷ plus the boundary caches) keyed
//! by scenario fingerprint, sweep axis, and swept value. A new point asks
//! for the *nearest* completed neighbor on its axis and warm-starts from
//! it, cutting Born iterations. Entries are evicted least-recently-used
//! under a byte budget, with per-entry memory accounting.

use crate::sweep::SweepAxis;
use omen_core::WarmStartData;

/// Cache sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total byte budget across all entries (tensor + boundary bytes).
    pub max_bytes: usize,
    /// Entry-count cap, independent of size.
    pub max_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_bytes: 256 << 20,
            max_entries: 64,
        }
    }
}

/// Usage counters of a [`SweepCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a same-scenario donor.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries deposited (including same-key replacements).
    pub insertions: u64,
    /// Entries removed to satisfy the budget.
    pub evictions: u64,
    /// Entries removed because a point they seeded failed.
    pub quarantined: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    scenario: u64,
    axis: SweepAxis,
    value: f64,
    bytes: usize,
    last_used: u64,
    data: WarmStartData,
}

/// LRU warm-start cache with a byte budget.
pub struct SweepCache {
    entries: Vec<CacheEntry>,
    config: CacheConfig,
    bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl SweepCache {
    /// Creates an empty cache under `config`'s budget.
    pub fn new(config: CacheConfig) -> SweepCache {
        SweepCache {
            entries: Vec::new(),
            config,
            bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounted bytes across all entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Usage counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Deposits `data` for `(scenario, axis, value)`, replacing an entry
    /// for the exact same point, then evicts least-recently-used entries
    /// until the budget holds again. The newest entry is never evicted:
    /// a single oversized scenario still warm-starts its own sweep.
    pub fn insert(&mut self, scenario: u64, axis: SweepAxis, value: f64, data: WarmStartData) {
        self.tick += 1;
        let bytes = data.bytes();
        if let Some(old) = self.entries.iter().position(|e| {
            e.scenario == scenario && e.axis == axis && e.value.to_bits() == value.to_bits()
        }) {
            self.bytes -= self.entries[old].bytes;
            self.entries.swap_remove(old);
        }
        self.entries.push(CacheEntry {
            scenario,
            axis,
            value,
            bytes,
            last_used: self.tick,
            data,
        });
        self.bytes += bytes;
        self.stats.insertions += 1;
        while self.entries.len() > 1
            && (self.bytes > self.config.max_bytes || self.entries.len() > self.config.max_entries)
        {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.bytes -= self.entries[oldest].bytes;
            self.entries.swap_remove(oldest);
            self.stats.evictions += 1;
        }
    }

    /// Removes the entry for exactly `(scenario, axis, value)`, if any.
    ///
    /// Called when a warm-started point fails: the donor that seeded it
    /// is suspect (its tensors may be damaged or far from any fixed
    /// point), so it is taken out of circulation before the retry. This
    /// is a removal, not a denylist — if the donor point later
    /// re-converges, its fresh deposit is welcome again.
    pub fn quarantine(&mut self, scenario: u64, axis: SweepAxis, value: f64) -> bool {
        let Some(idx) = self.entries.iter().position(|e| {
            e.scenario == scenario && e.axis == axis && e.value.to_bits() == value.to_bits()
        }) else {
            return false;
        };
        self.bytes -= self.entries[idx].bytes;
        self.entries.swap_remove(idx);
        self.stats.quarantined += 1;
        true
    }

    /// The donor nearest to `value` among same-scenario, same-axis
    /// entries: `(donor value, warm-start data)`. Counts a hit/miss and
    /// refreshes the donor's LRU stamp.
    pub fn nearest(
        &mut self,
        scenario: u64,
        axis: SweepAxis,
        value: f64,
    ) -> Option<(f64, WarmStartData)> {
        self.tick += 1;
        let best = self
            .entries
            .iter_mut()
            .filter(|e| e.scenario == scenario && e.axis == axis)
            .min_by(|a, b| {
                let da = (a.value - value).abs();
                let db = (b.value - value).abs();
                da.partial_cmp(&db).expect("finite sweep values")
            });
        match best {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some((entry.value, entry.data.clone()))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omen_core::{Simulation, SimulationConfig};

    fn donor_data() -> WarmStartData {
        let mut sim = Simulation::new(SimulationConfig::tiny()).expect("valid config");
        sim.iterate();
        sim.warm_start_data()
    }

    #[test]
    fn nearest_prefers_closest_value_per_scenario() {
        let data = donor_data();
        let mut cache = SweepCache::new(CacheConfig::default());
        cache.insert(1, SweepAxis::Bias, 0.20, data.clone());
        cache.insert(1, SweepAxis::Bias, 0.30, data.clone());
        cache.insert(2, SweepAxis::Bias, 0.26, data.clone());
        cache.insert(1, SweepAxis::Temperature, 0.025, data);

        let (donor, _) = cache.nearest(1, SweepAxis::Bias, 0.27).expect("hit");
        assert_eq!(donor, 0.30, "0.30 is nearer 0.27 than 0.20");
        // Scenario and axis partition the entries.
        assert!(cache.nearest(3, SweepAxis::Bias, 0.27).is_none());
        assert!(cache.nearest(2, SweepAxis::Temperature, 0.025).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!(stats.hit_rate() > 0.3 && stats.hit_rate() < 0.34);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let data = donor_data();
        let per_entry = data.bytes();
        assert!(per_entry > 0);
        // Budget for exactly two entries.
        let mut cache = SweepCache::new(CacheConfig {
            max_bytes: 2 * per_entry,
            max_entries: 64,
        });
        cache.insert(1, SweepAxis::Bias, 0.1, data.clone());
        cache.insert(1, SweepAxis::Bias, 0.2, data.clone());
        // Touch 0.1 so 0.2 is the LRU victim.
        cache.nearest(1, SweepAxis::Bias, 0.1).expect("hit");
        cache.insert(1, SweepAxis::Bias, 0.3, data.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= 2 * per_entry);
        assert_eq!(cache.stats().evictions, 1);
        // 0.19 would pick 0.2 if it survived; with 0.2 evicted the
        // nearest is the recently-touched 0.1.
        let (donor, _) = cache.nearest(1, SweepAxis::Bias, 0.19).expect("hit");
        assert_eq!(donor, 0.1, "recently-used entry survived eviction");

        // Same-point re-insertion replaces instead of duplicating.
        cache.insert(1, SweepAxis::Bias, 0.3, data);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn quarantine_removes_only_the_exact_donor() {
        let data = donor_data();
        let mut cache = SweepCache::new(CacheConfig::default());
        cache.insert(1, SweepAxis::Bias, 0.20, data.clone());
        cache.insert(1, SweepAxis::Bias, 0.30, data.clone());
        let bytes_before = cache.bytes();

        assert!(cache.quarantine(1, SweepAxis::Bias, 0.20));
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() < bytes_before);
        assert_eq!(cache.stats().quarantined, 1);
        // The survivor still serves; the quarantined point is gone.
        let (donor, _) = cache.nearest(1, SweepAxis::Bias, 0.21).expect("hit");
        assert_eq!(donor, 0.30);
        // Unknown keys are a no-op.
        assert!(!cache.quarantine(1, SweepAxis::Bias, 0.20));
        assert!(!cache.quarantine(9, SweepAxis::Bias, 0.30));
        assert_eq!(cache.stats().quarantined, 1);

        // Quarantine is not a denylist: a fresh deposit for the same
        // point is accepted and served again.
        cache.insert(1, SweepAxis::Bias, 0.20, data);
        assert_eq!(
            cache.nearest(1, SweepAxis::Bias, 0.19).expect("hit").0,
            0.20
        );
    }

    #[test]
    fn entry_cap_and_oversized_singleton() {
        let data = donor_data();
        // A budget below one entry still retains the newest deposit.
        let mut cache = SweepCache::new(CacheConfig {
            max_bytes: 1,
            max_entries: 4,
        });
        cache.insert(7, SweepAxis::Coupling, 0.01, data.clone());
        assert_eq!(cache.len(), 1);
        cache.insert(7, SweepAxis::Coupling, 0.02, data);
        assert_eq!(cache.len(), 1, "over-budget cache holds only the newest");
        assert_eq!(
            cache.nearest(7, SweepAxis::Coupling, 0.0).expect("hit").0,
            0.02
        );
    }
}
