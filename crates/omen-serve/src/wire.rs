//! Wire encoding of sweep jobs and results.
//!
//! Messages ride the workspace's `C64` transport: the payload is a
//! little-endian byte string framed by [`omen_comm::encode_frame`] — the
//! same bit-preserving packing the staged material broadcast uses — so a
//! remote rank can submit sweeps and read observables through the
//! simulated MPI (or any other `C64` channel).

use crate::job::{JobMetrics, JobResult, PointObservables};
use crate::sweep::{SweepAxis, SweepSpec};
use omen_comm::{decode_frame, encode_frame};
use omen_core::SimulationConfig;
use omen_linalg::C64;
use omen_trace::{Counter, CounterSet};

/// Frame kind of a job request.
pub const FRAME_JOB: u32 = 0x4a4f_4201; // "JOB\x01"
/// Frame kind of a job result.
pub const FRAME_RESULT: u32 = 0x5245_5301; // "RES\x01"
/// Frame kind of one checkpointed sweep point.
pub const FRAME_POINT: u32 = 0x504f_4901; // "POI\x01"

/// A sweep job as it travels the wire: a named base-scenario preset plus
/// the axis and values. Presets keep the payload small — the full
/// `SimulationConfig` stays server-side, resolved by name.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Base-scenario preset name (see [`resolve_preset`]).
    pub preset: String,
    /// The swept knob.
    pub axis: SweepAxis,
    /// Swept values, in sweep order.
    pub values: Vec<f64>,
}

impl JobRequest {
    /// Resolves the preset and assembles the executable sweep spec.
    pub fn to_spec(&self) -> Option<SweepSpec> {
        let base = resolve_preset(&self.preset)?;
        Some(SweepSpec::new(base, self.axis, self.values.clone()))
    }
}

/// Maps a wire preset name to a base scenario.
pub fn resolve_preset(name: &str) -> Option<SimulationConfig> {
    match name {
        "tiny" => Some(SimulationConfig::tiny()),
        "demo" => Some(SimulationConfig::demo()),
        _ => None,
    }
}

/// Encodes a job request as a `C64` frame of kind [`FRAME_JOB`].
pub fn encode_job(request: &JobRequest) -> Vec<C64> {
    let mut bytes = Vec::new();
    bytes.push(request.axis.tag());
    let name = request.preset.as_bytes();
    put_u32(&mut bytes, name.len() as u32);
    bytes.extend_from_slice(name);
    put_u32(&mut bytes, request.values.len() as u32);
    for &v in &request.values {
        put_f64(&mut bytes, v);
    }
    encode_frame(FRAME_JOB, &bytes)
}

/// Decodes a [`FRAME_JOB`] frame back into a request.
pub fn decode_job(frame: &[C64]) -> Option<JobRequest> {
    let (kind, bytes) = decode_frame(frame).ok()?;
    if kind != FRAME_JOB {
        return None;
    }
    let mut cur = Cursor::new(&bytes);
    let axis = SweepAxis::from_tag(cur.u8()?)?;
    let name_len = cur.u32()? as usize;
    let preset = String::from_utf8(cur.take(name_len)?.to_vec()).ok()?;
    let n = cur.u32()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(cur.f64()?);
    }
    cur.done()?;
    Some(JobRequest {
        preset,
        axis,
        values,
    })
}

/// Encodes a job result as a `C64` frame of kind [`FRAME_RESULT`].
pub fn encode_result(result: &JobResult) -> Vec<C64> {
    let mut bytes = Vec::new();
    put_u32(&mut bytes, result.points.len() as u32);
    for p in &result.points {
        put_f64(&mut bytes, p.value);
        put_f64(&mut bytes, p.current);
        put_u32(&mut bytes, p.iterations);
        bytes.push(p.warm as u8);
        bytes.push(p.donor.is_some() as u8);
        put_f64(&mut bytes, p.donor.unwrap_or(0.0));
    }
    put_metrics(&mut bytes, &result.metrics);
    encode_frame(FRAME_RESULT, &bytes)
}

/// Decodes a [`FRAME_RESULT`] frame back into a result.
pub fn decode_result(frame: &[C64]) -> Option<JobResult> {
    let (kind, bytes) = decode_frame(frame).ok()?;
    if kind != FRAME_RESULT {
        return None;
    }
    let mut cur = Cursor::new(&bytes);
    let n = cur.u32()? as usize;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let value = cur.f64()?;
        let current = cur.f64()?;
        let iterations = cur.u32()?;
        let warm = cur.u8()? != 0;
        let has_donor = cur.u8()? != 0;
        let donor_value = cur.f64()?;
        points.push(PointObservables {
            value,
            current,
            iterations,
            warm,
            donor: has_donor.then_some(donor_value),
        });
    }
    let metrics = take_metrics(&mut cur)?;
    cur.done()?;
    Some(JobResult { points, metrics })
}

/// Encodes one completed sweep point (plus its scenario fingerprint) as
/// a `C64` frame of kind [`FRAME_POINT`] — the checkpoint-journal record.
pub fn encode_point(scenario: u64, point: &PointObservables) -> Vec<C64> {
    let mut bytes = Vec::new();
    put_u64(&mut bytes, scenario);
    put_f64(&mut bytes, point.value);
    put_f64(&mut bytes, point.current);
    put_u32(&mut bytes, point.iterations);
    bytes.push(point.warm as u8);
    bytes.push(point.donor.is_some() as u8);
    put_f64(&mut bytes, point.donor.unwrap_or(0.0));
    encode_frame(FRAME_POINT, &bytes)
}

/// Decodes a [`FRAME_POINT`] frame back into `(scenario, point)`.
pub fn decode_point(frame: &[C64]) -> Option<(u64, PointObservables)> {
    let (kind, bytes) = decode_frame(frame).ok()?;
    if kind != FRAME_POINT {
        return None;
    }
    let mut cur = Cursor::new(&bytes);
    let scenario = cur.u64()?;
    let value = cur.f64()?;
    let current = cur.f64()?;
    let iterations = cur.u32()?;
    let warm = cur.u8()? != 0;
    let has_donor = cur.u8()? != 0;
    let donor_value = cur.f64()?;
    cur.done()?;
    Some((
        scenario,
        PointObservables {
            value,
            current,
            iterations,
            warm,
            donor: has_donor.then_some(donor_value),
        },
    ))
}

/// Writes the metrics as a tagged trace-registry snapshot: a `u32` entry
/// count, then per nonzero counter a `u8` tag ([`Counter::index`]) and a
/// `u64` value, then the `f64` wall seconds. Tags are append-only in
/// `omen-trace`, so old decoders skip counters they don't know about and
/// new decoders default missing counters to zero — either side can be
/// upgraded first.
fn put_metrics(bytes: &mut Vec<u8>, metrics: &JobMetrics) {
    let set = metrics.to_counters();
    let entries: Vec<(Counter, u64)> = set.entries().collect();
    put_u32(bytes, entries.len() as u32);
    for (counter, value) in entries {
        bytes.push(counter.index() as u8);
        put_u64(bytes, value);
    }
    put_f64(bytes, metrics.seconds);
}

/// Reads the tagged counter snapshot written by [`put_metrics`], skipping
/// entries whose tag this build doesn't recognize.
fn take_metrics(cur: &mut Cursor<'_>) -> Option<JobMetrics> {
    let n = cur.u32()? as usize;
    let mut set = CounterSet::new();
    for _ in 0..n {
        let tag = cur.u8()?;
        let value = cur.u64()?;
        if let Some(counter) = Counter::from_index(tag as usize) {
            set.set(counter, value);
        }
    }
    let seconds = cur.f64()?;
    Some(JobMetrics::from_counters(&set, seconds))
}

fn put_u32(bytes: &mut Vec<u8>, v: u32) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(bytes: &mut Vec<u8>, v: u64) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(bytes: &mut Vec<u8>, v: f64) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// `Some(())` only when every byte was consumed.
    fn done(&self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_round_trip() {
        let request = JobRequest {
            preset: "tiny".into(),
            axis: SweepAxis::Bias,
            values: vec![0.2, 0.25, 0.3],
        };
        let frame = encode_job(&request);
        assert_eq!(decode_job(&frame), Some(request.clone()));
        let spec = request.to_spec().expect("known preset");
        assert_eq!(spec.len(), 3);
        spec.validate().expect("valid points");

        // Unknown presets resolve to nothing; wrong kinds decode to none.
        assert!(JobRequest {
            preset: "planetary".into(),
            ..request
        }
        .to_spec()
        .is_none());
        assert_eq!(decode_result(&frame).map(|_| ()), None);
    }

    #[test]
    fn point_frame_round_trip() {
        let point = PointObservables {
            value: 0.25,
            current: 1.9e-6,
            iterations: 3,
            warm: true,
            donor: Some(0.2),
        };
        let frame = encode_point(0xfeed_beef_cafe_0001, &point);
        let (scenario, back) = decode_point(&frame).expect("valid frame");
        assert_eq!(scenario, 0xfeed_beef_cafe_0001);
        assert_eq!(back.value.to_bits(), point.value.to_bits());
        assert_eq!(back.current.to_bits(), point.current.to_bits());
        assert_eq!(back.iterations, 3);
        assert!(back.warm);
        assert_eq!(back.donor, Some(0.2));
        // Wrong kinds and truncation are rejected.
        assert!(decode_job(&frame).is_none());
        assert!(decode_point(&frame[..frame.len() - 1]).is_none());
    }

    #[test]
    fn job_result_round_trip() {
        let result = JobResult {
            points: vec![
                PointObservables {
                    value: 0.2,
                    current: 1.5e-6,
                    iterations: 6,
                    warm: false,
                    donor: None,
                },
                PointObservables {
                    value: 0.25,
                    current: 1.9e-6,
                    iterations: 3,
                    warm: true,
                    donor: Some(0.2),
                },
            ],
            metrics: JobMetrics {
                points: 2,
                warm_points: 1,
                born_iterations: 9,
                iterations_saved: 3,
                cache_hits: 1,
                cache_misses: 1,
                retries: 2,
                cold_fallbacks: 1,
                quarantined: 1,
                resumed_points: 0,
                seconds: 0.42,
            },
        };
        let frame = encode_result(&result);
        let back = decode_result(&frame).expect("valid frame");
        assert_eq!(back.points.len(), 2);
        assert_eq!(back.points[1].donor, Some(0.2));
        assert_eq!(back.points[1].iterations, 3);
        assert!(back.points[1].warm && !back.points[0].warm);
        assert_eq!(back.metrics.iterations_saved, 3);
        assert_eq!(back.metrics.retries, 2);
        assert_eq!(back.metrics.cold_fallbacks, 1);
        assert_eq!(back.metrics.quarantined, 1);
        assert_eq!(back.metrics.seconds, 0.42);

        // Truncated frames are rejected.
        assert!(decode_result(&frame[..frame.len() - 1]).is_none());
        assert!(decode_job(&frame).is_none());
    }

    #[test]
    fn metrics_decoder_skips_unknown_counter_tags() {
        // A result frame from a hypothetical future build: one counter
        // this build knows, one tag it doesn't.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0); // no points
        put_u32(&mut bytes, 2); // two counter entries
        bytes.push(Counter::PointsSolved.index() as u8);
        put_u64(&mut bytes, 7);
        bytes.push(0xee); // unknown tag
        put_u64(&mut bytes, 99);
        put_f64(&mut bytes, 1.5);
        let frame = encode_frame(FRAME_RESULT, &bytes);
        let back = decode_result(&frame).expect("unknown tags are skipped");
        assert_eq!(back.metrics.points, 7);
        assert_eq!(back.metrics.seconds, 1.5);
        assert_eq!(back.metrics.retries, 0);
    }
}
