//! Sweep specifications: one scalar knob varied over an ordered value
//! list on top of a fixed base scenario.
//!
//! A sweep is the unit of work the service schedules. Points of the same
//! sweep share everything except the swept value, which is what makes
//! cross-point warm starts physically sound: the converged Σ/Π of a
//! neighboring point is an excellent initial guess, and the boundary
//! caches transfer exactly (or as refinement seeds — see
//! [`SweepAxis::changes_boundaries`]).

use omen_core::{ConfigError, SimulationConfig};

/// Which scalar knob a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepAxis {
    /// Source chemical potential `μ_S` (eV); `Vds = μ_S − μ_D`.
    Bias,
    /// Contact temperature `k_B·T` (eV).
    Temperature,
    /// Electron-phonon coupling prefactor.
    Coupling,
}

impl SweepAxis {
    /// Writes `value` into the swept field of `cfg`.
    pub fn apply(self, cfg: &mut SimulationConfig, value: f64) {
        match self {
            SweepAxis::Bias => cfg.mu_source = value,
            SweepAxis::Temperature => cfg.kt = value,
            SweepAxis::Coupling => cfg.coupling = value,
        }
    }

    /// Reads the swept field back out of `cfg`.
    pub fn read(self, cfg: &SimulationConfig) -> f64 {
        match self {
            SweepAxis::Bias => cfg.mu_source,
            SweepAxis::Temperature => cfg.kt,
            SweepAxis::Coupling => cfg.coupling,
        }
    }

    /// Whether stepping this axis changes the ballistic boundary
    /// operators `M`.
    ///
    /// The electron `M` contains the electrostatic potential, so a bias
    /// step invalidates cached boundary self-energies (their surface GFs
    /// remain refinement seeds). Temperature enters only the contact
    /// occupation factors and coupling only the SSE prefactor — neither
    /// touches `M`, so cached boundaries carry over exactly.
    pub fn changes_boundaries(self) -> bool {
        matches!(self, SweepAxis::Bias)
    }

    /// Stable tag for hashing and wire encoding.
    pub fn tag(self) -> u8 {
        match self {
            SweepAxis::Bias => 0,
            SweepAxis::Temperature => 1,
            SweepAxis::Coupling => 2,
        }
    }

    /// Inverse of [`SweepAxis::tag`].
    pub fn from_tag(tag: u8) -> Option<SweepAxis> {
        match tag {
            0 => Some(SweepAxis::Bias),
            1 => Some(SweepAxis::Temperature),
            2 => Some(SweepAxis::Coupling),
            _ => None,
        }
    }
}

/// A sweep job: `base` with `axis` set to each of `values` in order.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The scenario every point shares.
    pub base: SimulationConfig,
    /// The varied knob.
    pub axis: SweepAxis,
    /// Swept values, visited in order (adjacent values warm-start best).
    pub values: Vec<f64>,
}

impl SweepSpec {
    /// Creates a sweep over `values` of `axis` on `base`.
    pub fn new(base: SimulationConfig, axis: SweepAxis, values: Vec<f64>) -> SweepSpec {
        SweepSpec { base, axis, values }
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The full configuration of point `idx`.
    pub fn config_for(&self, idx: usize) -> SimulationConfig {
        let mut cfg = self.base.clone();
        self.axis.apply(&mut cfg, self.values[idx]);
        cfg
    }

    /// Validates every point's configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for idx in 0..self.values.len() {
            self.config_for(idx).validate()?;
        }
        Ok(())
    }

    /// Scenario fingerprint: a hash over every configuration field
    /// *except* the swept value. Two sweep points may share warm-start
    /// state if and only if their scenario hashes (and axes) agree.
    pub fn scenario_hash(&self) -> u64 {
        let mut neutral = self.base.clone();
        // Neutralize the swept field so all points of one sweep — and of
        // any other sweep over the same scenario — hash identically.
        self.axis.apply(&mut neutral, 0.0);
        let mut h = fnv1a(format!("{neutral:?}").as_bytes());
        h ^= self.axis.tag() as u64;
        h.wrapping_mul(0x0000_0100_0000_01b3)
    }

    /// A FinFET drain-bias sweep on the `tiny` preset: `npoints` source
    /// potentials spanning 0.20 eV to 0.40 eV.
    pub fn finfet_bias(npoints: usize) -> SweepSpec {
        SweepSpec::new(
            SimulationConfig::tiny(),
            SweepAxis::Bias,
            linspace(0.20, 0.40, npoints),
        )
    }

    /// The quick CI variant of [`SweepSpec::finfet_bias`]: 4 points.
    pub fn finfet_bias_quick() -> SweepSpec {
        SweepSpec::finfet_bias(4)
    }

    /// A FinFET temperature sweep on the `tiny` preset: `npoints` values
    /// of `k_B·T` spanning 0.020 eV to 0.035 eV. Temperature never enters
    /// the ballistic operators, so every point reuses the cached
    /// boundaries exactly.
    pub fn finfet_temperature(npoints: usize) -> SweepSpec {
        SweepSpec::new(
            SimulationConfig::tiny(),
            SweepAxis::Temperature,
            linspace(0.020, 0.035, npoints),
        )
    }
}

/// `n` evenly spaced values over `[lo, hi]` (endpoints included).
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect(),
    }
}

/// FNV-1a over a byte string — the scenario fingerprint primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_apply() {
        let spec = SweepSpec::finfet_bias_quick();
        spec.validate().expect("quick preset valid");
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.axis.read(&spec.config_for(0)), 0.20);
        assert_eq!(spec.axis.read(&spec.config_for(3)), 0.40);
        SweepSpec::finfet_temperature(3)
            .validate()
            .expect("temperature preset valid");
    }

    #[test]
    fn scenario_hash_ignores_swept_value_only() {
        let a = SweepSpec::finfet_bias(3);
        let b = SweepSpec::finfet_bias(7); // different values, same scenario
        assert_eq!(a.scenario_hash(), b.scenario_hash());

        // A different axis on the same base is a different scenario.
        let t = SweepSpec::new(a.base.clone(), SweepAxis::Temperature, vec![0.025]);
        assert_ne!(a.scenario_hash(), t.scenario_hash());

        // A non-swept field change is a different scenario.
        let mut other = a.clone();
        other.base.ne += 2;
        assert_ne!(a.scenario_hash(), other.scenario_hash());
    }

    #[test]
    fn linspace_covers_endpoints() {
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert_eq!((v[0], v[4]), (0.0, 1.0));
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn axis_tags_round_trip() {
        for axis in [SweepAxis::Bias, SweepAxis::Temperature, SweepAxis::Coupling] {
            assert_eq!(SweepAxis::from_tag(axis.tag()), Some(axis));
        }
        assert_eq!(SweepAxis::from_tag(9), None);
    }
}
