//! Job checkpoint journal: completed sweep points survive a crash.
//!
//! Every point a worker finishes is appended to an on-disk journal as a
//! length-prefixed, checksummed `C64` frame ([`crate::wire::encode_point`]
//! over [`omen_comm::encode_frame`]). When a job starts and a journal
//! exists for its scenario, points whose swept value already has an
//! intact record are restored instead of recomputed — a resubmitted or
//! resumed job re-runs only what was lost.
//!
//! ## On-disk format
//!
//! A journal is a flat sequence of records, each:
//!
//! ```text
//! [u64 LE: frame length in C64 elements][elements × 16 bytes: re LE, im LE]
//! ```
//!
//! The format is crash-tolerant by construction:
//!
//! * a **torn tail** (the process died mid-append) is detected by the
//!   length prefix pointing past end-of-file; [`CheckpointJournal::load`]
//!   drops it and [`CheckpointJournal::repair`] truncates it away so
//!   later appends never land behind garbage;
//! * a **damaged record** (bit rot, or an injected
//!   [`omen_fault::FaultSite::FrameCorrupt`] fault) fails the frame
//!   checksum and is skipped — the point is simply recomputed;
//! * records never depend on each other, so any prefix of intact records
//!   is a valid journal.

use crate::job::PointObservables;
use crate::wire::{decode_point, encode_point};
use omen_fault::FaultSite;
use omen_linalg::C64;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// An append-only journal of completed sweep points.
#[derive(Clone, Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
}

impl CheckpointJournal {
    /// A journal at an explicit path (the file need not exist yet).
    pub fn at(path: impl Into<PathBuf>) -> CheckpointJournal {
        CheckpointJournal { path: path.into() }
    }

    /// The canonical journal for `scenario` inside `dir`: one file per
    /// scenario fingerprint, shared by every sweep over that scenario.
    pub fn for_scenario(dir: &Path, scenario: u64) -> CheckpointJournal {
        CheckpointJournal::at(dir.join(format!("sweep-{scenario:016x}.ckpt")))
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed point. The record is assembled in memory
    /// and written with a single `write_all` so concurrent appenders
    /// (the file is opened in append mode) never interleave partial
    /// records under POSIX semantics.
    pub fn append(&self, scenario: u64, point: &PointObservables) -> std::io::Result<()> {
        let frame = encode_point(scenario, point);
        let mut bytes = Vec::with_capacity(8 + frame.len() * 16);
        bytes.extend_from_slice(&(frame.len() as u64).to_le_bytes());
        for c in &frame {
            bytes.extend_from_slice(&c.re.to_le_bytes());
            bytes.extend_from_slice(&c.im.to_le_bytes());
        }
        // Injected storage fault: flip one bit of the record body (never
        // the length prefix, which models sector-level framing) so the
        // loader exercises its skip-damaged-record path.
        let key = omen_fault::mix(scenario ^ point.value.to_bits(), frame.len() as u64);
        if omen_fault::should_inject(FaultSite::FrameCorrupt, key) {
            omen_fault::corrupt_bytes(&mut bytes[8..], key);
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&bytes)
    }

    /// Every intact record, in append order. Damaged records are
    /// skipped; a torn tail is dropped. A missing or unreadable file is
    /// an empty journal.
    pub fn load(&self) -> Vec<(u64, PointObservables)> {
        self.scan().0
    }

    /// Truncates a torn tail (an interrupted final append) so the next
    /// append starts on a record boundary. Complete-but-damaged records
    /// are left in place — they are skipped at load time. Returns the
    /// number of bytes kept.
    pub fn repair(&self) -> std::io::Result<u64> {
        let (_, valid) = self.scan();
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(valid)?;
        Ok(valid)
    }

    /// Parses the journal: `(intact records, bytes of complete records)`.
    fn scan(&self) -> (Vec<(u64, PointObservables)>, u64) {
        let Ok(raw) = std::fs::read(&self.path) else {
            return (Vec::new(), 0);
        };
        let mut out = Vec::new();
        let mut pos = 0usize;
        while let Some(prefix) = raw.get(pos..pos + 8) {
            let nelems = u64::from_le_bytes(prefix.try_into().expect("8-byte slice")) as usize;
            let Some(end) = nelems
                .checked_mul(16)
                .and_then(|body| body.checked_add(pos + 8))
            else {
                break; // implausible length: treat as torn
            };
            if end > raw.len() {
                break; // torn tail
            }
            let frame: Vec<C64> = (0..nelems)
                .map(|i| {
                    let off = pos + 8 + i * 16;
                    let re = f64::from_le_bytes(raw[off..off + 8].try_into().expect("8 bytes"));
                    let im =
                        f64::from_le_bytes(raw[off + 8..off + 16].try_into().expect("8 bytes"));
                    omen_linalg::c64(re, im)
                })
                .collect();
            pos = end;
            if let Some(record) = decode_point(&frame) {
                out.push(record);
            }
        }
        (out, pos as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> CheckpointJournal {
        let path =
            std::env::temp_dir().join(format!("omen-serve-ckpt-{}-{tag}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        CheckpointJournal::at(path)
    }

    fn point(value: f64, current: f64) -> PointObservables {
        PointObservables {
            value,
            current,
            iterations: 5,
            warm: false,
            donor: None,
        }
    }

    #[test]
    fn append_load_round_trip_across_scenarios() {
        let journal = temp_journal("roundtrip");
        journal.append(1, &point(0.2, 1e-6)).expect("append");
        journal.append(2, &point(0.3, 2e-6)).expect("append");
        journal.append(1, &point(0.4, 3e-6)).expect("append");
        let records = journal.load();
        // Under an armed chaos plan an append may be deliberately
        // damaged; fault-free, all three must survive bit-exactly.
        if !omen_fault::active() {
            assert_eq!(records.len(), 3);
            assert_eq!(records[0].0, 1);
            assert_eq!(records[1].0, 2);
            assert_eq!(records[2].1.value.to_bits(), 0.4f64.to_bits());
            assert_eq!(records[2].1.current.to_bits(), 3e-6f64.to_bits());
        }
        assert!(records.len() <= 3);
        let _ = std::fs::remove_file(journal.path());
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let journal = temp_journal("torn");
        journal.append(7, &point(0.2, 1e-6)).expect("append");
        let whole = std::fs::metadata(journal.path()).expect("exists").len();
        journal.append(7, &point(0.3, 2e-6)).expect("append");
        // Crash simulation: the second append only half-landed.
        let full = std::fs::metadata(journal.path()).expect("exists").len();
        let torn = whole + (full - whole) / 2;
        OpenOptions::new()
            .write(true)
            .open(journal.path())
            .expect("open")
            .set_len(torn)
            .expect("truncate");

        let records = journal.load();
        if !omen_fault::active() {
            assert_eq!(records.len(), 1, "torn record must be dropped");
            assert_eq!(records[0].1.value, 0.2);
        }
        // Repair trims the tail; a fresh append is then recoverable.
        assert_eq!(journal.repair().expect("repair"), whole);
        journal.append(7, &point(0.5, 5e-6)).expect("append");
        let records = journal.load();
        if !omen_fault::active() {
            assert_eq!(records.len(), 2);
            assert_eq!(records[1].1.value, 0.5);
        }
        let _ = std::fs::remove_file(journal.path());
    }

    #[test]
    fn damaged_record_is_skipped_not_fatal() {
        let journal = temp_journal("damaged");
        journal.append(9, &point(0.2, 1e-6)).expect("append");
        let first = std::fs::metadata(journal.path()).expect("exists").len();
        journal.append(9, &point(0.3, 2e-6)).expect("append");
        // Flip a payload byte of the *first* record: 8 bytes of length
        // prefix, 32 bytes of frame header, then packed payload.
        let mut raw = std::fs::read(journal.path()).expect("read");
        raw[8 + 32 + 3] ^= 0x10;
        std::fs::write(journal.path(), &raw).expect("write");

        let records = journal.load();
        if !omen_fault::active() {
            assert_eq!(records.len(), 1, "damaged record skipped, rest intact");
            assert_eq!(records[0].1.value, 0.3);
        }
        // The damaged record is complete, so repair keeps every byte.
        assert_eq!(
            journal.repair().expect("repair"),
            std::fs::metadata(journal.path()).expect("exists").len()
        );
        assert!(first > 0);
        let _ = std::fs::remove_file(journal.path());
    }

    #[test]
    fn missing_journal_is_empty() {
        let journal = temp_journal("missing");
        assert!(journal.load().is_empty());
    }
}
