//! Job lifecycle types: states, per-point observables, per-job metrics.

/// Where a submitted sweep job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is sweeping: `completed` of `total` points done.
    Running {
        /// Points finished so far.
        completed: usize,
        /// Total points in the sweep.
        total: usize,
    },
    /// Every point finished; the result is available.
    Completed,
    /// Cancelled by the client; partial results are available.
    Cancelled,
    /// A point's configuration was rejected; the message explains why.
    Failed(String),
}

impl JobState {
    /// True once the job can no longer make progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

/// Converged observables of one sweep point.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointObservables {
    /// The swept value this point ran at.
    pub value: f64,
    /// Converged electrical current (mid-device).
    pub current: f64,
    /// Born iterations this point needed.
    pub iterations: u32,
    /// True when the point warm-started from a cached neighbor.
    pub warm: bool,
    /// The donor's swept value, when warm.
    pub donor: Option<f64>,
}

/// Aggregate metrics of one sweep job.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobMetrics {
    /// Points computed.
    pub points: u32,
    /// Points that warm-started from the cache.
    pub warm_points: u32,
    /// Total Born iterations across all points.
    pub born_iterations: u32,
    /// Iterations saved by warm starts, against the job's worst cold
    /// point as the per-point baseline.
    pub iterations_saved: u32,
    /// Warm-start cache hits attributable to this job.
    pub cache_hits: u64,
    /// Warm-start cache misses attributable to this job.
    pub cache_misses: u64,
    /// Point attempts beyond each point's first (every retry, whatever
    /// triggered it: a panic, a typed driver error, or a deadline).
    pub retries: u32,
    /// Warm attempts that failed and were restarted cold.
    pub cold_fallbacks: u32,
    /// Donors quarantined (removed from the shared cache) after the
    /// point they seeded failed.
    pub quarantined: u32,
    /// Points restored from a checkpoint journal instead of recomputed.
    pub resumed_points: u32,
    /// Wall-clock seconds the sweep took.
    pub seconds: f64,
}

impl JobMetrics {
    /// Fraction of this job's cache lookups that hit (0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Final (or partial, when cancelled) output of a sweep job.
#[derive(Clone, Debug, Default)]
pub struct JobResult {
    /// One entry per completed point, in sweep order.
    pub points: Vec<PointObservables>,
    /// Aggregate metrics.
    pub metrics: JobMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running {
            completed: 1,
            total: 3
        }
        .is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed("bad".into()).is_terminal());
    }

    #[test]
    fn hit_rate_is_guarded() {
        assert_eq!(JobMetrics::default().cache_hit_rate(), 0.0);
        let m = JobMetrics {
            cache_hits: 3,
            cache_misses: 1,
            ..JobMetrics::default()
        };
        assert_eq!(m.cache_hit_rate(), 0.75);
    }
}
