//! Job lifecycle types: states, per-point observables, per-job metrics.

use omen_trace::{Counter, CounterSet};

/// Where a submitted sweep job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is sweeping: `completed` of `total` points done.
    Running {
        /// Points finished so far.
        completed: usize,
        /// Total points in the sweep.
        total: usize,
    },
    /// Every point finished; the result is available.
    Completed,
    /// Cancelled by the client; partial results are available.
    Cancelled,
    /// A point's configuration was rejected; the message explains why.
    Failed(String),
}

impl JobState {
    /// True once the job can no longer make progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

/// Converged observables of one sweep point.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointObservables {
    /// The swept value this point ran at.
    pub value: f64,
    /// Converged electrical current (mid-device).
    pub current: f64,
    /// Born iterations this point needed.
    pub iterations: u32,
    /// True when the point warm-started from a cached neighbor.
    pub warm: bool,
    /// The donor's swept value, when warm.
    pub donor: Option<f64>,
}

/// Aggregate metrics of one sweep job.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobMetrics {
    /// Points computed.
    pub points: u32,
    /// Points that warm-started from the cache.
    pub warm_points: u32,
    /// Total Born iterations across all points.
    pub born_iterations: u32,
    /// Iterations saved by warm starts, against the job's worst cold
    /// point as the per-point baseline.
    pub iterations_saved: u32,
    /// Warm-start cache hits attributable to this job.
    pub cache_hits: u64,
    /// Warm-start cache misses attributable to this job.
    pub cache_misses: u64,
    /// Point attempts beyond each point's first (every retry, whatever
    /// triggered it: a panic, a typed driver error, or a deadline).
    pub retries: u32,
    /// Warm attempts that failed and were restarted cold.
    pub cold_fallbacks: u32,
    /// Donors quarantined (removed from the shared cache) after the
    /// point they seeded failed.
    pub quarantined: u32,
    /// Points restored from a checkpoint journal instead of recomputed.
    pub resumed_points: u32,
    /// Wall-clock seconds the sweep took.
    pub seconds: f64,
}

impl JobMetrics {
    /// Fraction of this job's cache lookups that hit (0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Builds the metrics from a per-job trace counter set plus the wall
    /// time (which is not a counter). Inverse of
    /// [`JobMetrics::to_counters`]; `u32` fields saturate.
    pub fn from_counters(set: &CounterSet, seconds: f64) -> JobMetrics {
        let narrow = |c: Counter| set.get(c).min(u64::from(u32::MAX)) as u32;
        JobMetrics {
            points: narrow(Counter::PointsSolved),
            warm_points: narrow(Counter::WarmPoints),
            born_iterations: narrow(Counter::BornIterations),
            iterations_saved: narrow(Counter::IterationsSaved),
            cache_hits: set.get(Counter::CacheHits),
            cache_misses: set.get(Counter::CacheMisses),
            retries: narrow(Counter::Retries),
            cold_fallbacks: narrow(Counter::ColdFallbacks),
            quarantined: narrow(Counter::Quarantined),
            resumed_points: narrow(Counter::ResumedPoints),
            seconds,
        }
    }

    /// The metrics as a trace counter set — the registry-snapshot view
    /// the wire protocol serializes (`seconds` travels separately).
    pub fn to_counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.set(Counter::PointsSolved, u64::from(self.points));
        set.set(Counter::WarmPoints, u64::from(self.warm_points));
        set.set(Counter::BornIterations, u64::from(self.born_iterations));
        set.set(Counter::IterationsSaved, u64::from(self.iterations_saved));
        set.set(Counter::CacheHits, self.cache_hits);
        set.set(Counter::CacheMisses, self.cache_misses);
        set.set(Counter::Retries, u64::from(self.retries));
        set.set(Counter::ColdFallbacks, u64::from(self.cold_fallbacks));
        set.set(Counter::Quarantined, u64::from(self.quarantined));
        set.set(Counter::ResumedPoints, u64::from(self.resumed_points));
        set
    }
}

/// Final (or partial, when cancelled) output of a sweep job.
#[derive(Clone, Debug, Default)]
pub struct JobResult {
    /// One entry per completed point, in sweep order.
    pub points: Vec<PointObservables>,
    /// Aggregate metrics.
    pub metrics: JobMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running {
            completed: 1,
            total: 3
        }
        .is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed("bad".into()).is_terminal());
    }

    #[test]
    fn metrics_round_trip_through_counters() {
        let m = JobMetrics {
            points: 8,
            warm_points: 5,
            born_iterations: 40,
            iterations_saved: 11,
            cache_hits: 6,
            cache_misses: 2,
            retries: 3,
            cold_fallbacks: 1,
            quarantined: 1,
            resumed_points: 4,
            seconds: 2.5,
        };
        let back = JobMetrics::from_counters(&m.to_counters(), m.seconds);
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
        // Oversized counters saturate the u32 fields instead of wrapping.
        let mut set = CounterSet::new();
        set.set(Counter::Retries, u64::MAX);
        assert_eq!(JobMetrics::from_counters(&set, 0.0).retries, u32::MAX);
    }

    #[test]
    fn hit_rate_is_guarded() {
        assert_eq!(JobMetrics::default().cache_hit_rate(), 0.0);
        let m = JobMetrics {
            cache_hits: 3,
            cache_misses: 1,
            ..JobMetrics::default()
        };
        assert_eq!(m.cache_hit_rate(), 0.75);
    }
}
